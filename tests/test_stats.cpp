#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "metrics/histogram.hpp"
#include "metrics/table.hpp"

namespace animus::metrics {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Quantile, MedianOfOddAndEven) {
  const std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, EmptyIsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(FiveNumber, KnownSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 9; ++i) xs.push_back(i);  // 1..9
  const FiveNumber f = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.q1, 3.0);
  EXPECT_DOUBLE_EQ(f.median, 5.0);
  EXPECT_DOUBLE_EQ(f.q3, 7.0);
  EXPECT_DOUBLE_EQ(f.max, 9.0);
}

TEST(BoxPlot, FlagsOutliers) {
  std::vector<double> xs{10, 11, 12, 13, 14, 15, 16, 100};
  const BoxPlot bp = box_plot(xs);
  ASSERT_EQ(bp.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(bp.outliers[0], 100.0);
  EXPECT_LE(bp.upper_whisker, 16.0);
}

TEST(BoxPlot, NoOutliersWhiskersAreMinMax) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  const BoxPlot bp = box_plot(xs);
  EXPECT_TRUE(bp.outliers.empty());
  EXPECT_DOUBLE_EQ(bp.lower_whisker, 1.0);
  EXPECT_DOUBLE_EQ(bp.upper_whisker, 5.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Model", "D (ms)"});
  t.add_row({"pixel 2", "330"});
  t.add_row({"s8", "60"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("pixel 2"), std::string::npos);
  EXPECT_NE(s.find("330"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NE(t.to_string().find("| 1 |"), std::string::npos);
}

TEST(Fmt, FormatsLikePrintf) {
  EXPECT_EQ(fmt("%.1f", 3.14159), "3.1");
  EXPECT_EQ(percent(0.8834), "88.3%");
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(-3);    // clamps to bin 0
  h.add(42);    // clamps to bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RendersBars) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.2);
  h.add(0.9);
  const std::string s = h.to_string(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(AsciiCurve, ProducesGrid) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(i * i);
  }
  const std::string s = ascii_curve(xs, ys, 40, 10);
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('|'), std::string::npos);
}

TEST(AsciiCurve, DegenerateInputsAreEmpty) {
  EXPECT_TRUE(ascii_curve({}, {}).empty());
  EXPECT_TRUE(ascii_curve({1.0}, {1.0, 2.0}).empty());
}

}  // namespace
}  // namespace animus::metrics
