#include "analysis/dex.hpp"

#include <gtest/gtest.h>

#include "analysis/scanner.hpp"

namespace animus::analysis {
namespace {

ApkInfo apk_with_methods(std::vector<std::string> methods) {
  ApkInfo apk;
  apk.package = "com.example.dex";
  apk.method_refs = std::move(methods);
  return apk;
}

TEST(DexTable, RoundTrips) {
  const auto apk = apk_with_methods({kMethodAddView, kMethodRemoveView, "a.b.C.d"});
  const auto parsed = parse_dex_table(write_dex_table(apk));
  ASSERT_TRUE(parsed.ok()) << parsed.error->message;
  EXPECT_EQ(parsed.dex->method_refs.size(), 3u);
  EXPECT_TRUE(parsed.dex->references(kMethodAddView));
  EXPECT_TRUE(parsed.dex->references("a.b.C.d"));
  EXPECT_FALSE(parsed.dex->references("a.b.C.e"));
}

TEST(DexTable, EmptyTableRoundTrips) {
  const auto parsed = parse_dex_table(write_dex_table(apk_with_methods({})));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.dex->method_refs.empty());
}

TEST(DexTable, HeaderFormat) {
  const std::string blob = write_dex_table(apk_with_methods({"x.Y.z"}));
  EXPECT_EQ(blob.substr(0, 4), "dex\n");
  EXPECT_NE(blob.find("037\n"), std::string::npos);
  EXPECT_NE(blob.find("1\n"), std::string::npos);
}

struct BadDexCase {
  const char* label;
  const char* blob;
};

class DexErrors : public ::testing::TestWithParam<BadDexCase> {};

TEST_P(DexErrors, RejectsMalformedTables) {
  const auto parsed = parse_dex_table(GetParam().blob);
  EXPECT_FALSE(parsed.ok());
  ASSERT_TRUE(parsed.error.has_value());
  EXPECT_FALSE(parsed.error->message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DexErrors,
    ::testing::Values(BadDexCase{"empty", ""},
                      BadDexCase{"bad_magic", "odex\n037\n0\n"},
                      BadDexCase{"bad_version", "dex\n038\n0\n"},
                      BadDexCase{"missing_count", "dex\n037\n"},
                      BadDexCase{"nonnumeric_count", "dex\n037\nthree\na\nb\nc\n"},
                      BadDexCase{"count_too_large", "dex\n037\n3\na.B.c\n"},
                      BadDexCase{"empty_method", "dex\n037\n2\na.B.c\n\n"},
                      BadDexCase{"trailing_garbage", "dex\n037\n1\na.B.c\nextra\n"}),
    [](const ::testing::TestParamInfo<BadDexCase>& info) { return info.param.label; });

TEST(Scanner, UsesParsedDexForMethodPredicates) {
  ApkInfo apk;
  apk.package = "com.x";
  apk.permissions = {kPermSystemAlertWindow};
  apk.method_refs = {kMethodAddView};  // removeView missing
  const ScanResult r = scan_apk(apk);
  EXPECT_TRUE(r.manifest_ok);
  EXPECT_TRUE(r.dex_ok);
  EXPECT_TRUE(r.calls_add_view);
  EXPECT_FALSE(r.calls_remove_view);
}

TEST(DexTable, LargeTableParsesCleanly) {
  std::vector<std::string> methods;
  methods.reserve(1000);
  for (int i = 0; i < 1000; ++i) methods.push_back("pkg.Cls.m" + std::to_string(i));
  const auto parsed = parse_dex_table(write_dex_table(apk_with_methods(std::move(methods))));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.dex->method_refs.size(), 1000u);
  EXPECT_TRUE(parsed.dex->references("pkg.Cls.m999"));
}

}  // namespace
}  // namespace animus::analysis
