#include "core/report.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "input/typist.hpp"
#include "victim/catalog.hpp"

namespace animus::core {
namespace {

PasswordTrialConfig quiet_trial() {
  PasswordTrialConfig c;
  c.profile = device::reference_device_android9();
  c.app = victim::find_app("Facebook")->spec;
  input::TypistProfile precise;
  precise.jitter_frac = 0.02;
  precise.misspell_rate = 0.0;
  c.typist = precise;
  c.password = "qW3#";
  c.seed = 61;
  return c;
}

TEST(PasswordTrial, ReportsTouchAccounting) {
  const auto r = run_password_trial(quiet_trial());
  // "qW3#": q, shift, W, ?123, 3, # -> 6 planned touches.
  EXPECT_EQ(r.password_touches, 6);
  EXPECT_LE(r.captured_touches, r.password_touches);
  EXPECT_GE(r.captured_touches, r.password_touches - 1);
  // Whatever was missed leaked to the real keyboard at most once.
  EXPECT_LE(r.leaked_to_real_keyboard, 1);
  EXPECT_EQ(r.intended, "qW3#");
}

TEST(PasswordTrial, WidgetEndsUpHoldingDecodedText) {
  const auto r = run_password_trial(quiet_trial());
  EXPECT_TRUE(r.widget_filled);
  EXPECT_TRUE(r.triggered);
}

TEST(PasswordTrial, DOverrideIsHonoured) {
  auto c = quiet_trial();
  c.d_override = sim::ms(500);  // way past the bound: the alert escapes
  const auto r = run_password_trial(c);
  EXPECT_NE(r.alert_outcome, percept::LambdaOutcome::kL1);
}

TEST(PasswordTrial, ShortToastDurationAlsoWorks) {
  auto c = quiet_trial();
  c.toast_duration = server::kToastShort;
  const auto r = run_password_trial(c);
  EXPECT_TRUE(r.success) << r.decoded;
  EXPECT_FALSE(r.flicker.noticeable);
}

TEST(PasswordTrial, EmptyPasswordIsVacuousSuccess) {
  auto c = quiet_trial();
  c.password = "";
  const auto r = run_password_trial(c);
  EXPECT_TRUE(r.triggered);
  EXPECT_EQ(r.decoded, "");
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.password_touches, 0);
}

TEST(CaptureTrial, ZeroTouchesIsWellDefined) {
  CaptureTrialConfig c;
  c.profile = device::reference_device_android9();
  c.typist = input::participant_panel()[0];
  c.touches = 0;
  const auto r = run_capture_trial(c);
  EXPECT_EQ(r.touches, 0u);
  EXPECT_EQ(r.captured, 0u);
  EXPECT_EQ(r.rate, 0.0);
}

TEST(CaptureTrial, CapturedNeverExceedsTouches) {
  for (int seed = 1; seed <= 5; ++seed) {
    CaptureTrialConfig c;
    c.profile = *device::find_device("mi9");
    c.typist = input::participant_panel()[static_cast<std::size_t>(seed)];
    c.attacking_window = sim::ms(100);
    c.seed = static_cast<std::uint64_t>(seed);
    const auto r = run_capture_trial(c);
    EXPECT_LE(r.captured, r.touches);
    EXPECT_GE(r.rate, 0.0);
    EXPECT_LE(r.rate, 1.0);
  }
}

TEST(ErrorTaxonomy, NamesAreStable) {
  EXPECT_EQ(to_string(PasswordErrorKind::kNone), "none");
  EXPECT_EQ(to_string(PasswordErrorKind::kLength), "length");
  EXPECT_EQ(to_string(PasswordErrorKind::kCapitalization), "capitalization");
  EXPECT_EQ(to_string(PasswordErrorKind::kWrongKey), "wrong_key");
}

}  // namespace
}  // namespace animus::core
