#include "core/deception.hpp"

#include <gtest/gtest.h>

#include "core/payment_hijack.hpp"
#include "device/registry.hpp"
#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"
#include "victim/payment_app.hpp"

namespace animus::core {
namespace {

using sim::ms;
using sim::seconds;

server::World make_world(std::uint64_t seed = 3) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = seed;
  wc.trace_enabled = false;
  return server::World{wc};
}

// ---------------------------------------------------------- clickjack --

struct SettingsVictim {
  explicit SettingsVictim(server::World& world) {
    ui::Window w;
    w.owner_uid = server::kVictimUid;
    w.type = ui::WindowType::kActivity;
    w.bounds = {0, 0, 1080, 2280};
    w.content = "victim:settings";
    w.on_touch = [this](sim::SimTime, ui::Point p) {
      if (grant_button.contains(p)) granted = true;
    };
    world.wms().add_window_now(std::move(w));
  }
  ui::Rect grant_button{340, 1200, 400, 160};
  bool granted = false;
};

TEST(Clickjacking, TapsPassThroughToVictim) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  SettingsVictim victim{world};
  ClickjackingAttack::Config cfg;
  cfg.attacking_window = ms(190);
  ClickjackingAttack attack{world, cfg};
  attack.start();
  world.run_until(seconds(1));
  // The user taps the bait "WIN A PRIZE" button — which sits exactly over
  // the grant button of the Settings screen beneath.
  world.input().inject_tap(victim.grant_button.center(), ms(12));
  world.run_until(seconds(2));
  EXPECT_TRUE(victim.granted);
  attack.stop();
}

TEST(Clickjacking, AlertSuppressedWhileBaitShows) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  ClickjackingAttack::Config cfg;
  cfg.attacking_window = ms(190);
  ClickjackingAttack attack{world, cfg};
  attack.start();
  world.run_until(seconds(10));
  const auto alert = world.system_ui().snapshot(server::kMalwareUid);
  EXPECT_EQ(percept::classify(alert), percept::LambdaOutcome::kL1);
  EXPECT_GT(attack.bait_coverage(seconds(1), seconds(10)), 0.97);
  attack.stop();
}

TEST(Clickjacking, BaitIsVisibleNotTransparent) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  ClickjackingAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(1));
  const auto* top = world.wms().topmost_at({540, 1200}, world.now());
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->window.content, "attack:prize_banner");
  EXPECT_FALSE(top->window.touchable());
  attack.stop();
}

TEST(Clickjacking, BlockedOverSettingsForeground) {
  // Android 8+ refuses overlays while the Settings app grants permissions.
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  world.server().set_settings_foreground(true);
  ClickjackingAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(3));
  EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 0);
  EXPECT_GT(world.server().rejected_overlays(), 0u);
  attack.stop();
}

// ------------------------------------------------------ content hide --

TEST(ContentHiding, CoversRegionIndefinitelyWithoutPermission) {
  auto world = make_world();
  ContentHidingAttack::Config cfg;
  cfg.cover_region = {90, 700, 900, 300};
  cfg.cover_content = "attack:all_is_fine";
  ContentHidingAttack attack{world, cfg};
  attack.start();
  world.run_until(seconds(30));
  EXPECT_GT(attack.cover_coverage(seconds(2), seconds(30)), 0.99);
  // No overlay permission involved, no alert.
  EXPECT_EQ(world.system_ui().phase(server::kMalwareUid),
            server::SystemUi::AlertPhase::kHidden);
  attack.stop();
}

TEST(ContentHiding, CoverContentSwappable) {
  auto world = make_world();
  ContentHidingAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(2));
  attack.set_cover_content("attack:updated_banner");
  world.run_until(seconds(2) + ms(150));
  bool updated_live = false;
  for (const auto& rec : world.wms().history()) {
    updated_live |=
        rec.window.content == "attack:updated_banner" && rec.alive_at(world.now());
  }
  EXPECT_TRUE(updated_live);
  attack.stop();
}

TEST(SurfaceCoverage, ZeroWithoutSurfaces) {
  auto world = make_world();
  EXPECT_EQ(surface_coverage(world.wms(), server::kMalwareUid, "attack:", ms(0), seconds(1)),
            0.0);
  EXPECT_EQ(surface_coverage(world.wms(), server::kMalwareUid, "attack:", seconds(1), ms(0)),
            0.0);
}

// --------------------------------------------------- payment hijack --

TEST(PaymentHijack, StealsPinAndExecutesHiddenTransaction) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  victim::PaymentApp app{world, "PayFast"};
  app.set_expected_pin("4711");

  PaymentHijack hijack{world, app, {}};
  hijack.arm();

  // The real (attacker-initiated) transaction the user must not see.
  app.open_payment_screen({"Mallory Ltd", 99900});
  EXPECT_TRUE(hijack.result().triggered);

  // The user types their PIN on the pad and confirms, believing the
  // fake cover's "Coffee Corner 4.50".
  const std::string pin = "4711";
  for (std::size_t i = 0; i < pin.size(); ++i) {
    world.loop().schedule_at(seconds(2) + ms(400 * static_cast<long>(i)), [&world, &app, &pin, i] {
      world.input().inject_tap(app.digit_center(pin[i] - '0'));
    });
  }
  world.loop().schedule_at(seconds(5), [&world, &app] {
    world.input().inject_tap(app.confirm_bounds().center());
  });
  world.run_until(seconds(6));

  EXPECT_EQ(hijack.result().stolen_pin, "4711");
  EXPECT_TRUE(hijack.result().pin_replayed);
  EXPECT_TRUE(app.executed());  // Mallory got paid
  EXPECT_EQ(app.request().payee, "Mallory Ltd");

  // Stealth: fake amount cover never flickered, alert never visible.
  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid,
                                             "attack:fake_amount", seconds(1), seconds(6));
  EXPECT_FALSE(flicker.noticeable);
  EXPECT_EQ(percept::classify(world.system_ui().snapshot(server::kMalwareUid)),
            percept::LambdaOutcome::kL1);
  hijack.stop();
}

TEST(PaymentHijack, ConfirmButtonIsNotCovered) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  victim::PaymentApp app{world, "PayFast"};
  PaymentHijack hijack{world, app, {}};
  hijack.arm();
  app.open_payment_screen({"Mallory Ltd", 99900});
  world.run_until(seconds(1));
  const auto* top = world.wms().topmost_touchable_at(app.confirm_bounds().center(), world.now());
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->window.owner_uid, server::kVictimUid);
  hijack.stop();
}

TEST(PaymentHijack, DoesNotTriggerWithoutPaymentScreen) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  victim::PaymentApp app{world, "PayFast"};
  PaymentHijack hijack{world, app, {}};
  hijack.arm();
  world.run_until(seconds(3));
  EXPECT_FALSE(hijack.result().triggered);
  EXPECT_EQ(world.wms().live_count(), 0u);
}

TEST(PaymentApp, PinPadGeometryRoundTrips) {
  auto world = make_world();
  victim::PaymentApp app{world, "PayFast"};
  for (int d = 0; d <= 9; ++d) {
    EXPECT_EQ(app.digit_at(app.digit_center(d)), d) << d;
  }
  EXPECT_EQ(app.digit_at({10, 10}), -1);
  // Bottom row corners are dead space, not digits.
  EXPECT_EQ(app.digit_at({app.pin_pad_bounds().x + 10,
                          app.pin_pad_bounds().y + app.pin_pad_bounds().h - 10}),
            -1);
}

TEST(PaymentApp, WrongPinDoesNotExecute) {
  auto world = make_world();
  victim::PaymentApp app{world, "PayFast"};
  app.set_expected_pin("1234");
  app.open_payment_screen({"Alice", 100});
  world.input().inject_tap(app.digit_center(9), ms(10));
  world.run_until(ms(100));
  world.input().inject_tap(app.confirm_bounds().center(), ms(10));
  world.run_until(ms(200));
  EXPECT_FALSE(app.executed());
}

}  // namespace
}  // namespace animus::core
