// Differential tests locking the analytic tier to the simulation tier.
//
// The closed-form/replay tier (core/analytic.hpp) must be byte-identical
// to the full event-driven simulation on its whole eligible domain —
// results are compared through the TrialCodec encoding, so any drift in
// any field (outcome, every AlertStats counter, cycle count) fails, not
// just the headline classification.
#include <gtest/gtest.h>

#include <string>

#include "core/analytic.hpp"
#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "obs/metrics.hpp"
#include "runner/field_codec.hpp"
#include "ui/animation.hpp"

namespace {

using namespace animus;
using core::DBoundTrialConfig;
using core::OutcomeProbeConfig;
using core::Tier;
using runner::TrialCodec;

std::string probe_bytes(const OutcomeProbeConfig& config) {
  return TrialCodec<core::OutcomeProbe>::encode(core::run_outcome_probe(config));
}

OutcomeProbeConfig at_tier(OutcomeProbeConfig config, Tier tier) {
  config.tier = tier;
  return config;
}

TEST(AnalyticTier, ProbeMatchesSimBitForBitAcrossTheFleet) {
  // Every device, with D pinned around its own Λ1 boundary (where the
  // outcome is most sensitive to event ordering) plus fixed spot values.
  for (const auto& dev : device::all_devices()) {
    const int bound = static_cast<int>(dev.d_upper_bound_table_ms);
    for (const int d : {50, bound - 25, bound - 1, bound, bound + 1, bound + 25, 400}) {
      if (d < 1) continue;
      OutcomeProbeConfig c;
      c.profile = dev;
      c.attacking_window = sim::ms(d);
      EXPECT_TRUE(core::analytic::eligible(c));
      EXPECT_EQ(probe_bytes(at_tier(c, Tier::kAnalytic)), probe_bytes(at_tier(c, Tier::kSim)))
          << dev.display_name() << " D=" << d;
    }
  }
}

TEST(AnalyticTier, ProbeMatchesSimAcrossDurations) {
  const auto& dev = device::reference_device_android9();
  for (const auto duration : {sim::seconds(3), sim::seconds(5), sim::ms(12'345)}) {
    for (const int d : {60, 150, 215, 216, 300}) {
      OutcomeProbeConfig c;
      c.profile = dev;
      c.attacking_window = sim::ms(d);
      c.duration = duration;
      EXPECT_EQ(probe_bytes(at_tier(c, Tier::kAnalytic)), probe_bytes(at_tier(c, Tier::kSim)))
          << "D=" << d << " T=" << sim::to_ms(duration);
    }
  }
}

TEST(AnalyticTier, DBoundMatchesSimOnEveryDevice) {
  for (const auto& dev : device::all_devices()) {
    DBoundTrialConfig c;
    c.profile = dev;
    c.tier = Tier::kAnalytic;
    const auto fast = core::run_d_bound_trial(c);
    c.tier = Tier::kSim;
    const auto slow = core::run_d_bound_trial(c);
    EXPECT_EQ(fast.d_upper_ms, slow.d_upper_ms) << dev.display_name();
    EXPECT_EQ(fast.probes, slow.probes) << dev.display_name();
  }
}

TEST(AnalyticTier, DBoundMatchesSimOnLegacyAndCappedSearches) {
  const auto legacy =
      device::make_profile("Legacy", "nexus5", device::AndroidVersion::kV7, 150.0);
  for (const int cap : {100, 600}) {
    DBoundTrialConfig c;
    c.profile = legacy;
    c.max_ms = cap;
    c.tier = Tier::kAnalytic;
    const auto fast = core::run_d_bound_trial(c);
    c.tier = Tier::kSim;
    const auto slow = core::run_d_bound_trial(c);
    EXPECT_EQ(fast.d_upper_ms, slow.d_upper_ms) << cap;
    EXPECT_EQ(fast.probes, slow.probes) << cap;
  }
}

TEST(AnalyticTier, ClosedFormAgreesWithTheReplaySearch) {
  // Eq. (3)-style direct arithmetic vs the replay-driven binary search:
  // the closed form must land on the same integer for every device.
  for (const auto& dev : device::all_devices()) {
    DBoundTrialConfig c;
    c.profile = dev;
    c.tier = Tier::kAnalytic;
    EXPECT_EQ(core::analytic::closed_form_d_upper_ms(dev, c.max_ms),
              core::run_d_bound_trial(c).d_upper_ms)
        << dev.display_name();
  }
}

TEST(AnalyticTier, IneligibleConfigFallsBackToSimAndCounts) {
  // add_before_remove breaks the strict remove->add event shape the
  // replay assumes; a forced-analytic request must fall back to the
  // simulation (same bytes) and bump the fallback counter.
  OutcomeProbeConfig c;
  c.profile = device::reference_device_android9();
  c.attacking_window = sim::ms(150);
  c.add_before_remove = true;
  EXPECT_FALSE(core::analytic::eligible(c));
  auto& counter = obs::global_registry().counter("animus_analytic_fallbacks_total",
                                                 {{"scenario", "outcome-probe"}});
  const auto before = counter.value();
  EXPECT_EQ(probe_bytes(at_tier(c, Tier::kAnalytic)), probe_bytes(at_tier(c, Tier::kSim)));
  EXPECT_GT(counter.value(), before);
}

TEST(AnalyticTier, StochasticConfigIsIneligible) {
  OutcomeProbeConfig c;
  c.profile = device::reference_device_android9();
  c.deterministic = false;
  EXPECT_FALSE(core::analytic::eligible(c));
  DBoundTrialConfig d;
  d.profile = c.profile;
  d.deterministic = false;
  EXPECT_FALSE(core::analytic::eligible(d));
}

TEST(AnalyticTier, FirstVisiblePixelConsistentWithRevealTime) {
  // The naked-eye reveal after the notify+construction transit is the
  // first instant a perceptible pixel can be on glass.
  const auto& dev = device::reference_device_android9();
  const auto reveal = core::analytic::time_to_reveal(dev, ui::kNakedEyeMinPixels);
  const auto first = core::analytic::first_visible_pixel_after_issue(dev);
  EXPECT_EQ(first, dev.tam.mean() + dev.tas.mean() + dev.tn.mean() + dev.tv.mean() + reveal);
  EXPECT_GT(reveal, sim::SimTime{0});
  EXPECT_LT(reveal, ui::notification_slide_in().duration());
}

TEST(AnalyticTier, TierParsingRoundTrips) {
  EXPECT_EQ(core::parse_tier("auto"), Tier::kAuto);
  EXPECT_EQ(core::parse_tier("sim"), Tier::kSim);
  EXPECT_EQ(core::parse_tier("analytic"), Tier::kAnalytic);
  EXPECT_FALSE(core::parse_tier("warp").has_value());
  EXPECT_EQ(core::to_string(Tier::kAnalytic), "analytic");
}

}  // namespace
