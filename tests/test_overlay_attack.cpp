#include "core/overlay_attack.hpp"

#include <gtest/gtest.h>

#include "core/attack_analysis.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

namespace animus::core {
namespace {

using percept::LambdaOutcome;
using sim::ms;
using sim::seconds;

server::World make_world(const device::DeviceProfile& profile, bool deterministic = true) {
  server::WorldConfig wc;
  wc.profile = profile;
  wc.deterministic = deterministic;
  wc.trace_enabled = false;
  return server::World{wc};
}

TEST(OverlayAttack, KeepsOverlayPresentAlmostAlways) {
  auto world = make_world(device::reference_device_android9());
  world.server().grant_overlay_permission(server::kMalwareUid);
  OverlayAttackConfig oc;
  oc.attacking_window = ms(150);
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(10));
  // Sample overlay presence every 25 ms after warm-up.
  int present = 0, samples = 0;
  // Continue running in steps, checking live state.
  for (int t = 1000; t <= 10000; t += 25) {
    world.run_until(ms(t));
    ++samples;
    present += world.wms().overlay_count(server::kMalwareUid) > 0;
  }
  attack.stop();
  EXPECT_GT(static_cast<double>(present) / samples, 0.97);
  EXPECT_GT(attack.stats().cycles, 50);
}

TEST(OverlayAttack, SuppressesAlertBelowTableBound) {
  const auto& dev = device::reference_device_android9();  // bound 215 ms
  const auto probe = run_outcome_probe(
      {.profile = dev, .attacking_window = ms(static_cast<int>(dev.d_upper_bound_table_ms))});
  EXPECT_EQ(probe.outcome, LambdaOutcome::kL1);
  EXPECT_LT(probe.alert.max_pixels, ui::kNakedEyeMinPixels);
}

TEST(OverlayAttack, AlertEscapesAboveTableBound) {
  const auto& dev = device::reference_device_android9();
  const auto probe = run_outcome_probe(
      {.profile = dev,
       .attacking_window = ms(static_cast<int>(dev.d_upper_bound_table_ms) + 30)});
  EXPECT_NE(probe.outcome, LambdaOutcome::kL1);
}

TEST(OverlayAttack, SimulatedBoundMatchesTableTwoForSpotDevices) {
  // Full-pipeline binary search must land on the published Table II
  // value (calibration closes the loop end-to-end, not just via Eq. 3).
  for (const char* model : {"s8", "pixel 2", "Redmi", "x21iA"}) {
    const auto dev = device::find_device(model);
    ASSERT_TRUE(dev.has_value()) << model;
    const int simulated = run_d_bound_trial({.profile = *dev}).d_upper_ms;
    EXPECT_NEAR(simulated, dev->d_upper_bound_table_ms, 2.0) << model;
  }
}

TEST(OverlayAttack, AddBeforeRemoveFailureMode) {
  // Paper, Section III-C: if addView is performed before removeView the
  // replacement overlay registers before the removal check and the
  // alert animation is never reset -> the alert eventually shows.
  const auto& dev = device::reference_device_android9();
  const auto probe = run_outcome_probe(
      {.profile = dev, .attacking_window = ms(150), .add_before_remove = true});
  EXPECT_EQ(probe.outcome, LambdaOutcome::kL5);
}

TEST(OverlayAttack, WithoutPermissionNothingHappens) {
  auto world = make_world(device::reference_device_android9());
  OverlayAttackConfig oc;
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(2));
  EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 0);
  EXPECT_GT(world.server().rejected_overlays(), 0u);
  attack.stop();
}

TEST(OverlayAttack, CapturesTouchesOverVictim) {
  auto world = make_world(device::reference_device_android9());
  world.server().grant_overlay_permission(server::kMalwareUid);
  int captured = 0;
  OverlayAttackConfig oc;
  oc.attacking_window = ms(200);
  oc.bounds = {0, 0, 500, 500};
  oc.on_capture = [&captured](sim::SimTime, ui::Point) { ++captured; };
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(ms(500));
  for (int i = 0; i < 20; ++i) {
    world.loop().schedule_at(ms(600 + i * 100),
                             [&world] { world.input().inject_tap({100, 100}); });
  }
  world.run_until(seconds(5));
  attack.stop();
  EXPECT_GE(captured, 18);  // near-total interception
  EXPECT_EQ(attack.stats().captures, captured);
}

TEST(OverlayAttack, StopRemovesLastOverlay) {
  auto world = make_world(device::reference_device_android9());
  world.server().grant_overlay_permission(server::kMalwareUid);
  OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(2));
  EXPECT_GT(world.wms().overlay_count(server::kMalwareUid), 0);
  attack.stop();
  world.run_until(seconds(3));
  EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 0);
  EXPECT_FALSE(attack.stats().running);
}

TEST(OverlayAttack, MistouchGapMatchesTmisOnAndroid9) {
  // Measure the on-screen gap around each draw-and-destroy boundary.
  auto world = make_world(device::reference_device_android9());
  world.server().grant_overlay_permission(server::kMalwareUid);
  OverlayAttackConfig oc;
  oc.attacking_window = ms(100);
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(5));
  attack.stop();
  world.run_all();
  // Reconstruct coverage from window history.
  const auto& hist = world.wms().history();
  sim::SimTime total_gap{0};
  int boundaries = 0;
  for (std::size_t i = 1; i < hist.size(); ++i) {
    if (!hist[i - 1].removed_at) continue;
    const sim::SimTime gap = hist[i].window.added_at - *hist[i - 1].removed_at;
    if (gap > sim::SimTime{0}) {
      total_gap += gap;
      ++boundaries;
    }
  }
  ASSERT_GT(boundaries, 10);
  const double mean_gap_ms = sim::to_ms(total_gap) / boundaries;
  EXPECT_NEAR(mean_gap_ms, world.profile().expected_tmis_ms(), 1.0);
}

TEST(OverlayAttack, ExpectedMistouchFormulaDecreasesInD) {
  const auto& dev = device::reference_device_android9();
  const double t_total = 5000;
  double prev = 1e18;
  for (double d : {50.0, 100.0, 150.0, 200.0}) {
    const double m = expected_total_mistouch_ms(dev, t_total, d);
    EXPECT_LT(m, prev);
    prev = m;
  }
}

TEST(OverlayAttack, PredictedCaptureRateMonotoneInD) {
  const auto& dev = device::reference_device_android9();
  double prev = 0.0;
  for (double d : {50.0, 100.0, 150.0, 200.0}) {
    const double r = predicted_capture_rate(dev, d, 12.0);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(OverlayAttack, RestartAfterStopWorks) {
  auto world = make_world(device::reference_device_android9());
  world.server().grant_overlay_permission(server::kMalwareUid);
  OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(1));
  attack.stop();
  world.run_until(seconds(2));
  attack.start();
  world.run_until(seconds(3));
  EXPECT_GT(world.wms().overlay_count(server::kMalwareUid), 0);
  attack.stop();
}

}  // namespace
}  // namespace animus::core
