// Attack-scenario registry: registration invariants, codec round-trips
// of every registered config/result struct, per-scenario fallback
// accounting, and each related-work pack's qualitative paper claim.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/attack_scenario.hpp"
#include "core/frosted_glass.hpp"
#include "core/notification_abuse.hpp"
#include "core/tapjacking.hpp"
#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "obs/metrics.hpp"

namespace animus {
namespace {

using core::AttackScenario;

TEST(ScenarioRegistry, ListsEveryBuiltinSortedByName) {
  std::vector<std::string> names;
  for (const AttackScenario* s : core::scenario_registry()) names.push_back(s->name);
  const std::vector<std::string> expected = {
      "capture-rate",  "d-bound",        "frosted-glass", "notification-abuse",
      "outcome-probe", "password-steal", "tapjacking"};
  EXPECT_EQ(names, expected);
}

TEST(ScenarioRegistry, AnalyticEligibilityFlagsMatchRegistration) {
  EXPECT_TRUE(core::require_scenario("outcome-probe").analytic_eligible);
  EXPECT_TRUE(core::require_scenario("d-bound").analytic_eligible);
  EXPECT_TRUE(core::require_scenario("frosted-glass").analytic_eligible);
  EXPECT_FALSE(core::require_scenario("capture-rate").analytic_eligible);
  EXPECT_FALSE(core::require_scenario("password-steal").analytic_eligible);
  EXPECT_FALSE(core::require_scenario("tapjacking").analytic_eligible);
  EXPECT_FALSE(core::require_scenario("notification-abuse").analytic_eligible);
}

TEST(ScenarioRegistry, UnknownNameIsNullAndListingNamesEveryScenario) {
  EXPECT_EQ(core::find_scenario("no-such-attack"), nullptr);
  const std::string listing = core::scenario_listing();
  for (const AttackScenario* s : core::scenario_registry()) {
    EXPECT_NE(listing.find(s->name), std::string::npos) << s->name;
  }
  EXPECT_NE(listing.find("tapjacking (sim-only):"), std::string::npos);
  EXPECT_NE(listing.find("frosted-glass (analytic):"), std::string::npos);
}

void register_duplicate_tapjacking() {
  core::register_builtin_scenarios();  // the child process starts fresh
  core::register_scenario<core::TapjackingConfig, core::TapjackingResult>({
      .name = "tapjacking",
      .description = "second registration under a taken name",
      .run_sim = [](core::TrialSession& s, const core::TapjackingConfig& c) {
        return core::run_tapjacking_sim(s, c);
      },
  });
}

TEST(ScenarioRegistryDeathTest, DuplicateRegistrationAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(register_duplicate_tapjacking(), "already registered");
}

TEST(ScenarioRegistryDeathTest, RequireScenarioAbortsOnUnknownName) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(core::require_scenario("no-such-attack"), "no-such-attack");
}

TEST(ScenarioRegistry, EveryRegisteredCodecRoundTripsIncludingNonFinite) {
  for (const AttackScenario* s : core::scenario_registry()) {
    std::string detail;
    EXPECT_TRUE(s->codec_self_test(&detail)) << s->name << ": " << detail;
  }
}

TEST(ScenarioRegistry, CampaignConfigsDecodeAndTabulate) {
  for (const AttackScenario* s : core::scenario_registry()) {
    const auto configs = s->campaign_configs();
    ASSERT_FALSE(configs.empty()) << s->name;
    for (const auto& encoded : configs) {
      EXPECT_FALSE(s->config_csv_row(encoded).empty()) << s->name;
    }
  }
}

TEST(ScenarioRegistry, ForcedAnalyticOnIneligibleConfigCountsPerScenario) {
  core::FrostedGlassConfig c;
  c.profile = device::reference_device();
  c.deterministic = false;  // ineligible: the analytic replay assumes determinism
  c.tier = core::Tier::kAnalytic;
  auto& counter = obs::global_registry().counter("animus_analytic_fallbacks_total",
                                                 {{"scenario", "frosted-glass"}});
  const double before = counter.value();
  core::run_frosted_glass_trial(c);
  EXPECT_GT(counter.value(), before);
}

// --- related-work pack qualitative claims -------------------------------

TEST(TapjackingPack, CaptureSucceedsOnlyInsideVulnerableWindow) {
  core::TapjackingConfig c;
  c.profile = device::reference_device_android9();

  c.attacking_window = sim::ms(150);  // inside the vulnerable D-window
  const auto fast = core::run_tapjacking_trial(c);
  EXPECT_TRUE(fast.tap_delivered);
  EXPECT_TRUE(fast.decoy_covered);
  EXPECT_TRUE(fast.stealthy);
  EXPECT_TRUE(fast.success);

  c.attacking_window = sim::ms(1000);  // slow cycling lets the alert mature
  const auto slow = core::run_tapjacking_trial(c);
  EXPECT_TRUE(slow.tap_delivered);  // taps still pass through...
  EXPECT_FALSE(slow.stealthy);      // ...but the warning alert gives it away
  EXPECT_FALSE(slow.success);
}

TEST(NotificationAbusePack, FloodEvictsVictimHeadsUpSlot) {
  core::NotificationAbuseConfig c;
  c.profile = device::reference_device();

  c.flood_count = 0;  // control: no flood, the victim's toast shows promptly
  const auto quiet = core::run_notification_abuse_trial(c);
  EXPECT_TRUE(quiet.victim_shown);
  EXPECT_TRUE(quiet.victim_in_window);

  c.flood_count = 60;  // Knock-Knock flood monopolizes the slot
  const auto flooded = core::run_notification_abuse_trial(c);
  EXPECT_GT(flooded.flood_enqueued, 0);
  EXPECT_FALSE(flooded.victim_in_window);
  EXPECT_GE(flooded.victim_queued, 1);  // the victim's token is parked, not shown
}

TEST(FrostedGlassPack, VisibilityTracksAlphaTrajectory) {
  core::FrostedGlassConfig c;
  c.profile = device::reference_device();

  c.glass_alpha = 0.05;  // below the visibility threshold at every sample
  EXPECT_FALSE(core::run_frosted_glass_trial(c).noticed);

  double prev_visible_ms = 0.0;
  for (const double alpha : {0.2, 0.5, 0.9}) {
    c.glass_alpha = alpha;
    const auto r = core::run_frosted_glass_trial(c);
    EXPECT_TRUE(r.noticed) << alpha;
    EXPECT_DOUBLE_EQ(r.peak_alpha, alpha);
    // A more opaque glass crosses the threshold earlier in the fade-in
    // and stays visible longer into the fade-out.
    EXPECT_GE(r.visible_ms, prev_visible_ms) << alpha;
    prev_visible_ms = r.visible_ms;
  }
}

TEST(FrostedGlassPack, AnalyticTierIsBitExactWithSimulation) {
  core::TrialSession session;
  for (const double alpha : {0.05, 0.2, 0.5, 0.9}) {
    core::FrostedGlassConfig c;
    c.profile = device::reference_device();
    c.glass_alpha = alpha;
    const auto sim_r = core::run_frosted_glass_sim(session, c);
    const auto ana_r = core::run_frosted_glass_analytic(c);
    EXPECT_EQ(runner::TrialCodec<core::FrostedGlassResult>::encode(sim_r),
              runner::TrialCodec<core::FrostedGlassResult>::encode(ana_r))
        << alpha;
  }
}

}  // namespace
}  // namespace animus
