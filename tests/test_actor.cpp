#include "sim/actor.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace animus::sim {
namespace {

TEST(Actor, TaskRunsAfterArrivalDelay) {
  EventLoop loop;
  Actor a{loop, "main"};
  SimTime started{-1};
  a.post(ms(5), ms(2), [&] { started = loop.now(); });
  loop.run_all();
  EXPECT_EQ(started, ms(5));
}

TEST(Actor, BusyActorSerializesTasks) {
  EventLoop loop;
  Actor a{loop, "main"};
  std::vector<SimTime> starts;
  // Both arrive at t=0; the first occupies the actor for 10 ms.
  a.post(ms(0), ms(10), [&] { starts.push_back(loop.now()); });
  a.post(ms(0), ms(10), [&] { starts.push_back(loop.now()); });
  loop.run_all();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], ms(0));
  EXPECT_EQ(starts[1], ms(10));
}

TEST(Actor, BlockingCostDelaysLaterArrival) {
  // Models the paper's observation: the blocking addView() delays the
  // subsequent removeView() dispatch on the same thread.
  EventLoop loop;
  Actor main_thread{loop, "main"};
  SimTime remove_started{-1};
  main_thread.post(ms(0), ms(8), [] { /* addView: blocks for 8 ms */ });
  main_thread.post(ms(1), ms(1), [&] { remove_started = loop.now(); });
  loop.run_all();
  EXPECT_EQ(remove_started, ms(8));
}

TEST(Actor, IdleActorRunsImmediately) {
  EventLoop loop;
  Actor a{loop, "w"};
  a.post(ms(0), ms(1), [] {});
  loop.run_all();
  SimTime started{-1};
  a.post(ms(0), ms(0), [&] { started = loop.now(); });
  loop.run_all();
  EXPECT_EQ(started, ms(1));  // previous task held the actor until 1 ms
}

TEST(Actor, BusyUntilTracksReservations) {
  EventLoop loop;
  Actor a{loop, "w"};
  a.post(ms(2), ms(10), [] {});
  EXPECT_EQ(a.busy_until(), ms(12));
  a.post(ms(0), ms(5), [] {});
  EXPECT_EQ(a.busy_until(), ms(17));
}

TEST(Actor, NegativeDurationsClamp) {
  EventLoop loop;
  Actor a{loop, "w"};
  SimTime started{-1};
  a.post(ms(-3), ms(-3), [&] { started = loop.now(); });
  loop.run_all();
  EXPECT_EQ(started, SimTime{0});
  EXPECT_EQ(a.busy_until(), SimTime{0});
}

TEST(Actor, InterleavedActorsAreIndependent) {
  EventLoop loop;
  Actor a{loop, "a"}, b{loop, "b"};
  std::vector<std::string> order;
  a.post(ms(0), ms(10), [&] { order.push_back("a"); });
  b.post(ms(0), ms(10), [&] { order.push_back("b"); });
  b.post(ms(0), ms(0), [&] { order.push_back("b2"); });
  loop.run_all();
  ASSERT_EQ(order.size(), 3u);
  // a and b start concurrently; b2 waits only for b.
  EXPECT_EQ(order[0], "a");
  EXPECT_EQ(order[1], "b");
  EXPECT_EQ(order[2], "b2");
}

TEST(Actor, CancelBeforeStartPreventsRun) {
  EventLoop loop;
  Actor a{loop, "w"};
  bool ran = false;
  auto id = a.post(ms(5), ms(1), [&] { ran = true; });
  loop.cancel(id);
  loop.run_all();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace animus::sim
