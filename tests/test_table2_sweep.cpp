// Parameterized full-fleet property sweep: for every one of the 30
// Table I/II devices, the end-to-end simulation must
//  (a) reproduce the published Λ1 upper bound of D exactly,
//  (b) keep the alert invisible at the stealer's default D under jitter,
//  (c) leak the alert at D = bound + 40 ms,
//  (d) agree with the closed-form Eq. (3) prediction.
#include <gtest/gtest.h>

#include "core/attack_analysis.hpp"
#include "core/password_stealer.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"
#include "ui/animation.hpp"

namespace animus::core {
namespace {

class TableTwoSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  [[nodiscard]] const device::DeviceProfile& dev() const {
    return device::all_devices()[GetParam()];
  }
};

TEST_P(TableTwoSweep, SimulatedBoundMatchesPaper) {
  EXPECT_EQ(run_d_bound_trial({.profile = dev()}).d_upper_ms,
            static_cast<int>(dev().d_upper_bound_table_ms))
      << dev().display_name();
}

TEST_P(TableTwoSweep, ClosedFormMatchesPaper) {
  EXPECT_NEAR(dev().predicted_d_max_ms(ui::kNakedEyeMinPixels), dev().d_upper_bound_table_ms,
              1.0)
      << dev().display_name();
}

TEST_P(TableTwoSweep, DefaultAttackWindowStaysInvisibleUnderJitter) {
  server::WorldConfig wc;
  wc.profile = dev();
  wc.seed = 1234 + GetParam();
  wc.trace_enabled = false;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);
  OverlayAttackConfig oc;
  oc.attacking_window = sim::ms_f(kBoundSafetyFactor * dev().d_upper_bound_table_ms);
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(sim::seconds(12));
  const auto alert = world.system_ui().snapshot(server::kMalwareUid);
  EXPECT_EQ(percept::classify(alert), percept::LambdaOutcome::kL1) << dev().display_name();
  attack.stop();
}

TEST_P(TableTwoSweep, AlertEscapesWellAboveBound) {
  const auto probe = run_outcome_probe(
      {.profile = dev(),
       .attacking_window = sim::ms(static_cast<int>(dev().d_upper_bound_table_ms) + 40)});
  EXPECT_NE(probe.outcome, percept::LambdaOutcome::kL1) << dev().display_name();
}

std::string device_label(const ::testing::TestParamInfo<std::size_t>& info) {
  std::string name = device::all_devices()[info.param].model + "_" +
                     std::string(device::to_string(device::all_devices()[info.param].version));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllDevices, TableTwoSweep, ::testing::Range<std::size_t>(0, 30),
                         device_label);

}  // namespace
}  // namespace animus::core
