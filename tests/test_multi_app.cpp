// Multi-app stress and fairness: several malicious and benign apps
// sharing one handset. The services must keep per-uid state independent,
// the toast scheduler must stay fair under a flood, and the defense
// daemon must neutralize every attacker without touching bystanders.
#include <gtest/gtest.h>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "defense/enforcement.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

namespace animus {
namespace {

using sim::ms;
using sim::seconds;

server::World make_world(std::uint64_t seed = 31) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = seed;
  wc.trace_enabled = false;
  return server::World{wc};
}

TEST(MultiApp, ThreeConcurrentOverlayAttacksAllSuppressed) {
  auto world = make_world();
  std::vector<std::unique_ptr<core::OverlayAttack>> attacks;
  for (int i = 0; i < 3; ++i) {
    const int uid = server::kMalwareUid + i;
    world.server().grant_overlay_permission(uid);
    core::OverlayAttackConfig oc;
    oc.uid = uid;
    oc.attacking_window = ms(170 + 10 * i);
    attacks.push_back(std::make_unique<core::OverlayAttack>(world, oc));
    attacks.back()->start();
  }
  world.run_until(seconds(10));
  for (int i = 0; i < 3; ++i) {
    const auto alert = world.system_ui().snapshot(server::kMalwareUid + i);
    EXPECT_EQ(percept::classify(alert), percept::LambdaOutcome::kL1) << "attacker " << i;
  }
  for (auto& a : attacks) a->stop();
}

TEST(MultiApp, AttackerDoesNotSuppressBystanderAlert) {
  // A benign app's persistent overlay must still raise its own alert
  // while the attacker cycles.
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  world.server().grant_overlay_permission(server::kBenignUid);
  core::OverlayAttackConfig oc;
  oc.attacking_window = ms(180);
  core::OverlayAttack attack{world, oc};
  attack.start();
  server::OverlaySpec spec;
  spec.bounds = {800, 100, 200, 200};
  world.server().add_view(server::kBenignUid, spec);
  world.run_until(seconds(5));
  EXPECT_TRUE(world.system_ui().alert_fully_visible(server::kBenignUid));
  EXPECT_EQ(percept::classify(world.system_ui().snapshot(server::kMalwareUid)),
            percept::LambdaOutcome::kL1);
  attack.stop();
}

TEST(MultiApp, ToastFloodIsCappedAndFairEventually) {
  auto world = make_world();
  // Flooder: 120 toasts at once — 50-token cap rejects the excess.
  for (int i = 0; i < 120; ++i) {
    server::ToastRequest r;
    r.uid = server::kMalwareUid;
    r.content = "flood";
    r.duration = server::kToastShort;
    world.nms().enqueue_toast_now(r);
  }
  EXPECT_GE(world.nms().stats().rejected, 69u);
  EXPECT_LE(world.nms().queued_tokens(server::kMalwareUid), 50);
  // A benign toast enqueued behind the flood is eventually shown: 50
  // queued SHORT toasts x ~2.5 s each bounds the wait.
  server::ToastRequest benign;
  benign.uid = server::kBenignUid;
  benign.content = "benign:hello";
  benign.duration = server::kToastShort;
  world.nms().enqueue_toast_now(benign);
  world.run_until(seconds(140));
  bool shown = false;
  for (const auto& rec : world.wms().history()) {
    shown |= rec.window.content == "benign:hello";
  }
  EXPECT_TRUE(shown);
}

TEST(MultiApp, DaemonNeutralizesAllAttackersSparesBystanders) {
  auto world = make_world();
  defense::DefenseDaemon daemon{world};
  daemon.install();
  std::vector<std::unique_ptr<core::OverlayAttack>> attacks;
  for (int i = 0; i < 3; ++i) {
    const int uid = server::kMalwareUid + i;
    world.server().grant_overlay_permission(uid);
    core::OverlayAttackConfig oc;
    oc.uid = uid;
    oc.attacking_window = ms(150 + 20 * i);
    attacks.push_back(std::make_unique<core::OverlayAttack>(world, oc));
    attacks.back()->start();
  }
  world.server().grant_overlay_permission(server::kBenignUid);
  server::OverlaySpec spec;
  spec.bounds = {800, 100, 200, 200};
  world.server().add_view(server::kBenignUid, spec);

  world.run_until(seconds(20));
  EXPECT_EQ(daemon.actions().size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(daemon.neutralized(server::kMalwareUid + i)) << i;
    EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid + i), 0) << i;
  }
  EXPECT_FALSE(daemon.neutralized(server::kBenignUid));
  EXPECT_EQ(world.wms().overlay_count(server::kBenignUid), 1);
  for (auto& a : attacks) a->stop();
}

TEST(MultiApp, TwoToastAttackersShareTheSingleSlot) {
  // Only one toast shows at a time globally; two keep-alive attackers
  // interleave and neither starves the other.
  auto world = make_world();
  core::ToastAttackConfig c1;
  c1.uid = server::kMalwareUid;
  c1.content = "fake_keyboard:a";
  core::ToastAttack a1{world, c1};
  core::ToastAttackConfig c2;
  c2.uid = server::kMalwareUid + 1;
  c2.content = "fake_keyboard:b";
  core::ToastAttack a2{world, c2};
  a1.start();
  a2.start();
  world.run_until(seconds(40));
  EXPECT_GT(a1.stats().shown, 2);
  EXPECT_GT(a2.stats().shown, 2);
  // Never two toasts *scheduled* concurrently (fade-out overlap aside,
  // at most one non-fading toast at any sample).
  int max_solid = 0;
  for (int t = 1000; t <= 40000; t += 250) {
    int solid = 0;
    for (const auto& rec : world.wms().history()) {
      if (rec.window.type != ui::WindowType::kToast) continue;
      if (!rec.alive_at(ms(t))) continue;
      solid += !rec.window.exit_fade.has_value() ||
               ms(t) < rec.window.exit_fade->start;
    }
    max_solid = std::max(max_solid, solid);
  }
  EXPECT_LE(max_solid, 1);
  a1.stop();
  a2.stop();
}

}  // namespace
}  // namespace animus
