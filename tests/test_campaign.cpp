// Campaign observability: streaming telemetry, checkpoint/resume and
// run manifests, plus the per-kind flow-id scoping and the runner
// plumbing (run_subset, error counting) the campaign path relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/manifest.hpp"
#include "obs/stream.hpp"
#include "obs/trace_capture.hpp"
#include "runner/bench_cli.hpp"
#include "runner/checkpoint.hpp"
#include "runner/runner.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/trace.hpp"

namespace {

using namespace animus;

std::string temp_path(const char* name) { return testing::TempDir() + name; }

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in{path};
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  out << content;
}

// Structural JSON check: balanced braces/brackets outside strings,
// valid escapes inside them (same checker test_obs.cpp uses).
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        const char esc = s[++i];
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
            esc != 'n' && esc != 'r' && esc != 't' && esc != 'u') {
          return false;
        }
        if (esc == 'u') {
          if (i + 4 >= s.size()) return false;
          for (int k = 1; k <= 4; ++k) {
            if (std::isxdigit(static_cast<unsigned char>(s[i + k])) == 0) return false;
          }
          i += 4;
        }
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[': case '{': stack.push_back(c); break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

// Extract a numeric field value from a one-line JSON record.
double number_field(const std::string& line, const std::string& key) {
  const auto pos = line.find("\"" + key + "\":");
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) return -1.0;
  return std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
}

// --------------------------------------------------------------- stream

TEST(Stream, JsonlWellFormedMonotoneAndFinalFlush) {
  const auto path = temp_path("stream_basic.jsonl");
  obs::TelemetryStreamer streamer{{path, 5.0, 64}};
  std::atomic<int> polls{0};
  streamer.add_sampler("metrics", [&] {
    polls.fetch_add(1);
    return std::string("\"series\":2");
  });
  ASSERT_TRUE(streamer.start());
  EXPECT_TRUE(streamer.active());
  streamer.emit("progress", "\"done\":5,\"total\":10");
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  streamer.emit("progress", "\"done\":10,\"total\":10");
  streamer.stop();
  EXPECT_FALSE(streamer.active());

  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 3u);  // 2 emits + at least the final sample
  EXPECT_EQ(lines.size(), streamer.lines_written());
  EXPECT_GE(polls.load(), 1);  // stop() samples even if no tick fired
  double prev_t = -1.0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    SCOPED_TRACE(lines[i]);
    EXPECT_TRUE(json_well_formed(lines[i]));
    EXPECT_EQ(number_field(lines[i], "seq"), static_cast<double>(i));
    const double t = number_field(lines[i], "t_ms");
    EXPECT_GE(t, prev_t);  // non-decreasing timestamps
    prev_t = t;
  }
  // Clean final flush: the file ends with one sample of every sampler.
  EXPECT_NE(lines.back().find("\"kind\":\"metrics\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"series\":2"), std::string::npos);
  EXPECT_EQ(streamer.dropped(), 0u);
}

TEST(Stream, BoundedQueueDropsInsteadOfBlocking) {
  const auto path = temp_path("stream_drops.jsonl");
  // Long interval: the flusher never drains between these emits.
  obs::TelemetryStreamer streamer{{path, 60000.0, 4}};
  ASSERT_TRUE(streamer.start());
  for (int i = 0; i < 10; ++i) streamer.emit("burst", "\"i\":" + std::to_string(i));
  EXPECT_EQ(streamer.dropped(), 6u);
  streamer.stop();
  EXPECT_EQ(read_lines(path).size(), 4u);  // queued ones survive the drain
}

TEST(Stream, StartFailsCleanlyOnBadPath) {
  obs::TelemetryStreamer streamer{{temp_path("no/such/dir/s.jsonl"), 10.0, 8}};
  EXPECT_FALSE(streamer.start());
  EXPECT_FALSE(streamer.active());
  streamer.emit("x", "");  // inert, must not crash
  streamer.stop();
  EXPECT_EQ(streamer.lines_written(), 0u);
}

TEST(Stream, MetricsSnapshotFieldsAreWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("animus_c", {{"k", "v\"q"}}).add(3.0);
  reg.histogram("animus_h", {1.0, 10.0}).observe(4.0);
  const auto body = obs::stream_fields(reg.snapshot());
  const std::string record = "{" + body + "}";
  EXPECT_TRUE(json_well_formed(record));
  EXPECT_NE(body.find("\"series\":2"), std::string::npos);
  EXPECT_NE(body.find("\"count\":1"), std::string::npos);  // histogram compacted
}

// -------------------------------------------------------- delta encoding

TEST(DeltaEncoder, KeyframeCadenceAndFirstFrameMatchesFullSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("animus_c").add(3.0);
  obs::DeltaEncoder enc{3};

  // Frame 0 is a keyframe: the full stream_fields body behind the flag,
  // byte-identical to the non-delta rendering.
  const auto frame0 = enc.encode(reg.snapshot());
  EXPECT_EQ(frame0, "\"keyframe\":true," + obs::stream_fields(reg.snapshot()));

  // Frames 1..2 are deltas, frame 3 a keyframe again, and so on.
  for (std::size_t f = 1; f <= 7; ++f) {
    const auto body = enc.encode(reg.snapshot());
    if (f % 3 == 0) {
      EXPECT_EQ(body.rfind("\"keyframe\":true,", 0), 0u) << f;
    } else {
      EXPECT_EQ(body.rfind("\"delta\":true,", 0), 0u) << f;
    }
    EXPECT_TRUE(json_well_formed("{" + body + "}")) << body;
  }
  EXPECT_EQ(enc.frames(), 8u);
}

TEST(DeltaEncoder, DeltasCarryOnlyChangedSeriesWithAbsoluteValues) {
  obs::MetricsRegistry reg;
  reg.counter("animus_a").add(5.0);
  reg.counter("animus_b").add(1.0);
  obs::DeltaEncoder enc;  // default cadence: only frame 0 is a keyframe here
  enc.encode(reg.snapshot());

  // Nothing changed: an empty delta.
  const auto quiet = enc.encode(reg.snapshot());
  EXPECT_EQ(quiet, "\"delta\":true,\"series\":2,\"changed\":0,\"metrics\":[]");

  // One counter moves: exactly that series, with its ABSOLUTE value —
  // a consumer overwrites, never adds.
  reg.counter("animus_a").add(2.0);
  const auto moved = enc.encode(reg.snapshot());
  EXPECT_EQ(moved,
            "\"delta\":true,\"series\":2,\"changed\":1,"
            "\"metrics\":[{\"name\":\"animus_a\",\"value\":7}]");

  // A series born between frames is dirty by definition.
  reg.gauge("animus_g", {{"k", "v"}}).set(4.5);
  const auto born = enc.encode(reg.snapshot());
  EXPECT_NE(born.find("\"changed\":1"), std::string::npos);
  EXPECT_NE(born.find("\"name\":\"animus_g\",\"labels\":{\"k\":\"v\"},\"value\":4.5"),
            std::string::npos);
}

TEST(DeltaEncoder, HistogramDeltasListChangedBucketsWithAbsoluteCounts) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("animus_h", {1.0, 10.0, 100.0});
  h.observe(5.0);
  obs::DeltaEncoder enc;
  enc.encode(reg.snapshot());

  h.observe(5.0);   // same bucket again -> count 2 there
  h.observe(50.0);  // new bucket
  const auto body = enc.encode(reg.snapshot());
  EXPECT_EQ(body.rfind("\"delta\":true,", 0), 0u);
  EXPECT_NE(body.find("\"count\":3"), std::string::npos);
  // Changed buckets as [index, absolute count] pairs.
  EXPECT_NE(body.find("\"buckets\":[[1,2],[2,1]]"), std::string::npos) << body;
  EXPECT_TRUE(json_well_formed("{" + body + "}"));

  // Untouched histogram: silent next frame.
  EXPECT_NE(enc.encode(reg.snapshot()).find("\"changed\":0"), std::string::npos);
}

TEST(DeltaEncoder, LostDeltaIsHealedByNextKeyframe) {
  obs::MetricsRegistry reg;
  reg.counter("animus_c").add(1.0);
  obs::DeltaEncoder enc{2};  // keyframes at frames 0, 2, 4...
  enc.encode(reg.snapshot());
  reg.counter("animus_c").add(1.0);
  enc.encode(reg.snapshot());  // delta a consumer might have dropped
  reg.counter("animus_c").add(1.0);
  // The next keyframe carries the complete state regardless.
  const auto key = enc.encode(reg.snapshot());
  EXPECT_EQ(key, "\"keyframe\":true," + obs::stream_fields(reg.snapshot()));
  EXPECT_NE(key.find("\"value\":3"), std::string::npos);
}

TEST(DeltaEncoder, StreamDeltaDefaultRuleFollowsIntervalAndEscapeHatch) {
  runner::BenchArgs args;
  EXPECT_FALSE(runner::stream_delta_enabled(args));  // no stream at all
  args.stream_out = "out.jsonl";
  EXPECT_FALSE(runner::stream_delta_enabled(args));  // default 1000 ms: full
  args.stream_interval_ms = 100.0;
  EXPECT_TRUE(runner::stream_delta_enabled(args));   // fast tick: delta
  args.stream_full = true;
  EXPECT_FALSE(runner::stream_delta_enabled(args));  // explicit escape hatch
}

// ----------------------------------------------------------- checkpoint

runner::CheckpointHeader test_header() {
  runner::CheckpointHeader h;
  h.label = "unit";
  h.total = 8;
  h.root_seed = 0xabcdefULL;
  h.deterministic = true;
  return h;
}

TEST(Checkpoint, WriteLoadRoundTripExactDoubles) {
  const auto path = temp_path("ckpt_roundtrip.jsonl");
  const double awkward = 1.0 / 3.0;
  {
    runner::CheckpointWriter w{path, test_header(), 2};
    ASSERT_TRUE(w.ok());
    w.append(3, 111, runner::TrialCodec<double>::encode(awkward));
    w.append(0, 222, runner::TrialCodec<double>::encode(61.25));
    w.close();
    EXPECT_EQ(w.appended(), 2u);
  }
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->header().label, "unit");
  EXPECT_EQ(data->header().total, 8u);
  EXPECT_EQ(data->header().root_seed, 0xabcdefULL);
  ASSERT_EQ(data->trials().size(), 2u);
  EXPECT_EQ(data->trials()[0].index, 0u);  // sorted by index
  EXPECT_EQ(data->trials()[1].index, 3u);
  EXPECT_EQ(data->trials()[1].seed, 111u);
  double decoded = 0.0;
  ASSERT_TRUE(runner::TrialCodec<double>::decode(data->trials()[1].result, &decoded));
  EXPECT_EQ(decoded, awkward);  // bit-exact via %.17g
  EXPECT_EQ(runner::checkpoint_mismatch(data->sections.front(), test_header()), "");
}

TEST(Checkpoint, TornFinalLineIsDropped) {
  const auto path = temp_path("ckpt_torn.jsonl");
  {
    runner::CheckpointWriter w{path, test_header(), 1};
    w.append(1, 10, "42");
    w.append(2, 20, "43");
    w.close();
  }
  // A kill mid-write leaves a partial trailing line.
  std::ofstream app{path, std::ios::app | std::ios::binary};
  app << "{\"kind\":\"trial\",\"index\":5,\"se";
  app.close();
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->trials().size(), 2u);  // torn line gone, intact ones kept
}

TEST(Checkpoint, MalformedInteriorLineRejected) {
  const auto path = temp_path("ckpt_bad.jsonl");
  write_file(path,
             "{\"kind\":\"header\",\"version\":1,\"label\":\"unit\",\"total\":8,"
             "\"root_seed\":11259375,\"deterministic\":true}\n"
             "not json at all\n"
             "{\"kind\":\"trial\",\"index\":1,\"seed\":10,\"result\":\"42\"}\n");
  std::string error;
  EXPECT_FALSE(runner::load_checkpoint(path, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Checkpoint, MissingFileAndMissingHeaderFail) {
  std::string error;
  EXPECT_FALSE(runner::load_checkpoint(temp_path("ckpt_nope.jsonl"), &error).has_value());
  EXPECT_FALSE(error.empty());

  const auto path = temp_path("ckpt_headerless.jsonl");
  write_file(path, "{\"kind\":\"trial\",\"index\":1,\"seed\":10,\"result\":\"42\"}\n");
  error.clear();
  EXPECT_FALSE(runner::load_checkpoint(path, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Checkpoint, MismatchedIdentityIsRefused) {
  const auto path = temp_path("ckpt_identity.jsonl");
  {
    runner::CheckpointWriter w{path, test_header(), 1};
    w.append(0, 1, "1");
  }
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;

  auto other_seed = test_header();
  other_seed.root_seed = 999;
  EXPECT_NE(runner::checkpoint_mismatch(data->sections.front(), other_seed), "");
  auto other_total = test_header();
  other_total.total = 9;
  EXPECT_NE(runner::checkpoint_mismatch(data->sections.front(), other_total), "");
  auto other_mode = test_header();
  other_mode.deterministic = false;
  EXPECT_NE(runner::checkpoint_mismatch(data->sections.front(), other_mode), "");
}

TEST(Checkpoint, DuplicateIndexLastWriteWins) {
  const auto path = temp_path("ckpt_dup.jsonl");
  {
    runner::CheckpointWriter w{path, test_header(), 1};
    w.append(4, 40, "first");
    w.append(4, 40, "second");
  }
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  ASSERT_EQ(data->trials().size(), 1u);
  EXPECT_EQ(data->trials()[0].result, "second");
}

TEST(Checkpoint, AppendModeContinuesWithoutSecondHeader) {
  const auto path = temp_path("ckpt_append.jsonl");
  {
    runner::CheckpointWriter w{path, test_header(), 1};
    w.append(0, 1, "10");
  }
  {
    runner::CheckpointWriter w{path, test_header(), 1,
                               runner::CheckpointWriter::Mode::kAppend};
    w.append(1, 2, "20");
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);  // one header + two trials
  EXPECT_NE(lines[0].find("\"kind\":\"header\""), std::string::npos);
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->trials().size(), 2u);
}

TEST(Checkpoint, MultiSectionFileKeepsSweepsApart) {
  const auto path = temp_path("ckpt_sections.jsonl");
  auto second = test_header();
  second.label = "unit:scan";
  second.total = 4;
  {
    runner::CheckpointWriter w{path, test_header(), 1};
    w.append(0, 1, "10");
    w.append(1, 2, "11");
  }
  {
    runner::CheckpointWriter w{path, second, 1,
                               runner::CheckpointWriter::Mode::kAppendHeader};
    w.append(0, 5, "90");
  }
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  ASSERT_EQ(data->sections.size(), 2u);
  EXPECT_EQ(data->last_header_label, "unit:scan");

  const auto* first = data->section("unit");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->trials.size(), 2u);
  const auto* scan = data->section("unit:scan");
  ASSERT_NE(scan, nullptr);
  ASSERT_EQ(scan->trials.size(), 1u);
  EXPECT_EQ(scan->trials[0].result, "90");
  EXPECT_EQ(scan->header.total, 4u);
  EXPECT_EQ(data->section("absent"), nullptr);
  // A label-less lookup is only unambiguous for single-section files.
  EXPECT_EQ(data->section(""), nullptr);
}

TEST(Checkpoint, ReopenedSectionMergesAcrossHeaders) {
  // A re-run appends a fresh header for the same label (kAppendHeader);
  // the loader folds both runs' trials into one section, last write wins.
  const auto path = temp_path("ckpt_reopen.jsonl");
  {
    runner::CheckpointWriter w{path, test_header(), 1};
    w.append(0, 1, "old");
    w.append(2, 3, "kept");
  }
  {
    runner::CheckpointWriter w{path, test_header(), 1,
                               runner::CheckpointWriter::Mode::kAppendHeader};
    w.append(0, 1, "new");
  }
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  ASSERT_EQ(data->sections.size(), 1u);
  ASSERT_EQ(data->trials().size(), 2u);
  EXPECT_EQ(data->trials()[0].result, "new");
  EXPECT_EQ(data->trials()[1].result, "kept");
}

// -------------------------------------------------- runner: resume path

TEST(Runner, RunSubsetPreservesSubmissionIdentity) {
  runner::RunOptions opt;
  opt.jobs = 4;
  opt.root_seed = 77;
  const runner::ParallelRunner pool{opt};
  constexpr std::size_t kTotal = 16;

  std::vector<std::uint64_t> full_seeds(kTotal, 0);
  pool.run(kTotal, [&](const runner::TrialContext& ctx) { full_seeds[ctx.index] = ctx.seed; });

  const std::vector<std::size_t> missing = {1, 5, 6, 11, 15};
  std::vector<std::uint64_t> subset_seeds(kTotal, 0);
  std::atomic<int> bodies{0};
  pool.run_subset(missing, kTotal, [&](const runner::TrialContext& ctx) {
    bodies.fetch_add(1);
    subset_seeds[ctx.index] = ctx.seed;
  });
  EXPECT_EQ(bodies.load(), static_cast<int>(missing.size()));
  for (const std::size_t i : missing) {
    EXPECT_EQ(subset_seeds[i], full_seeds[i]) << "index " << i;
  }
}

TEST(Runner, ResumeMergeMatchesUninterruptedRun) {
  runner::RunOptions opt;
  opt.jobs = 3;
  opt.root_seed = 2024;
  const runner::ParallelRunner pool{opt};
  constexpr std::size_t kTotal = 24;
  auto body_value = [](const runner::TrialContext& ctx) {
    return static_cast<double>(ctx.seed % 997) / 7.0;
  };

  std::vector<double> uninterrupted(kTotal, 0.0);
  pool.run(kTotal, [&](const runner::TrialContext& ctx) {
    uninterrupted[ctx.index] = body_value(ctx);
  });

  // "Interrupted" run: the first 10 trials survived in a checkpoint
  // (round-tripped through the codec), the rest are re-run.
  std::vector<double> merged(kTotal, 0.0);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < kTotal; ++i) {
    if (i < 10) {
      double decoded = 0.0;
      ASSERT_TRUE(runner::TrialCodec<double>::decode(
          runner::TrialCodec<double>::encode(uninterrupted[i]), &decoded));
      merged[i] = decoded;
    } else {
      missing.push_back(i);
    }
  }
  pool.run_subset(missing, kTotal,
                  [&](const runner::TrialContext& ctx) { merged[ctx.index] = body_value(ctx); });
  EXPECT_EQ(merged, uninterrupted);  // byte-identical results vector
}

TEST(Runner, ProgressReportsErrorCounts) {
  runner::RunOptions opt;
  opt.jobs = 2;
  std::atomic<std::size_t> last_errors{0};
  opt.progress = [&](const runner::Progress& p) { last_errors.store(p.errors); };
  const runner::ParallelRunner pool{opt};
  std::vector<runner::TrialError> errors;
  pool.run(12, [&](const runner::TrialContext& ctx) {
    if (ctx.index % 4 == 0) throw std::runtime_error("boom " + std::to_string(ctx.index));
  }, &errors);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_EQ(errors[0].index, 0u);  // sorted by submission index
  EXPECT_EQ(errors[1].index, 4u);
  EXPECT_EQ(errors[2].index, 8u);
  EXPECT_EQ(last_errors.load(), 3u);  // final progress beat saw them all
}

// -------------------------------------------------------------- manifest

TEST(Manifest, JsonRoundTrip) {
  obs::RunManifest m;
  m.bench = "fig07_capture_rate";
  m.argv = {"--jobs", "8", "--csv", "--note", "quo\"te"};
  m.root_seed = 71829455837523ULL;
  m.jobs = 8;
  m.backend = "process";
  m.shards = 4;
  m.batch = 32;
  m.inject_fault = 0.125;
  m.deterministic = true;
  m.csv = true;
  m.stream_interval_ms = 250.0;
  m.stream_delta = true;
  m.checkpoint_interval = 64;
  m.trace_trial = 17;
  m.trace_out = "out/fig07.trace.json";
  m.stream_out = "out/fig07.stream.jsonl";
  m.checkpoint_out = "out/fig07.ckpt.jsonl";
  m.resume_from = "out/old.ckpt.jsonl";
  m.trials_total = 210;
  m.trials_resumed = 100;
  m.trial_errors = 1;
  m.errors_injected = 1;
  m.errors_organic = 0;
  m.stream_lines = 14;
  m.stream_dropped = 2;
  m.compiler = obs::build_compiler_id();
  m.build_type = obs::build_type_id();
  m.cxx_standard = __cplusplus;

  const auto json = m.to_json();
  EXPECT_TRUE(json_well_formed(json));
  const auto back = obs::RunManifest::parse(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bench, m.bench);
  EXPECT_EQ(back->argv, m.argv);
  EXPECT_EQ(back->root_seed, m.root_seed);
  EXPECT_EQ(back->jobs, m.jobs);
  EXPECT_EQ(back->backend, m.backend);
  EXPECT_EQ(back->shards, m.shards);
  EXPECT_EQ(back->batch, m.batch);
  EXPECT_DOUBLE_EQ(back->inject_fault, m.inject_fault);
  EXPECT_EQ(back->deterministic, m.deterministic);
  EXPECT_EQ(back->csv, m.csv);
  EXPECT_DOUBLE_EQ(back->stream_interval_ms, m.stream_interval_ms);
  EXPECT_EQ(back->stream_delta, m.stream_delta);
  EXPECT_EQ(back->checkpoint_interval, m.checkpoint_interval);
  EXPECT_EQ(back->trace_trial, m.trace_trial);
  EXPECT_EQ(back->trace_out, m.trace_out);
  EXPECT_EQ(back->stream_out, m.stream_out);
  EXPECT_EQ(back->checkpoint_out, m.checkpoint_out);
  EXPECT_EQ(back->resume_from, m.resume_from);
  EXPECT_EQ(back->trials_total, m.trials_total);
  EXPECT_EQ(back->trials_resumed, m.trials_resumed);
  EXPECT_EQ(back->trial_errors, m.trial_errors);
  EXPECT_EQ(back->errors_injected, m.errors_injected);
  EXPECT_EQ(back->errors_organic, m.errors_organic);
  EXPECT_EQ(back->stream_lines, m.stream_lines);
  EXPECT_EQ(back->stream_dropped, m.stream_dropped);
  EXPECT_EQ(back->compiler, m.compiler);
  EXPECT_EQ(back->build_type, m.build_type);
  EXPECT_EQ(back->cxx_standard, m.cxx_standard);
}

TEST(Manifest, ParseRejectsNonManifests) {
  EXPECT_FALSE(obs::RunManifest::parse("{}").has_value());
  EXPECT_FALSE(obs::RunManifest::parse("[1,2,3]").has_value());
}

TEST(Manifest, PathForSitsNextToArtifact) {
  EXPECT_EQ(obs::RunManifest::path_for("out/fig07.prom"), "out/fig07.prom.manifest.json");
}

// ------------------------------------------------------ flow id scoping

TEST(FlowScoping, PerKindCountersAreIndependent) {
  sim::TraceRecorder trace;
  EXPECT_EQ(trace.new_flow("addView"), 1u);
  EXPECT_EQ(trace.new_flow("addView"), 2u);
  EXPECT_EQ(trace.new_flow("removeView"), 1u);  // disjoint namespace
  EXPECT_EQ(trace.new_flow("addView"), 3u);
  const auto legacy = trace.new_flow();  // kind-less counter untouched
  EXPECT_EQ(trace.new_flow(""), legacy + 1);
}

TEST(FlowScoping, ChromeTraceScopesFlowCatByKind) {
  sim::TraceRecorder trace;
  const auto add_id = trace.new_flow("addView");
  const auto rm_id = trace.new_flow("removeView");
  EXPECT_EQ(add_id, rm_id);  // same numeric id: cat must disambiguate
  trace.flow_start(sim::ms(1), sim::TraceCategory::kIpc, "addView tx", add_id, "addView");
  trace.flow_end(sim::ms(2), sim::TraceCategory::kSystemServer, "addView rx", add_id, "addView");
  trace.flow_start(sim::ms(1), sim::TraceCategory::kIpc, "removeView tx", rm_id,
                   "removeView");
  trace.flow_end(sim::ms(3), sim::TraceCategory::kSystemServer, "removeView rx", rm_id,
                 "removeView");
  const auto legacy = trace.new_flow();
  trace.flow_start(sim::ms(4), sim::TraceCategory::kApp, "legacy", legacy);
  trace.flow_end(sim::ms(5), sim::TraceCategory::kApp, "legacy done", legacy);

  const auto json = sim::to_chrome_trace_json(trace);
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find(R"("cat":"flow:addView")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"flow:removeView")"), std::string::npos);
  EXPECT_NE(json.find(R"("cat":"flow")"), std::string::npos);  // legacy kept
}

// --------------------------------------------------- trace-trial bounds

TEST(TraceCapture, TracksLargestSweepForBoundsChecks) {
  auto& cap = obs::trace_capture();
  cap.reset();
  EXPECT_EQ(cap.max_sweep_total(), 0u);
  cap.note_sweep_total(5);
  cap.note_sweep_total(30);
  cap.note_sweep_total(10);  // smaller later sweep must not shrink it
  EXPECT_EQ(cap.max_sweep_total(), 30u);
  cap.arm(17);
  EXPECT_TRUE(cap.armed());
  EXPECT_EQ(cap.armed_index(), 17u);
  cap.reset();
  EXPECT_FALSE(cap.armed());
  EXPECT_EQ(cap.max_sweep_total(), 0u);
}

}  // namespace
