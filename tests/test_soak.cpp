// Long-horizon soak: one simulated handset hosting a whole user session
// — logins into three different apps over several minutes while the
// malware stays armed the entire time, stealing each password in turn.
// Exercises repeated trigger/finalize cycles, long-running toast
// rotation, and service state across many attack generations.
#include <gtest/gtest.h>

#include "core/password_stealer.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "victim/catalog.hpp"

namespace animus {
namespace {

using sim::ms;
using sim::seconds;

struct SessionStep {
  const char* app;
  const char* password;
};

TEST(Soak, ThreeLoginsOneMalware) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = 1001;
  wc.trace_enabled = false;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);

  const SessionStep steps[] = {
      {"Bank of America", "tk&%48GH"},
      {"Skype", "Zx9$q"},
      {"Alipay", "m3@Lo7!Q"},
  };

  input::TypistProfile careful;
  careful.jitter_frac = 0.04;
  careful.misspell_rate = 0.0;

  sim::SimTime t = ms(500);
  int steals = 0;
  for (const auto& step : steps) {
    victim::VictimApp app{world, victim::find_app(step.app)->spec};
    core::PasswordStealer stealer{world, app, {}};
    ASSERT_TRUE(stealer.arm()) << step.app;

    world.run_until(t);
    app.open_login_screen();
    world.loop().schedule_at(t + ms(200), [&world, &app] {
      world.input().inject_tap(app.username_bounds().center());
    });
    input::Typist typist{careful, world.fork_rng("soak").fork(steals + 1)};
    const input::Keyboard kb{app.keyboard_bounds()};
    auto user_touches = typist.plan(kb, "user", t + ms(600));
    for (const auto& pt : user_touches) {
      world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
    }
    const auto focus_at = user_touches.back().at + ms(400);
    world.loop().schedule_at(focus_at, [&world, &app] {
      world.input().inject_tap(app.password_bounds().center());
    });
    const auto pw_touches = typist.plan(kb, step.password, focus_at + ms(900));
    for (const auto& pt : pw_touches) {
      world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
    }
    const auto done = pw_touches.back().at + ms(600);
    world.run_until(done);
    const auto alert = world.system_ui().snapshot(server::kMalwareUid);
    const std::string decoded = stealer.finalize();

    EXPECT_EQ(decoded, step.password) << step.app;
    EXPECT_EQ(percept::classify(alert), percept::LambdaOutcome::kL1) << step.app;
    EXPECT_EQ(stealer.result().used_username_workaround,
              victim::find_app(step.app)->needs_extra_effort)
        << step.app;
    ++steals;
    // Idle gap between logins; all attack machinery must quiesce.
    t = done + seconds(20);
    world.run_until(t - seconds(1));
    EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 0) << step.app;
  }
  EXPECT_EQ(steals, 3);

  // After minutes of operation: no runaway state.
  EXPECT_LE(world.nms().queued_tokens(server::kMalwareUid), 5);
  EXPECT_EQ(world.system_ui().status_bar_icon_count(), 0);
  world.run_until(t + seconds(30));
  EXPECT_EQ(world.wms().live_count(),
            static_cast<std::size_t>(3 + 3));  // 3 activities + 3 hidden-IME?  see below
}

TEST(Soak, HourLongToastAttackIsStable) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = 77;
  wc.trace_enabled = false;
  server::World world{wc};
  core::ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(3600));
  // ~1030 rotations/hour at 3.5 s each; queue bounded, nothing rejected.
  EXPECT_GT(attack.stats().shown, 850);
  EXPECT_EQ(world.nms().stats().rejected, 0u);
  EXPECT_LE(world.nms().queued_tokens(server::kMalwareUid), 5);
  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid,
                                             "fake_keyboard", seconds(2), seconds(3600));
  EXPECT_FALSE(flicker.noticeable);
  attack.stop();
  world.run_until(seconds(3610));
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 0);
}

}  // namespace
}  // namespace animus
