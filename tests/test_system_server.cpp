#include "server/system_server.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "server/world.hpp"

namespace animus::server {
namespace {

using sim::ms;

struct ServerFixture : ::testing::Test {
  WorldConfig make_config() {
    WorldConfig wc;
    wc.profile = device::reference_device_android9();
    wc.deterministic = true;
    return wc;
  }
  World world{make_config()};

  OverlaySpec overlay() {
    OverlaySpec s;
    s.bounds = {0, 0, 500, 500};
    s.content = "attack:overlay";
    return s;
  }
};

TEST_F(ServerFixture, AddViewRequiresPermission) {
  const auto h = world.server().add_view(kMalwareUid, overlay());
  EXPECT_EQ(h, 0u);
  EXPECT_EQ(world.server().rejected_overlays(), 1u);
  world.run_all();
  EXPECT_EQ(world.wms().overlay_count(kMalwareUid), 0);
}

TEST_F(ServerFixture, AddViewCreatesWindowAfterTamPlusTas) {
  world.server().grant_overlay_permission(kMalwareUid);
  world.server().add_view(kMalwareUid, overlay());
  const auto& p = world.profile();
  const auto create_time = sim::ms_f(p.tam.mean_ms + p.tas.mean_ms);
  world.run_until(create_time - ms(1));
  EXPECT_EQ(world.wms().overlay_count(kMalwareUid), 0);
  world.run_until(create_time + ms(1));
  EXPECT_EQ(world.wms().overlay_count(kMalwareUid), 1);
}

TEST_F(ServerFixture, OverlayTriggersNotificationAlert) {
  world.server().grant_overlay_permission(kMalwareUid);
  world.server().add_view(kMalwareUid, overlay());
  world.run_until(sim::seconds(2));
  EXPECT_TRUE(world.system_ui().alert_fully_visible(kMalwareUid));
}

TEST_F(ServerFixture, RemoveLastOverlayDismissesAlert) {
  world.server().grant_overlay_permission(kMalwareUid);
  const auto h = world.server().add_view(kMalwareUid, overlay());
  world.run_until(sim::seconds(2));
  world.server().remove_view(kMalwareUid, h);
  world.run_until(sim::seconds(4));
  EXPECT_EQ(world.system_ui().phase(kMalwareUid), SystemUi::AlertPhase::kHidden);
}

TEST_F(ServerFixture, AlertSurvivesWhileAnyOverlayRemains) {
  world.server().grant_overlay_permission(kMalwareUid);
  const auto h1 = world.server().add_view(kMalwareUid, overlay());
  world.server().add_view(kMalwareUid, overlay());
  world.run_until(sim::seconds(2));
  world.server().remove_view(kMalwareUid, h1);
  world.run_until(sim::seconds(4));
  EXPECT_TRUE(world.system_ui().alert_fully_visible(kMalwareUid));
}

TEST_F(ServerFixture, SettingsForegroundBlocksOverlays) {
  world.server().grant_overlay_permission(kMalwareUid);
  world.server().set_settings_foreground(true);
  world.server().add_view(kMalwareUid, overlay());
  world.run_all();
  EXPECT_EQ(world.wms().overlay_count(kMalwareUid), 0);
  EXPECT_EQ(world.server().rejected_overlays(), 1u);
}

TEST_F(ServerFixture, RemoveBeforeCreationIsDeferredNotLost) {
  world.server().grant_overlay_permission(kMalwareUid);
  const auto h = world.server().add_view(kMalwareUid, overlay());
  world.server().remove_view(kMalwareUid, h);  // remove issued immediately
  world.run_until(sim::seconds(2));
  // Whether the removal overtook creation or not, the end state is no
  // overlay on screen and no lingering alert.
  EXPECT_EQ(world.wms().overlay_count(kMalwareUid), 0);
  EXPECT_EQ(world.system_ui().phase(kMalwareUid), SystemUi::AlertPhase::kHidden);
}

TEST_F(ServerFixture, TransactionsAreRecordedWithCallerAndCode) {
  world.server().grant_overlay_permission(kMalwareUid);
  const auto h = world.server().add_view(kMalwareUid, overlay());
  world.server().remove_view(kMalwareUid, h);
  ASSERT_EQ(world.transactions().size(), 2u);
  const auto all = world.transactions().all();
  EXPECT_EQ(all[0].caller_uid, kMalwareUid);
  EXPECT_EQ(all[0].code, ipc::MethodCode::kAddView);
  EXPECT_EQ(all[1].code, ipc::MethodCode::kRemoveView);
  EXPECT_GT(all[1].delivered, all[1].sent);
}

TEST_F(ServerFixture, AddEventOvertakesRemoveEvent) {
  // Tam < Trm: the add-view transaction sent *after* the remove-view
  // transaction is delivered first (Section III-C).
  world.server().grant_overlay_permission(kMalwareUid);
  const auto h = world.server().add_view(kMalwareUid, overlay());
  world.run_until(sim::seconds(1));
  world.server().remove_view(kMalwareUid, h);
  world.server().add_view(kMalwareUid, overlay());
  const auto all = world.transactions().all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_LT(all[2].delivered, all[1].delivered);
}

TEST_F(ServerFixture, EnqueueToastReachesNms) {
  ToastRequest r;
  r.content = "hello";
  r.bounds = {0, 1500, 1080, 780};
  world.server().enqueue_toast(kBenignUid, r);
  world.run_until(ms(100));
  EXPECT_EQ(world.nms().stats().shown, 1u);
  // Toasts never require SYSTEM_ALERT_WINDOW or trigger alerts.
  world.run_until(sim::seconds(2));
  EXPECT_EQ(world.system_ui().phase(kBenignUid), SystemUi::AlertPhase::kHidden);
}

TEST_F(ServerFixture, EnhancedDefenseDelaysAlertRemoval) {
  world.server().grant_overlay_permission(kMalwareUid);
  world.server().set_alert_removal_delay(ms(690));
  const auto h = world.server().add_view(kMalwareUid, overlay());
  world.run_until(sim::seconds(2));
  world.server().remove_view(kMalwareUid, h);
  // At +500 ms the alert is still shown (grace period), by +1s it's gone.
  world.run_until(sim::seconds(2) + ms(500));
  EXPECT_TRUE(world.system_ui().alert_fully_visible(kMalwareUid));
  world.run_until(sim::seconds(4));
  EXPECT_EQ(world.system_ui().phase(kMalwareUid), SystemUi::AlertPhase::kHidden);
}

TEST_F(ServerFixture, EnhancedDefenseCancelsRemovalOnReAdd) {
  world.server().grant_overlay_permission(kMalwareUid);
  world.server().set_alert_removal_delay(ms(690));
  const auto h = world.server().add_view(kMalwareUid, overlay());
  world.run_until(sim::seconds(2));
  world.server().remove_view(kMalwareUid, h);
  world.run_until(sim::seconds(2) + ms(200));
  world.server().add_view(kMalwareUid, overlay());  // re-add inside grace
  world.run_until(sim::seconds(6));
  EXPECT_TRUE(world.system_ui().alert_fully_visible(kMalwareUid));
}

TEST_F(ServerFixture, PermissionRevocation) {
  world.server().grant_overlay_permission(kMalwareUid);
  EXPECT_TRUE(world.server().has_overlay_permission(kMalwareUid));
  world.server().revoke_overlay_permission(kMalwareUid);
  EXPECT_FALSE(world.server().has_overlay_permission(kMalwareUid));
  EXPECT_EQ(world.server().add_view(kMalwareUid, overlay()), 0u);
}

}  // namespace
}  // namespace animus::server
