#include "input/keyboard.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "input/password.hpp"
#include "sim/rng.hpp"

namespace animus::input {
namespace {

const ui::Rect kKb{0, 1500, 1080, 780};

TEST(Keyboard, ThreeAlignedLayouts) {
  Keyboard kb{kKb};
  for (auto k : {LayoutKind::kLower, LayoutKind::kUpper, LayoutKind::kSymbols}) {
    EXPECT_FALSE(kb.layout(k).keys().empty());
    for (const auto& key : kb.layout(k).keys()) {
      EXPECT_TRUE(kKb.contains(key.center())) << key.label;
    }
  }
}

TEST(Keyboard, LowerLayoutCoversAlphabet) {
  Keyboard kb{kKb};
  for (char c = 'a'; c <= 'z'; ++c) {
    EXPECT_NE(kb.layout(LayoutKind::kLower).find_char(c), nullptr) << c;
  }
}

TEST(Keyboard, UpperLayoutCoversAlphabet) {
  Keyboard kb{kKb};
  for (char c = 'A'; c <= 'Z'; ++c) {
    EXPECT_NE(kb.layout(LayoutKind::kUpper).find_char(c), nullptr) << c;
  }
}

TEST(Keyboard, SymbolsLayoutCoversDigitsAndPasswordSymbols) {
  Keyboard kb{kKb};
  for (char c : std::string("0123456789")) {
    EXPECT_NE(kb.layout(LayoutKind::kSymbols).find_char(c), nullptr) << c;
  }
  for (char c : std::string(password_symbols())) {
    EXPECT_NE(kb.layout(LayoutKind::kSymbols).find_char(c), nullptr) << c;
  }
}

TEST(Keyboard, EveryLayoutHasControlKeys) {
  Keyboard kb{kKb};
  for (auto lk : {LayoutKind::kLower, LayoutKind::kUpper, LayoutKind::kSymbols}) {
    const auto& layout = kb.layout(lk);
    EXPECT_NE(layout.find_kind(Key::Kind::kBackspace), nullptr);
    EXPECT_NE(layout.find_kind(Key::Kind::kEnter), nullptr);
    EXPECT_NE(layout.find_kind(Key::Kind::kSpace), nullptr);
    if (lk == LayoutKind::kSymbols) {
      EXPECT_NE(layout.find_kind(Key::Kind::kLetters), nullptr);
      EXPECT_EQ(layout.find_kind(Key::Kind::kShift), nullptr);
    } else {
      EXPECT_NE(layout.find_kind(Key::Kind::kShift), nullptr);
      EXPECT_NE(layout.find_kind(Key::Kind::kSymbols), nullptr);
    }
  }
}

TEST(Keyboard, KeysDoNotOverlap) {
  Keyboard kb{kKb};
  for (auto lk : {LayoutKind::kLower, LayoutKind::kUpper, LayoutKind::kSymbols}) {
    const auto keys = kb.layout(lk).keys();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      for (std::size_t j = i + 1; j < keys.size(); ++j) {
        EXPECT_FALSE(keys[i].bounds.intersects(keys[j].bounds))
            << to_string(lk) << ": " << keys[i].label << " vs " << keys[j].label;
      }
    }
  }
}

TEST(Keyboard, KeyAtCenterRoundTrips) {
  Keyboard kb{kKb};
  for (const auto& key : kb.layout(LayoutKind::kLower).keys()) {
    const Key* hit = kb.layout(LayoutKind::kLower).key_at(key.center());
    ASSERT_NE(hit, nullptr) << key.label;
    EXPECT_EQ(hit->label, key.label);
  }
}

TEST(Keyboard, NearestDecodeRoundTripsAtCenters) {
  // The attacker's Euclidean decoder recovers every key from its own
  // center coordinate (Section V's offline analysis).
  Keyboard kb{kKb};
  for (auto lk : {LayoutKind::kLower, LayoutKind::kUpper, LayoutKind::kSymbols}) {
    for (const auto& key : kb.layout(lk).keys()) {
      EXPECT_EQ(kb.layout(lk).nearest(key.center()).label, key.label);
    }
  }
}

TEST(Keyboard, NearestDecodeTolratesJitter) {
  Keyboard kb{kKb};
  sim::Rng rng{7};
  const auto& layout = kb.layout(LayoutKind::kLower);
  int correct = 0, total = 0;
  for (const auto& key : layout.keys()) {
    for (int trial = 0; trial < 20; ++trial) {
      ui::Point p = key.center();
      p.x += static_cast<int>(rng.normal(0, key.bounds.w * 0.10));
      p.y += static_cast<int>(rng.normal(0, key.bounds.h * 0.10));
      ++total;
      correct += layout.nearest(p).label == key.label;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.97);
}

TEST(Keyboard, RequiredLayoutClassification) {
  EXPECT_EQ(Keyboard::required_layout('a'), LayoutKind::kLower);
  EXPECT_EQ(Keyboard::required_layout('Z'), LayoutKind::kUpper);
  EXPECT_EQ(Keyboard::required_layout('7'), LayoutKind::kSymbols);
  EXPECT_EQ(Keyboard::required_layout('&'), LayoutKind::kSymbols);
  EXPECT_EQ(Keyboard::required_layout(' '), std::nullopt);  // on every board
  EXPECT_EQ(Keyboard::required_layout('\t'), std::nullopt);
  EXPECT_FALSE(Keyboard::typeable('\t'));
  EXPECT_TRUE(Keyboard::typeable('%'));
}

TEST(KeyboardState, ShiftTogglesAndAutoReverts) {
  Keyboard kb{kKb};
  KeyboardState st;
  EXPECT_EQ(st.current(), LayoutKind::kLower);
  st.press(*kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kShift));
  EXPECT_EQ(st.current(), LayoutKind::kUpper);
  const auto r = st.press(*kb.layout(LayoutKind::kUpper).find_char('H'));
  EXPECT_EQ(r.ch, 'H');
  EXPECT_TRUE(r.layout_changed);
  EXPECT_EQ(st.current(), LayoutKind::kLower);  // auto-revert
}

TEST(KeyboardState, ShiftTwiceReturnsToLower) {
  Keyboard kb{kKb};
  KeyboardState st;
  const Key& shift = *kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kShift);
  st.press(shift);
  st.press(*kb.layout(LayoutKind::kUpper).find_kind(Key::Kind::kShift));
  EXPECT_EQ(st.current(), LayoutKind::kLower);
}

TEST(KeyboardState, SymbolsAndBackRoundTrip) {
  Keyboard kb{kKb};
  KeyboardState st;
  st.press(*kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kSymbols));
  EXPECT_EQ(st.current(), LayoutKind::kSymbols);
  const auto r = st.press(*kb.layout(LayoutKind::kSymbols).find_char('%'));
  EXPECT_EQ(r.ch, '%');
  EXPECT_EQ(st.current(), LayoutKind::kSymbols);  // symbols latch
  st.press(*kb.layout(LayoutKind::kSymbols).find_kind(Key::Kind::kLetters));
  EXPECT_EQ(st.current(), LayoutKind::kLower);
}

TEST(KeyboardState, SpaceDoesNotRevertShift) {
  Keyboard kb{kKb};
  KeyboardState st;
  st.press(*kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kShift));
  const auto r = st.press(*kb.layout(LayoutKind::kUpper).find_kind(Key::Kind::kSpace));
  EXPECT_EQ(r.ch, ' ');
  EXPECT_EQ(st.current(), LayoutKind::kUpper);
}

TEST(KeyboardState, BackspaceAndEnter) {
  Keyboard kb{kKb};
  KeyboardState st;
  EXPECT_TRUE(st.press(*kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kBackspace)).backspace);
  EXPECT_TRUE(st.press(*kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kEnter)).enter);
}

// Property: typing any generated password through the state machine at
// key centers reproduces the password exactly.
class KeyboardRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KeyboardRoundTrip, StateMachineTypesGeneratedPasswords) {
  Keyboard kb{kKb};
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  const std::string pwd = random_password(10, rng);
  KeyboardState st;
  std::string typed;
  for (char c : pwd) {
    for (int guard = 0; guard < 4; ++guard) {
      const auto needed = Keyboard::required_layout(c);
      if (!needed || *needed == st.current()) break;
      const auto& layout = kb.layout(st.current());
      const Key* mode = nullptr;
      if (*needed == LayoutKind::kSymbols) {
        mode = layout.find_kind(Key::Kind::kSymbols);
      } else if (st.current() == LayoutKind::kSymbols) {
        mode = layout.find_kind(Key::Kind::kLetters);
      } else {
        mode = layout.find_kind(Key::Kind::kShift);
      }
      ASSERT_NE(mode, nullptr);
      st.press(*mode);
    }
    const Key* key = kb.layout(st.current()).find_char(c);
    ASSERT_NE(key, nullptr) << "char " << c;
    const auto r = st.press(*key);
    if (r.ch) typed.push_back(*r.ch);
  }
  EXPECT_EQ(typed, pwd);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyboardRoundTrip, ::testing::Range(1, 21));

}  // namespace
}  // namespace animus::input
