#include "server/input_dispatcher.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "server/world.hpp"

namespace animus::server {
namespace {

using sim::ms;

struct DispatcherFixture : ::testing::Test {
  WorldConfig make_config() {
    WorldConfig wc;
    wc.profile = device::reference_device_android9();
    wc.deterministic = true;
    return wc;
  }
  World world{make_config()};

  ui::WindowId add_window(int uid, ui::WindowType type, bool on_down = false) {
    ui::Window w;
    w.owner_uid = uid;
    w.type = type;
    w.bounds = {0, 0, 500, 500};
    w.deliver_on_down = on_down;
    w.on_touch = [this, uid](sim::SimTime, ui::Point) { ++touches[uid]; };
    return world.wms().add_window_now(std::move(w));
  }

  std::map<int, int> touches;
};

TEST_F(DispatcherFixture, DeliversCompletedGesture) {
  add_window(1, ui::WindowType::kActivity);
  TouchOutcome seen;
  world.input().inject_tap({100, 100}, ms(15), [&seen](const TouchOutcome& o) { seen = o; });
  world.run_until(ms(20));
  EXPECT_EQ(seen.kind, TouchOutcome::Kind::kDelivered);
  EXPECT_EQ(seen.target_uid, 1);
  EXPECT_EQ(touches[1], 1);
  EXPECT_EQ(world.input().stats().delivered, 1u);
}

TEST_F(DispatcherFixture, NoTargetOutsideAllWindows) {
  add_window(1, ui::WindowType::kActivity);
  TouchOutcome seen;
  world.input().inject_tap({600, 600}, ms(15), [&seen](const TouchOutcome& o) { seen = o; });
  world.run_all();
  EXPECT_EQ(seen.kind, TouchOutcome::Kind::kNoTarget);
  EXPECT_EQ(world.input().stats().untargeted, 1u);
}

TEST_F(DispatcherFixture, GestureCancelledWhenWindowVanishesMidContact) {
  add_window(1, ui::WindowType::kActivity);
  const auto ov = add_window(2, ui::WindowType::kAppOverlay);
  TouchOutcome seen;
  world.input().inject_tap({100, 100}, ms(15), [&seen](const TouchOutcome& o) { seen = o; });
  world.loop().schedule_at(ms(7), [this, ov] { world.wms().remove_window_now(ov); });
  world.run_until(ms(30));
  EXPECT_EQ(seen.kind, TouchOutcome::Kind::kCancelled);
  EXPECT_EQ(touches[2], 0);
  EXPECT_EQ(touches[1], 0);  // the app beneath does not get it either
}

TEST_F(DispatcherFixture, DownDeliveryBeatsMidContactRemoval) {
  // The password attack harvests ACTION_DOWN: removing the overlay
  // mid-gesture cannot take the coordinate back.
  add_window(1, ui::WindowType::kActivity);
  const auto ov = add_window(2, ui::WindowType::kAppOverlay, /*on_down=*/true);
  TouchOutcome seen;
  world.input().inject_tap({100, 100}, ms(15), [&seen](const TouchOutcome& o) { seen = o; });
  world.loop().schedule_at(ms(7), [this, ov] { world.wms().remove_window_now(ov); });
  world.run_until(ms(30));
  EXPECT_EQ(seen.kind, TouchOutcome::Kind::kDelivered);
  EXPECT_EQ(touches[2], 1);
}

TEST_F(DispatcherFixture, TopmostTouchableWins) {
  add_window(1, ui::WindowType::kActivity);
  add_window(2, ui::WindowType::kInputMethod);
  add_window(3, ui::WindowType::kAppOverlay);
  world.input().inject_tap({100, 100}, ms(10));
  world.run_until(ms(20));
  EXPECT_EQ(touches[3], 1);
  EXPECT_EQ(touches[2], 0);
  EXPECT_EQ(touches[1], 0);
}

TEST_F(DispatcherFixture, ToastNeverReceivesTouch) {
  add_window(1, ui::WindowType::kActivity);
  ui::Window toast;
  toast.owner_uid = 9;
  toast.bounds = {0, 0, 500, 500};
  toast.on_touch = [this](sim::SimTime, ui::Point) { ++touches[9]; };
  world.wms().add_toast_now(toast);
  world.run_until(ms(600));
  world.input().inject_tap({100, 100}, ms(10));
  world.run_until(ms(700));
  EXPECT_EQ(touches[9], 0);
  EXPECT_EQ(touches[1], 1);  // falls through to the activity
}

TEST_F(DispatcherFixture, SampledContactDurationsWithinModel) {
  add_window(1, ui::WindowType::kActivity);
  TouchContactModel m;
  m.mean_ms = 12;
  m.sd_ms = 4;
  m.min_ms = 5;
  m.max_ms = 25;
  world.input().set_contact_model(m);
  for (int i = 0; i < 50; ++i) {
    world.input().inject_tap({100, 100});
  }
  world.run_all();
  EXPECT_EQ(world.input().stats().delivered, 50u);
}

TEST_F(DispatcherFixture, StatsAccumulate) {
  add_window(1, ui::WindowType::kActivity);
  world.input().inject_tap({100, 100}, ms(10));
  world.input().inject_tap({600, 600}, ms(10));
  world.run_all();
  EXPECT_EQ(world.input().stats().taps, 2u);
  EXPECT_EQ(world.input().stats().delivered, 1u);
  EXPECT_EQ(world.input().stats().untargeted, 1u);
}

}  // namespace
}  // namespace animus::server
