#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace animus::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), SimTime{0});
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(ms(30), [&] { order.push_back(3); });
  loop.schedule_at(ms(10), [&] { order.push_back(1); });
  loop.schedule_at(ms(20), [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), ms(30));
}

TEST(EventLoop, TiesBreakByScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(ms(5), [&order, i] { order.push_back(i); });
  }
  loop.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterIsRelative) {
  EventLoop loop;
  SimTime seen{-1};
  loop.schedule_at(ms(100), [&] {
    loop.schedule_after(ms(50), [&] { seen = loop.now(); });
  });
  loop.run_all();
  EXPECT_EQ(seen, ms(150));
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  SimTime seen{-1};
  loop.schedule_at(ms(100), [&] {
    loop.schedule_at(ms(10), [&] { seen = loop.now(); });  // in the past
  });
  loop.run_all();
  EXPECT_EQ(seen, ms(100));
}

TEST(EventLoop, NegativeDelayClampsToZero) {
  EventLoop loop;
  SimTime seen{-1};
  loop.schedule_after(ms(-5), [&] { seen = loop.now(); });
  loop.run_all();
  EXPECT_EQ(seen, SimTime{0});
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_at(ms(10), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelDefaultIdIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(EventLoop::EventId{}));
}

TEST(EventLoop, RunUntilExecutesInclusiveBoundary) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(ms(10), [&] { ++count; });
  loop.schedule_at(ms(20), [&] { ++count; });
  loop.schedule_at(ms(21), [&] { ++count; });
  EXPECT_EQ(loop.run_until(ms(20)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), ms(20));
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilAdvancesNowEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(seconds(5));
  EXPECT_EQ(loop.now(), seconds(5));
}

TEST(EventLoop, RunUntilSkipsCancelledHead) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_at(ms(5), [&] { ran = true; });
  loop.schedule_at(ms(6), [&] {});
  loop.cancel(id);
  EXPECT_EQ(loop.run_until(ms(10)), 1u);
  EXPECT_FALSE(ran);
}

TEST(EventLoop, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.schedule_after(ms(1), chain);
  };
  loop.schedule_after(ms(1), chain);
  loop.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), ms(100));
}

TEST(EventLoop, RunAllHonoursEventBudget) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_after(ms(1), forever); };
  loop.schedule_after(ms(1), forever);
  EXPECT_EQ(loop.run_all(1000), 1000u);
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  auto a = loop.schedule_at(ms(1), [] {});
  loop.schedule_at(ms(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopProperty, ManyRandomEventsRunInNondecreasingTime) {
  EventLoop loop;
  std::vector<SimTime> seen;
  // Pseudo-random but deterministic times.
  std::uint64_t x = 42;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto t = ms(static_cast<std::int64_t>(x % 1000));
    loop.schedule_at(t, [&seen, &loop] { seen.push_back(loop.now()); });
  }
  loop.run_all();
  ASSERT_EQ(seen.size(), 2000u);
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LE(seen[i - 1], seen[i]);
}

}  // namespace
}  // namespace animus::sim
