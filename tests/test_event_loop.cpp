#include "sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace animus::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), SimTime{0});
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(ms(30), [&] { order.push_back(3); });
  loop.schedule_at(ms(10), [&] { order.push_back(1); });
  loop.schedule_at(ms(20), [&] { order.push_back(2); });
  loop.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), ms(30));
}

TEST(EventLoop, TiesBreakByScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(ms(5), [&order, i] { order.push_back(i); });
  }
  loop.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, ScheduleAfterIsRelative) {
  EventLoop loop;
  SimTime seen{-1};
  loop.schedule_at(ms(100), [&] {
    loop.schedule_after(ms(50), [&] { seen = loop.now(); });
  });
  loop.run_all();
  EXPECT_EQ(seen, ms(150));
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  SimTime seen{-1};
  loop.schedule_at(ms(100), [&] {
    loop.schedule_at(ms(10), [&] { seen = loop.now(); });  // in the past
  });
  loop.run_all();
  EXPECT_EQ(seen, ms(100));
}

TEST(EventLoop, NegativeDelayClampsToZero) {
  EventLoop loop;
  SimTime seen{-1};
  loop.schedule_after(ms(-5), [&] { seen = loop.now(); });
  loop.run_all();
  EXPECT_EQ(seen, SimTime{0});
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_at(ms(10), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run_all();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelDefaultIdIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(EventLoop::EventId{}));
}

TEST(EventLoop, RunUntilExecutesInclusiveBoundary) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(ms(10), [&] { ++count; });
  loop.schedule_at(ms(20), [&] { ++count; });
  loop.schedule_at(ms(21), [&] { ++count; });
  EXPECT_EQ(loop.run_until(ms(20)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), ms(20));
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoop, RunUntilAdvancesNowEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(seconds(5));
  EXPECT_EQ(loop.now(), seconds(5));
}

TEST(EventLoop, RunUntilSkipsCancelledHead) {
  EventLoop loop;
  bool ran = false;
  auto id = loop.schedule_at(ms(5), [&] { ran = true; });
  loop.schedule_at(ms(6), [&] {});
  loop.cancel(id);
  EXPECT_EQ(loop.run_until(ms(10)), 1u);
  EXPECT_FALSE(ran);
}

TEST(EventLoop, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) loop.schedule_after(ms(1), chain);
  };
  loop.schedule_after(ms(1), chain);
  loop.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(loop.now(), ms(100));
}

TEST(EventLoop, RunAllHonoursEventBudget) {
  EventLoop loop;
  std::function<void()> forever = [&] { loop.schedule_after(ms(1), forever); };
  loop.schedule_after(ms(1), forever);
  EXPECT_EQ(loop.run_all(1000), 1000u);
}

TEST(EventLoop, EventCapLatchesStickyFlagAndCountsHits) {
  EventLoop loop;
  EXPECT_FALSE(loop.hit_event_cap());
  std::function<void()> forever = [&] { loop.schedule_after(ms(1), forever); };
  loop.schedule_after(ms(1), forever);
  loop.run_all(100);
  EXPECT_TRUE(loop.hit_event_cap());  // stopped at the guard, work pending
  EXPECT_EQ(loop.cap_hits(), 1u);
  loop.run_all(50);
  EXPECT_EQ(loop.cap_hits(), 2u);  // every capped drain counts
  EXPECT_TRUE(loop.hit_event_cap());
}

TEST(EventLoop, DrainingExactlyAtTheBudgetIsNotACapHit) {
  EventLoop loop;
  for (int i = 0; i < 10; ++i) loop.schedule_at(ms(i), [] {});
  EXPECT_EQ(loop.run_all(10), 10u);  // budget == work: clean drain
  EXPECT_FALSE(loop.hit_event_cap());
  EXPECT_EQ(loop.cap_hits(), 0u);
}

TEST(EventLoop, StaleHandleAfterExecutionIsRejected) {
  EventLoop loop;
  const auto id = loop.schedule_at(ms(1), [] {});
  loop.run_all();
  EXPECT_FALSE(loop.cancel(id));  // already ran
  EXPECT_EQ(loop.cancelled(), 0u);
}

TEST(EventLoop, SlotReuseInvalidatesOldHandles) {
  EventLoop loop;
  const auto first = loop.schedule_at(ms(1), [] {});
  EXPECT_TRUE(loop.cancel(first));
  // LIFO free list: the next schedule reuses the slot the cancel freed.
  const auto second = loop.schedule_at(ms(2), [] {});
  ASSERT_EQ(second.slot, first.slot);
  EXPECT_NE(second.generation, first.generation);
  EXPECT_FALSE(loop.cancel(first));   // generation tag rejects the stale handle
  EXPECT_TRUE(loop.cancel(second));   // the live tenant is still cancellable
  EXPECT_EQ(loop.cancelled(), 2u);
}

TEST(EventLoop, SelfCancelFromInsideCallbackReturnsFalse) {
  EventLoop loop;
  EventLoop::EventId self{};
  bool self_cancel = true;
  self = loop.schedule_at(ms(1), [&] { self_cancel = loop.cancel(self); });
  loop.run_all();
  EXPECT_FALSE(self_cancel);  // a running event is no longer cancellable
  EXPECT_EQ(loop.executed(), 1u);
  EXPECT_EQ(loop.cancelled(), 0u);
}

TEST(EventLoop, OversizedCapturesFallBackToHeapAndStillRun) {
  // 128 bytes of capture exceeds InlineCallback<64>'s buffer, forcing
  // the heap path; behavior must be unchanged.
  struct Big {
    char payload[128];
  };
  static_assert(!EventLoop::Callback::fits_inline<Big>());
  EventLoop loop;
  Big big{};
  big.payload[0] = 42;
  char seen = 0;
  const auto id = loop.schedule_at(ms(1), [big, &seen] { seen = big.payload[0]; });
  loop.schedule_at(ms(2), [big, &seen] { seen += big.payload[0]; });
  EXPECT_TRUE(loop.cancel(id));  // heap-backed callbacks cancel cleanly too
  loop.run_all();
  EXPECT_EQ(seen, 42);
}

TEST(EventLoop, TypicalCapturesStayInline) {
  struct Typical {
    void* self;
    int a, b;
  };
  static_assert(EventLoop::Callback::fits_inline<Typical>());
  static_assert(EventLoop::Callback::fits_inline<int>());
}

TEST(EventLoop, PendingCountExcludesCancelled) {
  EventLoop loop;
  auto a = loop.schedule_at(ms(1), [] {});
  loop.schedule_at(ms(2), [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
}

TEST(EventLoopProperty, ManyRandomEventsRunInNondecreasingTime) {
  EventLoop loop;
  std::vector<SimTime> seen;
  // Pseudo-random but deterministic times.
  std::uint64_t x = 42;
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto t = ms(static_cast<std::int64_t>(x % 1000));
    loop.schedule_at(t, [&seen, &loop] { seen.push_back(loop.now()); });
  }
  loop.run_all();
  ASSERT_EQ(seen.size(), 2000u);
  for (std::size_t i = 1; i < seen.size(); ++i) EXPECT_LE(seen[i - 1], seen[i]);
}

}  // namespace
}  // namespace animus::sim
