#include "ui/animation.hpp"

#include <gtest/gtest.h>

namespace animus::ui {
namespace {

using sim::ms;

TEST(Animation, ContinuousCompletenessEndpoints) {
  const Animation a = notification_slide_in();
  EXPECT_DOUBLE_EQ(a.completeness_at(ms(0)), 0.0);
  EXPECT_DOUBLE_EQ(a.completeness_at(ms(360)), 1.0);
  EXPECT_DOUBLE_EQ(a.completeness_at(ms(9999)), 1.0);
  EXPECT_DOUBLE_EQ(a.completeness_at(ms(-5)), 0.0);
}

TEST(Animation, NothingPresentedBeforeFirstFrame) {
  // Section III-B: "it takes at least 10 ms to display the first frame".
  const Animation a = notification_slide_in();
  EXPECT_DOUBLE_EQ(a.presented_completeness_at(ms(0)), 0.0);
  EXPECT_DOUBLE_EQ(a.presented_completeness_at(ms(9)), 0.0);
  EXPECT_GT(a.presented_completeness_at(ms(10)), 0.0);
}

TEST(Animation, PresentedValueIsFrameQuantized) {
  const Animation a = notification_slide_in();
  // Between frames the presented value holds the last frame's value.
  EXPECT_DOUBLE_EQ(a.presented_completeness_at(ms(19)), a.presented_completeness_at(ms(10)));
  EXPECT_GT(a.presented_completeness_at(ms(20)), a.presented_completeness_at(ms(19)));
}

TEST(Animation, FirstFramePixelsRoundToZeroOn72pxView) {
  // The paper's Nexus 6P observation: 72 px * 0.17% = 0.1224 px -> 0.
  const Animation a = notification_slide_in();
  EXPECT_EQ(a.presented_pixels_at(ms(10), 72), 0);
}

TEST(Animation, PixelsEventuallyReachFullHeight) {
  const Animation a = notification_slide_in();
  EXPECT_EQ(a.presented_pixels_at(ms(360), 72), 72);
}

TEST(Animation, PixelsAreMonotoneInTime) {
  const Animation a = notification_slide_in();
  int prev = 0;
  for (int t = 0; t <= 360; t += 5) {
    const int px = a.presented_pixels_at(ms(t), 72);
    EXPECT_GE(px, prev);
    prev = px;
  }
}

TEST(Animation, TimeToRevealIsAFrameBoundary) {
  const Animation a = notification_slide_in();
  const sim::SimTime t = a.time_to_reveal(1, 72);
  EXPECT_EQ(t.count() % a.refresh().count(), 0);
  EXPECT_GE(a.presented_pixels_at(t, 72), 1);
  EXPECT_LT(a.presented_pixels_at(t - a.refresh(), 72), 1);
}

TEST(Animation, TimeToRevealNakedEyeThreshold) {
  const Animation a = notification_slide_in();
  const sim::SimTime t = a.time_to_reveal(kNakedEyeMinPixels, 72);
  EXPECT_GT(t, ms(10));   // not the first frame
  EXPECT_LE(t, ms(60));   // early in the 360 ms animation
}

TEST(Animation, TimeToRevealZeroPixelsIsImmediate) {
  const Animation a = notification_slide_in();
  EXPECT_EQ(a.time_to_reveal(0, 72), sim::SimTime{0});
}

TEST(Animation, TimeToRevealUnreachableReportsSentinel) {
  const Animation a = notification_slide_in();
  EXPECT_EQ(a.time_to_reveal(100, 72), a.duration() + a.refresh());
}

TEST(ToastAnimations, DurationsAre500ms) {
  EXPECT_EQ(toast_fade_in().duration(), ms(500));
  EXPECT_EQ(toast_fade_out().duration(), ms(500));
}

TEST(ToastAnimations, FadeOutIsSlowAtStart) {
  // 100 ms into the 500 ms exit, only 4% of the fade has happened: the
  // old toast still looks solid, so a replacement can slip in unnoticed.
  const Animation out = toast_fade_out();
  EXPECT_LT(out.completeness_at(ms(100)), 0.05);
}

TEST(ToastAnimations, FadeInIsFastAtStart) {
  const Animation in = toast_fade_in();
  EXPECT_GT(in.completeness_at(ms(100)), 0.35);
}

TEST(Animation, CustomRefreshRateChangesQuantization) {
  const Animation a{linear(), ms(100), ms(25)};
  EXPECT_DOUBLE_EQ(a.presented_completeness_at(ms(24)), 0.0);
  EXPECT_DOUBLE_EQ(a.presented_completeness_at(ms(25)), 0.25);
  EXPECT_DOUBLE_EQ(a.presented_completeness_at(ms(49)), 0.25);
}

}  // namespace
}  // namespace animus::ui
