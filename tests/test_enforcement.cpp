#include "defense/enforcement.hpp"

#include <gtest/gtest.h>

#include "core/overlay_attack.hpp"
#include "core/password_stealer.hpp"
#include "core/toast_attack.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "victim/catalog.hpp"

namespace animus::defense {
namespace {

using sim::ms;
using sim::seconds;

server::World make_world() {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = 21;
  wc.trace_enabled = false;
  return server::World{wc};
}

TEST(DefenseDaemon, NeutralizesOverlayAttackMidFlight) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  DefenseDaemon daemon{world};
  daemon.install();

  core::OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(30));
  EXPECT_TRUE(daemon.neutralized(server::kMalwareUid));
  ASSERT_EQ(daemon.actions().size(), 1u);
  EXPECT_GT(daemon.actions()[0].windows_removed, 0);
  // Post-enforcement: permission revoked, screen clean, and it stays so.
  EXPECT_FALSE(world.server().has_overlay_permission(server::kMalwareUid));
  EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 0);
  world.run_until(seconds(35));
  EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 0);
  attack.stop();
}

TEST(DefenseDaemon, EnforcementIsFast) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  DefenseDaemon daemon{world};
  daemon.install();
  core::OverlayAttackConfig oc;
  oc.attacking_window = ms(150);
  core::OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(30));
  ASSERT_FALSE(daemon.actions().empty());
  // min_pairs=8 at D=150 -> detected ~1.2 s in, enforced 50 ms later.
  EXPECT_LT(daemon.actions()[0].enforced_at, seconds(3));
  EXPECT_GE(daemon.actions()[0].enforced_at - daemon.actions()[0].detected_at, ms(50));
  attack.stop();
}

TEST(DefenseDaemon, CapsStolenTouches) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  DefenseDaemon daemon{world};
  daemon.install();
  core::OverlayAttackConfig oc;
  oc.attacking_window = ms(190);
  oc.bounds = {0, 0, 1080, 2280};
  core::OverlayAttack attack{world, oc};
  attack.start();
  // One tap per second for 30 s; only the pre-enforcement ones leak.
  for (int i = 1; i <= 30; ++i) {
    world.loop().schedule_at(seconds(i), [&world] { world.input().inject_tap({540, 1200}); });
  }
  world.run_until(seconds(31));
  EXPECT_LE(attack.stats().captures, 3);
  attack.stop();
}

TEST(DefenseDaemon, LeavesBenignAppsAlone) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kBenignUid);
  DefenseDaemon daemon{world};
  daemon.install();
  server::OverlaySpec spec;
  spec.bounds = {800, 200, 200, 200};
  world.server().add_view(server::kBenignUid, spec);
  world.run_until(seconds(60));
  EXPECT_FALSE(daemon.neutralized(server::kBenignUid));
  EXPECT_TRUE(world.server().has_overlay_permission(server::kBenignUid));
  EXPECT_EQ(world.wms().overlay_count(server::kBenignUid), 1);
}

TEST(DefenseDaemon, PurgesToastAttackWhenOverlayAttackFlagged) {
  // The password stealer runs both primitives; flagging the uid via its
  // overlay churn also clears its fake-keyboard toasts.
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  DefenseDaemon daemon{world};
  daemon.install();

  core::ToastAttack toast{world, {}};
  toast.start();
  core::OverlayAttack overlay{world, {}};
  overlay.start();
  world.run_until(seconds(20));
  EXPECT_TRUE(daemon.neutralized(server::kMalwareUid));
  // The currently showing toast was cancelled; later enqueues still work
  // (toasts need no permission) but the live surface was interrupted at
  // enforcement time.
  ASSERT_FALSE(daemon.actions().empty());
  const auto t_enf = daemon.actions()[0].enforced_at;
  EXPECT_LT(world.wms().combined_alpha_at(server::kMalwareUid, "fake_keyboard",
                                          t_enf + ms(600)),
            0.9);
  overlay.stop();
  toast.stop();
}

TEST(DefenseDaemon, ConfigurableActions) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  EnforcementConfig cfg;
  cfg.revoke_permission = false;
  cfg.remove_windows = false;
  cfg.purge_toasts = false;
  DefenseDaemon daemon{world, cfg};
  daemon.install();
  core::OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(10));
  EXPECT_TRUE(daemon.neutralized(server::kMalwareUid));  // detected...
  EXPECT_TRUE(world.server().has_overlay_permission(server::kMalwareUid));  // ...not punished
  EXPECT_GT(world.wms().overlay_count(server::kMalwareUid), 0);
  attack.stop();
}

TEST(DefenseDaemon, InstallIsIdempotent) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  DefenseDaemon daemon{world};
  daemon.install();
  daemon.install();
  core::OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(10));
  EXPECT_EQ(daemon.actions().size(), 1u);  // one action despite double install
  attack.stop();
}

}  // namespace
}  // namespace animus::defense
