#include "ui/interpolator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace animus::ui {
namespace {

// ---------------------------------------------------------------------
// Shared property suite: every interpolator must be a monotone easing
// function fixing 0 and 1.
// ---------------------------------------------------------------------

struct InterpCase {
  const char* label;
  const Interpolator* interp;
};

class InterpolatorProperty : public ::testing::TestWithParam<InterpCase> {};

TEST_P(InterpolatorProperty, FixesEndpoints) {
  const auto& f = *GetParam().interp;
  EXPECT_DOUBLE_EQ(f.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1.0), 1.0);
}

TEST_P(InterpolatorProperty, ClampsOutOfRangeInput) {
  const auto& f = *GetParam().interp;
  EXPECT_DOUBLE_EQ(f.value(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(f.value(1.5), 1.0);
}

TEST_P(InterpolatorProperty, MonotoneNondecreasing) {
  const auto& f = *GetParam().interp;
  double prev = -1e-12;
  for (int i = 0; i <= 1000; ++i) {
    const double y = f.value(i / 1000.0);
    EXPECT_GE(y, prev - 1e-9) << "at x=" << i / 1000.0;
    prev = y;
  }
}

TEST_P(InterpolatorProperty, OutputStaysIn01) {
  const auto& f = *GetParam().interp;
  for (int i = 0; i <= 500; ++i) {
    const double y = f.value(i / 500.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

TEST_P(InterpolatorProperty, InverseIsConsistent) {
  const auto& f = *GetParam().interp;
  for (double y : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double x = f.inverse(y);
    EXPECT_NEAR(f.value(x), y, 1e-6) << "y=" << y;
  }
}

const AccelerateInterpolator kAccel;
const DecelerateInterpolator kDecel;
const LinearInterpolator kLinear;
const FastOutSlowInInterpolator kFosi;
const AccelerateInterpolator kAccel3{3.0};
const DecelerateInterpolator kDecelHalf{0.5};
const CubicBezierInterpolator kEase{0.25, 0.1, 0.25, 1.0};

INSTANTIATE_TEST_SUITE_P(
    AllInterpolators, InterpolatorProperty,
    ::testing::Values(InterpCase{"linear", &kLinear}, InterpCase{"accelerate", &kAccel},
                      InterpCase{"decelerate", &kDecel}, InterpCase{"fast_out_slow_in", &kFosi},
                      InterpCase{"accelerate_f3", &kAccel3},
                      InterpCase{"decelerate_f05", &kDecelHalf}, InterpCase{"ease", &kEase}),
    [](const ::testing::TestParamInfo<InterpCase>& info) { return info.param.label; });

// ---------------------------------------------------------------------
// Paper-anchored values.
// ---------------------------------------------------------------------

TEST(Accelerate, IsTheToastExitParabola) {
  // Section IV-B: the disappearance follows y = x^2.
  for (double x : {0.1, 0.3, 0.5, 0.8}) EXPECT_NEAR(kAccel.value(x), x * x, 1e-12);
}

TEST(Decelerate, IsTheToastEnterParabola) {
  // Section IV-B: the appearance follows y = 1 - (1-x)^2.
  for (double x : {0.1, 0.3, 0.5, 0.8}) {
    EXPECT_NEAR(kDecel.value(x), 1.0 - (1.0 - x) * (1.0 - x), 1e-12);
  }
}

TEST(Accelerate, SlowAtStart) {
  // The exploited asymmetry: after 20% of the exit animation only 4% of
  // the fade has happened — the old toast is still almost fully opaque.
  EXPECT_LT(kAccel.value(0.2), 0.05);
}

TEST(Decelerate, FastAtStart) {
  // After 20% of the enter animation the new toast is already 36% faded
  // in; the paper uses this to hide toast switching.
  EXPECT_GT(kDecel.value(0.2), 0.35);
}

TEST(FastOutSlowIn, LessThanHalfInFirst100msOf360) {
  // Section III-B / Fig. 2: "the animation shows less than 50% of the
  // notification view in the first 100 ms" (x = 100/360).
  EXPECT_LT(kFosi.value(100.0 / 360.0), 0.50);
  EXPECT_GT(kFosi.value(100.0 / 360.0), 0.25);  // Fig. 2 shape
}

TEST(FastOutSlowIn, FirstFrameShowsAboutPointOneSevenPercent) {
  // Section III-B: the 10 ms first frame reveals ~0.17% of the view.
  const double y = kFosi.value(10.0 / 360.0);
  EXPECT_NEAR(y, 0.0017, 0.0006);
}

TEST(FastOutSlowIn, FirstFramePixelsRoundToZeroOn72pxView) {
  const double px = kFosi.value(10.0 / 360.0) * 72.0;
  EXPECT_LT(px, 0.5);  // 0.1224 px in the paper -> rounds to 0
}

TEST(FastOutSlowIn, MatchesBezierControlPoints) {
  const FastOutSlowInInterpolator f;
  EXPECT_DOUBLE_EQ(f.x1(), 0.4);
  EXPECT_DOUBLE_EQ(f.y1(), 0.0);
  EXPECT_DOUBLE_EQ(f.x2(), 0.2);
  EXPECT_DOUBLE_EQ(f.y2(), 1.0);
}

TEST(CubicBezier, LinearControlPointsGiveIdentity) {
  const CubicBezierInterpolator f{1.0 / 3.0, 1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0};
  for (double x : {0.05, 0.3, 0.62, 0.97}) EXPECT_NEAR(f.value(x), x, 1e-6);
}

TEST(CubicBezier, ControlXClampedInto01) {
  const CubicBezierInterpolator f{-2.0, 0.0, 7.0, 1.0};
  EXPECT_DOUBLE_EQ(f.x1(), 0.0);
  EXPECT_DOUBLE_EQ(f.x2(), 1.0);
  // Still a valid monotone easing.
  EXPECT_NEAR(f.value(0.0), 0.0, 1e-9);
  EXPECT_NEAR(f.value(1.0), 1.0, 1e-9);
}

TEST(Singletons, AreTheExpectedFamilies) {
  EXPECT_EQ(fast_out_slow_in().name(), "FastOutSlowIn");
  EXPECT_EQ(accelerate().name(), "Accelerate");
  EXPECT_EQ(decelerate().name(), "Decelerate");
  EXPECT_EQ(linear().name(), "Linear");
}

// ---------------------------------------------------------------------
// The wider Android interpolator family (not used by the attacks, but
// part of the animation library a downstream user would expect).
// ---------------------------------------------------------------------

TEST(AccelerateDecelerate, CosineEasing) {
  const AccelerateDecelerateInterpolator f;
  EXPECT_NEAR(f.value(0.0), 0.0, 1e-12);
  EXPECT_NEAR(f.value(0.5), 0.5, 1e-12);
  EXPECT_NEAR(f.value(1.0), 1.0, 1e-12);
  // Slow at both ends, fast in the middle.
  EXPECT_LT(f.value(0.1), 0.1);
  EXPECT_GT(f.value(0.9), 0.9);
}

TEST(Anticipate, DipsBelowZeroThenArrives) {
  const AnticipateInterpolator f;
  EXPECT_NEAR(f.value(0.0), 0.0, 1e-12);
  EXPECT_NEAR(f.value(1.0), 1.0, 1e-12);
  double min_v = 0.0;
  for (int i = 0; i <= 100; ++i) min_v = std::min(min_v, f.value(i / 100.0));
  EXPECT_LT(min_v, -0.05);  // the wind-up
}

TEST(Overshoot, ExceedsOneThenSettles) {
  const OvershootInterpolator f;
  EXPECT_NEAR(f.value(0.0), 0.0, 1e-12);
  EXPECT_NEAR(f.value(1.0), 1.0, 1e-12);
  double max_v = 0.0;
  for (int i = 0; i <= 100; ++i) max_v = std::max(max_v, f.value(i / 100.0));
  EXPECT_GT(max_v, 1.05);
}

TEST(Bounce, EndsSettledAfterBounces) {
  const BounceInterpolator f;
  EXPECT_NEAR(f.value(0.0), 0.0, 1e-9);
  EXPECT_NEAR(f.value(1.0), 1.0, 0.02);
  // Count descents (bounce rebounds).
  int descents = 0;
  double prev = f.value(0.0);
  bool descending = false;
  for (int i = 1; i <= 200; ++i) {
    const double v = f.value(i / 200.0);
    if (v < prev - 1e-9 && !descending) {
      descending = true;
      ++descents;
    } else if (v > prev + 1e-9) {
      descending = false;
    }
    prev = v;
  }
  EXPECT_GE(descents, 2);  // at least two visible bounces
}

TEST(MaterialCurves, StandardInOutPair) {
  const LinearOutSlowInInterpolator in;   // incoming: fast first
  const FastOutLinearInInterpolator out;  // outgoing: slow first
  EXPECT_GT(in.value(0.2), 0.35);
  EXPECT_LT(out.value(0.2), 0.12);
  EXPECT_EQ(in.name(), "LinearOutSlowIn");
  EXPECT_EQ(out.name(), "FastOutLinearIn");
}

TEST(Inverse, FastOutSlowInObservabilityThreshold) {
  // The x at which the notification view first reveals 1/72 of itself —
  // the quantity behind the paper's Ta (Eq. 3).
  const double x = kFosi.inverse(1.0 / 72.0);
  EXPECT_GT(x * 360.0, 10.0);  // later than the first frame
  EXPECT_LT(x * 360.0, 60.0);  // well before the animation midpoint
}

}  // namespace
}  // namespace animus::ui
