// Execution backends: the equivalence contract (satellite of the
// pluggable-backend refactor). The same workload must produce
// byte-identical encoded results — and identical error indices — under
// ThreadBackend at any thread count and ProcessShardBackend at any
// shard count; a worker crash mid-sweep must be reaped without losing
// the rest of the sweep.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "obs/trace_capture.hpp"
#include "runner/backend.hpp"
#include "runner/bench_cli.hpp"
#include "runner/field_codec.hpp"
#include "runner/runner.hpp"
#include "server/world.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/trace.hpp"

namespace {

using namespace animus;

constexpr std::size_t kTotal = 60;

// A seed-dependent trial body: encodes "index plus a value drawn from
// the trial's RNG stream", and fails deterministically on indices
// divisible by 13 — so both result bytes and error placement depend on
// the backend honoring the shared seed derivation.
std::string workload(const runner::TrialContext& ctx) {
  if (ctx.index % 13 == 5) {
    throw std::runtime_error("boom " + std::to_string(ctx.index));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%zu:%" PRIu64 ":", ctx.index, ctx.seed);
  return buf + runner::TrialCodec<double>::encode(ctx.rng().uniform01());
}

std::vector<std::size_t> all_indices() {
  std::vector<std::size_t> v(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) v[i] = i;
  return v;
}

runner::EncodedSweep run_with(runner::ExecutionBackend& backend) {
  return backend.run_encoded(all_indices(), kTotal, workload, nullptr);
}

void expect_equivalent(const runner::EncodedSweep& a, const runner::EncodedSweep& b,
                       const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.encoded.size(), b.encoded.size());
  for (std::size_t i = 0; i < a.encoded.size(); ++i) {
    EXPECT_EQ(a.produced[i], b.produced[i]) << "slot " << i;
    EXPECT_EQ(a.encoded[i], b.encoded[i]) << "slot " << i;
  }
  ASSERT_EQ(a.errors.size(), b.errors.size());
  for (std::size_t i = 0; i < a.errors.size(); ++i) {
    EXPECT_EQ(a.errors[i].index, b.errors[i].index);
    EXPECT_EQ(a.errors[i].seed, b.errors[i].seed);
    EXPECT_EQ(a.errors[i].what, b.errors[i].what);
  }
}

TEST(Backends, ThreadAndProcessBackendsAreByteIdentical) {
  runner::RunOptions run;
  run.root_seed = 0xBEEF;

  runner::RunOptions one = run;
  one.jobs = 1;
  runner::ThreadBackend threads1{one};
  runner::RunOptions eight = run;
  eight.jobs = 8;
  runner::ThreadBackend threads8{eight};
  runner::ProcessShardBackend process2{run, {/*shards=*/2}};

  const auto r1 = run_with(threads1);
  const auto r8 = run_with(threads8);
  const auto rp = run_with(process2);

  // The baseline itself is sane: 60 slots, failures exactly where the
  // body says, successes carrying the root-derived seed.
  ASSERT_EQ(r1.encoded.size(), kTotal);
  std::set<std::size_t> failed;
  for (const auto& e : r1.errors) failed.insert(e.index);
  EXPECT_EQ(failed, (std::set<std::size_t>{5, 18, 31, 44, 57}));
  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(static_cast<bool>(r1.produced[i]), failed.count(i) == 0) << i;
  }
  for (const auto& e : r1.errors) {
    EXPECT_EQ(e.seed, runner::trial_seed(0xBEEF, e.index));
    EXPECT_EQ(e.what, "boom " + std::to_string(e.index));
  }

  expect_equivalent(r1, r8, "threads jobs=1 vs jobs=8");
  expect_equivalent(r1, rp, "threads jobs=1 vs process shards=2");
  EXPECT_EQ(rp.stats.jobs, 2);
}

TEST(Backends, BackendsAgreeOnSubsetsToo) {
  // Resume paths hand backends a sparse subset; slot keying must still
  // line up with the subset order, not the submission index.
  std::vector<std::size_t> subset = {57, 2, 40, 19, 5, 33};
  runner::RunOptions run;
  run.jobs = 4;
  runner::ThreadBackend threads{run};
  runner::ProcessShardBackend process{run, {/*shards=*/3}};

  const auto rt = threads.run_encoded(subset, kTotal, workload, nullptr);
  const auto rp = process.run_encoded(subset, kTotal, workload, nullptr);
  expect_equivalent(rt, rp, "subset threads vs process");
  ASSERT_EQ(rt.encoded.size(), subset.size());
  EXPECT_TRUE(rt.produced[1]);
  EXPECT_EQ(rt.encoded[1].rfind("2:", 0), 0u);  // slot 1 holds index 2
  // Errors carry submission indices (5 and 57), sorted ascending.
  ASSERT_EQ(rt.errors.size(), 2u);
  EXPECT_EQ(rt.errors[0].index, 5u);
  EXPECT_EQ(rt.errors[1].index, 57u);
}

TEST(Backends, SinkSeesEverySuccessfulTrialOnce) {
  runner::RunOptions run;
  run.jobs = 1;
  runner::ProcessShardBackend process{run, {/*shards=*/2}};
  std::vector<char> seen(kTotal, 0);
  std::size_t calls = 0;
  const auto sweep = process.run_encoded(
      all_indices(), kTotal, workload,
      [&](std::size_t index, std::uint64_t seed, std::string_view encoded) {
        ++calls;
        ASSERT_LT(index, kTotal);
        EXPECT_EQ(seen[index], 0) << "duplicate sink call for " << index;
        seen[index] = 1;
        EXPECT_EQ(seed, runner::trial_seed(run.root_seed, index));
        EXPECT_FALSE(encoded.empty());
      });
  EXPECT_EQ(calls, kTotal - sweep.errors.size());
  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(static_cast<bool>(seen[i]), static_cast<bool>(sweep.produced[i])) << i;
  }
}

TEST(Backends, CrashedWorkerIsReapedWithoutLosingTheSweep) {
  runner::RunOptions run;
  runner::ProcessShardBackend::Options opts;
  opts.shards = 2;
  opts.crash_trial = 21;  // worker SIGKILLs itself when handed trial 21
  runner::ProcessShardBackend process{run, opts};

  const auto sweep = run_with(process);
  std::set<std::size_t> failed;
  for (const auto& e : sweep.errors) failed.insert(e.index);
  // The organic failures all still happen AND the crashed trial is
  // attributed — nothing else is lost.
  EXPECT_EQ(failed, (std::set<std::size_t>{5, 18, 21, 31, 44, 57}));
  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(static_cast<bool>(sweep.produced[i]), failed.count(i) == 0) << i;
  }
  for (const auto& e : sweep.errors) {
    if (e.index == 21) {
      EXPECT_NE(e.what.find("signal"), std::string::npos) << e.what;
    } else {
      EXPECT_EQ(e.what.rfind("boom", 0), 0u) << e.what;
    }
  }
}

TEST(Backends, MakeBackendResolvesNamesAndRejectsUnknown) {
  runner::RunOptions run;
  std::string error;
  auto threads = runner::make_backend("", run, 0, &error);
  ASSERT_NE(threads, nullptr) << error;
  EXPECT_STREQ(threads->name(), "threads");
  auto process = runner::make_backend("process", run, 3, &error);
  ASSERT_NE(process, nullptr) << error;
  EXPECT_STREQ(process->name(), "process");
  EXPECT_EQ(process->parallelism(), 3);

  auto bogus = runner::make_backend("gpu", run, 0, &error);
  EXPECT_EQ(bogus, nullptr);
  EXPECT_NE(error.find("gpu"), std::string::npos);
}

TEST(Backends, TraceRecordsSurviveTheWireFormatExactly) {
  sim::TraceRecorder trace;
  sim::TraceRecord awkward;
  awkward.time = sim::ms(3);
  awkward.category = sim::TraceCategory::kSim;
  awkward.message = "msg\nwith\\weird \"bytes\" and 17:colons";
  awkward.value = 1.0 / 3.0;  // exercises %.17g exactness
  awkward.phase = sim::TracePhase::kSpan;
  awkward.duration = sim::ms(7);
  awkward.flow = 42;
  awkward.flow_kind = "kind with spaces";
  trace.append(awkward);
  trace.append(sim::TraceRecord{});  // all-defaults record
  const std::string wire = sim::serialize_records(trace);

  sim::TraceRecorder back;
  ASSERT_TRUE(sim::deserialize_records(wire, &back));
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace.records()[i];
    const auto& b = back.records()[i];
    EXPECT_EQ(b.time, a.time) << i;
    EXPECT_EQ(b.category, a.category) << i;
    EXPECT_EQ(b.phase, a.phase) << i;
    EXPECT_DOUBLE_EQ(b.value, a.value) << i;
    EXPECT_EQ(b.duration, a.duration) << i;
    EXPECT_EQ(b.flow, a.flow) << i;
    EXPECT_EQ(b.flow_kind, a.flow_kind) << i;
    EXPECT_EQ(b.message, a.message) << i;
  }
  // Round-trip determinism: re-serializing yields the same bytes.
  EXPECT_EQ(sim::serialize_records(back), wire);

  sim::TraceRecorder reject;
  EXPECT_FALSE(sim::deserialize_records("animus-trace 1 junk", &reject));
  EXPECT_FALSE(sim::deserialize_records("animus-trace 1 1\n3000 99 0 0 0 0 1:x0:", &reject));
  EXPECT_TRUE(sim::deserialize_records("animus-trace 1 0\n", &reject));
  EXPECT_EQ(reject.size(), 0u);
}

TEST(Backends, ProcessBackendShipsTheArmedTrialTraceAcrossTheFork) {
  // --trace-out under --backend=process: the armed trial runs in a
  // forked shard worker, which claims the capture in its copy of the
  // process and ships the spans back over the result pipe. The parent's
  // captured trace must be byte-identical to a thread-backend run.
  const std::vector<std::size_t> indices{0, 1, 2, 3, 4, 5};
  const runner::EncodedBody body = [](const runner::TrialContext& ctx) -> std::string {
    server::WorldConfig wc;
    wc.seed = ctx.seed;
    wc.trace_enabled = false;
    server::World w{wc};
    w.server().grant_overlay_permission(server::kMalwareUid);
    w.server().add_view(server::kMalwareUid, {});
    w.run_until(sim::ms(50));
    return "done";
  };
  auto capture_with = [&](runner::ExecutionBackend& backend) {
    auto& cap = obs::trace_capture();
    cap.reset();
    cap.arm(2);
    backend.run_encoded(indices, indices.size(), body, nullptr);
    EXPECT_TRUE(cap.captured());
    std::string json = sim::to_chrome_trace_json(cap.trace());
    cap.reset();
    return json;
  };

  runner::RunOptions run;
  run.root_seed = 0x7ACE;
  run.jobs = 2;
  runner::ThreadBackend threads{run};
  runner::ProcessShardBackend process{run, {/*shards=*/2}};
  const std::string via_threads = capture_with(threads);
  const std::string via_process = capture_with(process);
  EXPECT_GT(via_threads.size(), 2u);
  EXPECT_EQ(via_threads, via_process);
}

TEST(Backends, ProcessBackendMergesProfilesByteIdenticallyWithThreads) {
  // --profile-out under --backend=process: every forked shard worker
  // resets its inherited counts, profiles its own trials, and ships the
  // delta back over the result pipe ("P" message). The parent's merged
  // snapshot must render byte-identically to a threads-backend run —
  // span statistics are commutative over the per-trial span multiset.
  const std::vector<std::size_t> indices{0, 1, 2, 3, 4, 5, 6, 7};
  const runner::EncodedBody body = [](const runner::TrialContext& ctx) -> std::string {
    server::WorldConfig wc;
    wc.seed = ctx.seed;
    wc.trace_enabled = false;
    server::World w{wc};
    w.server().grant_overlay_permission(server::kMalwareUid);
    w.server().add_view(server::kMalwareUid, {});
    w.run_until(sim::ms(40 + 10 * (ctx.index % 3)));
    return "done";
  };
  auto profile_with = [&](runner::ExecutionBackend& backend) {
    auto& prof = obs::span_profiler();
    prof.enable();
    prof.reset();
    backend.run_encoded(indices, indices.size(), body, nullptr);
    const std::string json = obs::to_profile_json(prof.snapshot());
    prof.reset();
    prof.disable();
    return json;
  };

  runner::RunOptions run;
  run.root_seed = 0x9F0F;
  run.jobs = 4;
  runner::ThreadBackend threads{run};
  runner::ProcessShardBackend process{run, {/*shards=*/2}};
  const std::string via_threads = profile_with(threads);
  const std::string via_process = profile_with(process);
  // Real instrumentation fired: the World run_until span is always there.
  EXPECT_NE(via_threads.find("world.run_until"), std::string::npos);
  EXPECT_NE(via_threads.find("binder.addView"), std::string::npos);
  EXPECT_EQ(via_threads, via_process);
}

TEST(Backends, BatchedDispatchIsByteIdenticalAtAnyBatchSize) {
  // The batching/credit protocol must be unobservable in the results:
  // any {batch, shards} combination — including batch=0 (auto-sized
  // frames) — produces the same bytes and the same errors as the
  // single-threaded reference.
  runner::RunOptions run;
  run.root_seed = 0xBA7C;
  runner::RunOptions one = run;
  one.jobs = 1;
  runner::ThreadBackend reference{one};
  const auto want = run_with(reference);

  for (const int batch : {0, 1, 2, 8, 64}) {
    for (const int shards : {2, 5}) {
      runner::ProcessShardBackend::Options opts;
      opts.shards = shards;
      opts.batch = batch;
      runner::ProcessShardBackend process{run, opts};
      const auto got = run_with(process);
      const std::string what =
          "batch=" + std::to_string(batch) + " shards=" + std::to_string(shards);
      expect_equivalent(want, got, what.c_str());
      // Dispatch accounting matches the mode: the compatibility mode
      // (batch=1) sends single-trial frames; batched modes frame
      // multiple trials per command write.
      EXPECT_GT(got.stats.dispatch.frames, 0u) << what;
      if (batch == 1) {
        EXPECT_EQ(got.stats.dispatch.max_batch, 1u) << what;
      } else if (batch > 1) {
        EXPECT_LE(got.stats.dispatch.max_batch,
                  static_cast<std::uint64_t>(batch)) << what;
        EXPECT_GT(got.stats.dispatch.max_batch, 1u) << what;
      }
    }
  }

  // Sparse resume subsets keep slot keying under batching too.
  std::vector<std::size_t> subset = {57, 2, 40, 19, 5, 33, 26, 8, 11};
  const auto ref_subset = reference.run_encoded(subset, kTotal, workload, nullptr);
  runner::ProcessShardBackend::Options opts;
  opts.shards = 3;
  opts.batch = 4;
  runner::ProcessShardBackend process{run, opts};
  const auto got_subset = process.run_encoded(subset, kTotal, workload, nullptr);
  expect_equivalent(ref_subset, got_subset, "subset batch=4 shards=3");
}

TEST(Backends, ShardKilledMidBatchLosesExactlyTheInFlightTrial) {
  // SIGKILL mid-batch: the worker stamps its shared progress word as
  // each trial starts, so the parent blames exactly the
  // started-but-unresulted trial. Everything
  // else in the dead worker's credit window — trials it never started
  // AND trials it finished whose buffered results died with it — is
  // re-dispatched to the survivors and completes normally.
  runner::RunOptions run;
  runner::ProcessShardBackend::Options opts;
  opts.shards = 2;
  opts.batch = 8;
  opts.crash_trial = 21;  // worker SIGKILLs itself when handed trial 21
  runner::ProcessShardBackend process{run, opts};

  const auto sweep = run_with(process);
  std::set<std::size_t> failed;
  for (const auto& e : sweep.errors) failed.insert(e.index);
  EXPECT_EQ(failed, (std::set<std::size_t>{5, 18, 21, 31, 44, 57}));
  for (std::size_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(static_cast<bool>(sweep.produced[i]), failed.count(i) == 0) << i;
  }
  std::size_t signal_errors = 0;
  for (const auto& e : sweep.errors) {
    if (e.index == 21) {
      ++signal_errors;
      EXPECT_NE(e.what.find("signal"), std::string::npos) << e.what;
      EXPECT_NE(e.what.find("trial 21"), std::string::npos) << e.what;
    } else {
      EXPECT_EQ(e.what.rfind("boom", 0), 0u) << e.what;
    }
  }
  EXPECT_EQ(signal_errors, 1u);
  // Trial 21 sat in an 8-trial frame, so killing the worker stranded
  // window neighbors that had to be re-queued to the surviving shard.
  EXPECT_GE(sweep.stats.dispatch.redispatched, 1u);
}

TEST(Backends, TinyPipeBufferForcesShortWritesWithoutCorruption) {
  // Regression test for short-write/short-read handling: shrink both
  // pipes to one page (F_SETPIPE_SZ) and push frames and result
  // payloads far larger than that, so the parent's writev resumes
  // mid-frame (EAGAIN on the non-blocking command pipe), the worker's
  // frame reads arrive fragmented, and the batched result flush spans
  // many partial writes. Payloads carry newlines and backslashes so
  // escaping is exercised across fragment boundaries.
  constexpr std::size_t kBig = 1024;
  std::vector<std::size_t> indices(kBig);
  for (std::size_t i = 0; i < kBig; ++i) indices[i] = i;
  const runner::EncodedBody body = [](const runner::TrialContext& ctx) -> std::string {
    std::string payload = std::to_string(ctx.index) + ":" + std::to_string(ctx.seed) + ":";
    payload.append(1500 + ctx.index % 137, static_cast<char>('a' + ctx.index % 23));
    payload += "\nline\\two\n";
    return payload;
  };

  runner::RunOptions run;
  run.root_seed = 0x517E;
  runner::RunOptions one = run;
  one.jobs = 1;
  runner::ThreadBackend reference{one};
  const auto want = reference.run_encoded(indices, kBig, body, nullptr);

  runner::ProcessShardBackend::Options opts;
  opts.shards = 2;
  opts.batch = 256;   // ~2.3 KB command frames, two in flight per worker
  opts.pipe_buf = 4096;  // one page — the smallest a pipe can get
  runner::ProcessShardBackend process{run, opts};
  const auto got = process.run_encoded(indices, kBig, body, nullptr);
  expect_equivalent(want, got, "tiny pipe, huge frames");
  EXPECT_TRUE(got.errors.empty());
}

TEST(Backends, FaultScheduleIsDeterministicAndRateShaped) {
  // The --inject-fault schedule is a pure function of (root seed, rate,
  // index): stable across calls, empty at 0, total at 1, and roughly
  // rate-proportional in between.
  const std::uint64_t root = 0xFA11;
  int hits = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    const bool a = runner::fault_scheduled(root, 0.1, i);
    const bool b = runner::fault_scheduled(root, 0.1, i);
    EXPECT_EQ(a, b);
    hits += a;
    EXPECT_FALSE(runner::fault_scheduled(root, 0.0, i));
    EXPECT_TRUE(runner::fault_scheduled(root, 1.0, i));
  }
  EXPECT_GT(hits, 60);
  EXPECT_LT(hits, 140);
  // A different root seed draws a different schedule.
  int moved = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    moved += runner::fault_scheduled(root, 0.1, i) != runner::fault_scheduled(root + 1, 0.1, i);
  }
  EXPECT_GT(moved, 0);
}

}  // namespace
