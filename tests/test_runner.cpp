// The parallel runner's contract: submission-order results, bit-identical
// determinism at any thread count, structured error capture, and sane
// bookkeeping on the edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runner/runner.hpp"

namespace animus::runner {
namespace {

// A trial body with real floating-point work, so bitwise comparison of
// results is a meaningful determinism check.
double churn(const TrialContext& ctx) {
  sim::Rng rng = ctx.rng();
  double acc = 0.0;
  for (int i = 0; i < 64; ++i) acc += rng.normal(0.0, 1.0) * rng.uniform01();
  return acc + static_cast<double>(ctx.index);
}

std::vector<int> items(std::size_t n) {
  std::vector<int> xs(n);
  std::iota(xs.begin(), xs.end(), 0);
  return xs;
}

TEST(Runner, ResultsArriveInSubmissionOrder) {
  RunOptions opt;
  opt.jobs = 4;
  opt.chunk = 1;  // maximize interleaving
  const auto sw = sweep(
      items(64),
      [](int item, const TrialContext& ctx) {
        // Early trials sleep longer, so completion order inverts
        // submission order unless the runner restores it.
        std::this_thread::sleep_for(std::chrono::microseconds(200 * (64 - item)));
        return static_cast<std::size_t>(item) * 10 + ctx.index;
      },
      opt);
  ASSERT_TRUE(sw.ok());
  ASSERT_EQ(sw.results.size(), 64u);
  for (std::size_t i = 0; i < sw.results.size(); ++i) EXPECT_EQ(sw.results[i], i * 11);
}

TEST(Runner, BitIdenticalAcrossThreadCounts) {
  RunOptions serial;
  serial.jobs = 1;
  const auto a = sweep(items(200), [](int, const TrialContext& ctx) { return churn(ctx); },
                       serial);
  for (int jobs : {2, 8}) {
    RunOptions opt;
    opt.jobs = jobs;
    opt.chunk = 3;  // deliberately unaligned with the total
    const auto b = sweep(items(200), [](int, const TrialContext& ctx) { return churn(ctx); },
                         opt);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.results, b.results) << "jobs=" << jobs;  // bitwise, not approximate
  }
}

TEST(Runner, StealingKeepsSkewedSweepBitIdentical) {
  // Deliberately skewed trial costs — a few pathological trials are
  // ~100x the rest, the shape of Table II's per-device binary searches.
  // Under the old fixed-chunk cursor these serialized a worker; under
  // work stealing idle workers drain them item by item. Either way the
  // results must stay bitwise equal to the serial run: seeds are a pure
  // function of the submission index, so scheduling may change only
  // wall-clock, never output.
  const auto body = [](int item, const TrialContext& ctx) {
    sim::Rng rng = ctx.rng();
    const int spins = item % 29 == 0 ? 6400 : 64;  // heavy tail
    double acc = 0.0;
    for (int i = 0; i < spins; ++i) acc += rng.normal(0.0, 1.0) * rng.uniform01();
    return acc + static_cast<double>(ctx.index);
  };
  RunOptions serial;
  serial.jobs = 1;
  const auto a = sweep(items(233), body, serial);
  ASSERT_TRUE(a.ok());
  RunOptions stealing;
  stealing.jobs = 8;
  const auto b = sweep(items(233), body, stealing);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.results, b.results);  // bitwise, not approximate
  EXPECT_EQ(b.stats.samples_ms.size(), 233u);  // per-trial samples intact
}

TEST(Runner, SeedsDependOnRootSeedOnly) {
  const auto seeds_with = [](std::uint64_t root, int jobs) {
    RunOptions opt;
    opt.jobs = jobs;
    opt.root_seed = root;
    return sweep(items(32), [](int, const TrialContext& ctx) { return ctx.seed; }, opt).results;
  };
  EXPECT_EQ(seeds_with(7, 1), seeds_with(7, 8));
  EXPECT_NE(seeds_with(7, 1), seeds_with(8, 1));
  // Distinct trials get distinct streams.
  auto seeds = seeds_with(7, 1);
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

TEST(Runner, NonDeterministicModeVariesBetweenRuns) {
  RunOptions opt;
  opt.jobs = 2;
  opt.deterministic = false;
  const auto fn = [](int, const TrialContext& ctx) { return ctx.seed; };
  const auto a = sweep(items(8), fn, opt);
  const auto b = sweep(items(8), fn, opt);
  EXPECT_NE(a.results, b.results);  // collides with probability ~2^-64
}

TEST(Runner, ThrowingTrialBecomesTrialErrorAndSiblingsComplete) {
  RunOptions opt;
  opt.jobs = 4;
  const auto sw = sweep(
      items(40),
      [](int item, const TrialContext&) -> int {
        if (item == 7) throw std::runtime_error("boom at seven");
        if (item == 23) throw 42;  // non-std exception
        return item + 1;
      },
      opt);
  EXPECT_FALSE(sw.ok());
  ASSERT_EQ(sw.errors.size(), 2u);
  EXPECT_EQ(sw.errors[0].index, 7u);  // sorted by submission index
  EXPECT_EQ(sw.errors[0].what, "boom at seven");
  EXPECT_NE(sw.errors[0].seed, 0u);
  EXPECT_EQ(sw.errors[1].index, 23u);
  EXPECT_EQ(sw.errors[1].what, "unknown exception");
  // The failed slots hold default-constructed results; all 38 siblings ran.
  EXPECT_EQ(sw.results[7], 0);
  EXPECT_EQ(sw.results[23], 0);
  for (std::size_t i = 0; i < sw.results.size(); ++i) {
    if (i == 7 || i == 23) continue;
    EXPECT_EQ(sw.results[i], static_cast<int>(i) + 1);
  }
}

TEST(Runner, EmptySweep) {
  const auto sw = sweep(std::vector<int>{}, [](int, const TrialContext&) { return 1; });
  EXPECT_TRUE(sw.ok());
  EXPECT_TRUE(sw.results.empty());
  EXPECT_EQ(sw.stats.trial_ms.count(), 0u);
  EXPECT_EQ(sw.stats.utilization(), 0.0);
  EXPECT_EQ(sw.stats.to_string(), "0 trials");
}

TEST(Runner, ProgressReachesTotal) {
  RunOptions opt;
  opt.jobs = 2;
  opt.chunk = 5;
  std::size_t max_done = 0;
  std::size_t calls = 0;
  opt.progress = [&](const Progress& p) {
    // Serialized by the runner, so plain writes are safe here.
    EXPECT_LE(p.done, p.total);
    EXPECT_EQ(p.total, 33u);
    EXPECT_LE(p.workers_busy, p.jobs);
    max_done = std::max(max_done, p.done);
    ++calls;
  };
  const auto sw = sweep(items(33), [](int item, const TrialContext&) { return item; }, opt);
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(max_done, 33u);
  EXPECT_GE(calls, 33u / 5u);  // one call per chunk at minimum
}

TEST(Runner, StatsCountTrialsAndMeasureTime) {
  RunOptions opt;
  opt.jobs = 3;
  const auto sw = sweep(
      items(30),
      [](int item, const TrialContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return item;
      },
      opt);
  EXPECT_EQ(sw.stats.trial_ms.count(), 30u);
  EXPECT_GE(sw.stats.trial_ms.mean(), 0.5);  // each trial slept ~1 ms
  EXPECT_GT(sw.stats.wall_ms, 0.0);
  EXPECT_GT(sw.stats.utilization(), 0.0);
  EXPECT_LE(sw.stats.utilization(), 1.0);
  EXPECT_EQ(sw.stats.jobs, 3);
  EXPECT_NE(sw.stats.to_string().find("30 trials"), std::string::npos);
}

TEST(Runner, JobsResolveAgainstHardwareAndTotal) {
  EXPECT_GE(ParallelRunner{}.jobs(), 1);
  RunOptions opt;
  opt.jobs = 16;
  const ParallelRunner pool{opt};
  EXPECT_EQ(pool.jobs(), 16);
  // More workers than trials: the pool shrinks to the trial count.
  std::atomic<int> ran{0};
  const auto stats = pool.run(3, [&](const TrialContext&) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(stats.jobs, 3);
}

TEST(Runner, ChunkSizeDoesNotAffectResults) {
  const auto with_chunk = [](std::size_t chunk) {
    RunOptions opt;
    opt.jobs = 4;
    opt.chunk = chunk;
    return sweep(items(97), [](int, const TrialContext& ctx) { return churn(ctx); }, opt)
        .results;
  };
  const auto a = with_chunk(1);
  EXPECT_EQ(a, with_chunk(13));
  EXPECT_EQ(a, with_chunk(1000));  // one worker takes everything
}

}  // namespace
}  // namespace animus::runner
