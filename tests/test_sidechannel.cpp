#include "sidechannel/shared_mem.hpp"

#include <gtest/gtest.h>

#include "core/password_stealer.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "victim/victim_app.hpp"

namespace animus::sidechannel {
namespace {

using sim::ms;
using sim::seconds;

server::World make_world(std::uint64_t seed = 8) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = seed;
  wc.trace_enabled = false;
  return server::World{wc};
}

TEST(SharedMemOracle, CountersAccumulatePerUid) {
  auto world = make_world();
  SharedMemOracle oracle{world};
  EXPECT_EQ(oracle.counter_kb(1), 0.0);
  oracle.record_transition(1, "A", {100.0, 0.0});
  oracle.record_transition(1, "B", {50.0, 0.0});
  oracle.record_transition(2, "A", {100.0, 0.0});
  EXPECT_NEAR(oracle.counter_kb(1), 150.0, 1e-9);
  EXPECT_NEAR(oracle.counter_kb(2), 100.0, 1e-9);
  ASSERT_EQ(oracle.history().size(), 3u);
  EXPECT_EQ(oracle.history()[1].activity, "B");
}

TEST(SharedMemOracle, DeltasFollowSignatureDistribution) {
  auto world = make_world();
  SharedMemOracle oracle{world};
  const TransitionSignature sig{500.0, 20.0};
  for (int i = 0; i < 200; ++i) oracle.record_transition(1, "X", sig);
  double sum = 0;
  for (const auto& ev : oracle.history()) sum += ev.delta_kb;
  EXPECT_NEAR(sum / 200.0, 500.0, 10.0);
}

TEST(UiStateInferrer, DetectsTrainedTransitions) {
  auto world = make_world();
  SharedMemOracle oracle{world};
  UiStateInferrer inferrer{world, oracle, 1};
  inferrer.learn("login", login_screen_signature());
  inferrer.learn("password", password_focus_signature());
  std::vector<std::string> seen;
  inferrer.start([&seen](const std::string& a, sim::SimTime) { seen.push_back(a); });
  world.loop().schedule_at(ms(500), [&oracle] {
    oracle.record_transition(1, "login", login_screen_signature());
  });
  world.loop().schedule_at(seconds(2), [&oracle] {
    oracle.record_transition(1, "password", password_focus_signature());
  });
  world.run_until(seconds(3));
  inferrer.stop();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "login");
  EXPECT_EQ(seen[1], "password");
  EXPECT_GT(inferrer.polls(), 50);
}

TEST(UiStateInferrer, IgnoresUntrainedJumps) {
  auto world = make_world();
  SharedMemOracle oracle{world};
  UiStateInferrer inferrer{world, oracle, 1};
  inferrer.learn("password", password_focus_signature());
  int detections = 0;
  inferrer.start([&detections](const std::string&, sim::SimTime) { ++detections; });
  world.loop().schedule_at(ms(500), [&oracle] {
    oracle.record_transition(1, "nav", generic_navigation_signature());  // 430 kB
  });
  world.run_until(seconds(2));
  inferrer.stop();
  EXPECT_EQ(detections, 0);
}

TEST(UiStateInferrer, ToleranceIsConfigurable) {
  auto world = make_world();
  SharedMemOracle oracle{world};
  UiStateInferrer::Config loose;
  loose.tolerance_kb = 1000.0;  // everything matches something
  UiStateInferrer inferrer{world, oracle, 1, loose};
  inferrer.learn("password", password_focus_signature());
  int detections = 0;
  inferrer.start([&detections](const std::string&, sim::SimTime) { ++detections; });
  world.loop().schedule_at(ms(200), [&oracle] {
    oracle.record_transition(1, "nav", generic_navigation_signature());
  });
  world.run_until(seconds(1));
  EXPECT_EQ(detections, 1);  // misclassified, as a sloppy tolerance would
}

TEST(UiStateInferrer, DetectionLatencyBoundedByPollPeriod) {
  auto world = make_world();
  SharedMemOracle oracle{world};
  UiStateInferrer inferrer{world, oracle, 1};
  sim::SimTime detected_at{0};
  inferrer.start([&detected_at](const std::string&, sim::SimTime t) { detected_at = t; });
  inferrer.learn("password", password_focus_signature());
  world.loop().schedule_at(seconds(1), [&oracle] {
    oracle.record_transition(1, "password", password_focus_signature());
  });
  world.run_until(seconds(2));
  EXPECT_GT(detected_at, seconds(1));
  EXPECT_LE(detected_at, seconds(1) + ms(60));  // within ~2 poll periods
}

TEST(SideChannelTrigger, StealsPasswordFromAccessibilityFortress) {
  // The app that defeats the accessibility trigger entirely (password
  // events suppressed, no shared parent view) still falls to the
  // shared-memory side channel — Section V's point that the trigger is
  // replaceable.
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  SharedMemOracle oracle{world};

  victim::VictimAppSpec fortress;
  fortress.name = "Fortress";
  fortress.disables_password_accessibility = true;
  fortress.shares_parent_view = false;
  victim::VictimApp app{world, fortress};
  app.attach_side_channel(oracle);
  app.open_login_screen();

  core::PasswordStealerConfig sc;
  sc.trigger = core::TriggerMode::kSharedMemory;
  sc.oracle = &oracle;
  core::PasswordStealer stealer{world, app, sc};
  ASSERT_TRUE(stealer.arm());

  // The user focuses the password field and types.
  world.loop().schedule_at(ms(500), [&world, &app] {
    world.input().inject_tap(app.password_bounds().center());
  });
  input::TypistProfile precise;
  precise.jitter_frac = 0.02;
  precise.misspell_rate = 0.0;
  input::Typist typist{precise, world.fork_rng("t")};
  const input::Keyboard kb{app.keyboard_bounds()};
  for (const auto& pt : typist.plan(kb, "aB3$", seconds(2))) {
    world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
  }
  world.run_until(seconds(6));
  const std::string decoded = stealer.finalize();
  EXPECT_TRUE(stealer.result().triggered);
  EXPECT_EQ(decoded, "aB3$");
  // No accessibility reference exists, so the widget cannot be filled.
  EXPECT_FALSE(stealer.result().widget_filled);
}

TEST(SideChannelTrigger, ArmFailsWithoutOracle) {
  auto world = make_world();
  victim::VictimApp app{world, victim::VictimAppSpec{}};
  core::PasswordStealerConfig sc;
  sc.trigger = core::TriggerMode::kSharedMemory;
  core::PasswordStealer stealer{world, app, sc};
  EXPECT_FALSE(stealer.arm());
}

}  // namespace
}  // namespace animus::sidechannel
