#include "core/toast_attack.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "percept/flicker.hpp"
#include "server/world.hpp"

namespace animus::core {
namespace {

using sim::ms;
using sim::seconds;

server::World make_world() {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.deterministic = true;
  wc.trace_enabled = false;
  return server::World{wc};
}

TEST(ToastAttack, KeepsToastOnScreenIndefinitely) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(1));
  // Sample coverage over 30 s: a toast window must be present at every
  // sample after warm-up.
  int missing = 0;
  for (int t = 1000; t <= 30000; t += 50) {
    world.run_until(ms(t));
    if (world.wms().count(server::kMalwareUid, ui::WindowType::kToast) == 0) ++missing;
  }
  EXPECT_EQ(missing, 0);
  attack.stop();
}

TEST(ToastAttack, NoPermissionOrAlertNeeded) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();  // note: no grant_overlay_permission call
  world.run_until(seconds(5));
  EXPECT_GT(attack.stats().shown, 0);
  EXPECT_EQ(world.system_ui().phase(server::kMalwareUid),
            server::SystemUi::AlertPhase::kHidden);
  attack.stop();
}

TEST(ToastAttack, QueueNeverEmptyNorNearCap) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  int max_tokens = 0;
  for (int t = 500; t <= 30000; t += 100) {
    world.run_until(ms(t));
    max_tokens = std::max(max_tokens, world.nms().queued_tokens(server::kMalwareUid));
  }
  EXPECT_LE(max_tokens, 5);
  EXPECT_EQ(world.nms().stats().rejected, 0u);
  attack.stop();
}

TEST(ToastAttack, LongDurationMeansFewerSwitches) {
  auto world_short = make_world();
  ToastAttackConfig cs;
  cs.toast_duration = server::kToastShort;
  ToastAttack a_short{world_short, cs};
  a_short.start();
  world_short.run_until(seconds(30));

  auto world_long = make_world();
  ToastAttackConfig cl;
  cl.toast_duration = server::kToastLong;
  ToastAttack a_long{world_long, cl};
  a_long.start();
  world_long.run_until(seconds(30));

  // Section IV-D: choose 3.5 s over 2 s to reduce toast switching.
  EXPECT_LT(a_long.stats().shown, a_short.stats().shown);
}

TEST(ToastAttack, NoPerceptibleFlicker) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(30));
  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid,
                                             "fake_keyboard", ms(1500), seconds(30));
  EXPECT_FALSE(flicker.noticeable);
  EXPECT_GT(flicker.min_alpha, 0.85);
  attack.stop();
}

TEST(ToastAttack, SwitchContentShowsNewBoardQuickly) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(2));
  attack.switch_content("fake_keyboard:upper");
  world.run_until(seconds(2) + ms(120));
  // The upper board must already be on screen (old toast may be fading).
  bool upper_live = false;
  for (const auto& rec : world.wms().history()) {
    if (rec.window.content == "fake_keyboard:upper" && rec.alive_at(world.now())) {
      upper_live = true;
    }
  }
  EXPECT_TRUE(upper_live);
  EXPECT_EQ(attack.stats().content_switches, 1);
  attack.stop();
}

TEST(ToastAttack, StaleBoardsNeverResurface) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(2));
  attack.switch_content("fake_keyboard:upper");
  world.run_until(seconds(3));
  // After the switch settles, no *new* lower-board toast may appear.
  const sim::SimTime settle = seconds(3);
  world.run_until(seconds(20));
  for (const auto& rec : world.wms().history()) {
    if (rec.window.content == "fake_keyboard:lower") {
      EXPECT_LT(rec.window.added_at, settle) << "stale lower board reappeared";
    }
  }
  attack.stop();
}

TEST(ToastAttack, SwitchDoesNotCauseFlicker) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(2));
  attack.switch_content("fake_keyboard:symbols");
  world.run_until(seconds(4));
  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid,
                                             "fake_keyboard", ms(1500), seconds(4));
  EXPECT_FALSE(flicker.noticeable);
  attack.stop();
}

TEST(ToastAttack, TimerModeKeepsCoverageToo) {
  auto world = make_world();
  ToastAttackConfig tc;
  tc.enqueue_interval = server::kToastLong;  // enqueue every D = 3.5 s
  ToastAttack attack{world, tc};
  attack.start();
  int missing = 0;
  for (int t = 1000; t <= 20000; t += 100) {
    world.run_until(ms(t));
    if (world.wms().count(server::kMalwareUid, ui::WindowType::kToast) == 0) ++missing;
  }
  EXPECT_EQ(missing, 0);
  EXPECT_EQ(world.nms().stats().rejected, 0u);
  attack.stop();
  world.run_until(seconds(30));
}

TEST(ToastAttack, StopLetsLastToastExpire) {
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(2));
  attack.stop();
  world.run_until(seconds(2) + 3 * server::kToastLong);
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 0);
}

TEST(ToastAttack, RespectsSerializedToastsGlobally) {
  // Another app's toast takes its turn; the attack resumes afterwards
  // without permanent loss of coverage.
  auto world = make_world();
  ToastAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(1));
  server::ToastRequest other;
  other.content = "benign:toast";
  other.bounds = {0, 0, 400, 200};
  other.duration = server::kToastShort;
  world.server().enqueue_toast(server::kBenignUid, other);
  world.run_until(seconds(40));
  // The benign toast was eventually shown...
  bool benign_shown = false;
  for (const auto& rec : world.wms().history()) {
    benign_shown |= rec.window.content == "benign:toast";
  }
  EXPECT_TRUE(benign_shown);
  // ...and the attack kept running afterwards.
  EXPECT_GT(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 0);
  attack.stop();
}

}  // namespace
}  // namespace animus::core
