#include "server/window_manager.hpp"

#include <gtest/gtest.h>

#include "sim/event_loop.hpp"
#include "sim/trace.hpp"
#include "ui/animation.hpp"

namespace animus::server {
namespace {

using sim::ms;

struct WmsFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::TraceRecorder trace;
  WindowManagerService wms{loop, trace};

  ui::Window overlay(int uid, ui::Rect r = {0, 0, 100, 100}) {
    ui::Window w;
    w.owner_uid = uid;
    w.type = ui::WindowType::kAppOverlay;
    w.bounds = r;
    w.content = "attack:overlay";
    return w;
  }
};

TEST_F(WmsFixture, AddAssignsIdsAndTimestamps) {
  loop.run_until(ms(5));
  const auto id = wms.add_window_now(overlay(1));
  EXPECT_NE(id, ui::kInvalidWindow);
  const auto* rec = wms.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->window.added_at, ms(5));
  EXPECT_TRUE(rec->alive_at(ms(5)));
  EXPECT_FALSE(rec->alive_at(ms(4)));
}

TEST_F(WmsFixture, RemoveIsInstantAndIdempotent) {
  const auto id = wms.add_window_now(overlay(1));
  loop.run_until(ms(10));
  EXPECT_TRUE(wms.remove_window_now(id));
  EXPECT_FALSE(wms.remove_window_now(id));
  EXPECT_FALSE(wms.alive_at(id, ms(10)));
  EXPECT_TRUE(wms.alive_at(id, ms(9)));  // history preserved
}

TEST_F(WmsFixture, OverlayCountTracksPerUid) {
  wms.add_window_now(overlay(1));
  const auto id2 = wms.add_window_now(overlay(1));
  wms.add_window_now(overlay(2));
  EXPECT_EQ(wms.overlay_count(1), 2);
  EXPECT_EQ(wms.overlay_count(2), 1);
  wms.remove_window_now(id2);
  EXPECT_EQ(wms.overlay_count(1), 1);
  EXPECT_EQ(wms.overlay_count(3), 0);
}

TEST_F(WmsFixture, TopmostHonoursLayersAndRecency) {
  ui::Window act;
  act.owner_uid = 1;
  act.type = ui::WindowType::kActivity;
  act.bounds = {0, 0, 200, 200};
  wms.add_window_now(act);

  ui::Window ime = act;
  ime.type = ui::WindowType::kInputMethod;
  const auto ime_id = wms.add_window_now(ime);

  const auto ov_id = wms.add_window_now(overlay(2, {0, 0, 200, 200}));

  const auto* top = wms.topmost_touchable_at({50, 50}, loop.now());
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->window.id, ov_id);  // overlay above IME

  wms.remove_window_now(ov_id);
  top = wms.topmost_touchable_at({50, 50}, loop.now());
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->window.id, ime_id);
}

TEST_F(WmsFixture, ToastIsVisibleButNeverTouchTarget) {
  ui::Window act;
  act.owner_uid = 1;
  act.type = ui::WindowType::kActivity;
  act.bounds = {0, 0, 200, 200};
  const auto act_id = wms.add_window_now(act);

  ui::Window toast;
  toast.owner_uid = 2;
  toast.bounds = {0, 0, 200, 200};
  toast.content = "fake";
  const auto toast_id = wms.add_toast_now(toast);
  loop.run_until(ms(600));  // fade-in complete

  EXPECT_EQ(wms.topmost_at({10, 10}, loop.now())->window.id, toast_id);
  EXPECT_EQ(wms.topmost_touchable_at({10, 10}, loop.now())->window.id, act_id);
}

TEST_F(WmsFixture, NonTouchableOverlayPassesThrough) {
  ui::Window act;
  act.owner_uid = 1;
  act.type = ui::WindowType::kActivity;
  act.bounds = {0, 0, 200, 200};
  const auto act_id = wms.add_window_now(act);

  auto ov = overlay(2, {0, 0, 200, 200});
  ov.flags = ui::kFlagNotTouchable;  // clickjacking configuration
  wms.add_window_now(ov);
  EXPECT_EQ(wms.topmost_touchable_at({10, 10}, loop.now())->window.id, act_id);
}

TEST_F(WmsFixture, HitTestRespectsBounds) {
  wms.add_window_now(overlay(1, {100, 100, 50, 50}));
  EXPECT_EQ(wms.topmost_touchable_at({10, 10}, loop.now()), nullptr);
  EXPECT_NE(wms.topmost_touchable_at({120, 120}, loop.now()), nullptr);
}

TEST_F(WmsFixture, ToastFadeInRaisesAlpha) {
  ui::Window toast;
  toast.owner_uid = 7;
  toast.content = "fake_keyboard:lower";
  const auto id = wms.add_toast_now(toast);
  (void)id;
  EXPECT_LT(wms.max_alpha_at(7, "fake_keyboard", ms(50)), 0.5);
  loop.run_until(ms(600));
  EXPECT_DOUBLE_EQ(wms.max_alpha_at(7, "fake_keyboard", ms(600)), 1.0);
}

TEST_F(WmsFixture, FadeOutRemovesAfterAnimation) {
  ui::Window toast;
  toast.owner_uid = 7;
  toast.content = "fake_keyboard:lower";
  const auto id = wms.add_toast_now(toast);
  loop.run_until(ms(1000));
  EXPECT_TRUE(wms.fade_out_and_remove(id));
  // Early in the fade-out the toast is still nearly opaque (y = x^2).
  EXPECT_GT(wms.max_alpha_at(7, "fake_keyboard", ms(1100)), 0.9);
  loop.run_until(ms(1500));
  EXPECT_FALSE(wms.alive_at(id, ms(1500)));
  EXPECT_DOUBLE_EQ(wms.max_alpha_at(7, "fake_keyboard", ms(1500)), 0.0);
}

TEST_F(WmsFixture, CombinedAlphaStacksOverlappingToasts) {
  ui::Window a;
  a.owner_uid = 7;
  a.content = "fake_keyboard:lower";
  const auto ida = wms.add_toast_now(a);
  loop.run_until(ms(2000));
  wms.fade_out_and_remove(ida);
  ui::Window b = a;
  loop.run_until(ms(2015));  // Tas later
  wms.add_toast_now(b);
  // Mid-switch: each surface alone dips well below 1, but combined
  // coverage stays high — the paper's "no flicker" claim.
  double min_combined = 1.0;
  for (int t = 2015; t <= 2500; t += 10) {
    min_combined = std::min(min_combined, wms.combined_alpha_at(7, "fake_keyboard", ms(t)));
  }
  EXPECT_GT(min_combined, 0.85);
}

TEST_F(WmsFixture, LiveCountAndHistory) {
  const auto a = wms.add_window_now(overlay(1));
  wms.add_window_now(overlay(1));
  EXPECT_EQ(wms.live_count(), 2u);
  wms.remove_window_now(a);
  EXPECT_EQ(wms.live_count(), 1u);
  EXPECT_EQ(wms.total_added(), 2u);
  EXPECT_EQ(wms.history().size(), 2u);
}

}  // namespace
}  // namespace animus::server
