// Field-descriptor codec: exact round-trips for every supported field
// kind (including the non-finite and subnormal doubles checkpoints must
// survive), name-matched decoding, derived CSV flattening, and the
// checkpoint file round-trip the campaign path depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "core/trial_fields.hpp"
#include "runner/checkpoint.hpp"
#include "runner/field_codec.hpp"
#include "sim/time.hpp"

namespace {

using namespace animus;

bool bit_identical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// A struct exercising every field kind in one declaration.
enum class Kind : int { kA = 0, kB = 7 };

struct Inner {
  int n = 0;
  std::string tag;
};
ANIMUS_FIELDS(Inner, n, tag)

struct Everything {
  bool flag = false;
  int count = 0;
  std::size_t big = 0;
  double x = 0.0;
  Kind kind = Kind::kA;
  std::string text;
  sim::SimTime elapsed{0};
  Inner inner;
};
ANIMUS_FIELDS(Everything, flag, count, big, x, kind, text, elapsed, inner)

// ------------------------------------------------------------ scalar codec

TEST(FieldCodec, DoubleRoundTripsExactlyIncludingNonFinite) {
  const double cases[] = {
      0.0,
      -0.0,
      1.0 / 3.0,
      -271.828182845904523,
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),          // subnormal
      -std::numeric_limits<double>::denorm_min(),
      4.9406564584124654e-318,                            // mid-range subnormal
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
  };
  for (const double v : cases) {
    const std::string enc = runner::TrialCodec<double>::encode(v);
    SCOPED_TRACE(enc);
    double back = 12345.0;
    ASSERT_TRUE(runner::TrialCodec<double>::decode(enc, &back));
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(back));
      EXPECT_EQ(std::signbit(v), std::signbit(back));  // -nan keeps its sign
    } else {
      EXPECT_TRUE(bit_identical(v, back)) << v << " != " << back;
    }
  }
  // The non-finite tokens are fixed text, not printf output.
  EXPECT_EQ(runner::TrialCodec<double>::encode(std::numeric_limits<double>::quiet_NaN()),
            "nan");
  EXPECT_EQ(runner::TrialCodec<double>::encode(-std::numeric_limits<double>::infinity()),
            "-inf");
}

TEST(FieldCodec, ScalarCodecsRejectGarbage) {
  double d = 0.0;
  EXPECT_FALSE(runner::TrialCodec<double>::decode("", &d));
  EXPECT_FALSE(runner::TrialCodec<double>::decode("12x", &d));
  EXPECT_FALSE(runner::TrialCodec<double>::decode("nan(0x1)", &d));  // only fixed tokens
  int i = 0;
  EXPECT_FALSE(runner::TrialCodec<int>::decode("", &i));
  EXPECT_FALSE(runner::TrialCodec<int>::decode("7up", &i));
  ASSERT_TRUE(runner::TrialCodec<int>::decode("-42", &i));
  EXPECT_EQ(i, -42);
}

// ------------------------------------------------------------ struct codec

TEST(FieldCodec, StructRoundTripsEveryFieldKind) {
  Everything v;
  v.flag = true;
  v.count = -17;
  v.big = 1234567890123ULL;
  v.x = std::numeric_limits<double>::denorm_min();
  v.kind = Kind::kB;
  v.text = "a;b=c{d}\\e\nnewline";  // every escaped character at once
  v.elapsed = sim::ms(2500);
  v.inner = {9, "nested;=ok"};

  const std::string enc = runner::TrialCodec<Everything>::encode(v);
  EXPECT_EQ(enc.find('\n'), std::string::npos);  // line-safe
  Everything back;
  ASSERT_TRUE(runner::TrialCodec<Everything>::decode(enc, &back));
  EXPECT_EQ(back.flag, v.flag);
  EXPECT_EQ(back.count, v.count);
  EXPECT_EQ(back.big, v.big);
  EXPECT_TRUE(bit_identical(back.x, v.x));
  EXPECT_EQ(back.kind, v.kind);
  EXPECT_EQ(back.text, v.text);
  EXPECT_EQ(back.elapsed, v.elapsed);
  EXPECT_EQ(back.inner.n, v.inner.n);
  EXPECT_EQ(back.inner.tag, v.inner.tag);
}

TEST(FieldCodec, DecodeMatchesByNameNotPosition) {
  // Unknown names are skipped, missing names keep defaults — a
  // checkpoint written before a field was added still resumes.
  Inner v;
  ASSERT_TRUE(runner::TrialCodec<Inner>::decode("tag=later;future_field=9;n=3", &v));
  EXPECT_EQ(v.n, 3);
  EXPECT_EQ(v.tag, "later");
  ASSERT_TRUE(runner::TrialCodec<Inner>::decode("n=5", &v));
  EXPECT_EQ(v.n, 5);
  EXPECT_EQ(v.tag, "");  // decode resets to defaults first
}

TEST(FieldCodec, DecodeRejectsMalformedBodies) {
  Inner v;
  EXPECT_FALSE(runner::TrialCodec<Inner>::decode("n=1;;tag=x", &v));   // empty pair
  EXPECT_FALSE(runner::TrialCodec<Inner>::decode("n=notanint", &v));   // bad matched value
  EXPECT_FALSE(runner::TrialCodec<Inner>::decode("n=1;tag=bad\\q", &v));  // bad escape
  Everything e;
  EXPECT_FALSE(runner::TrialCodec<Everything>::decode("inner={n=1", &e));  // unbalanced
}

TEST(FieldCodec, RealTrialStructsRoundTrip) {
  core::PasswordTrialResult r;
  r.intended = "s3cr;et=p{w}";
  r.decoded = "s3cr;et=p{w";
  r.error = core::PasswordErrorKind::kLength;
  r.triggered = true;
  r.captured_touches = 11;
  r.alert.max_pixels = 72;
  r.alert.max_completeness = 0.875;
  r.alert.visible_time = sim::ms(133);
  r.alert_outcome = percept::LambdaOutcome::kL3;
  r.flicker.min_alpha = 0.25;
  r.flicker.longest_dip = sim::ms(48);
  r.flicker.dips = 2;
  r.flicker.noticeable = true;

  core::PasswordTrialResult back;
  ASSERT_TRUE(runner::TrialCodec<core::PasswordTrialResult>::decode(
      runner::TrialCodec<core::PasswordTrialResult>::encode(r), &back));
  EXPECT_EQ(back.intended, r.intended);
  EXPECT_EQ(back.decoded, r.decoded);
  EXPECT_EQ(back.error, r.error);
  EXPECT_EQ(back.triggered, r.triggered);
  EXPECT_EQ(back.captured_touches, r.captured_touches);
  EXPECT_EQ(back.alert.max_pixels, r.alert.max_pixels);
  EXPECT_TRUE(bit_identical(back.alert.max_completeness, r.alert.max_completeness));
  EXPECT_EQ(back.alert.visible_time, r.alert.visible_time);
  EXPECT_EQ(back.alert_outcome, r.alert_outcome);
  EXPECT_TRUE(bit_identical(back.flicker.min_alpha, r.flicker.min_alpha));
  EXPECT_EQ(back.flicker.longest_dip, r.flicker.longest_dip);
  EXPECT_EQ(back.flicker.dips, r.flicker.dips);
  EXPECT_EQ(back.flicker.noticeable, r.flicker.noticeable);
}

// ------------------------------------------------------------- derived CSV

TEST(FieldCodec, CsvHeaderFlattensNestedFieldsWithDots) {
  EXPECT_EQ(runner::csv_header<core::DBoundTrialResult>(), "d_upper_ms,probes");
  EXPECT_EQ(runner::csv_header<double>(), "value");
  const std::string header = runner::csv_header<core::OutcomeProbe>();
  EXPECT_EQ(header,
            "outcome,alert.shows,alert.dismissals,alert.completions,alert.max_pixels,"
            "alert.max_completeness,alert.max_message_progress,alert.icon_shown,"
            "alert.visible_time,cycles");
}

TEST(FieldCodec, CsvRowMatchesHeaderColumnForColumn) {
  core::DBoundTrialResult r{412, 11};
  EXPECT_EQ(runner::csv_row(r), "412,11");
  EXPECT_EQ(runner::csv_row(2.5), "2.5");
  // Strings stay one comma-free cell even with hostile content.
  Inner inner{1, "a,b\nc"};
  const std::string row = runner::csv_row(inner);
  EXPECT_EQ(row.find('\n'), std::string::npos);
  EXPECT_EQ(row, "1,a,b\\nc");  // ',' in strings is not escaped by the codec...
}

// --------------------------------------------- checkpoint file round-trip

TEST(FieldCodec, CheckpointRoundTripsNonFiniteAndSubnormalResults) {
  const std::string path = testing::TempDir() + "ckpt_nonfinite.jsonl";
  runner::CheckpointHeader header;
  header.label = "nonfinite";
  header.total = 4;
  header.root_seed = 99;

  const double values[] = {
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -4.9406564584124654e-318,
  };
  {
    runner::CheckpointWriter w{path, header, 1};
    ASSERT_TRUE(w.ok());
    for (std::size_t i = 0; i < 4; ++i) {
      w.append(i, i + 1, runner::TrialCodec<double>::encode(values[i]));
    }
  }
  std::string error;
  const auto data = runner::load_checkpoint(path, &error);
  ASSERT_TRUE(data.has_value()) << error;
  ASSERT_EQ(data->trials().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    double back = 0.0;
    ASSERT_TRUE(runner::TrialCodec<double>::decode(data->trials()[i].result, &back));
    if (std::isnan(values[i])) {
      EXPECT_TRUE(std::isnan(back));
    } else {
      EXPECT_TRUE(bit_identical(values[i], back)) << "trial " << i;
    }
  }
}

}  // namespace
