// Randomized property tests for the simulation kernel and the window
// manager: thousands of random operation sequences with invariants
// checked throughout. Seeds are fixed, so failures are reproducible.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "server/window_manager.hpp"
#include "sim/actor.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace animus {
namespace {

using sim::ms;

class EventLoopFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventLoopFuzz, ScheduleCancelInvariants) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  sim::EventLoop loop;
  int executed = 0;
  int scheduled = 0;
  int cancelled_ok = 0;
  std::vector<sim::EventLoop::EventId> live;
  sim::SimTime last_seen{0};

  auto body = [&] {
    EXPECT_GE(loop.now(), last_seen);  // time is monotone
    last_seen = loop.now();
    ++executed;
  };

  for (int op = 0; op < 3000; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    switch (kind) {
      case 0:
      case 1: {
        ++scheduled;
        live.push_back(loop.schedule_after(ms(rng.uniform_int(0, 500)), body));
        break;
      }
      case 2: {
        if (!live.empty()) {
          const std::size_t idx = rng.index(live.size());
          cancelled_ok += loop.cancel(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        break;
      }
      case 3: {
        loop.run_until(loop.now() + ms(rng.uniform_int(0, 100)));
        break;
      }
    }
  }
  loop.run_all();
  EXPECT_EQ(executed + cancelled_ok, scheduled);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST_P(EventLoopFuzz, ReschedulingFromCallbacksTerminates) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 977};
  sim::EventLoop loop;
  int budget = 500;
  std::function<void()> chain = [&] {
    if (--budget > 0 && rng.bernoulli(0.9)) {
      loop.schedule_after(ms(rng.uniform_int(1, 20)), chain);
      if (rng.bernoulli(0.3)) loop.schedule_after(ms(rng.uniform_int(1, 20)), chain);
    }
  };
  loop.schedule_after(ms(1), chain);
  const std::size_t ran = loop.run_all(100000);
  EXPECT_LT(ran, 100000u);  // always terminates before the guard
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopFuzz, ::testing::Range(1, 9));

class ActorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ActorFuzz, TasksNeverOverlapOnOneActor) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 131};
  sim::EventLoop loop;
  sim::Actor actor{loop, "fuzz"};
  struct Span {
    sim::SimTime start, cost;
  };
  std::vector<Span> spans;
  for (int i = 0; i < 400; ++i) {
    const auto cost = ms(rng.uniform_int(0, 30));
    loop.schedule_at(ms(rng.uniform_int(0, 2000)), [&, cost] {
      actor.post(ms(rng.uniform_int(0, 10)), cost, [&spans, &loop, cost] {
        spans.push_back(Span{loop.now(), cost});
      });
    });
  }
  loop.run_all();
  ASSERT_EQ(spans.size(), 400u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    // Serialization: each task starts no earlier than the previous
    // task's start + cost.
    EXPECT_GE(spans[i].start, spans[i - 1].start + spans[i - 1].cost) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActorFuzz, ::testing::Range(1, 6));

class WmsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WmsFuzz, HistoryAndAlphaInvariants) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 271};
  sim::EventLoop loop;
  sim::TraceRecorder trace;
  trace.set_enabled(false);
  server::WindowManagerService wms{loop, trace};
  std::vector<ui::WindowId> live;

  for (int op = 0; op < 600; ++op) {
    loop.run_until(loop.now() + ms(rng.uniform_int(0, 80)));
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    if (kind == 0) {
      ui::Window w;
      w.owner_uid = static_cast<int>(rng.uniform_int(1, 4));
      w.type = rng.bernoulli(0.5) ? ui::WindowType::kAppOverlay : ui::WindowType::kActivity;
      w.bounds = {static_cast<int>(rng.uniform_int(0, 500)),
                  static_cast<int>(rng.uniform_int(0, 500)), 200, 200};
      live.push_back(wms.add_window_now(std::move(w)));
    } else if (kind == 1) {
      ui::Window w;
      w.owner_uid = static_cast<int>(rng.uniform_int(1, 4));
      w.content = "fuzz:toast";
      w.bounds = {0, 0, 300, 300};
      live.push_back(wms.add_toast_now(std::move(w)));
    } else if (kind == 2 && !live.empty()) {
      const std::size_t idx = rng.index(live.size());
      wms.remove_window_now(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (kind == 3 && !live.empty()) {
      const std::size_t idx = rng.index(live.size());
      wms.fade_out_and_remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // Invariants at every step:
    std::size_t alive = 0;
    for (const auto& rec : wms.history()) {
      alive += rec.alive_at(loop.now());
      const double a = rec.window.alpha_at(loop.now());
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
      if (rec.removed_at) {
        EXPECT_GE(*rec.removed_at, rec.window.added_at);
      }
    }
    EXPECT_EQ(alive, wms.live_count());
    const auto* top = wms.topmost_touchable_at({100, 100}, loop.now());
    if (top != nullptr) {
      EXPECT_TRUE(top->window.touchable());
      EXPECT_TRUE(top->alive_at(loop.now()));
    }
  }
  loop.run_all();
  // After draining, every faded toast is physically removed.
  for (const auto& rec : wms.history()) {
    if (rec.window.exit_fade.has_value()) {
      EXPECT_TRUE(rec.removed_at.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WmsFuzz, ::testing::Range(1, 6));

TEST(RngProperty, Uniform01BucketsAreFlat) {
  sim::Rng rng{404};
  std::array<int, 16> buckets{};
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    ++buckets[static_cast<std::size_t>(rng.uniform01() * 16.0)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 16, 450);  // ~4.5 sd of binomial
  }
}

}  // namespace
}  // namespace animus
