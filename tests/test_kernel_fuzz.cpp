// Randomized property tests for the simulation kernel and the window
// manager: thousands of random operation sequences with invariants
// checked throughout. Seeds are fixed, so failures are reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/window_manager.hpp"
#include "sim/actor.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace animus {
namespace {

using sim::ms;

class EventLoopFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventLoopFuzz, ScheduleCancelInvariants) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam())};
  sim::EventLoop loop;
  int executed = 0;
  int scheduled = 0;
  int cancelled_ok = 0;
  std::vector<sim::EventLoop::EventId> live;
  sim::SimTime last_seen{0};

  auto body = [&] {
    EXPECT_GE(loop.now(), last_seen);  // time is monotone
    last_seen = loop.now();
    ++executed;
  };

  for (int op = 0; op < 3000; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    switch (kind) {
      case 0:
      case 1: {
        ++scheduled;
        live.push_back(loop.schedule_after(ms(rng.uniform_int(0, 500)), body));
        break;
      }
      case 2: {
        if (!live.empty()) {
          const std::size_t idx = rng.index(live.size());
          cancelled_ok += loop.cancel(live[idx]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        break;
      }
      case 3: {
        loop.run_until(loop.now() + ms(rng.uniform_int(0, 100)));
        break;
      }
    }
  }
  loop.run_all();
  EXPECT_EQ(executed + cancelled_ok, scheduled);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST_P(EventLoopFuzz, ReschedulingFromCallbacksTerminates) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 977};
  sim::EventLoop loop;
  int budget = 500;
  std::function<void()> chain = [&] {
    if (--budget > 0 && rng.bernoulli(0.9)) {
      loop.schedule_after(ms(rng.uniform_int(1, 20)), chain);
      if (rng.bernoulli(0.3)) loop.schedule_after(ms(rng.uniform_int(1, 20)), chain);
    }
  };
  loop.schedule_after(ms(1), chain);
  const std::size_t ran = loop.run_all(100000);
  EXPECT_LT(ran, 100000u);  // always terminates before the guard
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopFuzz, ::testing::Range(1, 9));

// ---------------------------------------------------------------------
// Differential fuzz: the slab engine vs a reference model of the old
// priority_queue + unordered_map design (tombstone cancellation). The
// two must agree on execution order, every cancel() return value, and
// all telemetry counters under randomized schedule/cancel/run
// interleavings — the slab rebuild changed the storage, not the
// semantics.

/// Faithful reimplementation of the pre-slab engine, kept as the
/// executable specification of EventLoop's ordering/cancel semantics.
class ReferenceLoop {
 public:
  using Callback = std::function<void()>;
  struct EventId {
    std::uint64_t seq = 0;
  };

  [[nodiscard]] sim::SimTime now() const { return now_; }

  EventId schedule_at(sim::SimTime when, Callback cb) {
    if (when < now_) when = now_;
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq});
    callbacks_.emplace(seq, std::move(cb));
    max_pending_ = std::max(max_pending_, callbacks_.size());
    return EventId{seq};
  }

  EventId schedule_after(sim::SimTime delay, Callback cb) {
    if (delay < sim::SimTime{0}) delay = sim::SimTime{0};
    return schedule_at(now_ + delay, std::move(cb));
  }

  bool cancel(EventId id) {
    if (id.seq == 0) return false;
    const bool erased = callbacks_.erase(id.seq) > 0;
    cancelled_ += erased;
    return erased;
  }

  bool step() {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      auto it = callbacks_.find(top.seq);
      if (it == callbacks_.end()) continue;  // cancelled: tombstone
      Callback cb = std::move(it->second);
      callbacks_.erase(it);
      now_ = top.when;
      ++executed_;
      cb();
      return true;
    }
    return false;
  }

  std::size_t run_until(sim::SimTime until) {
    std::size_t executed = 0;
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      if (callbacks_.find(top.seq) == callbacks_.end()) {
        heap_.pop();
        continue;
      }
      if (top.when > until) break;
      step();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

  std::size_t run_all(std::size_t max_events = 100'000'000) {
    std::size_t executed = 0;
    while (executed < max_events && step()) ++executed;
    return executed;
  }

  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t scheduled() const { return next_seq_ - 1; }
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }

 private:
  struct Entry {
    sim::SimTime when;
    std::uint64_t seq;
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  sim::SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t max_pending_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

/// Pure per-tag hash so callbacks behave identically in both engines
/// without sharing mutable RNG state (splitmix64 finalizer).
std::uint64_t tag_hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Drives one engine; two instances driven by the same op stream must
/// produce identical logs. Tags are minted in execution order, so a
/// chained event gets the same tag in both engines iff ordering agrees.
template <typename Loop>
struct DiffHarness {
  Loop loop;
  std::vector<typename Loop::EventId> ids;  // every handle ever minted
  std::vector<std::pair<std::uint64_t, sim::SimTime>> log;
  std::uint64_t next_tag = 0;

  void schedule(sim::SimTime delay) {
    const std::uint64_t tag = next_tag++;
    ids.push_back(loop.schedule_after(delay, [this, tag] { fire(tag); }));
  }

  void fire(std::uint64_t tag) {
    log.emplace_back(tag, loop.now());
    const std::uint64_t h = tag_hash(tag);
    // 1-in-8 events re-arm from inside their own callback (the periodic
    // shape); chains die out geometrically.
    if ((h & 7u) == 0) {
      schedule(sim::us(static_cast<std::int64_t>((h >> 8) % 5000)));
    }
  }
};

class EngineDiffFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EngineDiffFuzz, SlabEngineMatchesReferenceSemantics) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919};
  DiffHarness<sim::EventLoop> slab;
  DiffHarness<ReferenceLoop> ref;

  for (int op = 0; op < 4000; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 5));
    switch (kind) {
      case 0:
      case 1:
      case 2: {  // schedule
        const auto delay = sim::ms(rng.uniform_int(0, 400));
        slab.schedule(delay);
        ref.schedule(delay);
        break;
      }
      case 3: {  // cancel a handle from the whole history — live ids,
                 // executed ids, and already-cancelled ids alike, so
                 // stale-handle rejection (double cancel, run event,
                 // reused slot) is exercised constantly.
        ASSERT_EQ(slab.ids.size(), ref.ids.size());
        if (!slab.ids.empty()) {
          const std::size_t idx = rng.index(slab.ids.size());
          EXPECT_EQ(slab.loop.cancel(slab.ids[idx]), ref.loop.cancel(ref.ids[idx]))
              << "cancel disagreement at op " << op;
        }
        break;
      }
      case 4: {  // bounded time advance
        const auto dt = sim::ms(rng.uniform_int(0, 150));
        EXPECT_EQ(slab.loop.run_until(slab.loop.now() + dt),
                  ref.loop.run_until(ref.loop.now() + dt));
        break;
      }
      case 5: {  // bounded event-count drain
        const auto budget = static_cast<std::size_t>(rng.uniform_int(1, 40));
        EXPECT_EQ(slab.loop.run_all(budget), ref.loop.run_all(budget));
        break;
      }
    }
  }
  EXPECT_EQ(slab.loop.run_all(), ref.loop.run_all());

  // Identical execution history...
  ASSERT_EQ(slab.log.size(), ref.log.size());
  EXPECT_EQ(slab.log, ref.log);
  // ...and identical telemetry.
  EXPECT_EQ(slab.loop.now(), ref.loop.now());
  EXPECT_EQ(slab.loop.executed(), ref.loop.executed());
  EXPECT_EQ(slab.loop.scheduled(), ref.loop.scheduled());
  EXPECT_EQ(slab.loop.cancelled(), ref.loop.cancelled());
  EXPECT_EQ(slab.loop.max_pending(), ref.loop.max_pending());
  EXPECT_EQ(slab.loop.pending(), 0u);
  EXPECT_EQ(ref.loop.pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDiffFuzz, ::testing::Range(1, 13));

class ActorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ActorFuzz, TasksNeverOverlapOnOneActor) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 131};
  sim::EventLoop loop;
  sim::Actor actor{loop, "fuzz"};
  struct Span {
    sim::SimTime start, cost;
  };
  std::vector<Span> spans;
  for (int i = 0; i < 400; ++i) {
    const auto cost = ms(rng.uniform_int(0, 30));
    loop.schedule_at(ms(rng.uniform_int(0, 2000)), [&, cost] {
      actor.post(ms(rng.uniform_int(0, 10)), cost, [&spans, &loop, cost] {
        spans.push_back(Span{loop.now(), cost});
      });
    });
  }
  loop.run_all();
  ASSERT_EQ(spans.size(), 400u);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    // Serialization: each task starts no earlier than the previous
    // task's start + cost.
    EXPECT_GE(spans[i].start, spans[i - 1].start + spans[i - 1].cost) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActorFuzz, ::testing::Range(1, 6));

class WmsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WmsFuzz, HistoryAndAlphaInvariants) {
  sim::Rng rng{static_cast<std::uint64_t>(GetParam()) * 271};
  sim::EventLoop loop;
  sim::TraceRecorder trace;
  trace.set_enabled(false);
  server::WindowManagerService wms{loop, trace};
  std::vector<ui::WindowId> live;

  for (int op = 0; op < 600; ++op) {
    loop.run_until(loop.now() + ms(rng.uniform_int(0, 80)));
    const int kind = static_cast<int>(rng.uniform_int(0, 3));
    if (kind == 0) {
      ui::Window w;
      w.owner_uid = static_cast<int>(rng.uniform_int(1, 4));
      w.type = rng.bernoulli(0.5) ? ui::WindowType::kAppOverlay : ui::WindowType::kActivity;
      w.bounds = {static_cast<int>(rng.uniform_int(0, 500)),
                  static_cast<int>(rng.uniform_int(0, 500)), 200, 200};
      live.push_back(wms.add_window_now(std::move(w)));
    } else if (kind == 1) {
      ui::Window w;
      w.owner_uid = static_cast<int>(rng.uniform_int(1, 4));
      w.content = "fuzz:toast";
      w.bounds = {0, 0, 300, 300};
      live.push_back(wms.add_toast_now(std::move(w)));
    } else if (kind == 2 && !live.empty()) {
      const std::size_t idx = rng.index(live.size());
      wms.remove_window_now(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (kind == 3 && !live.empty()) {
      const std::size_t idx = rng.index(live.size());
      wms.fade_out_and_remove(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // Invariants at every step:
    std::size_t alive = 0;
    for (const auto& rec : wms.history()) {
      alive += rec.alive_at(loop.now());
      const double a = rec.window.alpha_at(loop.now());
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
      if (rec.removed_at) {
        EXPECT_GE(*rec.removed_at, rec.window.added_at);
      }
    }
    EXPECT_EQ(alive, wms.live_count());
    const auto* top = wms.topmost_touchable_at({100, 100}, loop.now());
    if (top != nullptr) {
      EXPECT_TRUE(top->window.touchable());
      EXPECT_TRUE(top->alive_at(loop.now()));
    }
  }
  loop.run_all();
  // After draining, every faded toast is physically removed.
  for (const auto& rec : wms.history()) {
    if (rec.window.exit_fade.has_value()) {
      EXPECT_TRUE(rec.removed_at.has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WmsFuzz, ::testing::Range(1, 6));

TEST(RngProperty, Uniform01BucketsAreFlat) {
  sim::Rng rng{404};
  std::array<int, 16> buckets{};
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    ++buckets[static_cast<std::size_t>(rng.uniform01() * 16.0)];
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 16, 450);  // ~4.5 sd of binomial
  }
}

}  // namespace
}  // namespace animus
