#include "sim/trace.hpp"

#include "sim/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

namespace animus::sim {
namespace {

TEST(Trace, RecordsInOrder) {
  TraceRecorder tr;
  tr.record(ms(1), TraceCategory::kApp, "addView O1");
  tr.record(ms(2), TraceCategory::kSystemServer, "add O1");
  ASSERT_EQ(tr.size(), 2u);
  EXPECT_EQ(tr.records()[0].message, "addView O1");
  EXPECT_EQ(tr.records()[1].time, ms(2));
}

TEST(Trace, DisabledRecorderDropsRecords) {
  TraceRecorder tr;
  tr.set_enabled(false);
  tr.record(ms(1), TraceCategory::kApp, "x");
  EXPECT_EQ(tr.size(), 0u);
}

TEST(Trace, MatchingFindsSubstrings) {
  TraceRecorder tr;
  tr.record(ms(1), TraceCategory::kApp, "addView O1");
  tr.record(ms(2), TraceCategory::kApp, "removeView O1");
  tr.record(ms(3), TraceCategory::kApp, "addView O2");
  EXPECT_EQ(tr.matching("addView").size(), 2u);
  EXPECT_EQ(tr.matching("nothing").size(), 0u);
}

TEST(Trace, CountByCategory) {
  TraceRecorder tr;
  tr.record(ms(1), TraceCategory::kAttack, "a");
  tr.record(ms(2), TraceCategory::kAttack, "b");
  tr.record(ms(3), TraceCategory::kDefense, "c");
  EXPECT_EQ(tr.count(TraceCategory::kAttack), 2u);
  EXPECT_EQ(tr.count(TraceCategory::kDefense), 1u);
  EXPECT_EQ(tr.count(TraceCategory::kInput), 0u);
}

TEST(Trace, TextRenderingContainsMessages) {
  TraceRecorder tr;
  tr.record(ms(12), TraceCategory::kSystemUi, "alert visible", 2.0);
  const std::string text = tr.to_text();
  EXPECT_NE(text.find("alert visible"), std::string::npos);
  EXPECT_NE(text.find("system_ui"), std::string::npos);
}

TEST(Trace, TextRenderingTruncates) {
  TraceRecorder tr;
  for (int i = 0; i < 100; ++i) tr.record(ms(i), TraceCategory::kApp, "m");
  const std::string text = tr.to_text(10);
  EXPECT_NE(text.find("truncated"), std::string::npos);
}

TEST(ChromeTrace, EmitsValidLookingJson) {
  TraceRecorder tr;
  tr.record(ms(1), TraceCategory::kApp, "addView \"O1\"");
  tr.record(ms(2), TraceCategory::kSystemUi, "alert", 2.5);
  const std::string json = to_chrome_trace_json(tr, "demo");
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("addView \\\"O1\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);  // microseconds
  EXPECT_NE(json.find("\"value\":2.5"), std::string::npos);
  // Balanced braces (cheap sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ChromeTrace, MetadataTracksForEveryCategory) {
  TraceRecorder tr;
  const std::string json = to_chrome_trace_json(tr);
  for (const char* name : {"app", "system_server", "system_ui", "animation", "input",
                           "attack", "defense", "victim"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + name + "\""), std::string::npos)
        << name;
  }
}

TEST(ChromeTrace, WritesFile) {
  TraceRecorder tr;
  tr.record(ms(1), TraceCategory::kAttack, "x");
  const std::string path = ::testing::TempDir() + "/animus_trace.json";
  ASSERT_TRUE(write_chrome_trace(tr, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "[");
}

TEST(Trace, CategoryNamesAreStable) {
  EXPECT_EQ(to_string(TraceCategory::kSystemServer), "system_server");
  EXPECT_EQ(to_string(TraceCategory::kVictim), "victim");
}

}  // namespace
}  // namespace animus::sim
