#include "ipc/binder.hpp"

#include <gtest/gtest.h>

#include "ipc/transaction_log.hpp"
#include "sim/actor.hpp"

namespace animus::ipc {
namespace {

using sim::ms;

TEST(TransactionLog, RecordsInOrderWithIds) {
  TransactionLog log;
  log.record(1, MethodCode::kAddView, "iface", ms(1), ms(4));
  log.record(2, MethodCode::kRemoveView, "iface", ms(2), ms(15));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.all()[0].id, 1u);
  EXPECT_EQ(log.all()[1].id, 2u);
  EXPECT_EQ(log.all()[1].caller_uid, 2);
}

TEST(TransactionLog, DisabledLogDropsRecords) {
  TransactionLog log;
  log.set_enabled(false);
  EXPECT_EQ(log.record(1, MethodCode::kAddView, "iface", ms(1), ms(2)), 0u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(TransactionLog, FilterByUid) {
  TransactionLog log;
  log.record(1, MethodCode::kAddView, "iface", ms(1), ms(2));
  log.record(2, MethodCode::kAddView, "iface", ms(1), ms(2));
  log.record(1, MethodCode::kRemoveView, "iface", ms(3), ms(9));
  EXPECT_EQ(log.for_uid(1).size(), 2u);
  EXPECT_EQ(log.for_uid(3).size(), 0u);
}

TEST(TransactionLog, ObserversSeeEveryRecord) {
  TransactionLog log;
  int seen = 0;
  log.add_observer([&seen](const Transaction&) { ++seen; });
  log.record(1, MethodCode::kAddView, "iface", ms(1), ms(2));
  log.record(1, MethodCode::kEnqueueToast, "iface", ms(2), ms(3));
  EXPECT_EQ(seen, 2);
}

TEST(MethodCode, Names) {
  EXPECT_EQ(to_string(MethodCode::kAddView), "addView");
  EXPECT_EQ(to_string(MethodCode::kRemoveView), "removeView");
  EXPECT_EQ(to_string(MethodCode::kEnqueueToast), "enqueueToast");
}

TEST(LatencyModel, DeterministicMeanAndFloor) {
  LatencyModel m{.mean_ms = 3.0, .sd_ms = 1.0, .floor_ms = 2.5};
  EXPECT_EQ(m.mean(), sim::ms_f(3.0));
  sim::Rng rng{1};
  for (int i = 0; i < 500; ++i) EXPECT_GE(m.sample(rng), sim::ms_f(2.5));
}

TEST(BinderChannel, DeliversAfterLatencyAndRecords) {
  sim::EventLoop loop;
  sim::Actor server{loop, "system_server"};
  TransactionLog log;
  BinderChannel channel{server, sim::Rng{1}, &log};
  channel.set_deterministic(true);
  sim::SimTime handled{-1};
  const LatencyModel transit{.mean_ms = 5.0, .sd_ms = 2.0, .floor_ms = 0.1};
  const auto latency = channel.call(42, MethodCode::kAddView, "iface", transit, ms(2),
                                    [&] { handled = loop.now(); });
  EXPECT_EQ(latency, sim::ms_f(5.0));
  loop.run_all();
  EXPECT_EQ(handled, sim::ms_f(5.0));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.all()[0].caller_uid, 42);
  EXPECT_EQ(log.all()[0].delivered, sim::ms_f(5.0));
}

TEST(BinderChannel, ServerCostSerializesHandlers) {
  sim::EventLoop loop;
  sim::Actor server{loop, "system_server"};
  BinderChannel channel{server, sim::Rng{1}, nullptr};
  channel.set_deterministic(true);
  const LatencyModel transit{.mean_ms = 1.0, .sd_ms = 0.0, .floor_ms = 0.1};
  std::vector<sim::SimTime> starts;
  channel.call(1, MethodCode::kAddView, "iface", transit, ms(10),
               [&] { starts.push_back(loop.now()); });
  channel.call(1, MethodCode::kAddView, "iface", transit, ms(10),
               [&] { starts.push_back(loop.now()); });
  loop.run_all();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[1] - starts[0], ms(10));
}

TEST(BinderChannel, JitteredCallsVary) {
  sim::EventLoop loop;
  sim::Actor server{loop, "system_server"};
  BinderChannel channel{server, sim::Rng{2}, nullptr};
  const LatencyModel transit{.mean_ms = 5.0, .sd_ms = 1.5, .floor_ms = 0.1};
  std::set<sim::SimTime::rep> seen;
  for (int i = 0; i < 20; ++i) {
    seen.insert(channel.call(1, MethodCode::kOther, "iface", transit, ms(0), [] {}).count());
  }
  EXPECT_GT(seen.size(), 5u);
}

}  // namespace
}  // namespace animus::ipc
