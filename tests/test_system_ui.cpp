#include "server/system_ui.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "sim/event_loop.hpp"

namespace animus::server {
namespace {

using sim::ms;

struct SysUiFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::TraceRecorder trace;
  device::DeviceProfile profile = device::reference_device_android9();
  SystemUi ui_{loop, trace, profile};
  static constexpr int kUid = 1;
  static constexpr sim::SimTime kTv = sim::ms(20);
};

TEST_F(SysUiFixture, HiddenByDefault) {
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kHidden);
  EXPECT_EQ(ui_.current_pixels(kUid), 0);
  EXPECT_EQ(ui_.stats(kUid).shows, 0);
}

TEST_F(SysUiFixture, ShowConstructsThenAnimates) {
  ui_.show_overlay_alert(kUid, kTv);
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kConstructing);
  loop.run_until(kTv);
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kAnimatingIn);
  loop.run_until(kTv + ms(360));
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kShown);
  EXPECT_EQ(ui_.current_pixels(kUid), profile.notification_height_px);
  EXPECT_EQ(ui_.stats(kUid).completions, 1);
}

TEST_F(SysUiFixture, DismissDuringConstructionShowsNothing) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(ms(5));
  ui_.dismiss_overlay_alert(kUid);
  loop.run_all();
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kHidden);
  EXPECT_EQ(ui_.stats(kUid).max_pixels, 0);
}

TEST_F(SysUiFixture, EarlyDismissKeepsPixelsAtZero) {
  // The draw-and-destroy sweet spot: dismiss while the slide-in has
  // played < Ta; no pixel was ever presented.
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(15));  // one frame in: 0.17% of 72 px -> 0
  ui_.dismiss_overlay_alert(kUid);
  loop.run_all();
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kHidden);
  EXPECT_EQ(ui_.stats(kUid).max_pixels, 0);
  EXPECT_EQ(percept::classify(ui_.stats(kUid)), percept::LambdaOutcome::kL1);
}

TEST_F(SysUiFixture, LateDismissLeavesPartialView) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(200));  // well into the animation
  ui_.dismiss_overlay_alert(kUid);
  loop.run_all();
  const auto& s = ui_.stats(kUid);
  EXPECT_GT(s.max_pixels, ui::kNakedEyeMinPixels);
  EXPECT_LT(s.max_completeness, 1.0);
  EXPECT_EQ(percept::classify(s), percept::LambdaOutcome::kL2);
}

TEST_F(SysUiFixture, FullShowThenMessageThenIcon) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(360) + kMessageStartDelay + kMessageDrawTime + kIconDelay + ms(1));
  const auto s = ui_.snapshot(kUid);
  EXPECT_TRUE(s.icon_shown);
  EXPECT_DOUBLE_EQ(s.max_message_progress, 1.0);
  EXPECT_EQ(percept::classify(s), percept::LambdaOutcome::kL5);
}

TEST_F(SysUiFixture, DismissAfterShownBeforeMessageIsL3) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(360));
  ui_.dismiss_overlay_alert(kUid);
  loop.run_all();
  const auto& s = ui_.stats(kUid);
  EXPECT_DOUBLE_EQ(s.max_completeness, 1.0);
  EXPECT_DOUBLE_EQ(s.max_message_progress, 0.0);
  EXPECT_EQ(percept::classify(s), percept::LambdaOutcome::kL3);
}

TEST_F(SysUiFixture, DismissDuringMessageDrawIsL4) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(360) + kMessageStartDelay + ms(60));  // half the message drawn
  ui_.dismiss_overlay_alert(kUid);
  loop.run_all();
  const auto& s = ui_.stats(kUid);
  EXPECT_GT(s.max_message_progress, 0.0);
  EXPECT_LT(s.max_message_progress, 1.0);
  EXPECT_FALSE(s.icon_shown);
  EXPECT_EQ(percept::classify(s), percept::LambdaOutcome::kL4);
}

TEST_F(SysUiFixture, ReverseAnimationReachesHidden) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(100));
  ui_.dismiss_overlay_alert(kUid);
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kAnimatingOut);
  loop.run_until(kTv + ms(100) + ms(100));  // reverse takes the elapsed time
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kHidden);
}

TEST_F(SysUiFixture, ShowDuringReverseStartsFreshEntry) {
  // A show arriving while the old entry slides out posts a *fresh*
  // notification: full construction time, progress restarting at zero.
  // (This is what makes Eq. (3) hold per cycle.)
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(100));
  ui_.dismiss_overlay_alert(kUid);
  loop.run_until(kTv + ms(150));  // mid-reverse (50 ms back, 50 ms progress)
  ui_.show_overlay_alert(kUid, kTv);
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kConstructing);
  loop.run_until(kTv + ms(150) + kTv + ms(360));
  EXPECT_EQ(ui_.phase(kUid), SystemUi::AlertPhase::kShown);
  EXPECT_EQ(ui_.stats(kUid).shows, 2);
}

TEST_F(SysUiFixture, RepeatedShowsWhileActiveAreNoops) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(50));
  ui_.show_overlay_alert(kUid, kTv);
  ui_.show_overlay_alert(kUid, kTv);
  EXPECT_EQ(ui_.stats(kUid).shows, 1);
}

TEST_F(SysUiFixture, PerUidIsolation) {
  ui_.show_overlay_alert(1, kTv);
  ui_.show_overlay_alert(2, kTv);
  loop.run_until(kTv + ms(360));
  ui_.dismiss_overlay_alert(1);
  loop.run_all();
  EXPECT_EQ(ui_.phase(1), SystemUi::AlertPhase::kHidden);
  EXPECT_EQ(ui_.phase(2), SystemUi::AlertPhase::kShown);
}

TEST_F(SysUiFixture, VisibleTimeAccumulates) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(360) + ms(500));
  const auto s = ui_.snapshot(kUid);
  // 360 ms animation minus the invisible prefix, plus 500 ms shown.
  EXPECT_GT(s.visible_time, ms(700));
  EXPECT_LT(s.visible_time, ms(900));
}

TEST_F(SysUiFixture, SnapshotDoesNotMutateStats) {
  ui_.show_overlay_alert(kUid, kTv);
  loop.run_until(kTv + ms(200));
  const auto s1 = ui_.snapshot(kUid);
  const auto s2 = ui_.snapshot(kUid);
  EXPECT_EQ(s1.max_pixels, s2.max_pixels);
  EXPECT_EQ(ui_.stats(kUid).max_pixels, 0);  // segment not yet closed
}

}  // namespace
}  // namespace animus::server
