#include "input/ime.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "server/world.hpp"

namespace animus::input {
namespace {

using sim::ms;

const ui::Rect kKb{0, 1500, 1080, 780};

server::World make_world() {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.deterministic = true;
  return server::World{wc};
}

TEST(SoftKeyboard, ShowHideLifecycle) {
  auto world = make_world();
  SoftKeyboard ime{world, kKb};
  EXPECT_FALSE(ime.visible());
  ime.show();
  EXPECT_TRUE(ime.visible());
  EXPECT_EQ(world.wms().count(server::kImeUid, ui::WindowType::kInputMethod), 1);
  ime.show();  // idempotent
  EXPECT_EQ(world.wms().count(server::kImeUid, ui::WindowType::kInputMethod), 1);
  ime.hide();
  EXPECT_FALSE(ime.visible());
  EXPECT_EQ(world.wms().count(server::kImeUid, ui::WindowType::kInputMethod), 0);
  ime.hide();  // idempotent
}

TEST(SoftKeyboard, TapProducesCharacterThroughSink) {
  auto world = make_world();
  SoftKeyboard ime{world, kKb};
  ime.show();
  std::string text;
  ime.set_text_sink([&text](const KeyboardState::PressResult& r) {
    if (r.ch) text.push_back(*r.ch);
  });
  const Keyboard kb{kKb};
  world.input().inject_tap(kb.layout(LayoutKind::kLower).find_char('q')->center(), ms(10));
  world.input().inject_tap(kb.layout(LayoutKind::kLower).find_char('i')->center(), ms(10));
  world.run_all();
  EXPECT_EQ(text, "qi");
  EXPECT_EQ(ime.presses(), 2);
}

TEST(SoftKeyboard, ShiftSwitchesLayoutForNextTap) {
  auto world = make_world();
  SoftKeyboard ime{world, kKb};
  ime.show();
  std::string text;
  ime.set_text_sink([&text](const KeyboardState::PressResult& r) {
    if (r.ch) text.push_back(*r.ch);
  });
  const Keyboard kb{kKb};
  auto tap = [&](ui::Point p) {
    world.input().inject_tap(p, ms(10));
    world.run_all();
  };
  tap(kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kShift)->center());
  EXPECT_EQ(ime.current_layout(), LayoutKind::kUpper);
  tap(kb.layout(LayoutKind::kUpper).find_char('A')->center());
  EXPECT_EQ(ime.current_layout(), LayoutKind::kLower);  // auto-revert
  tap(kb.layout(LayoutKind::kLower).find_char('b')->center());
  EXPECT_EQ(text, "Ab");
}

TEST(SoftKeyboard, DeadZoneTapsAreIgnored) {
  auto world = make_world();
  SoftKeyboard ime{world, kKb};
  ime.show();
  int events = 0;
  ime.set_text_sink([&events](const KeyboardState::PressResult&) { ++events; });
  // Between the bottom of row 3 keys and the edge of the shift key there
  // is dead space at the far left of row 3 on the symbols board only;
  // for lower board use a point left of 'z' but right of shift's edge...
  // simplest guaranteed dead zone: row 3 gap between shift (ends at
  // x=108) and 'z' (starts at 162).
  world.input().inject_tap({130, 1500 + 2 * 195 + 90}, ms(10));
  world.run_all();
  EXPECT_EQ(events, 0);
  EXPECT_EQ(ime.presses(), 0);
}

TEST(SoftKeyboard, ResetsToLowerOnShow) {
  auto world = make_world();
  SoftKeyboard ime{world, kKb};
  ime.show();
  const Keyboard kb{kKb};
  world.input().inject_tap(kb.layout(LayoutKind::kLower).find_kind(Key::Kind::kShift)->center(),
                           ms(10));
  world.run_all();
  EXPECT_EQ(ime.current_layout(), LayoutKind::kUpper);
  ime.hide();
  ime.show();
  EXPECT_EQ(ime.current_layout(), LayoutKind::kLower);
}

}  // namespace
}  // namespace animus::input
