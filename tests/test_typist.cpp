#include "input/typist.hpp"

#include <gtest/gtest.h>

#include "input/password.hpp"

namespace animus::input {
namespace {

const ui::Rect kKb{0, 1500, 1080, 780};

TypistProfile precise_profile() {
  TypistProfile p;
  p.jitter_frac = 0.0;
  p.misspell_rate = 0.0;
  return p;
}

TEST(Typist, PlansOneTouchPerPlainChar) {
  Typist t{precise_profile(), sim::Rng{1}};
  Keyboard kb{kKb};
  const auto touches = t.plan(kb, "hello", sim::ms(100));
  EXPECT_EQ(touches.size(), 5u);
  EXPECT_EQ(touches.front().at, sim::ms(100));
}

TEST(Typist, InsertsModeSwitchTouches) {
  Typist t{precise_profile(), sim::Rng{1}};
  Keyboard kb{kKb};
  // "aB1" needs: a, shift, B, ?123, 1 -> 5 touches.
  const auto touches = t.plan(kb, "aB1", sim::ms(0));
  ASSERT_EQ(touches.size(), 5u);
  EXPECT_EQ(touches[0].intended, 'a');
  EXPECT_EQ(touches[1].intended_kind, Key::Kind::kShift);
  EXPECT_EQ(touches[2].intended, 'B');
  EXPECT_EQ(touches[3].intended_kind, Key::Kind::kSymbols);
  EXPECT_EQ(touches[4].intended, '1');
}

TEST(Typist, SymbolsBackToLettersNeedsAbcKey) {
  Typist t{precise_profile(), sim::Rng{1}};
  Keyboard kb{kKb};
  // "1a": 1 requires ?123; returning to 'a' requires ABC.
  const auto touches = t.plan(kb, "1a", sim::ms(0));
  ASSERT_EQ(touches.size(), 4u);
  EXPECT_EQ(touches[1].intended, '1');
  EXPECT_EQ(touches[2].intended_kind, Key::Kind::kLetters);
  EXPECT_EQ(touches[3].intended, 'a');
}

TEST(Typist, TimesAreStrictlyIncreasingWithMinGap) {
  TypistProfile p;
  Typist t{p, sim::Rng{3}};
  Keyboard kb{kKb};
  const auto touches = t.plan(kb, "aXk92$q", sim::ms(50));
  for (std::size_t i = 1; i < touches.size(); ++i) {
    EXPECT_GE(touches[i].at - touches[i - 1].at, sim::ms_f(p.inter_key_min_ms));
  }
}

TEST(Typist, ZeroJitterHitsKeyCenters) {
  Typist t{precise_profile(), sim::Rng{1}};
  Keyboard kb{kKb};
  const auto touches = t.plan(kb, "qmz", sim::ms(0));
  for (const auto& pt : touches) {
    const Key* key = kb.layout(LayoutKind::kLower).key_at(pt.point);
    ASSERT_NE(key, nullptr);
    EXPECT_EQ(key->ch, pt.intended);
  }
}

TEST(Typist, PressEnterAppendsEnterTouch) {
  Typist t{precise_profile(), sim::Rng{1}};
  Keyboard kb{kKb};
  const auto touches = t.plan(kb, "ab", sim::ms(0), /*press_enter=*/true);
  ASSERT_EQ(touches.size(), 3u);
  EXPECT_EQ(touches.back().intended_kind, Key::Kind::kEnter);
}

TEST(Typist, UntypeableCharactersSkipped) {
  Typist t{precise_profile(), sim::Rng{1}};
  Keyboard kb{kKb};
  const auto touches = t.plan(kb, "a\tb", sim::ms(0));
  EXPECT_EQ(touches.size(), 2u);
}

TEST(Typist, MisspellRateProducesMisspelledTouches) {
  TypistProfile p;
  p.misspell_rate = 0.5;
  p.jitter_frac = 0.0;
  Typist t{p, sim::Rng{5}};
  Keyboard kb{kKb};
  int misspelled = 0;
  const auto touches = t.plan(kb, "aaaaaaaaaaaaaaaaaaaa", sim::ms(0));
  for (const auto& pt : touches) misspelled += pt.misspelled;
  EXPECT_GT(misspelled, 3);
  EXPECT_LT(misspelled, 18);
}

TEST(Typist, PlanTapsStayInsideArea) {
  Typist t{TypistProfile{}, sim::Rng{7}};
  const ui::Rect area{100, 200, 300, 150};
  const auto taps = t.plan_taps(area, 50, sim::ms(10));
  ASSERT_EQ(taps.size(), 50u);
  for (const auto& pt : taps) EXPECT_TRUE(area.contains(pt.point));
}

TEST(Typist, DeterministicForSameSeed) {
  Typist a{TypistProfile{}, sim::Rng{9}};
  Typist b{TypistProfile{}, sim::Rng{9}};
  Keyboard kb{kKb};
  const auto ta = a.plan(kb, "Pa5$word", sim::ms(0));
  const auto tb = b.plan(kb, "Pa5$word", sim::ms(0));
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].point.x, tb[i].point.x);
    EXPECT_EQ(ta[i].point.y, tb[i].point.y);
  }
}

TEST(ParticipantPanel, ThirtyDistinctProfiles) {
  const auto panel = participant_panel();
  ASSERT_EQ(panel.size(), 30u);
  for (const auto& p : panel) {
    EXPECT_GE(p.inter_key_mean_ms, 180.0);
    EXPECT_LE(p.inter_key_mean_ms, 520.0);
    EXPECT_GE(p.jitter_frac, 0.04);
    EXPECT_LE(p.jitter_frac, 0.13);
    EXPECT_GE(p.misspell_rate, 0.0);
  }
  // Not all identical.
  EXPECT_NE(panel[0].inter_key_mean_ms, panel[1].inter_key_mean_ms);
  // Stable across calls.
  EXPECT_EQ(participant_panel()[5].inter_key_mean_ms, panel[5].inter_key_mean_ms);
}

TEST(Password, GeneratedPasswordsMixClasses) {
  sim::Rng rng{11};
  for (int i = 0; i < 50; ++i) {
    const std::string pwd = random_password(8, rng);
    ASSERT_EQ(pwd.size(), 8u);
    bool lower = false, upper = false, digit = false, symbol = false;
    for (char c : pwd) {
      lower |= std::islower(static_cast<unsigned char>(c)) != 0;
      upper |= std::isupper(static_cast<unsigned char>(c)) != 0;
      digit |= std::isdigit(static_cast<unsigned char>(c)) != 0;
      symbol |= password_symbols().find(c) != std::string_view::npos;
    }
    EXPECT_TRUE(lower && upper && digit && symbol) << pwd;
  }
}

TEST(Password, AllCharactersTypeable) {
  sim::Rng rng{13};
  for (int len : {4, 6, 8, 10, 12}) {
    const std::string pwd = random_password(static_cast<std::size_t>(len), rng);
    for (char c : pwd) EXPECT_TRUE(Keyboard::typeable(c)) << c;
  }
}

TEST(Password, RespectsDisabledClasses) {
  sim::Rng rng{17};
  PasswordClasses classes;
  classes.upper = false;
  classes.symbols = false;
  const std::string pwd = random_password(20, rng, classes);
  for (char c : pwd) {
    EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c))) << pwd;
    EXPECT_EQ(password_symbols().find(c), std::string_view::npos) << pwd;
  }
}

TEST(Password, EmptyRequests) {
  sim::Rng rng{19};
  EXPECT_TRUE(random_password(0, rng).empty());
  PasswordClasses none{false, false, false, false};
  EXPECT_TRUE(random_password(8, rng, none).empty());
}

}  // namespace
}  // namespace animus::input
