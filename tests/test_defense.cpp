#include "defense/ipc_defense.hpp"

#include <gtest/gtest.h>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "defense/notification_defense.hpp"
#include "defense/toast_defense.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

namespace animus::defense {
namespace {

using sim::ms;
using sim::seconds;

server::World make_world(bool deterministic = true) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.deterministic = deterministic;
  wc.trace_enabled = false;
  return server::World{wc};
}

// ---------------------------------------------------------------- IPC --

TEST(IpcDefense, DetectsDrawAndDestroyOverlayAttack) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  IpcDefenseAnalyzer analyzer;
  analyzer.attach(world.transactions());
  core::OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(10));
  attack.stop();
  EXPECT_TRUE(analyzer.flagged(server::kMalwareUid));
  ASSERT_EQ(analyzer.detections().size(), 1u);
  EXPECT_EQ(analyzer.detections()[0].uid, server::kMalwareUid);
  EXPECT_GE(analyzer.detections()[0].pairs, analyzer.config().min_pairs);
}

TEST(IpcDefense, OfflineScanMatchesOnline) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  core::OverlayAttack attack{world, {}};
  attack.start();
  world.run_until(seconds(10));
  attack.stop();
  IpcDefenseAnalyzer analyzer;
  const auto found = analyzer.scan(world.transactions());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].uid, server::kMalwareUid);
}

TEST(IpcDefense, IgnoresBenignFloatingWidget) {
  // A music player adds one overlay, keeps it for minutes, removes it.
  auto world = make_world();
  world.server().grant_overlay_permission(server::kBenignUid);
  server::OverlaySpec spec;
  spec.bounds = {800, 200, 200, 200};
  spec.content = "music:bubble";
  const auto h = world.server().add_view(server::kBenignUid, spec);
  world.run_until(seconds(120));
  world.server().remove_view(server::kBenignUid, h);
  world.run_all();
  IpcDefenseAnalyzer analyzer;
  EXPECT_TRUE(analyzer.scan(world.transactions()).empty());
}

TEST(IpcDefense, IgnoresSlowTogglingApp) {
  // A navigation app shows/hides its overlay every 3 s: pairs exist but
  // the remove->add gap is far above the attack threshold... and even a
  // fast toggler below min_pairs is not flagged.
  auto world = make_world();
  world.server().grant_overlay_permission(server::kBenignUid);
  for (int i = 0; i < 12; ++i) {
    world.loop().schedule_at(seconds(3 * i), [&world] {
      server::OverlaySpec spec;
      spec.bounds = {0, 0, 300, 300};
      const auto h = world.server().add_view(server::kBenignUid, spec);
      world.loop().schedule_after(seconds(2), [&world, h] {
        world.server().remove_view(server::kBenignUid, h);
      });
    });
  }
  world.run_all();
  IpcDefenseAnalyzer analyzer;
  EXPECT_TRUE(analyzer.scan(world.transactions()).empty());
}

TEST(IpcDefense, SeparatesConcurrentApps) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  world.server().grant_overlay_permission(server::kBenignUid);
  core::OverlayAttack attack{world, {}};
  attack.start();
  server::OverlaySpec spec;
  spec.bounds = {800, 200, 200, 200};
  world.server().add_view(server::kBenignUid, spec);
  world.run_until(seconds(10));
  attack.stop();
  IpcDefenseAnalyzer analyzer;
  const auto found = analyzer.scan(world.transactions());
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].uid, server::kMalwareUid);
}

TEST(IpcDefense, ThresholdsAreConfigurable) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  core::OverlayAttackConfig oc;
  oc.attacking_window = ms(200);
  core::OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(3));  // ~14 pairs
  attack.stop();
  IpcDefenseConfig strict;
  strict.min_pairs = 100;
  EXPECT_TRUE(IpcDefenseAnalyzer{strict}.scan(world.transactions()).empty());
  IpcDefenseConfig lax;
  lax.min_pairs = 5;
  EXPECT_EQ(IpcDefenseAnalyzer{lax}.scan(world.transactions()).size(), 1u);
}

TEST(IpcDefense, DetectionLatencyWithinAFewWindows) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kMalwareUid);
  IpcDefenseAnalyzer analyzer;
  analyzer.attach(world.transactions());
  core::OverlayAttackConfig oc;
  oc.attacking_window = ms(150);
  core::OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(30));
  attack.stop();
  ASSERT_FALSE(analyzer.detections().empty());
  // min_pairs=8 at D=150 ms -> flagged within ~1.5 s of attack start.
  EXPECT_LT(analyzer.detections()[0].last_pair, seconds(2));
}

// ------------------------------------------------ enhanced notification --

TEST(NotificationDefense, DefeatsAttackAtAnyD) {
  const auto& dev = device::reference_device_android9();
  for (int d_ms : {60, 150, 215}) {
    const auto probe = probe_attack_under_defense(dev, ms(d_ms));
    EXPECT_EQ(probe.outcome, percept::LambdaOutcome::kL5) << "D=" << d_ms;
  }
}

TEST(NotificationDefense, WithoutDefenseSameDsAreInvisible) {
  const auto& dev = device::reference_device_android9();
  for (int d_ms : {60, 150, 215}) {
    const auto probe = core::run_outcome_probe({.profile = dev, .attacking_window = ms(d_ms)});
    EXPECT_EQ(probe.outcome, percept::LambdaOutcome::kL1) << "D=" << d_ms;
  }
}

TEST(NotificationDefense, WorksOnAndroid10WithAnaDelay) {
  const auto dev = *device::find_device("Redmi");  // bound 395, Android 10
  const auto probe = probe_attack_under_defense(dev, ms(350));
  EXPECT_EQ(probe.outcome, percept::LambdaOutcome::kL5);
}

TEST(NotificationDefense, AlertStaysVisibleForUserToAct) {
  const auto& dev = device::reference_device_android9();
  const auto probe = probe_attack_under_defense(dev, ms(150), kEnhancedAlertRemovalDelay,
                                                seconds(10));
  // Visible for the bulk of the 10 s attack: the user can read it and
  // open Settings.
  EXPECT_GT(probe.alert.visible_time, seconds(8));
}

TEST(NotificationDefense, BenignAppAlertStillClearsAfterGracePeriod) {
  auto world = make_world();
  world.server().grant_overlay_permission(server::kBenignUid);
  install_enhanced_notification_defense(world);
  server::OverlaySpec spec;
  spec.bounds = {0, 0, 300, 300};
  const auto h = world.server().add_view(server::kBenignUid, spec);
  world.run_until(seconds(5));
  world.server().remove_view(server::kBenignUid, h);
  world.run_until(seconds(8));
  EXPECT_EQ(world.system_ui().phase(server::kBenignUid),
            server::SystemUi::AlertPhase::kHidden);
}

// --------------------------------------------------------- toast gap --

TEST(ToastDefense, StockSchedulingShowsNoFlicker) {
  const auto probe = probe_toast_attack(device::reference_device_android9(), sim::SimTime{0});
  EXPECT_FALSE(probe.flicker.noticeable);
  EXPECT_GT(probe.flicker.min_alpha, 0.85);
}

TEST(ToastDefense, GapMakesFlickerPerceptible) {
  const auto probe =
      probe_toast_attack(device::reference_device_android9(), kDefaultToastGap);
  EXPECT_TRUE(probe.flicker.noticeable);
  EXPECT_LT(probe.flicker.min_alpha, 0.2);
  EXPECT_GE(probe.flicker.longest_dip, ms(400));
}

TEST(ToastDefense, GapReducesToastThroughput) {
  const auto stock = probe_toast_attack(device::reference_device_android9(), sim::SimTime{0});
  const auto gapped =
      probe_toast_attack(device::reference_device_android9(), kDefaultToastGap);
  EXPECT_LE(gapped.toasts_shown, stock.toasts_shown);
}

}  // namespace
}  // namespace animus::defense
