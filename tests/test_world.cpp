#include "server/world.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "input/ime.hpp"
#include "input/typist.hpp"
#include "victim/catalog.hpp"

namespace animus::server {
namespace {

using sim::ms;
using sim::seconds;

WorldConfig base_config() {
  WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.seed = 11;
  return wc;
}

TEST(World, ServicesWiredToSameLoop) {
  World world{base_config()};
  EXPECT_EQ(world.now(), sim::SimTime{0});
  world.run_until(seconds(1));
  EXPECT_EQ(world.now(), seconds(1));
  EXPECT_EQ(world.loop().pending(), 0u);
}

TEST(World, ActorsAreOwnedAndNamed) {
  World world{base_config()};
  sim::Actor& a = world.new_actor("worker");
  EXPECT_EQ(a.name(), "worker");
  bool ran = false;
  a.post(ms(5), ms(1), [&ran] { ran = true; });
  world.run_all();
  EXPECT_TRUE(ran);
}

TEST(World, ForkedRngsAreStablePerLabel) {
  World a{base_config()};
  World b{base_config()};
  EXPECT_EQ(a.fork_rng("x").next_u64(), b.fork_rng("x").next_u64());
  EXPECT_NE(a.fork_rng("x").next_u64(), a.fork_rng("y").next_u64());
}

TEST(World, DeterministicFlagPropagates) {
  WorldConfig wc = base_config();
  wc.deterministic = true;
  World world{wc};
  EXPECT_TRUE(world.server().deterministic());
}

TEST(World, TraceCanBeDisabled) {
  WorldConfig wc = base_config();
  wc.trace_enabled = false;
  World world{wc};
  world.server().grant_overlay_permission(kMalwareUid);
  OverlaySpec spec;
  spec.bounds = {0, 0, 100, 100};
  world.server().add_view(kMalwareUid, spec);
  world.run_until(seconds(1));
  EXPECT_EQ(world.trace().size(), 0u);
}

TEST(StatusBar, IconAppearsWithCompletedAlert) {
  World world{base_config()};
  world.server().grant_overlay_permission(kMalwareUid);
  OverlaySpec spec;
  spec.bounds = {0, 0, 100, 100};
  const auto h = world.server().add_view(kMalwareUid, spec);
  world.run_until(seconds(2));
  EXPECT_TRUE(world.system_ui().status_bar_has_icon(kMalwareUid));
  EXPECT_EQ(world.system_ui().status_bar_icon_count(), 1);
  world.server().remove_view(kMalwareUid, h);
  world.run_until(seconds(4));
  EXPECT_FALSE(world.system_ui().status_bar_has_icon(kMalwareUid));
  EXPECT_EQ(world.system_ui().status_bar_icon_count(), 0);
}

TEST(StatusBar, CapacityIsFourIcons) {
  World world{base_config()};
  for (int uid = 100; uid < 106; ++uid) {
    world.server().grant_overlay_permission(uid);
    OverlaySpec spec;
    spec.bounds = {0, 0, 100, 100};
    world.server().add_view(uid, spec);
  }
  world.run_until(seconds(3));
  EXPECT_EQ(world.system_ui().status_bar_icon_count(), kStatusBarIconCapacity);
}

TEST(StatusBar, SuppressedAlertNeverReachesStatusBar) {
  World world{base_config()};
  world.server().grant_overlay_permission(kMalwareUid);
  core::CaptureTrialConfig unused;  // (keeps include honest)
  (void)unused;
  // Draw-and-destroy below the bound: no icon at any point.
  OverlaySpec spec;
  spec.bounds = {0, 0, 100, 100};
  ViewHandle h = world.server().add_view(kMalwareUid, spec);
  for (int i = 1; i <= 20; ++i) {
    world.loop().schedule_at(ms(190 * i), [&world, &h] {
      world.server().remove_view(kMalwareUid, h);
      OverlaySpec s2;
      s2.bounds = {0, 0, 100, 100};
      h = world.server().add_view(kMalwareUid, s2);
    });
  }
  // While the draw-and-destroy churn is active, no icon ever lands.
  world.run_until(ms(3800));
  EXPECT_EQ(world.system_ui().status_bar_icon_count(), 0);
  // Once the churn stops, the surviving overlay's alert completes and
  // the icon appears — the suppression only works while cycling.
  world.run_until(seconds(6));
  EXPECT_EQ(world.system_ui().status_bar_icon_count(), 1);
}

TEST(Trials, PasswordTrialIsDeterministicPerConfig) {
  core::PasswordTrialConfig c;
  c.profile = device::reference_device_android9();
  c.app = victim::find_app("Skype")->spec;
  c.typist = input::participant_panel()[3];
  c.password = "aB3$xy";
  c.seed = 77;
  const auto r1 = core::run_password_trial(c);
  const auto r2 = core::run_password_trial(c);
  EXPECT_EQ(r1.decoded, r2.decoded);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.captured_touches, r2.captured_touches);
}

TEST(Trials, CaptureTrialIsDeterministicPerConfig) {
  core::CaptureTrialConfig c;
  c.profile = device::reference_device_android9();
  c.typist = input::participant_panel()[4];
  c.attacking_window = ms(125);
  c.seed = 5;
  EXPECT_EQ(core::run_capture_trial(c).captured, core::run_capture_trial(c).captured);
}

TEST(Trials, DifferentSeedsDiffer) {
  core::CaptureTrialConfig c;
  c.profile = device::reference_device_android9();
  c.typist = input::participant_panel()[4];
  c.attacking_window = ms(75);
  c.seed = 5;
  const auto a = core::run_capture_trial(c);
  c.seed = 6;
  const auto b = core::run_capture_trial(c);
  // Touch plans differ; almost surely different capture counts or at
  // least different alert stats — compare the full tuple loosely.
  EXPECT_TRUE(a.captured != b.captured || a.alert.shows != b.alert.shows ||
              a.rate != b.rate);
}

}  // namespace
}  // namespace animus::server
