#include "ui/window.hpp"

#include <gtest/gtest.h>

#include "ui/geometry.hpp"

namespace animus::ui {
namespace {

using sim::ms;

TEST(Geometry, RectContainment) {
  const Rect r{10, 10, 100, 50};
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_TRUE(r.contains({109, 59}));
  EXPECT_FALSE(r.contains({110, 59}));  // exclusive right/bottom edge
  EXPECT_FALSE(r.contains({9, 30}));
  EXPECT_EQ(r.center().x, 60);
  EXPECT_EQ(r.center().y, 35);
  EXPECT_EQ(r.area(), 5000);
}

TEST(Geometry, RectIntersection) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 10, 10}, c{20, 20, 5, 5};
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));
}

TEST(Geometry, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(ZOrder, PaperComposition) {
  // Section V: transparent overlays sit over the fake-keyboard toast,
  // which sits over the real keyboard (input method).
  EXPECT_GT(base_layer(WindowType::kAppOverlay), base_layer(WindowType::kToast));
  EXPECT_GT(base_layer(WindowType::kToast), base_layer(WindowType::kInputMethod));
  EXPECT_GT(base_layer(WindowType::kInputMethod), base_layer(WindowType::kActivity));
  EXPECT_GT(base_layer(WindowType::kStatusBar), base_layer(WindowType::kAppOverlay));
}

TEST(Window, ToastsAreNeverTouchable) {
  Window w;
  w.type = WindowType::kToast;
  EXPECT_FALSE(w.touchable());
}

TEST(Window, OverlayTouchableUnlessFlagged) {
  Window w;
  w.type = WindowType::kAppOverlay;
  EXPECT_TRUE(w.touchable());
  w.flags = kFlagNotTouchable;
  EXPECT_FALSE(w.touchable());  // the clickjacking configuration
}

TEST(Window, StaticWindowIsOpaqueAfterAdd) {
  Window w;
  w.added_at = ms(100);
  EXPECT_DOUBLE_EQ(w.alpha_at(ms(99)), 0.0);
  EXPECT_DOUBLE_EQ(w.alpha_at(ms(100)), 1.0);
}

TEST(FadeAnimation, FadeInAlphaRises) {
  FadeAnimation f;
  f.animation = toast_fade_in();
  f.start = ms(0);
  f.fade_in = true;
  EXPECT_DOUBLE_EQ(f.alpha_at(ms(0)), 0.0);
  EXPECT_GT(f.alpha_at(ms(100)), 0.3);
  EXPECT_DOUBLE_EQ(f.alpha_at(ms(500)), 1.0);
  EXPECT_TRUE(f.finished_at(ms(500)));
  EXPECT_FALSE(f.finished_at(ms(499)));
}

TEST(FadeAnimation, FadeOutAlphaStaysHighEarly) {
  // The exploited property: 100 ms into the exit the toast still has
  // ~96% alpha (frame-quantized y = x^2 fade).
  FadeAnimation f;
  f.animation = toast_fade_out();
  f.start = ms(1000);
  f.fade_in = false;
  EXPECT_DOUBLE_EQ(f.alpha_at(ms(1000)), 1.0);
  EXPECT_GT(f.alpha_at(ms(1100)), 0.94);
  EXPECT_DOUBLE_EQ(f.alpha_at(ms(1500)), 0.0);
}

TEST(Window, FadingWindowUsesAnimationAlpha) {
  Window w;
  w.added_at = ms(0);
  w.exit_fade = FadeAnimation{toast_fade_out(), ms(0), false};
  EXPECT_LT(w.alpha_at(ms(400)), 0.5);
}

TEST(Window, HistoricalAlphaSurvivesExitAttachment) {
  // A window that faded in at t=0 and started fading out at t=2000 must
  // still answer alpha(t=100) from the *enter* animation — post-hoc
  // flicker scans depend on it.
  Window w;
  w.added_at = ms(0);
  w.enter_fade = FadeAnimation{toast_fade_in(), ms(0), true};
  w.exit_fade = FadeAnimation{toast_fade_out(), ms(2000), false};
  EXPECT_LT(w.alpha_at(ms(100)), 0.5);     // still fading in
  EXPECT_DOUBLE_EQ(w.alpha_at(ms(1000)), 1.0);  // fully shown
  EXPECT_LT(w.alpha_at(ms(2400)), 0.5);    // fading out
}

TEST(WindowType, NamesAreStable) {
  EXPECT_EQ(to_string(WindowType::kToast), "toast");
  EXPECT_EQ(to_string(WindowType::kAppOverlay), "app_overlay");
}

}  // namespace
}  // namespace animus::ui
