#include "percept/outcomes.hpp"

#include <gtest/gtest.h>

#include "percept/flicker.hpp"
#include "percept/survey.hpp"
#include "sim/event_loop.hpp"
#include "ui/animation.hpp"

namespace animus::percept {
namespace {

using server::SystemUi;
using sim::ms;

SystemUi::AlertStats stats(int max_px, double completeness, double msg, bool icon,
                           sim::SimTime visible = sim::ms(0)) {
  SystemUi::AlertStats s;
  s.max_pixels = max_px;
  s.max_completeness = completeness;
  s.max_message_progress = msg;
  s.icon_shown = icon;
  s.visible_time = visible;
  return s;
}

TEST(Outcomes, LambdaClassification) {
  EXPECT_EQ(classify(stats(0, 0.0, 0, false)), LambdaOutcome::kL1);
  EXPECT_EQ(classify(stats(1, 0.01, 0, false)), LambdaOutcome::kL1);  // sub-threshold
  EXPECT_EQ(classify(stats(10, 0.14, 0, false)), LambdaOutcome::kL2);
  EXPECT_EQ(classify(stats(72, 1.0, 0, false)), LambdaOutcome::kL3);
  EXPECT_EQ(classify(stats(72, 1.0, 0.5, false)), LambdaOutcome::kL4);
  EXPECT_EQ(classify(stats(72, 1.0, 1.0, true)), LambdaOutcome::kL5);
}

TEST(Outcomes, IconWithoutFullMessageIsStillL4) {
  EXPECT_EQ(classify(stats(72, 1.0, 0.7, true)), LambdaOutcome::kL4);
}

TEST(Outcomes, Names) {
  EXPECT_EQ(to_string(LambdaOutcome::kL1), "L1 (no view)");
  EXPECT_EQ(to_string(LambdaOutcome::kL5), "L5 (message + icon)");
}

TEST(Outcomes, AlertNoticedNeedsVisibilityAndDuration) {
  EXPECT_FALSE(alert_noticed(stats(0, 0, 0, false, sim::seconds(10))));
  EXPECT_FALSE(alert_noticed(stats(30, 0.4, 0, false, ms(20))));  // brief flash
  EXPECT_TRUE(alert_noticed(stats(30, 0.4, 0, false, ms(200))));
}

// --------------------------------------------------------------- flicker --

struct FlickerFixture : ::testing::Test {
  sim::EventLoop loop;
  sim::TraceRecorder trace;
  server::WindowManagerService wms{loop, trace};

  void add_toast_at(sim::SimTime t, sim::SimTime fade_out_at) {
    loop.schedule_at(t, [this, fade_out_at] {
      ui::Window w;
      w.owner_uid = 7;
      w.content = "fake_keyboard:lower";
      const auto id = wms.add_toast_now(w);
      loop.schedule_at(fade_out_at, [this, id] { wms.fade_out_and_remove(id); });
    });
  }
};

TEST_F(FlickerFixture, OverlappingFadesShowNoDip) {
  add_toast_at(ms(0), ms(3500));
  add_toast_at(ms(3515), ms(7000));  // replacement lands as fade-out begins
  loop.run_until(sim::seconds(8));
  const auto r = scan_flicker(wms, 7, "fake_keyboard", ms(600), ms(6500));
  EXPECT_FALSE(r.noticeable);
  EXPECT_GT(r.min_alpha, 0.85);
}

TEST_F(FlickerFixture, GapBetweenToastsIsNoticed) {
  add_toast_at(ms(0), ms(2000));
  add_toast_at(ms(3000), ms(6000));  // 500+ ms of nothing on screen
  loop.run_until(sim::seconds(7));
  const auto r = scan_flicker(wms, 7, "fake_keyboard", ms(600), ms(6000));
  EXPECT_TRUE(r.noticeable);
  EXPECT_DOUBLE_EQ(r.min_alpha, 0.0);
  EXPECT_GE(r.dips, 1);
}

TEST_F(FlickerFixture, ThresholdAndDurationConfigurable) {
  add_toast_at(ms(0), ms(2000));
  add_toast_at(ms(2100), ms(5000));  // 100 ms late: a shallow dip
  loop.run_until(sim::seconds(6));
  FlickerConfig strict;
  strict.threshold = 0.999;
  strict.min_duration = ms(10);
  const auto r = scan_flicker(wms, 7, "fake_keyboard", ms(600), ms(5000), strict);
  EXPECT_TRUE(r.noticeable);
}

TEST_F(FlickerFixture, EmptyTimelineIsOneLongDip) {
  const auto r = scan_flicker(wms, 7, "fake_keyboard", ms(0), ms(1000));
  EXPECT_TRUE(r.noticeable);
  EXPECT_EQ(r.dips, 1);
}

// ---------------------------------------------------------------- survey --

TEST(Survey, CleanSessionReportsNothing) {
  sim::Rng rng{1};
  SurveyConfig cfg;
  cfg.lag_report_rate = 0.0;
  FlickerResult quiet;
  const auto p = judge_session(SystemUi::AlertStats{}, quiet, rng, cfg);
  EXPECT_FALSE(p.reported_anything());
}

TEST(Survey, VisibleAlertIsNoticed) {
  sim::Rng rng{1};
  SurveyConfig cfg;
  cfg.lag_report_rate = 0.0;
  FlickerResult quiet;
  const auto p = judge_session(stats(72, 1.0, 1.0, true, sim::seconds(2)), quiet, rng, cfg);
  EXPECT_TRUE(p.noticed_alert);
  EXPECT_TRUE(p.noticed_attack());
}

TEST(Survey, FlickerIsNoticed) {
  sim::Rng rng{1};
  SurveyConfig cfg;
  cfg.lag_report_rate = 0.0;
  FlickerResult bad;
  bad.noticeable = true;
  const auto p = judge_session(SystemUi::AlertStats{}, bad, rng, cfg);
  EXPECT_TRUE(p.noticed_flicker);
}

TEST(Survey, LagReportsFollowRate) {
  sim::Rng rng{2};
  SurveyConfig cfg;
  cfg.lag_report_rate = 1.0 / 30.0;
  FlickerResult quiet;
  SurveyTally tally;
  for (int i = 0; i < 3000; ++i) {
    tally.add(judge_session(SystemUi::AlertStats{}, quiet, rng, cfg));
  }
  EXPECT_EQ(tally.participants, 3000);
  EXPECT_EQ(tally.noticed_attack, 0);
  EXPECT_NEAR(tally.reported_lag, 100, 40);
  EXPECT_EQ(tally.reported_nothing + tally.reported_lag, 3000);
}

TEST(Survey, TallyPrioritizesAttackOverLag) {
  SurveyTally tally;
  ParticipantPerception p;
  p.noticed_alert = true;
  p.reported_lag = true;
  tally.add(p);
  EXPECT_EQ(tally.noticed_attack, 1);
  EXPECT_EQ(tally.reported_lag, 0);
}

}  // namespace
}  // namespace animus::percept
