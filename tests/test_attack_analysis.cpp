#include "core/attack_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "ui/animation.hpp"

namespace animus::core {
namespace {

using sim::ms;
using sim::seconds;

TEST(Equation2, MatchesHandComputation) {
  // E(Tm) = (ceil(T/D) - 1) E(Tmis) + E(Tam) + E(Tas).
  const auto& dev = device::reference_device_android9();
  const double tmis = dev.expected_tmis_ms();
  const double expected = (std::ceil(3000.0 / 150.0) - 1.0) * tmis + dev.tam.mean_ms +
                          dev.tas.mean_ms;
  EXPECT_NEAR(expected_total_mistouch_ms(dev, 3000.0, 150.0), expected, 1e-9);
}

TEST(Equation2, GeneralTNotMultipleOfD) {
  const auto& dev = device::reference_device_android9();
  // T = 1000, D = 300 -> ceil = 4 cycles -> 3 full mistouch gaps.
  const double expected = 3.0 * dev.expected_tmis_ms() + dev.tam.mean_ms + dev.tas.mean_ms;
  EXPECT_NEAR(expected_total_mistouch_ms(dev, 1000.0, 300.0), expected, 1e-9);
}

TEST(Equation2, SingleCycleHasOnlySetupCost) {
  const auto& dev = device::reference_device_android9();
  // T <= D: the only loss is the initial Tam + Tas before O1 exists.
  EXPECT_NEAR(expected_total_mistouch_ms(dev, 100.0, 200.0),
              dev.tam.mean_ms + dev.tas.mean_ms, 1e-9);
}

TEST(PredictedCapture, ZeroContactIsDownCapture) {
  const auto& dev = device::reference_device_android9();
  const double down = predicted_capture_rate(dev, 200.0, 0.0);
  const double gesture = predicted_capture_rate(dev, 200.0, 14.0);
  EXPECT_GT(down, gesture);
  EXPECT_NEAR(down, 1.0 - dev.expected_tmis_ms() / 200.0, 1e-9);
}

TEST(PredictedCapture, ClampsToZero) {
  const auto& dev = device::reference_device_android9();
  EXPECT_EQ(predicted_capture_rate(dev, 1.0, 500.0), 0.0);
}

TEST(ProbeOutcome, DeterministicAndRepeatable) {
  const auto& dev = device::reference_device_android9();
  const auto a = run_outcome_probe({.profile = dev, .attacking_window = ms(150)});
  const auto b = run_outcome_probe({.profile = dev, .attacking_window = ms(150)});
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.alert.max_pixels, b.alert.max_pixels);
}

TEST(ProbeOutcome, MonotoneInD) {
  // Outcome severity never decreases as D grows.
  const auto& dev = device::reference_device_android9();
  int prev = 1;
  for (int d = 50; d <= 800; d += 50) {
    const auto probe = run_outcome_probe(
        {.profile = dev, .attacking_window = ms(d), .duration = seconds(4)});
    const int sev = static_cast<int>(probe.outcome);
    EXPECT_GE(sev, prev) << "D=" << d;
    prev = sev;
  }
}

TEST(ProbeOutcome, CyclesScaleWithDuration) {
  const auto& dev = device::reference_device_android9();
  const auto short_run = run_outcome_probe(
      {.profile = dev, .attacking_window = ms(100), .duration = seconds(2)});
  const auto long_run = run_outcome_probe(
      {.profile = dev, .attacking_window = ms(100), .duration = seconds(8)});
  EXPECT_GT(long_run.cycles, short_run.cycles * 3);
}

TEST(FindDBound, AgreesWithClosedFormEverywhere) {
  for (const auto& dev : device::all_devices()) {
    EXPECT_NEAR(run_d_bound_trial({.profile = dev}).d_upper_ms,
                dev.predicted_d_max_ms(ui::kNakedEyeMinPixels), 1.0)
        << dev.display_name();
  }
}

TEST(FindDBound, LegacyDeviceNeverShowsAlert) {
  // No overlay notification on Android 7: every D is "stealthy".
  const auto legacy =
      device::make_profile("Legacy", "nexus5", device::AndroidVersion::kV7, 150.0);
  EXPECT_EQ(run_d_bound_trial({.profile = legacy, .max_ms = 600}).d_upper_ms, 600);
}

TEST(FindDBound, RespectsSearchCap) {
  const auto& dev = device::reference_device_android9();
  // Cap below the true bound: the search saturates at the cap.
  EXPECT_EQ(run_d_bound_trial({.profile = dev, .max_ms = 100}).d_upper_ms, 100);
}

}  // namespace
}  // namespace animus::core
