// Golden-log harness for checked-in scenario scripts.
//
// Each scenarios/*.scenario file is a ctest case: the script must run
// clean (every expect passes) AND its ScenarioResult::log — the
// timestamped replay of every executed command — must match the
// checked-in golden byte-for-byte, so a behavioural drift in the
// simulation shows up as a readable log diff, not just a failed expect.
//
//   scenario_golden <script.scenario> <golden.log>            # compare
//   scenario_golden <script.scenario> <golden.log> --update   # regenerate
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "script/scenario.hpp"

namespace {

std::optional<std::string> slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Print the first differing line of two logs, with context for a human.
void print_first_diff(const std::string& want, const std::string& got) {
  std::istringstream ws(want), gs(got);
  std::string wl, gl;
  std::size_t line = 0;
  while (true) {
    const bool wok = static_cast<bool>(std::getline(ws, wl));
    const bool gok = static_cast<bool>(std::getline(gs, gl));
    ++line;
    if (!wok && !gok) return;
    if (wok != gok || wl != gl) {
      std::fprintf(stderr, "first difference at log line %zu:\n  golden: %s\n  actual: %s\n",
                   line, wok ? wl.c_str() : "<end of file>", gok ? gl.c_str() : "<end of file>");
      return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <script.scenario> <golden.log> [--update]\n", argv[0]);
    return 2;
  }
  const char* script_path = argv[1];
  const char* golden_path = argv[2];
  const bool update = argc > 3 && std::strcmp(argv[3], "--update") == 0;

  const auto script = slurp(script_path);
  if (!script) {
    std::fprintf(stderr, "cannot read %s\n", script_path);
    return 2;
  }

  const auto result = animus::script::run_scenario(*script);
  if (!result.ok) {
    std::fprintf(stderr, "%s FAILED at %zu:%zu: %s\n", script_path, result.error->line,
                 result.error->column, result.error->message.c_str());
    return 1;
  }

  if (update) {
    std::ofstream out(golden_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", golden_path);
      return 2;
    }
    out << result.log;
    std::fprintf(stderr, "updated %s (%d expects)\n", golden_path, result.expects_checked);
    return 0;
  }

  const auto golden = slurp(golden_path);
  if (!golden) {
    std::fprintf(stderr, "cannot read golden %s (run with --update to create it)\n",
                 golden_path);
    return 1;
  }
  if (*golden != result.log) {
    std::fprintf(stderr, "%s: log drifted from golden %s\n", script_path, golden_path);
    print_first_diff(*golden, result.log);
    return 1;
  }
  std::printf("%s OK — %d expectation(s), log matches golden\n", script_path,
              result.expects_checked);
  return 0;
}
