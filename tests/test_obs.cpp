// Telemetry layer: metrics registry, trace capture, spans and the
// Chrome-trace export format.
#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_capture.hpp"
#include "runner/runner.hpp"
#include "server/world.hpp"
#include "sim/chrome_trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/span.hpp"
#include "sim/trace.hpp"

namespace {

using namespace animus;

// ------------------------------------------------------------- instruments

TEST(Metrics, CounterAddsAndGaugeTracksMax) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("animus_widgets_total");
  c.inc();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);

  auto& g = reg.gauge("animus_depth");
  g.set(4.0);
  g.set_max(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(1.0);  // plain set always wins
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

TEST(Metrics, LabelsAddressDistinctInstrumentsOrderInsensitively) {
  obs::MetricsRegistry reg;
  reg.counter("animus_calls_total", {{"method", "addView"}}).inc();
  reg.counter("animus_calls_total", {{"method", "removeView"}}).add(2.0);
  // Same label set in a different order resolves to the same instrument.
  reg.counter("animus_calls_total", {{"uid", "1"}, {"method", "addView"}}).inc();
  reg.counter("animus_calls_total", {{"method", "addView"}, {"uid", "1"}}).inc();

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.points.size(), 3u);
  const auto* add = snap.find("animus_calls_total", {{"method", "addView"}});
  ASSERT_NE(add, nullptr);
  EXPECT_DOUBLE_EQ(add->value, 1.0);
  const auto* both = snap.find("animus_calls_total", {{"uid", "1"}, {"method", "addView"}});
  ASSERT_NE(both, nullptr);
  EXPECT_DOUBLE_EQ(both->value, 2.0);
}

TEST(Metrics, TypeMismatchThrows) {
  obs::MetricsRegistry reg;
  reg.counter("animus_thing");
  EXPECT_THROW(reg.gauge("animus_thing"), std::logic_error);
  EXPECT_THROW(reg.histogram("animus_thing", {1.0}), std::logic_error);
}

TEST(Metrics, HistogramBucketsQuantilesAndExtrema) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("animus_latency_ms", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));  // 1..100
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  // Buckets (inclusive upper bounds): <=1 -> 1, <=10 -> 9, <=100 -> 90.
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 9u);
  EXPECT_EQ(h.bucket_count(2), 90u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // +inf overflow
  // Median interpolates inside the (10, 100] bucket.
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Metrics, ConcurrentCounterAndHistogramUpdatesAreExact) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kUpdates = 10'000;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&reg] {
      // Registration races on the mutex; updates race lock-free.
      auto& c = reg.counter("animus_hits_total");
      auto& h = reg.histogram("animus_obs_ms", {0.5});
      for (int i = 0; i < kUpdates; ++i) {
        c.inc();
        h.observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (auto& t : pool) t.join();
  const auto snap = reg.snapshot();
  const auto* c = snap.find("animus_hits_total");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, kThreads * static_cast<double>(kUpdates));
  const auto* h = snap.find("animus_obs_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads) * kUpdates);
  EXPECT_EQ(h->buckets[0], static_cast<std::uint64_t>(kThreads) * kUpdates / 2);
  EXPECT_EQ(h->buckets[1], static_cast<std::uint64_t>(kThreads) * kUpdates / 2);
}

// --------------------------------------------------------------- snapshots

TEST(Metrics, SnapshotOrderIsDeterministic) {
  obs::MetricsRegistry a;
  a.counter("z_metric").inc();
  a.counter("a_metric").inc();
  a.gauge("m_metric").set(2.0);

  obs::MetricsRegistry b;
  b.gauge("m_metric").set(2.0);
  b.counter("a_metric").inc();
  b.counter("z_metric").inc();

  // Registration order differs; serialized snapshots are identical.
  EXPECT_EQ(a.snapshot().to_jsonl(), b.snapshot().to_jsonl());
  ASSERT_EQ(a.snapshot().points.size(), 3u);
  EXPECT_EQ(a.snapshot().points[0].name, "a_metric");
}

TEST(Metrics, MergeAddsCountersMaxesGaugesAndFoldsHistograms) {
  obs::MetricsRegistry worker;
  worker.counter("animus_trials_total").add(5.0);
  worker.gauge("animus_peak").set(7.0);
  auto& h = worker.histogram("animus_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(5.0);

  obs::MetricsRegistry main;
  main.counter("animus_trials_total").add(2.0);
  main.gauge("animus_peak").set(3.0);
  main.histogram("animus_ms", {1.0, 10.0}).observe(20.0);

  main.merge(worker.snapshot());
  const auto snap = main.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("animus_trials_total")->value, 7.0);
  EXPECT_DOUBLE_EQ(snap.find("animus_peak")->value, 7.0);
  const auto* merged = snap.find("animus_ms");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, 3u);
  EXPECT_DOUBLE_EQ(merged->sum, 25.5);
  EXPECT_DOUBLE_EQ(merged->min, 0.5);
  EXPECT_DOUBLE_EQ(merged->max, 20.0);
  EXPECT_EQ(merged->buckets[0], 1u);
  EXPECT_EQ(merged->buckets[1], 1u);
  EXPECT_EQ(merged->buckets[2], 1u);
}

TEST(Metrics, PrometheusExportHasCumulativeBucketsAndInf) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("animus_ms", {1.0, 10.0}, {{"bench", "fig07"}});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  reg.counter("animus_runs_total").inc();
  const std::string prom = reg.snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE animus_ms histogram"), std::string::npos);
  EXPECT_NE(prom.find(R"(animus_ms_bucket{bench="fig07",le="1"} 1)"), std::string::npos);
  EXPECT_NE(prom.find(R"(animus_ms_bucket{bench="fig07",le="10"} 2)"), std::string::npos);
  EXPECT_NE(prom.find(R"(animus_ms_bucket{bench="fig07",le="+Inf"} 3)"), std::string::npos);
  EXPECT_NE(prom.find(R"(animus_ms_count{bench="fig07"} 3)"), std::string::npos);
  EXPECT_NE(prom.find("animus_runs_total 1"), std::string::npos);
}

TEST(Metrics, JsonlEscapesLabelValues) {
  obs::MetricsRegistry reg;
  reg.counter("animus_odd_total", {{"tag", "quote\"back\\slash\nnewline"}}).inc();
  const std::string jsonl = reg.snapshot().to_jsonl();
  EXPECT_NE(jsonl.find(R"(quote\"back\\slash\nnewline)"), std::string::npos);
  EXPECT_EQ(jsonl.find('\n'), jsonl.size() - 1);  // one line, one record
}

// ------------------------------------------------------------ trace capture

TEST(TraceCapture, FirstWorldOfArmedTrialClaimsAndDelivers) {
  auto& cap = obs::trace_capture();
  cap.reset();
  cap.arm(1);
  {
    obs::TraceCapture::TrialScope scope{0};
    server::WorldConfig wc;
    wc.trace_enabled = false;
    server::World w0{wc};  // wrong trial: no claim
    EXPECT_FALSE(w0.trace().enabled());
  }
  {
    obs::TraceCapture::TrialScope scope{1};
    server::WorldConfig wc;
    wc.trace_enabled = false;
    server::World w1{wc};  // armed trial: claims, tracing force-enabled
    EXPECT_TRUE(w1.trace().enabled());
    w1.server().grant_overlay_permission(server::kMalwareUid);
    w1.run_until(sim::ms(5));
    server::World w2{wc};  // second world in same trial: no claim
    EXPECT_FALSE(w2.trace().enabled());
  }  // ~World delivers
  EXPECT_TRUE(cap.captured());
  EXPECT_GT(cap.trace().size(), 0u);
  cap.reset();
  EXPECT_FALSE(cap.captured());
}

TEST(TraceCapture, UnarmedOrUnmarkedThreadsNeverClaim) {
  auto& cap = obs::trace_capture();
  cap.reset();
  EXPECT_FALSE(cap.try_claim());  // no TrialScope, not armed
  cap.arm(0);
  EXPECT_FALSE(cap.try_claim());  // armed but thread not in a trial
  EXPECT_EQ(obs::TraceCapture::current_trial(), std::nullopt);
  cap.reset();
}

TEST(TraceCapture, SweepCapturesIdenticalTraceAtAnyJobCount) {
  const std::vector<int> items{0, 1, 2, 3, 4, 5, 6, 7};
  auto run_with_jobs = [&](int jobs) {
    auto& cap = obs::trace_capture();
    cap.reset();
    cap.arm(0);
    runner::RunOptions opts;
    opts.jobs = jobs;
    runner::sweep(
        items,
        [](int, const runner::TrialContext& ctx) {
          server::WorldConfig wc;
          wc.seed = ctx.seed;
          wc.trace_enabled = false;
          server::World w{wc};
          w.server().grant_overlay_permission(server::kMalwareUid);
          w.server().add_view(server::kMalwareUid, {});
          w.run_until(sim::ms(50));
          return 0;
        },
        opts);
    EXPECT_TRUE(cap.captured());
    std::string json = sim::to_chrome_trace_json(cap.trace());
    cap.reset();
    return json;
  };
  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(serial.size(), 2u);
}

// ------------------------------------------------------------ span records

TEST(Spans, ScopedSpanCoversEventLoopAdvance) {
  sim::EventLoop loop;
  sim::TraceRecorder trace;
  {
    sim::ScopedSpan span(trace, loop, sim::TraceCategory::kSim, "window");
    loop.run_until(sim::ms(25));
  }
  ASSERT_EQ(trace.size(), 1u);
  const auto& rec = trace.records()[0];
  EXPECT_EQ(rec.phase, sim::TracePhase::kSpan);
  EXPECT_EQ(rec.time, sim::SimTime{0});
  EXPECT_EQ(rec.duration, sim::ms(25));
  EXPECT_EQ(trace.span_count(sim::TraceCategory::kSim), 1u);
}

TEST(Spans, BackwardsSpanClampsToZeroDuration) {
  sim::TraceRecorder trace;
  trace.span(sim::ms(10), sim::ms(5), sim::TraceCategory::kApp, "clamped");
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.records()[0].duration, sim::SimTime{0});
  EXPECT_EQ(trace.records()[0].time, sim::ms(10));
}

// ------------------------------------------------- chrome trace well-formed

// Minimal JSON structural validator: balanced containers, quotes closed,
// escapes legal. Returns false on the first structural error.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        if (i + 1 >= s.size()) return false;
        const char esc = s[++i];
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' && esc != 'f' &&
            esc != 'n' && esc != 'r' && esc != 't' && esc != 'u') {
          return false;
        }
        if (esc == 'u') {
          if (i + 4 >= s.size()) return false;
          for (int k = 1; k <= 4; ++k) {
            if (std::isxdigit(static_cast<unsigned char>(s[i + k])) == 0) return false;
          }
          i += 4;
        }
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '[': case '{': stack.push_back(c); break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ChromeTrace, ExportIsStructurallyValidWithSpansFlowsAndEscapes) {
  sim::TraceRecorder trace;
  trace.record(sim::ms(1), sim::TraceCategory::kApp, "quote \" and \\ backslash\nnewline");
  trace.span(sim::ms(2), sim::ms(8), sim::TraceCategory::kSystemServer, "window life");
  const std::uint64_t flow = trace.new_flow();
  trace.flow_start(sim::ms(2), sim::TraceCategory::kApp, "call", flow);
  trace.flow_end(sim::ms(4), sim::TraceCategory::kSystemServer, "landed", flow);

  const std::string json = sim::to_chrome_trace_json(trace, "animus-test");
  EXPECT_TRUE(json_well_formed(json));
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X","dur":6000)"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"s")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"f","bp":"e")"), std::string::npos);
  // Flow endpoints pair on (cat, id): both carry the shared flow cat.
  EXPECT_NE(json.find(R"("id":1,"pid":1)"), std::string::npos);
  EXPECT_EQ(json.find("\n\""), std::string::npos);  // no raw newline inside strings
}

TEST(ChromeTrace, LiveWorldTraceLoadsCleanAndHasDistinctSpanTracks) {
  server::WorldConfig wc;
  wc.deterministic = true;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);
  // A few add/remove rounds so windows, Binder transits and alert
  // lifecycles all produce spans.
  auto h1 = world.server().add_view(server::kMalwareUid, {});
  world.run_until(sim::ms(150));
  world.server().remove_view(server::kMalwareUid, h1);
  world.run_until(sim::ms(1500));

  const auto& trace = world.trace();
  EXPECT_GT(trace.span_count(sim::TraceCategory::kIpc), 0u);
  EXPECT_GT(trace.span_count(sim::TraceCategory::kSystemServer), 0u);
  EXPECT_GT(trace.span_count(sim::TraceCategory::kSystemUi), 0u);
  EXPECT_GT(trace.span_count(sim::TraceCategory::kSim), 0u);

  const std::string json = sim::to_chrome_trace_json(trace);
  EXPECT_TRUE(json_well_formed(json));
  // Instants must carry no dur; spans must never have negative dur.
  EXPECT_EQ(json.find("\"dur\":-"), std::string::npos);
}

TEST(ChromeTrace, InstantTimestampsAreMonotonicWithinTheRecordStream) {
  // The recorder appends in completion order; instants specifically must
  // be non-decreasing because virtual time never runs backwards.
  server::WorldConfig wc;
  wc.deterministic = true;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);
  world.server().add_view(server::kMalwareUid, {});
  world.run_until(sim::seconds(1));
  sim::SimTime last{0};
  for (const auto& rec : world.trace().records()) {
    if (rec.phase != sim::TracePhase::kInstant) continue;
    EXPECT_GE(rec.time, last);
    last = rec.time;
  }
}

// --------------------------------------------------------- world counters

TEST(WorldTelemetry, DestructorPublishesCountersToGlobalRegistry) {
  auto& reg = obs::global_registry();
  const auto before = reg.snapshot();
  const auto value_of = [](const obs::Snapshot& s, const char* name,
                           const obs::Labels& labels = {}) {
    const auto* p = s.find(name, labels);
    return p == nullptr ? 0.0 : p->value;
  };
  {
    server::WorldConfig wc;
    wc.deterministic = true;
    server::World world{wc};
    world.server().grant_overlay_permission(server::kMalwareUid);
    world.server().add_view(server::kMalwareUid, {});
    world.run_until(sim::ms(200));
  }
  const auto after = reg.snapshot();
  EXPECT_EQ(value_of(after, "animus_worlds_total"), value_of(before, "animus_worlds_total") + 1);
  EXPECT_GT(value_of(after, "animus_events_executed_total"),
            value_of(before, "animus_events_executed_total"));
  EXPECT_GT(value_of(after, "animus_windows_added_total"),
            value_of(before, "animus_windows_added_total"));
  EXPECT_GT(value_of(after, "animus_binder_transactions_total", {{"method", "addView"}}),
            value_of(before, "animus_binder_transactions_total", {{"method", "addView"}}));
}

TEST(WorldTelemetry, RunawayEventCapSurfacesAsCounter) {
  auto& reg = obs::global_registry();
  const auto value_of = [&reg](const char* name) {
    const auto snap = reg.snapshot();
    const auto* p = snap.find(name, {});
    return p == nullptr ? 0.0 : p->value;
  };
  const double before = value_of("animus_event_cap_hits_total");
  {
    server::WorldConfig wc;
    wc.deterministic = true;
    server::World world{wc};
    // Runaway self-rescheduling: run_all's guard stops it, and the cap
    // hit must surface in the registry instead of truncating silently.
    std::function<void()> forever = [&world, &forever] {
      world.loop().schedule_after(sim::ms(1), forever);
    };
    world.loop().schedule_after(sim::ms(1), forever);
    world.loop().run_all(500);
  }
  EXPECT_EQ(value_of("animus_event_cap_hits_total"), before + 1.0);
}

}  // namespace
