// Legacy (pre-Android 8) behaviour vs the modern defenses the paper's
// attacks must defeat. Section II documents three mitigations added in
// Android 8.0 — overlay warning notification, TYPE_TOAST removal,
// one-toast-at-a-time scheduling; these tests pin both sides of each.
#include <gtest/gtest.h>

#include "core/overlay_attack.hpp"
#include "device/registry.hpp"
#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

namespace animus {
namespace {

using sim::ms;
using sim::seconds;

device::DeviceProfile legacy_device() {
  return device::make_profile("Legacy", "nexus5", device::AndroidVersion::kV7, 150.0);
}

server::World make_world(const device::DeviceProfile& dev) {
  server::WorldConfig wc;
  wc.profile = dev;
  wc.trace_enabled = false;
  return server::World{wc};
}

TEST(LegacyTraits, Android7PredatesAllDefenses) {
  const auto t = device::traits(device::AndroidVersion::kV7);
  EXPECT_FALSE(t.overlay_notification);
  EXPECT_FALSE(t.type_toast_removed);
  EXPECT_FALSE(t.serialized_toasts);
  EXPECT_EQ(device::version_family(device::AndroidVersion::kV7), "Android 7.x");
  EXPECT_EQ(device::to_string(device::AndroidVersion::kV7), "7");
}

TEST(LegacyOverlay, NoWarningNotificationAtAll) {
  // Before Android 8 a persistent overlay raised no alert: the attacker
  // did not even need draw-and-destroy.
  auto world = make_world(legacy_device());
  world.server().grant_overlay_permission(server::kMalwareUid);
  server::OverlaySpec spec;
  spec.bounds = {0, 0, 1080, 2280};
  world.server().add_view(server::kMalwareUid, spec);
  world.run_until(seconds(10));
  EXPECT_EQ(world.wms().overlay_count(server::kMalwareUid), 1);
  EXPECT_EQ(world.system_ui().phase(server::kMalwareUid),
            server::SystemUi::AlertPhase::kHidden);
  EXPECT_EQ(world.system_ui().stats(server::kMalwareUid).shows, 0);
}

TEST(ModernOverlay, WarningNotificationOnAndroid8Plus) {
  auto world = make_world(device::reference_device_android9());
  world.server().grant_overlay_permission(server::kMalwareUid);
  server::OverlaySpec spec;
  spec.bounds = {0, 0, 1080, 2280};
  world.server().add_view(server::kMalwareUid, spec);
  world.run_until(seconds(10));
  EXPECT_TRUE(world.system_ui().alert_fully_visible(server::kMalwareUid));
}

TEST(LegacyTypeToast, PersistsUntilRemoved) {
  auto world = make_world(legacy_device());
  const auto h = world.server().add_type_toast_view(server::kMalwareUid,
                                                    {0, 1500, 1080, 780}, "fake_keyboard");
  EXPECT_NE(h, 0u);
  world.run_until(seconds(60));
  // A minute later the TYPE_TOAST view is still there — no duration cap.
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 1);
  world.server().remove_view(server::kMalwareUid, h);
  world.run_until(seconds(61));
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 0);
}

TEST(ModernTypeToast, RemovedSinceAndroid8) {
  auto world = make_world(device::reference_device_android9());
  const auto h = world.server().add_type_toast_view(server::kMalwareUid,
                                                    {0, 1500, 1080, 780}, "fake_keyboard");
  EXPECT_EQ(h, 0u);
  world.run_until(seconds(2));
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 0);
}

TEST(LegacyToasts, MayOverlapFreely) {
  // Pre-Android-8: Toast.show() puts every toast straight on screen.
  auto world = make_world(legacy_device());
  for (int i = 0; i < 3; ++i) {
    server::ToastRequest r;
    r.content = "legacy:" + std::to_string(i);
    r.bounds = {0, 1500, 1080, 780};
    r.duration = server::kToastLong;
    world.server().enqueue_toast(server::kMalwareUid, r);
  }
  world.run_until(ms(200));
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 3);
  EXPECT_EQ(world.nms().stats().shown, 3u);
}

TEST(ModernToasts, StrictlySerialized) {
  auto world = make_world(device::reference_device_android9());
  for (int i = 0; i < 3; ++i) {
    server::ToastRequest r;
    r.content = "modern:" + std::to_string(i);
    r.bounds = {0, 1500, 1080, 780};
    r.duration = server::kToastLong;
    world.server().enqueue_toast(server::kMalwareUid, r);
  }
  world.run_until(ms(200));
  EXPECT_EQ(world.wms().count(server::kMalwareUid, ui::WindowType::kToast), 1);
}

TEST(LegacyToasts, NaiveRepeatShowCausesNoGapEither) {
  // The legacy toast attack of [3]: just call Toast.show() repeatedly.
  auto world = make_world(legacy_device());
  for (int i = 0; i < 10; ++i) {
    world.loop().schedule_at(seconds(3 * i), [&world] {
      server::ToastRequest r;
      r.content = "legacy:fake_kbd";
      r.bounds = {0, 1500, 1080, 780};
      r.duration = server::kToastLong;
      world.server().enqueue_toast(server::kMalwareUid, r);
    });
  }
  world.run_until(seconds(30));
  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid, "legacy:",
                                             seconds(1), seconds(29));
  EXPECT_FALSE(flicker.noticeable);
}

TEST(LegacyOverlayAttack, DrawAndDestroyUnnecessaryButHarmless) {
  // Running the modern attack on a legacy device still works — there is
  // simply no alert to suppress.
  auto world = make_world(legacy_device());
  world.server().grant_overlay_permission(server::kMalwareUid);
  core::OverlayAttackConfig oc;
  oc.attacking_window = ms(150);
  core::OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(seconds(5));
  EXPECT_GT(attack.stats().cycles, 20);
  EXPECT_EQ(world.system_ui().stats(server::kMalwareUid).shows, 0);
  attack.stop();
}

}  // namespace
}  // namespace animus
