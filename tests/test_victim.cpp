#include "victim/victim_app.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "input/typist.hpp"
#include "victim/catalog.hpp"

namespace animus::victim {
namespace {

using sim::ms;

server::World make_world() {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  wc.deterministic = true;
  return server::World{wc};
}

VictimAppSpec plain_spec() {
  VictimAppSpec s;
  s.name = "TestBank";
  return s;
}

TEST(VictimApp, LoginScreenShowsActivityWindow) {
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  EXPECT_EQ(world.wms().count(server::kVictimUid, ui::WindowType::kActivity), 1);
  EXPECT_FALSE(app.ime().visible());
}

TEST(VictimApp, TapOnFieldFocusesAndShowsKeyboard) {
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  world.input().inject_tap(app.username_bounds().center(), ms(10));
  world.run_until(ms(100));
  EXPECT_EQ(app.focused(), kUsernameField);
  EXPECT_TRUE(app.ime().visible());
}

TEST(VictimApp, TypingOnRealKeyboardFillsFocusedField) {
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  app.focus(kUsernameField);
  input::TypistProfile precise;
  precise.jitter_frac = 0.0;
  precise.misspell_rate = 0.0;
  input::Typist typist{precise, sim::Rng{1}};
  const input::Keyboard kb{app.keyboard_bounds()};
  for (const auto& pt : typist.plan(kb, "Bob7", ms(100))) {
    world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
  }
  world.run_until(sim::seconds(5));
  EXPECT_EQ(app.username_text(), "Bob7");
}

TEST(VictimApp, FocusSwitchEmitsWindowContentChanged) {
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  app.focus(kUsernameField);
  app.focus(kPasswordField);
  const auto& hist = app.bus().history();
  // Leaving the username widget emits one TYPE_WINDOW_CONTENT_CHANGED.
  bool found = false;
  for (const auto& ev : hist) {
    found |= ev.widget_id == kUsernameField &&
             ev.type == AccessibilityEventType::kWindowContentChanged;
  }
  EXPECT_TRUE(found);
}

TEST(VictimApp, TypingEmitsTwoEventsPerChar) {
  // "When a user starts typing, two events (TYPE_VIEW_TEXT_CHANGED and
  // TYPE_WINDOW_CONTENT_CHANGED) are sent by the input widget."
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  app.focus(kUsernameField);
  const auto base = app.bus().history().size();
  const input::Keyboard kb{app.keyboard_bounds()};
  world.input().inject_tap(kb.layout(input::LayoutKind::kLower).find_char('x')->center(),
                           ms(10));
  world.run_until(sim::seconds(1));
  const auto& hist = app.bus().history();
  ASSERT_EQ(hist.size(), base + 2);
  EXPECT_EQ(hist[base].type, AccessibilityEventType::kViewTextChanged);
  EXPECT_EQ(hist[base].widget_id, kUsernameField);
  EXPECT_EQ(hist[base + 1].type, AccessibilityEventType::kWindowContentChanged);
  EXPECT_EQ(app.username_text(), "x");
}

TEST(VictimApp, AlipaySuppressesPasswordEvents) {
  auto world = make_world();
  VictimAppSpec spec = find_app("Alipay")->spec;
  VictimApp app{world, spec};
  app.open_login_screen();
  app.focus(kPasswordField);
  for (const auto& ev : app.bus().history()) {
    EXPECT_NE(ev.widget_id, kPasswordField);
  }
  EXPECT_FALSE(app.password_ref_via_events().has_value());
  EXPECT_TRUE(app.password_ref_via_parent().has_value());
}

TEST(VictimApp, SetTextByRefFillsWidget) {
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  const auto ref = app.password_ref_via_events();
  ASSERT_TRUE(ref.has_value());
  EXPECT_TRUE(app.set_text_by_ref(*ref, "s3cret"));
  EXPECT_EQ(app.password_text(), "s3cret");
  EXPECT_FALSE(app.set_text_by_ref(WidgetRef{}, "x"));
  EXPECT_FALSE(app.set_text_by_ref(WidgetRef{99}, "x"));
}

TEST(VictimApp, SignInRequiresPasswordAndEnter) {
  auto world = make_world();
  VictimApp app{world, plain_spec()};
  app.open_login_screen();
  app.focus(kPasswordField);
  input::TypistProfile precise;
  precise.jitter_frac = 0.0;
  precise.misspell_rate = 0.0;
  input::Typist typist{precise, sim::Rng{2}};
  const input::Keyboard kb{app.keyboard_bounds()};
  for (const auto& pt : typist.plan(kb, "pw", ms(100), /*press_enter=*/true)) {
    world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
  }
  world.run_until(sim::seconds(5));
  EXPECT_TRUE(app.signed_in());
  EXPECT_EQ(app.password_text(), "pw");
}

TEST(Catalog, TableFourRoster) {
  const auto apps = table_iv_apps();
  ASSERT_EQ(apps.size(), 8u);
  EXPECT_EQ(apps.front().spec.name, "Bank of America");
  EXPECT_EQ(apps.front().spec.version, "8.1.16");
  EXPECT_FALSE(apps.front().needs_extra_effort);
  const auto* alipay = find_app("Alipay");
  ASSERT_NE(alipay, nullptr);
  EXPECT_TRUE(alipay->needs_extra_effort);
  EXPECT_TRUE(alipay->spec.disables_password_accessibility);
  EXPECT_EQ(find_app("WeChat"), nullptr);
}

}  // namespace
}  // namespace animus::victim
