#include "analysis/corpus.hpp"

#include <gtest/gtest.h>

#include "analysis/manifest.hpp"
#include "analysis/scanner.hpp"

namespace animus::analysis {
namespace {

// ------------------------------------------------------------- manifest --

ApkInfo sample_apk() {
  ApkInfo apk;
  apk.package = "com.example.app";
  apk.permissions = {"android.permission.INTERNET", kPermSystemAlertWindow};
  apk.services.push_back(ServiceDecl{"com.example.app.A11y", true});
  apk.services.push_back(ServiceDecl{"com.example.app.Sync", false});
  apk.method_refs = {kMethodAddView, kMethodRemoveView, kMethodToastSetView};
  return apk;
}

TEST(Manifest, RoundTripsThroughXml) {
  const ApkInfo apk = sample_apk();
  const auto parsed = parse_manifest_xml(write_manifest_xml(apk));
  ASSERT_TRUE(parsed.ok()) << parsed.error->message;
  EXPECT_EQ(parsed.manifest->package, "com.example.app");
  ASSERT_EQ(parsed.manifest->permissions.size(), 2u);
  EXPECT_EQ(parsed.manifest->permissions[1], kPermSystemAlertWindow);
  ASSERT_EQ(parsed.manifest->services.size(), 2u);
  EXPECT_TRUE(parsed.manifest->services[0].accessibility);
  EXPECT_FALSE(parsed.manifest->services[1].accessibility);
}

TEST(Manifest, AcceptsMinimalDocument) {
  const auto parsed = parse_manifest_xml("<manifest package=\"a.b\"></manifest>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.manifest->package, "a.b");
  EXPECT_TRUE(parsed.manifest->permissions.empty());
}

TEST(Manifest, IgnoresUnknownElementsAndComments) {
  const auto parsed = parse_manifest_xml(
      "<?xml version=\"1.0\"?><!-- hi --><manifest package=\"x\">"
      "<unknown-feature android:name=\"zzz\"/><application><activity "
      "android:name=\"M\"/></application></manifest>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.manifest->package, "x");
}

TEST(Manifest, AccessibilityViaIntentFilterAction) {
  const auto parsed = parse_manifest_xml(
      "<manifest package=\"x\"><application><service android:name=\"S\">"
      "<intent-filter><action android:name=\"android.accessibilityservice."
      "AccessibilityService\"/></intent-filter></service></application></manifest>");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.manifest->services.size(), 1u);
  EXPECT_TRUE(parsed.manifest->services[0].accessibility);
}

struct BadXmlCase {
  const char* label;
  const char* xml;
};

class ManifestErrors : public ::testing::TestWithParam<BadXmlCase> {};

TEST_P(ManifestErrors, RejectsMalformedInput) {
  const auto parsed = parse_manifest_xml(GetParam().xml);
  EXPECT_FALSE(parsed.ok());
  ASSERT_TRUE(parsed.error.has_value());
  EXPECT_FALSE(parsed.error->message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ManifestErrors,
    ::testing::Values(
        BadXmlCase{"empty", ""},
        BadXmlCase{"not_manifest_root", "<application></application>"},
        BadXmlCase{"unterminated_tag", "<manifest package=\"x\""},
        BadXmlCase{"unterminated_value", "<manifest package=\"x></manifest>"},
        BadXmlCase{"mismatched_close", "<manifest package=\"x\"></service>"},
        BadXmlCase{"unclosed_element", "<manifest package=\"x\"><service "
                                       "android:name=\"s\"></manifest>"},
        BadXmlCase{"missing_equals", "<manifest package \"x\"></manifest>"},
        BadXmlCase{"unterminated_comment", "<!-- <manifest package=\"x\"/>"},
        BadXmlCase{"attr_on_closing_tag", "<manifest package=\"x\"></manifest a=\"b\">"}),
    [](const ::testing::TestParamInfo<BadXmlCase>& info) { return info.param.label; });

// -------------------------------------------------------------- scanner --

TEST(Scanner, FullPipelinePredicates) {
  const ScanResult r = scan_apk(sample_apk());
  EXPECT_TRUE(r.manifest_ok);
  EXPECT_TRUE(r.has_system_alert_window);
  EXPECT_TRUE(r.registers_accessibility);
  EXPECT_TRUE(r.calls_add_view);
  EXPECT_TRUE(r.calls_remove_view);
  EXPECT_TRUE(r.custom_toast);
}

TEST(Scanner, PlainAppHasNoAttackPrerequisites) {
  ApkInfo apk;
  apk.package = "com.plain.app";
  apk.permissions = {"android.permission.INTERNET"};
  apk.method_refs = {"android.widget.Toast.makeText"};
  const ScanResult r = scan_apk(apk);
  EXPECT_TRUE(r.manifest_ok);
  EXPECT_FALSE(r.has_system_alert_window);
  EXPECT_FALSE(r.registers_accessibility);
  EXPECT_FALSE(r.custom_toast);  // makeText is not a customized toast
}

// --------------------------------------------------------------- corpus --

TEST(Corpus, DeterministicPerSeedAndIndex) {
  Corpus a{2016}, b{2016}, c{7};
  EXPECT_EQ(a.app(12345).package, b.app(12345).package);
  EXPECT_NE(a.app(12345).package, c.app(12345).package);
}

TEST(Corpus, ScaledQuotasExactOnSmallCorpus) {
  // On a 89,085-app corpus (1/10 scale) quotas land on exactly 1/10 of
  // the paper's counts (modular permutations are bijections).
  const std::size_t n = kAndroZooSize / 10;
  Corpus corpus{2016, n};
  std::size_t saw_ar = 0, saw_acc = 0, toast = 0;
  for (std::size_t i = 0; i < n; ++i) {
    saw_ar += corpus.truth_saw_addremove(i);
    saw_acc += corpus.truth_saw_accessibility(i);
    toast += corpus.truth_custom_toast(i);
  }
  EXPECT_EQ(saw_ar, kTargetSawAddRemove / 10);
  EXPECT_EQ(saw_acc, kTargetSawAccessibility / 10);
  EXPECT_EQ(toast, kTargetCustomToast / 10);
}

TEST(Corpus, AccessibilitySubsetOfSawApps) {
  Corpus corpus{2016, 50000};
  for (std::size_t i = 0; i < corpus.size(); i += 7) {
    if (corpus.truth_saw_accessibility(i)) {
      EXPECT_TRUE(corpus.truth_saw_addremove(i)) << i;
    }
  }
}

TEST(Corpus, AppAttributesMatchTruth) {
  Corpus corpus{2016, 50000};
  int checked = 0;
  for (std::size_t i = 0; i < corpus.size() && checked < 2000; i += 11, ++checked) {
    const ApkInfo apk = corpus.app(i);
    EXPECT_EQ(apk.has_permission(kPermSystemAlertWindow), corpus.truth_saw_addremove(i));
    EXPECT_EQ(apk.registers_accessibility_service(), corpus.truth_saw_accessibility(i));
    EXPECT_EQ(apk.uses_custom_toast(), corpus.truth_custom_toast(i));
  }
}

TEST(Corpus, PipelineCountsMatchPaperOnSampledFullCorpus) {
  Corpus corpus{2016};  // full 890,855
  const CorpusCounts counts = count_attack_prerequisites(corpus, /*stride=*/97);
  EXPECT_EQ(counts.total, kAndroZooSize);
  EXPECT_EQ(counts.parse_failures, 0u);
  // Sampling error ~ sqrt(n)/n; allow 25% relative slack.
  EXPECT_NEAR(static_cast<double>(counts.addremove_and_saw), 18887.0, 18887.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(counts.saw_and_accessibility), 4405.0, 4405.0 * 0.35);
  EXPECT_NEAR(static_cast<double>(counts.custom_toast), 15179.0, 15179.0 * 0.25);
}

TEST(Corpus, ExactCountsOnScaledCorpus) {
  const std::size_t n = kAndroZooSize / 100;
  Corpus corpus{2016, n};
  const CorpusCounts counts = count_attack_prerequisites(corpus);
  EXPECT_EQ(counts.parse_failures, 0u);
  EXPECT_EQ(counts.addremove_and_saw, kTargetSawAddRemove / 100);
  EXPECT_EQ(counts.saw_and_accessibility, kTargetSawAccessibility / 100);
  EXPECT_EQ(counts.custom_toast, kTargetCustomToast / 100);
}

TEST(Corpus, PackageNamesAreWellFormed) {
  Corpus corpus{2016, 1000};
  for (std::size_t i = 0; i < 100; ++i) {
    const ApkInfo apk = corpus.app(i);
    EXPECT_NE(apk.package.find('.'), std::string::npos);
    EXPECT_TRUE(parse_manifest_xml(write_manifest_xml(apk)).ok());
  }
}

}  // namespace
}  // namespace animus::analysis
