// Campaign service: HTTP parsing/rendering, the SSE hub, the manifest
// index (torn-line tolerance + restart identity) and the daemon's full
// request surface, driven as recorded requests through
// CampaignDaemon::handle — a pure request->response function — so the
// exact response bytes are locked without sockets. One loopback smoke
// covers the socket plumbing itself.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/attack_scenario.hpp"
#include "service/benches.hpp"
#include "service/daemon.hpp"
#include "service/http.hpp"
#include "service/index.hpp"
#include "service/json_util.hpp"

// Minimal blocking loopback client for the socket smoke test (defined
// after the tests). Reads the whole response for plain requests
// (stop_after == 0) or until `stop_after` SSE frames have arrived.
std::string test_http_exchange(int port, const std::string& raw, std::size_t stop_after);

// Opens an SSE connection, reads the response headers, then closes the
// socket abruptly (a browser tab closing mid-stream). Returns true when
// the headers arrived.
bool test_sse_connect_then_drop(int port);

namespace {

using namespace animus;

std::string temp_path(const char* name) { return testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary};
  out << content;
}

void append_raw(const std::string& path, const std::string& content) {
  std::ofstream out{path, std::ios::binary | std::ios::app};
  out << content;
}

service::HttpRequest get(const std::string& path) {
  service::HttpRequest req;
  req.method = "GET";
  req.path = path;
  return req;
}

service::HttpRequest post(const std::string& path, std::string body) {
  service::HttpRequest req;
  req.method = "POST";
  req.path = path;
  req.body = std::move(body);
  return req;
}

// ------------------------------------------------------------ http parsing

TEST(Http, ParsesCompleteGetRequest) {
  bool malformed = true;
  const auto req =
      service::HttpRequest::parse("GET /campaigns HTTP/1.1\r\nHost: x\r\n\r\n", &malformed);
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(malformed);
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->path, "/campaigns");
  EXPECT_EQ(req->body, "");
}

TEST(Http, IncompleteHeadersAreNotMalformed) {
  bool malformed = true;
  EXPECT_FALSE(service::HttpRequest::parse("GET /campaigns HTTP/1.1\r\nHos", &malformed));
  EXPECT_FALSE(malformed);  // just keep reading
}

TEST(Http, QueryStringIsStripped) {
  bool malformed = false;
  const auto req =
      service::HttpRequest::parse("GET /campaigns?page=2 HTTP/1.1\r\n\r\n", &malformed);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/campaigns");
}

TEST(Http, BareNewlineFramingIsAccepted) {
  bool malformed = false;
  const auto req = service::HttpRequest::parse("GET /healthz HTTP/1.1\n\n", &malformed);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->path, "/healthz");
}

TEST(Http, PostWaitsForFullBodyThenDeliversIt) {
  const std::string raw =
      "POST /campaigns HTTP/1.1\r\nContent-Length: 16\r\n\r\n{\"bench\":\"fig07\"";
  bool malformed = false;
  // Short one byte: incomplete, not malformed.
  EXPECT_FALSE(service::HttpRequest::parse(raw.substr(0, raw.size() - 1), &malformed));
  EXPECT_FALSE(malformed);
  const auto req = service::HttpRequest::parse(raw, &malformed);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->body, "{\"bench\":\"fig07\"");
}

TEST(Http, MalformedRequestLineIsFlagged) {
  bool malformed = false;
  EXPECT_FALSE(service::HttpRequest::parse("NONSENSE\r\n\r\n", &malformed));
  EXPECT_TRUE(malformed);
}

TEST(Http, ResponseWireFormatIsDeterministic) {
  service::HttpResponse res;
  res.status = 200;
  res.body = "{\"ok\":true}\n";
  // No Date header, fixed header order: recorded-request tests can lock
  // exact bytes.
  EXPECT_EQ(res.to_string(),
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
            "Content-Length: 12\r\nConnection: close\r\n\r\n{\"ok\":true}\n");
  EXPECT_EQ(service::status_text(404), "Not Found");
  EXPECT_EQ(service::status_text(405), "Method Not Allowed");
}

TEST(Http, ExtraHeadersAreEmittedBetweenLengthAndConnection) {
  service::HttpResponse res;
  res.status = 405;
  res.body = "{\"error\":\"method not allowed\"}\n";
  res.headers.emplace_back("Allow", "GET, POST");
  EXPECT_EQ(res.to_string(),
            "HTTP/1.1 405 Method Not Allowed\r\nContent-Type: application/json\r\n"
            "Content-Length: 31\r\nAllow: GET, POST\r\nConnection: close\r\n\r\n"
            "{\"error\":\"method not allowed\"}\n");
}

TEST(Http, SseEventFrameShape) {
  EXPECT_EQ(service::sse_event("heartbeat", "{\"done\":3}"),
            "event: heartbeat\ndata: {\"done\":3}\n\n");
}

// --------------------------------------------------------------- sse hub

TEST(SseHub, DeliversPublishedFramesInOrder) {
  service::SseHub hub;
  auto sub = hub.subscribe();
  EXPECT_EQ(hub.subscriber_count(), 1u);
  hub.publish("one");
  hub.publish("two");
  EXPECT_EQ(sub->next(), "one");
  EXPECT_EQ(sub->next(), "two");
  hub.close_all();
  EXPECT_FALSE(sub->next().has_value());
  hub.unsubscribe(sub);
  EXPECT_EQ(hub.subscriber_count(), 0u);
}

TEST(SseHub, SlowSubscriberLosesOldestFramesCounted) {
  service::SseHub hub;
  auto sub = hub.subscribe();
  for (std::size_t i = 0; i < service::SseHub::kMaxQueuedFrames + 5; ++i) {
    hub.publish(std::to_string(i));
  }
  // Oldest five dropped; the queue begins at frame 5.
  EXPECT_EQ(sub->next(), "5");
  std::size_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock{sub->mu};
    dropped = sub->dropped;
  }
  EXPECT_EQ(dropped, 5u);
  hub.close_all();
}

// --------------------------------------------------------- manifest index

service::CampaignRecord sample_record(const char* id) {
  service::CampaignRecord rec;
  rec.id = id;
  rec.bench = "fig07";
  rec.seed = 42;
  rec.jobs = 4;
  rec.backend = "process";
  rec.shards = 2;
  rec.tier = "sim";
  rec.trials = 210;
  rec.errors = 1;
  rec.wall_ms = 1234.5;
  rec.csv = "D (ms),mean\n50,61.0\n";
  rec.status = "done";
  return rec;
}

TEST(ManifestIndex, RecordJsonRoundTripsIncludingEscapedCsv) {
  const auto rec = sample_record("c0007");
  const std::string json = rec.to_json();
  // The CSV is inlined with its newlines escaped — one record, one line.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"csv\":\"D (ms),mean\\n50,61.0\\n\""), std::string::npos);
  const auto back = service::CampaignRecord::parse(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, rec.id);
  EXPECT_EQ(back->bench, rec.bench);
  EXPECT_EQ(back->seed, rec.seed);
  EXPECT_EQ(back->jobs, rec.jobs);
  EXPECT_EQ(back->backend, rec.backend);
  EXPECT_EQ(back->shards, rec.shards);
  EXPECT_EQ(back->tier, rec.tier);
  EXPECT_EQ(back->trials, rec.trials);
  EXPECT_EQ(back->errors, rec.errors);
  EXPECT_DOUBLE_EQ(back->wall_ms, rec.wall_ms);
  EXPECT_EQ(back->csv, rec.csv);
  EXPECT_EQ(back->status, rec.status);
  // Reserialized bytes are identical: restart identity at record level.
  EXPECT_EQ(back->to_json(), json);
}

TEST(ManifestIndex, ParseRejectsForeignKindsAndTornLines) {
  EXPECT_FALSE(service::CampaignRecord::parse("{\"kind\":\"checkpoint\",\"id\":\"c1\"}"));
  EXPECT_FALSE(service::CampaignRecord::parse("not json at all"));
  // A torn append loses the tail of the line; "status" is written last,
  // so its absence marks the record incomplete.
  const std::string full = sample_record("c0009").to_json();
  const std::string torn = full.substr(0, full.find("\"status\""));
  EXPECT_FALSE(service::CampaignRecord::parse(torn));
}

TEST(ManifestIndex, MissingFileLoadsEmptyAndAppendPersists) {
  const auto path = temp_path("svc_index_fresh.jsonl");
  std::remove(path.c_str());
  service::ManifestIndex index{path};
  index.load();
  EXPECT_TRUE(index.records().empty());
  EXPECT_EQ(index.max_id(), 0u);

  ASSERT_TRUE(index.append(sample_record("c0001")));
  ASSERT_TRUE(index.append(sample_record("c0003")));
  EXPECT_EQ(index.records().size(), 2u);
  EXPECT_EQ(index.max_id(), 3u);

  service::ManifestIndex reloaded{path};
  reloaded.load();
  ASSERT_EQ(reloaded.records().size(), 2u);
  EXPECT_EQ(reloaded.records()[0].to_json(), index.records()[0].to_json());
  EXPECT_EQ(reloaded.records()[1].to_json(), index.records()[1].to_json());
  EXPECT_EQ(reloaded.max_id(), 3u);
}

TEST(ManifestIndex, TornFinalLineIsDroppedEverythingBeforeLoads) {
  const auto path = temp_path("svc_index_torn.jsonl");
  std::remove(path.c_str());
  service::ManifestIndex index{path};
  ASSERT_TRUE(index.append(sample_record("c0001")));
  ASSERT_TRUE(index.append(sample_record("c0002")));
  // Daemon killed mid-append: a partial record with no trailing newline.
  const std::string full = sample_record("c0003").to_json();
  append_raw(path, full.substr(0, full.size() / 2));

  service::ManifestIndex reloaded{path};
  reloaded.load();
  ASSERT_EQ(reloaded.records().size(), 2u);
  EXPECT_EQ(reloaded.records()[1].id, "c0002");
  EXPECT_EQ(reloaded.max_id(), 2u);

  // A torn line WITH a newline (truncated then flushed) is also dropped.
  append_raw(path, "\n{\"kind\":\"campaign\",\"id\":\"c0004\",\"bench\":\"fig07\"\n");
  reloaded.load();
  EXPECT_EQ(reloaded.records().size(), 2u);
}

TEST(ManifestIndex, TraceAndProfileFieldsAreEmittedOnlyWhenPresent) {
  auto rec = sample_record("c0010");
  const std::string plain = rec.to_json();
  // Pre-profiler records keep their exact historical shape.
  EXPECT_EQ(plain.find("\"trace\""), std::string::npos);
  EXPECT_EQ(plain.find("\"profile\""), std::string::npos);

  rec.trace = "{\"traceEvents\":[]}\n";
  rec.profile = "{\n  \"schema\": 1,\n  \"report\": \"animus-profile\"\n}\n";
  const std::string json = rec.to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);  // still one line per record
  // "status" stays last: the torn-line detector keys on it.
  EXPECT_LT(json.find("\"trace\""), json.find("\"status\""));
  EXPECT_LT(json.find("\"profile\""), json.find("\"status\""));

  const auto back = service::CampaignRecord::parse(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trace, rec.trace);
  EXPECT_EQ(back->profile, rec.profile);
  EXPECT_EQ(back->to_json(), json);
}

TEST(ManifestIndex, BatchFieldIsEmittedOnlyWhenPinned) {
  // batch=0 (auto) is the default and stays off the wire, so records
  // written before batching existed re-serialize byte-identically.
  auto rec = sample_record("c0011");
  EXPECT_EQ(rec.to_json().find("\"batch\""), std::string::npos);

  rec.batch = 64;
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"batch\":64"), std::string::npos);
  EXPECT_LT(json.find("\"batch\""), json.find("\"status\""));  // "status" stays last
  const auto back = service::CampaignRecord::parse(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->batch, 64);
  EXPECT_EQ(back->to_json(), json);
}

// ------------------------------------------------------------- submission

TEST(Submission, ValidatesEveryFieldBeforeQueueing) {
  std::string error;
  const auto ok = service::CampaignSubmission::parse(
      "{\"bench\":\"fig07\",\"seed\":7,\"jobs\":4,\"backend\":\"process\","
      "\"shards\":2,\"tier\":\"sim\"}",
      &error);
  ASSERT_TRUE(ok.has_value()) << error;
  EXPECT_EQ(ok->bench, "fig07");
  EXPECT_EQ(ok->seed, 7u);
  EXPECT_EQ(ok->jobs, 4);
  EXPECT_EQ(ok->backend, "process");
  EXPECT_EQ(ok->shards, 2);
  EXPECT_EQ(ok->tier, "sim");

  // Defaults: threads backend, tier auto, seed/jobs/shards zero.
  const auto min = service::CampaignSubmission::parse("{\"bench\":\"fig08\"}", &error);
  ASSERT_TRUE(min.has_value()) << error;
  EXPECT_EQ(min->backend, "");
  EXPECT_EQ(min->tier, "auto");

  EXPECT_FALSE(service::CampaignSubmission::parse("{}", &error));
  EXPECT_NE(error.find("bench"), std::string::npos);
  EXPECT_FALSE(service::CampaignSubmission::parse("{\"bench\":\"fig99\"}", &error));
  EXPECT_NE(error.find("fig99"), std::string::npos);
  // The campaign runner would std::exit(2) on an unknown backend; the
  // daemon must reject it at submit time instead.
  EXPECT_FALSE(
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"backend\":\"gpu\"}", &error));
  EXPECT_NE(error.find("gpu"), std::string::npos);
  EXPECT_FALSE(
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"tier\":\"warp\"}", &error));
  EXPECT_NE(error.find("tier"), std::string::npos);

  // Batch: a number in [0, kMaxBatch] or the string "auto" (= 0).
  EXPECT_EQ(ok->batch, 0);  // absent => auto-sized frames
  const auto batched = service::CampaignSubmission::parse(
      "{\"bench\":\"fig07\",\"backend\":\"process\",\"batch\":64}", &error);
  ASSERT_TRUE(batched.has_value()) << error;
  EXPECT_EQ(batched->batch, 64);
  const auto auto_batched = service::CampaignSubmission::parse(
      "{\"bench\":\"fig07\",\"batch\":\"auto\"}", &error);
  ASSERT_TRUE(auto_batched.has_value()) << error;
  EXPECT_EQ(auto_batched->batch, 0);
  EXPECT_FALSE(
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"batch\":-4}", &error));
  EXPECT_NE(error.find("batch"), std::string::npos);
  EXPECT_FALSE(
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"batch\":100000}", &error));
  EXPECT_NE(error.find("batch"), std::string::npos);
  EXPECT_FALSE(
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"batch\":\"many\"}", &error));
  EXPECT_NE(error.find("batch"), std::string::npos);

  // Trace capture is opt-in and strictly boolean.
  EXPECT_FALSE(ok->trace);
  const auto traced =
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"trace\":true}", &error);
  ASSERT_TRUE(traced.has_value()) << error;
  EXPECT_TRUE(traced->trace);
  EXPECT_FALSE(
      service::CampaignSubmission::parse("{\"bench\":\"fig07\",\"trace\":1}", &error));
  EXPECT_NE(error.find("trace"), std::string::npos);
}

// ------------------------------------------------- recorded-request surface

TEST(Daemon, RecordedRequestsLockTheReadOnlySurface) {
  const auto path = temp_path("svc_daemon_recorded.jsonl");
  std::remove(path.c_str());
  // Hand-written durable index: two finished campaigns.
  write_file(path, sample_record("c0001").to_json() + "\n" +
                       sample_record("c0002").to_json() + "\n");

  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();

  const auto health = daemon.handle(get("/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "{\"ok\":true}\n");

  const auto list = daemon.handle(get("/campaigns"));
  EXPECT_EQ(list.status, 200);
  EXPECT_EQ(list.body, "{\"campaigns\":[" + sample_record("c0001").to_json() + "," +
                           sample_record("c0002").to_json() + "]}\n");

  const auto one = daemon.handle(get("/campaigns/c0002"));
  EXPECT_EQ(one.status, 200);
  EXPECT_EQ(one.body, sample_record("c0002").to_json() + "\n");

  const auto metrics = daemon.handle(get("/campaigns/c0001/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.body.rfind("{\"id\":\"c0001\",\"status\":\"done\",\"series\":", 0), 0u)
      << metrics.body;
  EXPECT_EQ(metrics.body.back(), '\n');

  const auto events = daemon.handle(get("/events"));
  EXPECT_TRUE(events.sse);

  // Error surface.
  EXPECT_EQ(daemon.handle(get("/nope")).status, 404);
  EXPECT_EQ(daemon.handle(get("/campaigns/c9999")).status, 404);
  EXPECT_EQ(daemon.handle(get("/campaigns/c9999/metrics")).status, 404);
  EXPECT_EQ(daemon.handle(get("/campaigns/c0001/spans")).status, 404);
  EXPECT_EQ(daemon.handle(post("/nope", "")).status, 404);
  service::HttpRequest del;
  del.method = "DELETE";
  del.path = "/campaigns";
  const auto denied = daemon.handle(del);
  EXPECT_EQ(denied.status, 405);
  EXPECT_EQ(denied.body, "{\"error\":\"method not allowed\"}\n");

  const auto bad = daemon.handle(post("/campaigns", "{\"bench\":\"fig99\"}"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("unknown bench"), std::string::npos);

  EXPECT_FALSE(daemon.shutdown_requested());
  const auto down = daemon.handle(post("/shutdown", ""));
  EXPECT_EQ(down.status, 200);
  EXPECT_EQ(down.body, "{\"ok\":true,\"shutting_down\":true}\n");
  EXPECT_TRUE(daemon.shutdown_requested());
  daemon.stop();
}

TEST(Daemon, WrongMethodOnKnownPathsAnswers405WithAllow) {
  const auto path = temp_path("svc_daemon_methods.jsonl");
  std::remove(path.c_str());
  write_file(path, sample_record("c0001").to_json() + "\n");
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();

  const auto request = [](const char* method, const char* target) {
    service::HttpRequest req;
    req.method = method;
    req.path = target;
    return req;
  };
  const auto allow_of = [](const service::HttpResponse& res) -> std::string {
    for (const auto& [name, value] : res.headers) {
      if (name == "Allow") return value;
    }
    return {};
  };

  struct Case {
    const char* method;
    const char* target;
    const char* allow;
  };
  // Every known path, hit with a method it does not serve. Routing is
  // path-first, so these are 405 + Allow — not 404.
  const Case cases[] = {
      {"POST", "/healthz", "GET"},
      {"DELETE", "/campaigns", "GET, POST"},
      {"POST", "/events", "GET"},
      {"GET", "/shutdown", "POST"},
      {"POST", "/campaigns/c0001", "GET"},
      {"POST", "/campaigns/c0001/metrics", "GET"},
      {"DELETE", "/campaigns/c0001/trace", "GET"},
      {"PUT", "/campaigns/c0001/profile", "GET"},
  };
  for (const auto& c : cases) {
    const auto res = daemon.handle(request(c.method, c.target));
    EXPECT_EQ(res.status, 405) << c.method << " " << c.target;
    EXPECT_EQ(res.body, "{\"error\":\"method not allowed\"}\n");
    EXPECT_EQ(allow_of(res), c.allow) << c.method << " " << c.target;
    // The Allow header reaches the wire.
    EXPECT_NE(res.to_string().find("\r\nAllow: " + std::string{c.allow} + "\r\n"),
              std::string::npos)
        << c.method << " " << c.target;
  }
  // GET /shutdown was refused, not acted on.
  EXPECT_FALSE(daemon.shutdown_requested());
  // Unknown paths are 404 for any method — no Allow header invented.
  for (const char* method : {"GET", "POST", "DELETE", "PUT"}) {
    const auto res = daemon.handle(request(method, "/campaigns/c0001/spans"));
    EXPECT_EQ(res.status, 404) << method;
    EXPECT_TRUE(res.headers.empty()) << method;
  }
  EXPECT_EQ(daemon.handle(request("PATCH", "/nope")).status, 404);
  daemon.stop();
}

TEST(Daemon, TraceAndProfile404sNameTheCause) {
  const auto path = temp_path("svc_daemon_profile404.jsonl");
  std::remove(path.c_str());
  // A finished record from before trace/profile capture existed.
  write_file(path, sample_record("c0001").to_json() + "\n");
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();

  const auto trace = daemon.handle(get("/campaigns/c0001/trace"));
  EXPECT_EQ(trace.status, 404);
  EXPECT_NE(trace.body.find("without trace capture"), std::string::npos) << trace.body;
  // The remedy is spelled out (the JSON-escaped submission flag).
  EXPECT_NE(trace.body.find("\\\"trace\\\":true"), std::string::npos) << trace.body;

  const auto profile = daemon.handle(get("/campaigns/c0001/profile"));
  EXPECT_EQ(profile.status, 404);
  EXPECT_NE(profile.body.find("no profile recorded"), std::string::npos) << profile.body;

  EXPECT_NE(daemon.handle(get("/campaigns/c9999/trace")).body.find("unknown campaign id"),
            std::string::npos);
  EXPECT_NE(daemon.handle(get("/campaigns/c9999/profile")).body.find("unknown campaign id"),
            std::string::npos);
  daemon.stop();

  // A queued-but-unstarted campaign (scheduler never launched) reports
  // "has not finished" rather than "unknown".
  const auto idle_path = temp_path("svc_daemon_idle.jsonl");
  std::remove(idle_path.c_str());
  service::CampaignDaemon idle{{idle_path, nullptr, 10}};
  EXPECT_EQ(idle.handle(post("/campaigns", "{\"bench\":\"fig07\"}")).status, 202);
  EXPECT_NE(idle.handle(get("/campaigns/c0001/trace")).body.find("has not finished"),
            std::string::npos);
  EXPECT_NE(idle.handle(get("/campaigns/c0001/profile")).body.find("has not finished"),
            std::string::npos);
}

TEST(Daemon, CampaignListIsIdenticalAcrossRestart) {
  const auto path = temp_path("svc_daemon_restart.jsonl");
  std::remove(path.c_str());
  write_file(path, sample_record("c0001").to_json() + "\n" +
                       sample_record("c0002").to_json() + "\n");

  std::string before;
  {
    service::CampaignDaemon daemon{{path, nullptr, 10}};
    daemon.start();
    before = daemon.handle(get("/campaigns")).body;
    daemon.stop();
  }
  // Torn final line from a mid-append kill must not disturb the list.
  const std::string torn = sample_record("c0003").to_json();
  append_raw(path, torn.substr(0, torn.size() / 3));
  {
    service::CampaignDaemon daemon{{path, nullptr, 10}};
    daemon.start();
    EXPECT_EQ(daemon.handle(get("/campaigns")).body, before);
    // The restarted daemon continues the id sequence past the durable
    // maximum instead of reusing ids.
    const auto res = daemon.handle(post("/campaigns", "{\"bench\":\"fig07\"}"));
    EXPECT_EQ(res.status, 202);
    EXPECT_EQ(res.body.rfind("{\"id\":\"c0003\"", 0), 0u) << res.body;
    daemon.stop();
  }
}

// ----------------------------------------------- end-to-end: run a campaign

TEST(Daemon, RunsSubmissionAndServesCsvByteIdenticalToDirectRun) {
  const auto path = temp_path("svc_daemon_run.jsonl");
  std::remove(path.c_str());
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();
  auto sub = daemon.hub().subscribe();

  const auto accepted = daemon.handle(
      post("/campaigns", "{\"bench\":\"fig07\",\"seed\":7,\"jobs\":4,\"tier\":\"analytic\"}"));
  EXPECT_EQ(accepted.status, 202);
  EXPECT_EQ(accepted.body, "{\"id\":\"c0001\",\"status\":\"queued\"}\n");
  daemon.drain();

  // The finished record serves the same CSV bytes the bench produces
  // when invoked directly with the same arguments — both are
  // table.to_csv() of the same deterministic sweep.
  runner::BenchArgs args;
  args.csv = true;
  args.run.root_seed = 7;
  args.run.jobs = 4;
  args.tier = "analytic";
  const auto direct = service::find_campaign_bench("fig07")->run(args);

  const auto one = daemon.handle(get("/campaigns/c0001"));
  EXPECT_EQ(one.status, 200);
  const auto rec = service::CampaignRecord::parse(one.body);
  ASSERT_TRUE(rec.has_value()) << one.body;
  EXPECT_EQ(rec->status, "done");
  EXPECT_EQ(rec->trials, 210u);
  EXPECT_EQ(rec->errors, 0u);
  EXPECT_EQ(rec->csv, direct.table.to_csv());

  const auto metrics = daemon.handle(get("/campaigns/c0001/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.body.rfind("{\"id\":\"c0001\",\"status\":\"done\",", 0), 0u);

  // Live SSE telemetry: the runner beats once per dispatch chunk
  // (210 trials / chunk 6 at jobs=4 = 35 beats), each publishing one
  // heartbeat and one delta-encoded metrics frame; with keyframes every
  // 10th frame a subscriber saw 4 keyframes and 31 deltas — comfortably
  // past the "a keyframe plus at least two deltas" acceptance bar.
  daemon.stop();  // close_all -> next() drains then returns nullopt
  std::size_t campaigns = 0, heartbeats = 0, keyframes = 0, deltas = 0;
  while (auto frame = sub->next()) {
    if (frame->rfind("event: campaign\n", 0) == 0) ++campaigns;
    if (frame->rfind("event: heartbeat\n", 0) == 0) ++heartbeats;
    if (frame->rfind("event: metrics\n", 0) == 0) {
      if (frame->find("\"keyframe\":true") != std::string::npos) ++keyframes;
      if (frame->find("\"delta\":true") != std::string::npos) ++deltas;
    }
  }
  EXPECT_EQ(campaigns, 3u);  // queued, running, done
  EXPECT_EQ(heartbeats, 35u);
  EXPECT_EQ(keyframes, 4u);
  EXPECT_EQ(deltas, 31u);

  // The result is durable: a fresh daemon serves it from the index.
  service::CampaignDaemon reborn{{path, nullptr, 10}};
  reborn.start();
  const auto again = reborn.handle(get("/campaigns/c0001"));
  EXPECT_EQ(again.body, one.body);
  reborn.stop();
}

TEST(Daemon, ScenarioSubmissionRunsRegistryCampaignAndListsScenarios) {
  const auto path = temp_path("svc_daemon_scenario.jsonl");
  std::remove(path.c_str());
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();

  // GET /scenarios lists every registered pack with its analytic flag.
  const auto listing = daemon.handle(get("/scenarios"));
  EXPECT_EQ(listing.status, 200);
  for (const core::AttackScenario* s : core::scenario_registry()) {
    EXPECT_NE(listing.body.find("\"name\":\"" + s->name + "\""), std::string::npos) << s->name;
  }
  EXPECT_NE(listing.body.find("{\"name\":\"frosted-glass\",\"description\":"), std::string::npos);
  EXPECT_NE(listing.body.find("\"analytic_eligible\":true"), std::string::npos);

  // An unknown scenario name is a 400 naming every valid one.
  const auto bad = daemon.handle(post("/campaigns", "{\"scenario\":\"slippery-slope\"}"));
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("unknown scenario: slippery-slope"), std::string::npos);
  EXPECT_NE(bad.body.find("tapjacking"), std::string::npos);
  EXPECT_NE(bad.body.find("notification-abuse"), std::string::npos);

  // Naming both routes is ambiguous.
  const auto both = daemon.handle(
      post("/campaigns", "{\"bench\":\"fig07\",\"scenario\":\"tapjacking\"}"));
  EXPECT_EQ(both.status, 400);

  // A valid scenario submission runs the registry campaign and serves a
  // CSV byte-identical to the direct sweep with the same arguments.
  const auto accepted =
      daemon.handle(post("/campaigns", "{\"scenario\":\"tapjacking\",\"seed\":3}"));
  EXPECT_EQ(accepted.status, 202);
  daemon.drain();

  runner::BenchArgs args;
  args.csv = true;
  args.run.root_seed = 3;
  const auto direct =
      service::run_scenario_campaign(core::require_scenario("tapjacking"), args);

  const auto one = daemon.handle(get("/campaigns/c0001"));
  EXPECT_EQ(one.status, 200);
  const auto rec = service::CampaignRecord::parse(one.body);
  ASSERT_TRUE(rec.has_value()) << one.body;
  EXPECT_EQ(rec->status, "done");
  EXPECT_EQ(rec->bench, "scenario:tapjacking");
  EXPECT_EQ(rec->trials, direct.trials);
  EXPECT_EQ(rec->csv, direct.table.to_csv());
  daemon.stop();
}

TEST(Daemon, TracedSimCampaignServesProfileAndTraceWithLiveRates) {
  const auto path = temp_path("svc_daemon_traced.jsonl");
  std::remove(path.c_str());
  // Deterministic heartbeat clock: each reading advances 100 ms, so
  // trials/s and ETA are well-defined without real timing.
  double fake_ms = 0.0;
  service::CampaignDaemon::Options options;
  options.index_path = path;
  options.now_ms = [&fake_ms] { return fake_ms += 100.0; };
  options.keyframe_every = 10;
  service::CampaignDaemon daemon{std::move(options)};
  daemon.start();
  auto sub = daemon.hub().subscribe();

  // tier "sim" (not analytic): the profiler and the armed trace capture
  // need actual Worlds to run.
  const auto accepted = daemon.handle(
      post("/campaigns",
           "{\"bench\":\"fig07\",\"seed\":7,\"jobs\":4,\"tier\":\"sim\",\"trace\":true}"));
  EXPECT_EQ(accepted.status, 202);
  daemon.drain();

  const auto profile = daemon.handle(get("/campaigns/c0001/profile"));
  EXPECT_EQ(profile.status, 200);
  EXPECT_EQ(profile.body.rfind("{\n  \"schema\": 1,\n  \"report\": \"animus-profile\"", 0), 0u)
      << profile.body.substr(0, 120);
  EXPECT_NE(profile.body.find("world.run_until"), std::string::npos);

  // Chrome trace JSON array format: metadata records then span events.
  const auto trace = daemon.handle(get("/campaigns/c0001/trace"));
  EXPECT_EQ(trace.status, 200);
  EXPECT_EQ(trace.body.rfind("[\n", 0), 0u) << trace.body.substr(0, 80);
  EXPECT_NE(trace.body.find("\"process_name\""), std::string::npos);

  // The stored record carries both artifacts and round-trips.
  const auto one = daemon.handle(get("/campaigns/c0001"));
  const auto rec = service::CampaignRecord::parse(one.body);
  ASSERT_TRUE(rec.has_value()) << one.body.substr(0, 120);
  EXPECT_EQ(rec->profile, profile.body);
  EXPECT_EQ(rec->trace, trace.body);

  daemon.stop();
  bool saw_rates = false, saw_summary = false;
  while (auto frame = sub->next()) {
    if (frame->rfind("event: heartbeat\n", 0) == 0) {
      // Every heartbeat carries throughput + remaining-time estimates.
      EXPECT_NE(frame->find("\"trials_per_s\":"), std::string::npos) << *frame;
      EXPECT_NE(frame->find("\"eta_s\":"), std::string::npos) << *frame;
      saw_rates = true;
    }
    if (frame->rfind("event: campaign\n", 0) == 0 &&
        frame->find("\"status\":\"done\"") != std::string::npos) {
      // The done event ships a top-N summary, never the full blobs.
      EXPECT_NE(frame->find("\"profile_summary\":{\"spans\":"), std::string::npos) << *frame;
      EXPECT_EQ(frame->find("\"process_name\""), std::string::npos);
      EXPECT_EQ(frame->find("animus-profile"), std::string::npos);
      saw_summary = true;
    }
  }
  EXPECT_TRUE(saw_rates);
  EXPECT_TRUE(saw_summary);
}

TEST(Daemon, FailedCampaignIsRecordedAsError) {
  const auto path = temp_path("svc_daemon_error.jsonl");
  std::remove(path.c_str());
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();
  // No registered bench fails deterministically, so persist an error
  // record through the same append path the scheduler uses and check
  // the status survives the restart round-trip.
  auto rec = sample_record("c0001");
  rec.status = "error";
  rec.csv.clear();
  {
    service::ManifestIndex index{path};
    index.load();
    ASSERT_TRUE(index.append(rec));
  }
  daemon.stop();

  service::CampaignDaemon reborn{{path, nullptr, 10}};
  reborn.start();
  const auto one = reborn.handle(get("/campaigns/c0001"));
  EXPECT_EQ(one.status, 200);
  EXPECT_NE(one.body.find("\"status\":\"error\""), std::string::npos);
  reborn.stop();
}

// ------------------------------------------------------- socket smoke test

TEST(HttpServer, LoopbackRoundTripAndSseRelay) {
  const auto path = temp_path("svc_server_smoke.jsonl");
  std::remove(path.c_str());
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();
  service::HttpServer server{[&](const service::HttpRequest& req) { return daemon.handle(req); },
                             &daemon.hub()};
  ASSERT_TRUE(server.start(0));  // ephemeral port
  ASSERT_GT(server.port(), 0);

  // SSE: a blocking client reads headers + one relayed frame.
  std::string sse_seen;
  std::thread client{[&] {
    sse_seen = test_http_exchange(server.port(),
                                  "GET /events HTTP/1.1\r\nHost: l\r\n\r\n", 1);
  }};
  // Give the subscriber a moment to attach, then publish one frame.
  for (int i = 0; i < 200 && daemon.hub().subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(daemon.hub().subscriber_count(), 0u);
  daemon.hub().publish(service::sse_event("heartbeat", "{\"done\":1}"));
  client.join();
  EXPECT_NE(sse_seen.find("text/event-stream"), std::string::npos);
  EXPECT_NE(sse_seen.find("event: heartbeat\ndata: {\"done\":1}\n\n"), std::string::npos);

  const std::string body = test_http_exchange(server.port(),
                                              "GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n", 0);
  EXPECT_NE(body.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body.find("{\"ok\":true}"), std::string::npos);

  server.stop();
  daemon.stop();
}

TEST(HttpServer, DroppedSseSubscriberIsReapedOnNextPublish) {
  const auto path = temp_path("svc_server_drop.jsonl");
  std::remove(path.c_str());
  service::CampaignDaemon daemon{{path, nullptr, 10}};
  daemon.start();
  service::HttpServer server{[&](const service::HttpRequest& req) { return daemon.handle(req); },
                             &daemon.hub()};
  ASSERT_TRUE(server.start(0));

  // A client connects to /events, reads the headers, then vanishes
  // (closed laptop, killed curl). The serve thread is now parked in
  // Subscription::next().
  ASSERT_TRUE(test_sse_connect_then_drop(server.port()));
  for (int i = 0; i < 200 && daemon.hub().subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(daemon.hub().subscriber_count(), 0u);

  // Publishing wakes it; send_all hits the dead socket (EPIPE under
  // MSG_NOSIGNAL — no process-killing SIGPIPE), serve() breaks out and
  // unsubscribes. The kernel may buffer the first write, so publish
  // until the reap lands rather than asserting on one frame.
  bool reaped = false;
  for (int i = 0; i < 400; ++i) {
    daemon.hub().publish(
        service::sse_event("heartbeat", "{\"tick\":" + std::to_string(i) + "}"));
    if (daemon.hub().subscriber_count() == 0) {
      reaped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(reaped);

  // Nothing stalled or leaked: the server still answers plain requests
  // and a fresh SSE subscriber still receives frames.
  const std::string body =
      test_http_exchange(server.port(), "GET /healthz HTTP/1.1\r\nHost: l\r\n\r\n", 0);
  EXPECT_NE(body.find("{\"ok\":true}"), std::string::npos);

  std::string sse_seen;
  std::thread client{[&] {
    sse_seen = test_http_exchange(server.port(), "GET /events HTTP/1.1\r\nHost: l\r\n\r\n", 1);
  }};
  for (int i = 0; i < 200 && daemon.hub().subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(daemon.hub().subscriber_count(), 0u);
  daemon.hub().publish(service::sse_event("heartbeat", "{\"after\":true}"));
  client.join();
  EXPECT_NE(sse_seen.find("event: heartbeat\ndata: {\"after\":true}\n\n"), std::string::npos);

  server.stop();
  daemon.stop();
}

}  // namespace

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

std::string test_http_exchange(int port, const std::string& raw, std::size_t stop_after) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const auto n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const auto n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
    if (stop_after > 0) {
      std::size_t frames = 0;
      for (std::size_t at = out.find("\n\n"); at != std::string::npos;
           at = out.find("\n\n", at + 2)) {
        ++frames;
      }
      // Headers' \r\n\r\n also matches; require the SSE comment + frames.
      if (frames > stop_after) break;
    }
  }
  ::close(fd);
  return out;
}
bool test_sse_connect_then_drop(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string raw = "GET /events HTTP/1.1\r\nHost: l\r\n\r\n";
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const auto n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  // Read until the response headers (and the ": connected" comment) have
  // arrived, proving the server reached its frame-relay loop.
  std::string out;
  char buf[1024];
  while (out.find("\n\n") == std::string::npos) {
    const auto n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);  // abrupt: no shutdown handshake, like a killed client
  return out.find("text/event-stream") != std::string::npos;
}
#else
std::string test_http_exchange(int, const std::string&, std::size_t) { return {}; }
bool test_sse_connect_then_drop(int) { return false; }
#endif
