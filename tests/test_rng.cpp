#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace animus::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkedStreamsAreIndependentAndStable) {
  Rng root{7};
  Rng a = root.fork(1), a2 = root.fork(1), b = root.fork(2);
  EXPECT_EQ(a.next_u64(), a2.next_u64());
  Rng a3 = root.fork(1);
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(Rng, ForkByLabelIsStable) {
  Rng root{7};
  EXPECT_EQ(root.fork("alpha").next_u64(), root.fork("alpha").next_u64());
  EXPECT_NE(root.fork("alpha").next_u64(), root.fork("beta").next_u64());
}

TEST(Rng, Uniform01InRange) {
  Rng r{99};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r{5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(RngProperty, NormalMomentsMatch) {
  Rng r{11};
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngProperty, BernoulliFrequency) {
  Rng r{13};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng r{17};
  for (int i = 0; i < 5000; ++i) {
    const double x = r.truncated_normal(0.0, 5.0, -1.0, 2.0);
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 2.0);
  }
}

TEST(RngProperty, ExponentialMean) {
  Rng r{19};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMsHonoursFloor) {
  Rng r{23};
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(r.normal_ms(1.0, 5.0, 0.25), ms_f(0.25));
  }
}

TEST(Rng, NormalMsZeroSdIsDeterministic) {
  Rng r{29};
  EXPECT_EQ(r.normal_ms(3.5, 0.0), ms_f(3.5));
}

TEST(Rng, IndexStaysInRange) {
  Rng r{31};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(7), 7u);
}

TEST(RngProperty, LognormalIsPositive) {
  Rng r{37};
  for (int i = 0; i < 5000; ++i) EXPECT_GT(r.lognormal(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace animus::sim
