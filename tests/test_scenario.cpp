#include "script/scenario.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace animus::script {
namespace {

TEST(ScenarioParse, AcceptsCommentsAndBlanks) {
  ScenarioError err;
  const auto s = Scenario::parse("# a comment\n\n  run 100\n", &err);
  ASSERT_TRUE(s.has_value()) << err.message;
  EXPECT_EQ(s->command_count(), 1u);
}

TEST(ScenarioParse, QuotedStrings) {
  ScenarioError err;
  const auto s = Scenario::parse("device \"pixel 2\"\nrun 10\n", &err);
  ASSERT_TRUE(s.has_value()) << err.message;
  EXPECT_EQ(s->command_count(), 2u);
}

struct BadScript {
  const char* label;
  const char* text;
};

class ScenarioParseErrors : public ::testing::TestWithParam<BadScript> {};

TEST_P(ScenarioParseErrors, Rejected) {
  ScenarioError err;
  EXPECT_FALSE(Scenario::parse(GetParam().text, &err).has_value());
  EXPECT_GT(err.line, 0u);
  EXPECT_FALSE(err.message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ScenarioParseErrors,
    ::testing::Values(BadScript{"unknown_verb", "launch-missiles now\n"},
                      BadScript{"missing_args", "tap 100\n"},
                      BadScript{"unterminated_quote", "device \"pixel 2\nrun 1\n"},
                      BadScript{"expect_short", "expect alert\n"}),
    [](const ::testing::TestParamInfo<BadScript>& info) { return info.param.label; });

TEST(ScenarioRun, EndToEndOverlayAttack) {
  const auto r = run_scenario(R"(
    device mi8 9
    seed 5
    grant-overlay 10666
    window activity uid=10100 bounds=0,0,1080,2280
    attack overlay d=190 bounds=0,0,1080,2280
    tap 540 1200 at=1500
    tap 540 1300 at=2500
    run 5000
    expect alert L1
    expect captures >= 2
    expect overlays 10666 >= 1
    stop-attacks
    run 2000
    expect overlays 10666 == 0
  )");
  EXPECT_TRUE(r.ok) << (r.error ? r.error->message : "");
  EXPECT_EQ(r.expects_checked, 4);
  EXPECT_NE(r.log.find("attack overlay"), std::string::npos);
}

TEST(ScenarioRun, AlertEscapesAboveBound) {
  const auto r = run_scenario(R"(
    device mi8 9
    deterministic on
    grant-overlay 10666
    attack overlay d=400
    run 6000
    expect alert L2
  )");
  EXPECT_TRUE(r.ok) << (r.error ? r.error->message : "");
}

TEST(ScenarioRun, ExpectFailureCarriesLineNumber) {
  const auto r = run_scenario("grant-overlay 10666\nattack overlay d=190\nrun 3000\n"
                              "expect alert L5\n");
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.error.has_value());
  EXPECT_EQ(r.error->line, 4u);
  EXPECT_NE(r.error->message.find("expected alert L5"), std::string::npos);
}

TEST(ScenarioRun, DefenseDaemonFlagsAttacker) {
  const auto r = run_scenario(R"(
    device mi8 9
    grant-overlay 10666
    defense daemon
    attack overlay d=150
    run 10000
    expect flagged 10666 true
    expect overlays 10666 == 0
  )");
  EXPECT_TRUE(r.ok) << (r.error ? r.error->message : "");
}

TEST(ScenarioRun, NotificationDefenseForcesVisibleAlert) {
  const auto r = run_scenario(R"(
    device mi8 9
    deterministic on
    grant-overlay 10666
    defense notification 690
    attack overlay d=190
    run 8000
    expect alert L5
  )");
  EXPECT_TRUE(r.ok) << (r.error ? r.error->message : "");
}

TEST(ScenarioRun, ToastAttackNeedsNoGrant) {
  const auto r = run_scenario(R"(
    device "pixel 2"
    attack toast duration=3500 content=fake_keyboard:lower
    run 15000
    expect alert L1
  )");
  EXPECT_TRUE(r.ok) << (r.error ? r.error->message : "");
}

TEST(ScenarioRun, ExportTraceWritesChromeJson) {
  const std::string path = ::testing::TempDir() + "/scenario_trace.json";
  const auto r = run_scenario("grant-overlay 10666\nattack overlay d=190\nrun 2000\n"
                              "export-trace " + path + "\n");
  EXPECT_TRUE(r.ok) << (r.error ? r.error->message : "");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("startTopAnimation"), std::string::npos);
}

TEST(ScenarioRun, UnknownDeviceIsSemanticError) {
  const auto r = run_scenario("device iphone\nrun 100\n");
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.error.has_value());
  EXPECT_NE(r.error->message.find("unknown device"), std::string::npos);
}

TEST(ScenarioRun, DeterministicScriptsReproduce) {
  const char* text = R"(
    device mi9
    seed 9
    grant-overlay 10666
    window activity uid=10100
    attack overlay d=150
    tap 500 1000 at=1000
    tap 500 1000 at=1400
    tap 500 1000 at=1800
    run 4000
  )";
  const auto a = run_scenario(text);
  const auto b = run_scenario(text);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.log, b.log);
}

}  // namespace
}  // namespace animus::script
