#include "device/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "device/android_version.hpp"
#include "ui/animation.hpp"

namespace animus::device {
namespace {

TEST(Registry, HasThirtyDevices) { EXPECT_EQ(all_devices().size(), 30u); }

TEST(Registry, CoversSixManufacturers) {
  std::set<std::string> mk;
  for (const auto& d : all_devices()) mk.insert(d.manufacturer);
  EXPECT_EQ(mk, (std::set<std::string>{"Samsung", "Google", "Xiaomi", "Huawei", "Oppo",
                                       "Vivo"}));
}

TEST(Registry, TableTwoAnchors) {
  // Spot-check published Table II upper bounds.
  EXPECT_DOUBLE_EQ(find_device("s8")->d_upper_bound_table_ms, 60);
  EXPECT_DOUBLE_EQ(find_device("pixel 2")->d_upper_bound_table_ms, 330);
  EXPECT_DOUBLE_EQ(find_device("Redmi")->d_upper_bound_table_ms, 395);
  EXPECT_DOUBLE_EQ(find_device("V1986A")->d_upper_bound_table_ms, 80);
}

TEST(Registry, Mi8ListedAtTwoVersions) {
  const auto v9 = find_device("mi8", AndroidVersion::kV9);
  const auto v10 = find_device("mi8", AndroidVersion::kV10);
  ASSERT_TRUE(v9.has_value());
  ASSERT_TRUE(v10.has_value());
  EXPECT_DOUBLE_EQ(v9->d_upper_bound_table_ms, 215);
  EXPECT_DOUBLE_EQ(v10->d_upper_bound_table_ms, 300);
}

TEST(Registry, UnknownModelIsEmpty) { EXPECT_FALSE(find_device("iphone").has_value()); }

TEST(Registry, VersionFilter) {
  std::size_t total = 0;
  for (auto v : {AndroidVersion::kV8, AndroidVersion::kV9, AndroidVersion::kV9_1,
                 AndroidVersion::kV10, AndroidVersion::kV11}) {
    total += devices_with_version(v).size();
  }
  EXPECT_EQ(total, 30u);
  EXPECT_EQ(devices_with_version(AndroidVersion::kV8).size(), 3u);
  EXPECT_EQ(devices_with_version(AndroidVersion::kV11).size(), 2u);
}

TEST(Profile, PredictedDMaxMatchesTableTwo) {
  // The calibrated closed-form Eq. (3) boundary must land within the
  // 1 ms search granularity of the published value for all 30 phones.
  for (const auto& d : all_devices()) {
    EXPECT_NEAR(d.predicted_d_max_ms(ui::kNakedEyeMinPixels), d.d_upper_bound_table_ms, 1.0)
        << d.display_name();
  }
}

TEST(Profile, AddEventOvertakesRemoveEvent) {
  // Section III-C: Tam < Trm on every device.
  for (const auto& d : all_devices()) {
    EXPECT_LT(d.tam.mean_ms, d.trm.mean_ms) << d.display_name();
  }
}

TEST(Profile, MistouchGapNearZeroOnAndroid8And9) {
  for (const auto& d : all_devices()) {
    const auto fam = version_family(d.version);
    if (fam == "Android 8.x" || fam == "Android 9.x") {
      EXPECT_LT(d.expected_tmis_ms(), 2.0) << d.display_name();
    }
  }
}

TEST(Profile, MistouchGapLargerOnAndroid10) {
  double v9_max = 0.0, v10_min = 1e9;
  for (const auto& d : all_devices()) {
    const auto fam = version_family(d.version);
    if (fam == "Android 9.x") v9_max = std::max(v9_max, d.expected_tmis_ms());
    if (fam == "Android 10.0") v10_min = std::min(v10_min, d.expected_tmis_ms());
  }
  EXPECT_GT(v10_min, v9_max);
}

TEST(Profile, LoadScalesLatenciesSlightly) {
  const DeviceProfile base = reference_device();
  const DeviceProfile loaded = base.with_load(5);
  EXPECT_GT(loaded.tam.mean_ms, base.tam.mean_ms);
  // Section VI-B: influence of load is negligible (< 3% here).
  EXPECT_LT(loaded.tam.mean_ms / base.tam.mean_ms, 1.03);
  EXPECT_NEAR(loaded.predicted_d_max_ms(2), base.predicted_d_max_ms(2),
              0.05 * base.predicted_d_max_ms(2));
}

TEST(Profile, ReferenceDevices) {
  EXPECT_EQ(reference_device().model, "pixel 2");
  EXPECT_EQ(reference_device().version, AndroidVersion::kV11);
  EXPECT_EQ(reference_device_android9().version, AndroidVersion::kV9);
}

TEST(Profile, DisplayName) {
  EXPECT_EQ(reference_device().display_name(), "pixel 2 (Android 11)");
}

TEST(VersionTraits, AnaDelays) {
  EXPECT_EQ(traits(AndroidVersion::kV9).ana_delay, sim::ms(0));
  EXPECT_EQ(traits(AndroidVersion::kV10).ana_delay, sim::ms(100));
  EXPECT_EQ(traits(AndroidVersion::kV11).ana_delay, sim::ms(200));
}

TEST(VersionTraits, ToastRulesPostAndroid8) {
  for (auto v : {AndroidVersion::kV8, AndroidVersion::kV10}) {
    const auto t = traits(v);
    EXPECT_TRUE(t.type_toast_removed);
    EXPECT_TRUE(t.serialized_toasts);
    EXPECT_EQ(t.max_toast_tokens_per_app, 50);
  }
}

TEST(VersionTraits, FamilyGrouping) {
  EXPECT_EQ(version_family(AndroidVersion::kV9), "Android 9.x");
  EXPECT_EQ(version_family(AndroidVersion::kV9_1), "Android 9.x");
  EXPECT_EQ(version_family(AndroidVersion::kV11), "Android 11.0");
}

TEST(MakeProfile, SynthesizesConsistentDevices) {
  const DeviceProfile p = make_profile("Acme", "test-1", AndroidVersion::kV10, 250.0);
  EXPECT_NEAR(p.predicted_d_max_ms(ui::kNakedEyeMinPixels), 250.0, 1.0);
  EXPECT_GT(p.tn.mean_ms, 0.0);
}

}  // namespace
}  // namespace animus::device
