#include "core/password_stealer.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "device/registry.hpp"
#include "metrics/stats.hpp"
#include "input/password.hpp"
#include "victim/catalog.hpp"

namespace animus::core {
namespace {

using sim::ms;
using sim::seconds;

PasswordTrialConfig base_trial() {
  PasswordTrialConfig c;
  c.profile = device::reference_device_android9();
  c.app = victim::find_app("Bank of America")->spec;
  input::TypistProfile precise;
  precise.jitter_frac = 0.02;
  precise.misspell_rate = 0.0;
  c.typist = precise;
  c.password = "tk&%48GH";  // the paper's video-demo password
  c.seed = 42;
  return c;
}

TEST(PasswordStealer, StealsTheVideoDemoPassword) {
  const auto r = run_password_trial(base_trial());
  EXPECT_TRUE(r.triggered);
  EXPECT_FALSE(r.used_username_workaround);
  EXPECT_EQ(r.decoded, "tk&%48GH");
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.error, PasswordErrorKind::kNone);
}

TEST(PasswordStealer, SuppressesAlertDuringTheft) {
  const auto r = run_password_trial(base_trial());
  EXPECT_EQ(r.alert_outcome, percept::LambdaOutcome::kL1);
}

TEST(PasswordStealer, NoPerceptibleFlickerDuringTheft) {
  const auto r = run_password_trial(base_trial());
  EXPECT_FALSE(r.flicker.noticeable);
  EXPECT_GT(r.flicker.min_alpha, 0.85);
}

TEST(PasswordStealer, FillsTheRealWidget) {
  const auto r = run_password_trial(base_trial());
  EXPECT_TRUE(r.widget_filled);
}

TEST(PasswordStealer, AlipayNeedsUsernameWorkaround) {
  auto c = base_trial();
  c.app = victim::find_app("Alipay")->spec;
  const auto r = run_password_trial(c);
  EXPECT_TRUE(r.triggered);
  EXPECT_TRUE(r.used_username_workaround);
  EXPECT_TRUE(r.success) << r.decoded;
}

TEST(PasswordStealer, AllTableFourAppsCompromised) {
  for (const auto& entry : victim::table_iv_apps()) {
    auto c = base_trial();
    c.app = entry.spec;
    c.password = "aB3$";
    const auto r = run_password_trial(c);
    EXPECT_TRUE(r.triggered) << entry.spec.name;
    EXPECT_TRUE(r.success) << entry.spec.name << " decoded=" << r.decoded;
    EXPECT_EQ(r.used_username_workaround, entry.needs_extra_effort) << entry.spec.name;
  }
}

TEST(PasswordStealer, DecodesAcrossAllSubKeyboards) {
  auto c = base_trial();
  c.password = "aZ9@x&Q2";
  const auto r = run_password_trial(c);
  EXPECT_TRUE(r.success) << r.decoded;
}

TEST(PasswordStealer, MostTrialsSucceedWithRealisticJitter) {
  int ok = 0;
  const auto panel = input::participant_panel();
  for (int i = 0; i < 20; ++i) {
    auto c = base_trial();
    c.typist = panel[static_cast<std::size_t>(i) % panel.size()];
    sim::Rng rng{static_cast<std::uint64_t>(1000 + i)};
    c.password = input::random_password(8, rng);
    c.seed = static_cast<std::uint64_t>(100 + i);
    ok += run_password_trial(c).success;
  }
  EXPECT_GE(ok, 14);  // paper: 88% at length 8
}

TEST(PasswordStealer, ArmFailsOnlyWhenNoTriggerPathExists) {
  server::WorldConfig wc;
  wc.profile = device::reference_device_android9();
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);
  victim::VictimAppSpec fortress;
  fortress.disables_password_accessibility = true;
  fortress.shares_parent_view = false;
  victim::VictimApp app{world, fortress};
  PasswordStealer stealer{world, app, {}};
  EXPECT_FALSE(stealer.arm());
}

TEST(PasswordStealer, UsesTableTwoBoundWhenUnconfigured) {
  server::WorldConfig wc;
  wc.profile = *device::find_device("pixel 2");
  server::World world{wc};
  victim::VictimApp app{world, victim::find_app("Skype")->spec};
  PasswordStealer stealer{world, app, {}};
  EXPECT_EQ(stealer.attacking_window(), sim::ms_f(kBoundSafetyFactor * 330));
}

TEST(ClassifyError, TaxonomyRules) {
  EXPECT_EQ(classify_password_error("abc", "abc"), PasswordErrorKind::kNone);
  EXPECT_EQ(classify_password_error("abcd", "abc"), PasswordErrorKind::kLength);
  EXPECT_EQ(classify_password_error("abc", "abcd"), PasswordErrorKind::kLength);
  EXPECT_EQ(classify_password_error("aBc", "abc"), PasswordErrorKind::kCapitalization);
  EXPECT_EQ(classify_password_error("abc", "abd"), PasswordErrorKind::kWrongKey);
  // Case differences combined with a wrong key count as wrong key.
  EXPECT_EQ(classify_password_error("aBc", "abd"), PasswordErrorKind::kWrongKey);
  EXPECT_EQ(classify_password_error("", ""), PasswordErrorKind::kNone);
}

TEST(CaptureTrial, HigherDCapturesMore) {
  CaptureTrialConfig c;
  c.profile = device::reference_device_android9();
  c.typist = input::participant_panel()[0];
  c.seed = 7;
  c.attacking_window = ms(50);
  const auto low = run_capture_trial(c);
  c.attacking_window = ms(200);
  c.seed = 7;
  const auto high = run_capture_trial(c);
  EXPECT_GT(high.rate, low.rate);
  EXPECT_GT(high.rate, 0.85);
  EXPECT_GT(low.rate, 0.4);
  EXPECT_LT(low.rate, 0.95);
}

TEST(CaptureTrial, Android10WorseThanAndroid9) {
  metrics::RunningStats v9, v10;
  const auto panel = input::participant_panel();
  for (int i = 0; i < 6; ++i) {
    CaptureTrialConfig c;
    c.typist = panel[static_cast<std::size_t>(i)];
    c.attacking_window = ms(125);
    c.seed = static_cast<std::uint64_t>(i);
    c.profile = device::reference_device_android9();
    v9.add(run_capture_trial(c).rate);
    c.profile = *device::find_device("mi9");  // Android 10
    v10.add(run_capture_trial(c).rate);
  }
  EXPECT_GT(v9.mean(), v10.mean());
}

}  // namespace
}  // namespace animus::core
