#include "server/notification_manager.hpp"

#include <gtest/gtest.h>

#include "device/registry.hpp"
#include "server/world.hpp"

namespace animus::server {
namespace {

using sim::ms;
using sim::seconds;

struct NmsFixture : ::testing::Test {
  WorldConfig make_config() {
    WorldConfig wc;
    wc.profile = device::reference_device_android9();
    wc.deterministic = true;
    return wc;
  }
  World world{make_config()};

  ToastRequest toast(int uid, std::string content = "fake_keyboard:lower",
                     sim::SimTime dur = kToastShort) {
    ToastRequest r;
    r.uid = uid;
    r.content = std::move(content);
    r.bounds = {0, 1500, 1080, 780};
    r.duration = dur;
    return r;
  }
};

TEST_F(NmsFixture, ShowsOneToastAtATime) {
  world.nms().enqueue_toast_now(toast(1, "a"));
  world.nms().enqueue_toast_now(toast(1, "b"));
  world.run_until(ms(100));
  EXPECT_EQ(world.nms().stats().shown, 1u);
  EXPECT_EQ(world.nms().queued_tokens(1), 1);
  // Second toast appears only after the first one's duration elapses.
  world.run_until(ms(2000 + 100));
  EXPECT_EQ(world.nms().stats().shown, 2u);
}

TEST_F(NmsFixture, DurationsClampToShortOrLong) {
  world.nms().enqueue_toast_now(toast(1, "x", ms(123)));
  world.run_until(ms(100));
  // Clamped to SHORT: gone (faded) by 2600 ms, not at 1000 ms.
  EXPECT_EQ(world.wms().count(1, ui::WindowType::kToast), 1);
  world.run_until(ms(2700));
  EXPECT_EQ(world.wms().count(1, ui::WindowType::kToast), 0);
}

TEST_F(NmsFixture, PerAppTokenCapIsFifty) {
  for (int i = 0; i < 55; ++i) world.nms().enqueue_toast_now(toast(1));
  // The first token is dequeued for display immediately, so 51 calls
  // are accepted before the 50-waiting-token cap rejects the rest.
  EXPECT_EQ(world.nms().stats().rejected, 4u);
  EXPECT_LE(world.nms().queued_tokens(1), 50);
  // A different app is not affected by app 1's cap.
  EXPECT_TRUE(world.nms().enqueue_toast_now(toast(2)));
}

TEST_F(NmsFixture, NextToastFetchedWhenPreviousExpires) {
  world.nms().enqueue_toast_now(toast(1, "a", kToastLong));
  world.nms().enqueue_toast_now(toast(1, "b", kToastLong));
  world.run_until(ms(100));
  const auto shown_before = world.nms().stats().shown;
  // Just after the first toast's 3.5 s: the second should be on screen
  // while the first is still fading out -> two toast windows coexist.
  world.run_until(ms(3500 + 16 + 100));
  EXPECT_EQ(world.nms().stats().shown, shown_before + 1);
  int coexisting = 0;
  for (const auto& rec : world.wms().history()) {
    if (rec.window.type == ui::WindowType::kToast &&
        rec.alive_at(ms(3500 + 16 + 60))) {
      ++coexisting;
    }
  }
  EXPECT_EQ(coexisting, 2);  // old fading out + new fading in
}

TEST_F(NmsFixture, CancelCurrentRetiresEarlyAndFetchesNext) {
  world.nms().enqueue_toast_now(toast(1, "a", kToastLong));
  world.nms().enqueue_toast_now(toast(1, "b", kToastLong));
  world.run_until(ms(200));
  EXPECT_TRUE(world.nms().cancel_current(1));
  world.run_until(ms(300));
  EXPECT_EQ(world.nms().stats().shown, 2u);  // replacement already up
}

TEST_F(NmsFixture, CancelCurrentWrongUidIsNoop) {
  world.nms().enqueue_toast_now(toast(1, "a"));
  world.run_until(ms(200));
  EXPECT_FALSE(world.nms().cancel_current(2));
}

TEST_F(NmsFixture, CancelQueuedDropsOnlyStaleContent) {
  world.nms().enqueue_toast_now(toast(1, "a", kToastLong));  // shows
  world.nms().enqueue_toast_now(toast(1, "a", kToastLong));  // queued stale
  world.nms().enqueue_toast_now(toast(1, "b", kToastLong));  // queued fresh
  world.run_until(ms(100));
  EXPECT_EQ(world.nms().cancel_queued(1, "b"), 1);
  EXPECT_EQ(world.nms().queued_tokens(1), 1);
}

TEST_F(NmsFixture, InterToastGapDelaysSuccessor) {
  world.nms().set_inter_toast_gap(ms(500));
  world.nms().enqueue_toast_now(toast(1, "a", kToastShort));
  world.nms().enqueue_toast_now(toast(1, "b", kToastShort));
  world.run_until(ms(2100));
  EXPECT_EQ(world.nms().stats().shown, 1u);  // gap not yet elapsed
  world.run_until(ms(2700));
  EXPECT_EQ(world.nms().stats().shown, 2u);
}

TEST_F(NmsFixture, QueueDepthStatTracksPeak) {
  for (int i = 0; i < 5; ++i) world.nms().enqueue_toast_now(toast(1));
  EXPECT_EQ(world.nms().stats().max_queue_depth, 4u);  // one popped to show
}

TEST_F(NmsFixture, ShownListenerFires) {
  int fired = 0;
  world.nms().add_shown_listener(
      [&fired](const ToastRequest&, ui::WindowId) { ++fired; });
  world.nms().enqueue_toast_now(toast(1));
  world.run_until(ms(100));
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace animus::server
