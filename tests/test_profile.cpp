// Sweep-wide span profiler: bucket/percentile math, aggregation
// exactness, self-time containment, merge commutativity, the shard wire
// format, and byte-identical profile JSON across thread counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/profile.hpp"
#include "runner/runner.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace {

using namespace animus;
using sim::SimTime;
using sim::TraceCategory;

SimTime us(std::int64_t n) { return SimTime{n}; }

/// Every test owns the process-wide profiler for its duration.
struct ProfilerFixture : ::testing::Test {
  void SetUp() override {
    obs::span_profiler().enable();
    obs::span_profiler().reset();
  }
  void TearDown() override {
    obs::span_profiler().reset();
    obs::span_profiler().disable();
  }
};

// ------------------------------------------------------------ bucket math

TEST(ProfileBuckets, Log2IndexAndUpperBound) {
  EXPECT_EQ(obs::profile_bucket(0), 0);
  EXPECT_EQ(obs::profile_bucket(1), 1);
  EXPECT_EQ(obs::profile_bucket(2), 2);
  EXPECT_EQ(obs::profile_bucket(3), 2);
  EXPECT_EQ(obs::profile_bucket(4), 3);
  EXPECT_EQ(obs::profile_bucket(1023), 10);
  EXPECT_EQ(obs::profile_bucket(1024), 11);
  // The last bucket absorbs everything larger.
  EXPECT_EQ(obs::profile_bucket(~std::uint64_t{0}), obs::kProfileBucketCount - 1);

  EXPECT_EQ(obs::profile_bucket_upper_ns(0), 0u);
  EXPECT_EQ(obs::profile_bucket_upper_ns(1), 1u);
  EXPECT_EQ(obs::profile_bucket_upper_ns(2), 3u);
  EXPECT_EQ(obs::profile_bucket_upper_ns(10), 1023u);
  // Upper bound of a bucket is the largest duration that maps into it.
  for (std::uint64_t ns : {1u, 2u, 3u, 4u, 1023u, 1024u}) {
    EXPECT_LE(ns, obs::profile_bucket_upper_ns(obs::profile_bucket(ns)));
  }
}

TEST(ProfileBuckets, PercentileIsBucketUpperBoundAtRank) {
  obs::ProfileEntry e;
  // 90 spans of 1 ns (bucket 1), 10 of ~1000 ns (bucket 10).
  e.count = 100;
  e.buckets[1] = 90;
  e.buckets[10] = 10;
  EXPECT_EQ(obs::profile_percentile_ns(e, 50), 1u);
  EXPECT_EQ(obs::profile_percentile_ns(e, 90), 1u);    // rank 90 is still bucket 1
  EXPECT_EQ(obs::profile_percentile_ns(e, 99), 1023u); // rank 99 lands in bucket 10
  obs::ProfileEntry zero;
  EXPECT_EQ(obs::profile_percentile_ns(zero, 99), 0u);
}

// ----------------------------------------------------------- aggregation

TEST_F(ProfilerFixture, AggregatesCountTotalMinMax) {
  auto& prof = obs::span_profiler();
  // Durations 10, 20, 30 us -> 10000..30000 ns. Disjoint spans: no
  // containment, so self == total.
  prof.observe("test.span", TraceCategory::kSim, us(0), us(10));
  prof.observe("test.span", TraceCategory::kSim, us(20), us(40));
  prof.observe("test.span", TraceCategory::kSim, us(50), us(80));

  const obs::ProfileReport report = prof.snapshot();
  ASSERT_EQ(report.entries.size(), 1u);
  const obs::ProfileEntry* e = report.find("test.span");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->count, 3u);
  EXPECT_EQ(e->total_ns, 60000u);
  EXPECT_EQ(e->self_ns, 60000u);
  EXPECT_EQ(e->min_ns, 10000u);
  EXPECT_EQ(e->max_ns, 30000u);
  EXPECT_EQ(report.span_count(), 3u);
  EXPECT_EQ(report.dropped_spans, 0u);
}

TEST_F(ProfilerFixture, SelfTimeSubtractsCompletedChildren) {
  auto& prof = obs::span_profiler();
  // Spans report in completion order: two children inside one parent.
  prof.observe("child", TraceCategory::kSim, us(10), us(20));   // 10 us
  prof.observe("child", TraceCategory::kSim, us(30), us(45));   // 15 us
  prof.observe("parent", TraceCategory::kSim, us(0), us(100));  // 100 us

  const obs::ProfileReport report = prof.snapshot();
  const obs::ProfileEntry* parent = report.find("parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->total_ns, 100000u);
  EXPECT_EQ(parent->self_ns, 75000u);  // 100 - 10 - 15 us
  const obs::ProfileEntry* child = report.find("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->self_ns, 25000u);   // leaves keep everything
}

TEST_F(ProfilerFixture, SiblingsDoNotNestIntoEachOther) {
  auto& prof = obs::span_profiler();
  prof.observe("a", TraceCategory::kSim, us(0), us(10));
  prof.observe("b", TraceCategory::kSim, us(20), us(30));  // starts after a ended
  const obs::ProfileReport report = prof.snapshot();
  EXPECT_EQ(report.find("a")->self_ns, 10000u);
  EXPECT_EQ(report.find("b")->self_ns, 10000u);
}

TEST_F(ProfilerFixture, FlushStackIsATrialBoundary) {
  auto& prof = obs::span_profiler();
  prof.observe("child", TraceCategory::kSim, us(10), us(20));
  prof.flush_stack();  // next trial: simulated time rewinds
  prof.observe("parent", TraceCategory::kSim, us(0), us(100));
  const obs::ProfileReport report = prof.snapshot();
  // The flushed child must NOT be attributed to the next trial's parent.
  EXPECT_EQ(report.find("parent")->self_ns, 100000u);
}

TEST_F(ProfilerFixture, TableFullCountsDroppedSpans) {
  auto& prof = obs::span_profiler();
  // The per-thread table has a fixed slot count; drive more distinct
  // names (stable pointers stand in for static literals) than fit.
  static std::vector<std::string> names;
  if (names.empty()) {
    names.reserve(400);
    for (int i = 0; i < 400; ++i) names.push_back("drop.span." + std::to_string(i));
  }
  for (const auto& n : names) {
    prof.observe(n.c_str(), TraceCategory::kSim, us(0), us(1));
    prof.flush_stack();
  }
  const obs::ProfileReport report = prof.snapshot();
  EXPECT_GT(report.dropped_spans, 0u);
  EXPECT_LT(report.entries.size(), names.size());
  EXPECT_EQ(report.span_count() + report.dropped_spans, 400u);
}

// ------------------------------------------------------- merge and wire

obs::ProfileReport make_report(std::uint64_t scale) {
  obs::ProfileReport r;
  obs::ProfileEntry a;
  a.name = "alpha";
  a.category = TraceCategory::kSim;
  a.count = 2 * scale;
  a.total_ns = 1000 * scale;
  a.self_ns = 800 * scale;
  a.min_ns = 100;
  a.max_ns = 900 * scale;
  a.buckets[obs::profile_bucket(500)] = 2 * scale;
  obs::ProfileEntry b;
  b.name = "beta";
  b.category = TraceCategory::kAttack;
  b.count = scale;
  b.total_ns = 50 * scale;
  b.self_ns = 50 * scale;
  b.min_ns = 50;
  b.max_ns = 50;
  b.buckets[obs::profile_bucket(50)] = scale;
  r.entries = {a, b};
  return r;
}

TEST(ProfileMerge, CommutativeAndByteIdenticalJson) {
  obs::ProfileReport ab = make_report(1);
  obs::merge_profile(&ab, make_report(3));
  obs::ProfileReport ba = make_report(3);
  obs::merge_profile(&ba, make_report(1));
  EXPECT_EQ(obs::to_profile_json(ab), obs::to_profile_json(ba));

  const obs::ProfileEntry* alpha = ab.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->count, 8u);
  EXPECT_EQ(alpha->total_ns, 4000u);
  EXPECT_EQ(alpha->min_ns, 100u);
  EXPECT_EQ(alpha->max_ns, 2700u);
}

TEST(ProfileWire, RoundTripsExactly) {
  obs::ProfileReport r = make_report(7);
  r.dropped_spans = 3;
  r.stack_overflows = 1;
  const std::string wire = obs::serialize_profile(r);
  obs::ProfileReport back;
  ASSERT_TRUE(obs::deserialize_profile(wire, &back));
  EXPECT_EQ(back.dropped_spans, 3u);
  EXPECT_EQ(back.stack_overflows, 1u);
  EXPECT_EQ(obs::to_profile_json(back), obs::to_profile_json(r));
}

TEST(ProfileWire, RejectsMalformedPayloads) {
  obs::ProfileReport out;
  EXPECT_FALSE(obs::deserialize_profile("", &out));
  EXPECT_FALSE(obs::deserialize_profile("not-a-profile 1 0 0 0\n", &out));
  EXPECT_FALSE(obs::deserialize_profile("animus-profile 99 0 0 0\n", &out));
  // Truncated entry line.
  std::string wire = obs::serialize_profile(make_report(1));
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(obs::deserialize_profile(wire, &out));
}

TEST(ProfileJson, SummaryAndTableRenderTopSelfTime) {
  obs::ProfileReport r = make_report(2);
  const std::string summary = obs::profile_summary_json(r, 1);
  EXPECT_NE(summary.find("\"alpha\""), std::string::npos);  // top self-time
  EXPECT_EQ(summary.find("\"beta\""), std::string::npos);   // truncated at 1
  const std::string table = obs::profile_table(r, 5);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("self"), std::string::npos);
}

// ------------------------------------------- determinism across workers

TEST_F(ProfilerFixture, SnapshotJsonIsIdenticalAcrossJobCounts) {
  // A deterministic synthetic workload: trial i emits spans whose
  // simulated times are pure functions of i — exactly the situation in a
  // real sweep, where span times derive from the trial seed.
  const auto run_sweep = [](int jobs) {
    obs::span_profiler().reset();
    runner::RunOptions options;
    options.jobs = jobs;
    runner::ParallelRunner pool{options};
    pool.run(64, [](const runner::TrialContext& ctx) {
      auto& prof = obs::span_profiler();
      prof.flush_stack();  // Worlds do this in their constructor
      const std::int64_t base = static_cast<std::int64_t>(ctx.index % 7);
      const std::int64_t dur = static_cast<std::int64_t>(ctx.index % 29) + 1;
      prof.observe("trial.child", TraceCategory::kAnimation, us(base + 1), us(base + 1 + dur));
      prof.observe("trial.parent", TraceCategory::kSim, us(base), us(base + 4 * dur));
    });
    return obs::to_profile_json(obs::span_profiler().snapshot());
  };

  const std::string serial = run_sweep(1);
  const std::string parallel = run_sweep(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("trial.parent"), std::string::npos);
}

TEST_F(ProfilerFixture, WorkerUtilizationAccountsEveryTrial) {
  runner::RunOptions options;
  options.jobs = 3;
  runner::ParallelRunner pool{options};
  const runner::SweepStats stats =
      pool.run(10, [](const runner::TrialContext&) {});
  ASSERT_EQ(stats.workers.size(), 3u);
  std::uint64_t trials = 0;
  for (const auto& w : stats.workers) trials += w.trials;
  EXPECT_EQ(trials, 10u);
  // Stolen trials are a subset of executed trials.
  for (const auto& w : stats.workers) EXPECT_LE(w.stolen, w.trials);
  EXPECT_FALSE(stats.worker_lines().empty());
  EXPECT_NE(stats.worker_lines().find("worker  0"), std::string::npos);
}

}  // namespace
