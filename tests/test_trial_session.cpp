// TrialSession reuse contract: a session that recycles one World across
// trials must be byte-identical — results and published telemetry — to
// running every trial on a freshly constructed World, serially and
// through the parallel campaign runner, with and without fault
// injection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "obs/metrics.hpp"
#include "runner/bench_cli.hpp"
#include "runner/field_codec.hpp"

namespace {

using namespace animus;
using core::Tier;
using runner::TrialCodec;

std::vector<core::OutcomeProbeConfig> probe_grid() {
  const auto devices = device::all_devices();
  std::vector<core::OutcomeProbeConfig> grid;
  int i = 0;
  for (const int d : {60, 150, 215, 216, 300, 700}) {
    for (const std::uint64_t seed : {1ULL, 99ULL}) {
      core::OutcomeProbeConfig c;
      c.profile = devices[static_cast<std::size_t>(i++) % devices.size()];
      c.attacking_window = sim::ms(d);
      c.duration = sim::seconds(3);
      c.seed = seed;
      // Half the grid samples latencies, so the sim tier (and its RNG
      // restoration across epochs) is exercised, not just the replay.
      c.deterministic = (i % 2) == 0;
      c.tier = Tier::kSim;  // session reuse is a sim-tier property
      grid.push_back(c);
    }
  }
  return grid;
}

TEST(TrialSession, ReusedWorldMatchesFreshWorldsSerially) {
  const auto grid = probe_grid();
  core::TrialSession session;
  for (const auto& c : grid) {
    // One-shot free function = fresh session = fresh World.
    const auto fresh = TrialCodec<core::OutcomeProbe>::encode(core::run_outcome_probe(c));
    const auto reused = TrialCodec<core::OutcomeProbe>::encode(session.run(c));
    EXPECT_EQ(fresh, reused) << c.profile.display_name();
  }
  EXPECT_EQ(session.epochs(), grid.size());
}

TEST(TrialSession, CaptureAndPasswordTrialsMatchFreshWorlds) {
  const auto panel = input::participant_panel();
  const auto devices = device::all_devices();
  core::TrialSession session;
  for (int i = 0; i < 4; ++i) {
    core::CaptureTrialConfig cc;
    cc.profile = devices[static_cast<std::size_t>(i) * 7 % devices.size()];
    cc.typist = panel[static_cast<std::size_t>(i)];
    cc.attacking_window = sim::ms(100 + 25 * i);
    cc.touches = 40;
    cc.seed = static_cast<std::uint64_t>(17 + i);
    EXPECT_EQ(TrialCodec<core::CaptureTrialResult>::encode(core::run_capture_trial(cc)),
              TrialCodec<core::CaptureTrialResult>::encode(session.run(cc)))
        << i;

    core::PasswordTrialConfig pc;
    pc.profile = devices[static_cast<std::size_t>(i) * 11 % devices.size()];
    pc.typist = panel[static_cast<std::size_t>(i + 5)];
    pc.password = "tk&%48GH";
    pc.seed = static_cast<std::uint64_t>(29 + i);
    EXPECT_EQ(TrialCodec<core::PasswordTrialResult>::encode(core::run_password_trial(pc)),
              TrialCodec<core::PasswordTrialResult>::encode(session.run(pc)))
        << i;
  }
}

TEST(TrialSession, EpochTelemetryMatchesFreshWorldAccounting) {
  // finish_epoch must publish exactly what a fresh World's destructor
  // publishes: one animus_worlds_total tick per trial, identical event
  // totals for identical trials.
  auto& worlds = obs::global_registry().counter("animus_worlds_total");
  auto& events = obs::global_registry().counter("animus_events_executed_total");
  core::OutcomeProbeConfig c;
  c.profile = device::reference_device_android9();
  c.attacking_window = sim::ms(150);
  c.duration = sim::seconds(3);
  c.tier = Tier::kSim;

  const double w0 = worlds.value(), e0 = events.value();
  core::run_outcome_probe(c);  // fresh World
  const double w1 = worlds.value(), e1 = events.value();
  core::TrialSession session;
  session.run(c);
  session.run(c);  // second epoch on the same World
  const double w2 = worlds.value(), e2 = events.value();

  EXPECT_EQ(w1 - w0, 1.0);
  EXPECT_EQ(w2 - w1, 2.0);
  EXPECT_EQ(e2 - e1, 2.0 * (e1 - e0));
}

std::vector<std::string> run_probe_campaign(int jobs, double inject_fault) {
  runner::BenchArgs args;
  args.run.jobs = jobs;
  args.run.root_seed = 7;
  args.inject_fault = inject_fault;
  const auto grid = probe_grid();
  const auto sweep = runner::run_campaign(
      "session-test", grid,
      [&](const core::OutcomeProbeConfig& c, const runner::TrialContext&) {
        return core::TrialSession::local().run(c);
      },
      args);
  std::vector<std::string> encoded;
  encoded.reserve(sweep.results.size());
  for (const auto& r : sweep.results) {
    encoded.push_back(TrialCodec<core::OutcomeProbe>::encode(r));
  }
  return encoded;
}

TEST(TrialSession, CampaignResultsAreByteIdenticalAtAnyJobsValue) {
  // --jobs 8 hands each worker thread its own thread-local session (its
  // own World); submission-order results must still match --jobs 1,
  // where one session serves every trial back to back.
  EXPECT_EQ(run_probe_campaign(1, 0.0), run_probe_campaign(8, 0.0));
}

TEST(TrialSession, CampaignSurvivesFaultInjectionIdentically) {
  // Faulted trials abort mid-stream; the next trial on that worker's
  // session must still open a pristine epoch.
  const auto serial = run_probe_campaign(1, 0.25);
  const auto parallel = run_probe_campaign(8, 0.25);
  EXPECT_EQ(serial, parallel);
  // The fault schedule is seed-derived, so some (but not all) trials
  // must have defaulted.
  const auto clean = run_probe_campaign(1, 0.0);
  EXPECT_NE(serial, clean);
}

}  // namespace
