# Empty dependencies file for fig01_notification_drawer.
# This may be replaced when dependencies are built.
