file(REMOVE_RECURSE
  "CMakeFiles/fig01_notification_drawer.dir/fig01_notification_drawer.cpp.o"
  "CMakeFiles/fig01_notification_drawer.dir/fig01_notification_drawer.cpp.o.d"
  "fig01_notification_drawer"
  "fig01_notification_drawer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_notification_drawer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
