file(REMOVE_RECURSE
  "CMakeFiles/fig08_capture_by_version.dir/fig08_capture_by_version.cpp.o"
  "CMakeFiles/fig08_capture_by_version.dir/fig08_capture_by_version.cpp.o.d"
  "fig08_capture_by_version"
  "fig08_capture_by_version.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_capture_by_version.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
