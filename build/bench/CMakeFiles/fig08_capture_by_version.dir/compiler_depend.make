# Empty compiler generated dependencies file for fig08_capture_by_version.
# This may be replaced when dependencies are built.
