# Empty compiler generated dependencies file for fig03_fig05_workflows.
# This may be replaced when dependencies are built.
