file(REMOVE_RECURSE
  "CMakeFiles/fig03_fig05_workflows.dir/fig03_fig05_workflows.cpp.o"
  "CMakeFiles/fig03_fig05_workflows.dir/fig03_fig05_workflows.cpp.o.d"
  "fig03_fig05_workflows"
  "fig03_fig05_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fig05_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
