file(REMOVE_RECURSE
  "CMakeFiles/table02_upper_bound_d.dir/table02_upper_bound_d.cpp.o"
  "CMakeFiles/table02_upper_bound_d.dir/table02_upper_bound_d.cpp.o.d"
  "table02_upper_bound_d"
  "table02_upper_bound_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table02_upper_bound_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
