# Empty dependencies file for table02_upper_bound_d.
# This may be replaced when dependencies are built.
