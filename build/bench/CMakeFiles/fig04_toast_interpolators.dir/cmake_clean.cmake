file(REMOVE_RECURSE
  "CMakeFiles/fig04_toast_interpolators.dir/fig04_toast_interpolators.cpp.o"
  "CMakeFiles/fig04_toast_interpolators.dir/fig04_toast_interpolators.cpp.o.d"
  "fig04_toast_interpolators"
  "fig04_toast_interpolators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_toast_interpolators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
