# Empty compiler generated dependencies file for fig04_toast_interpolators.
# This may be replaced when dependencies are built.
