file(REMOVE_RECURSE
  "CMakeFiles/load_impact.dir/load_impact.cpp.o"
  "CMakeFiles/load_impact.dir/load_impact.cpp.o.d"
  "load_impact"
  "load_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/load_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
