# Empty dependencies file for load_impact.
# This may be replaced when dependencies are built.
