file(REMOVE_RECURSE
  "CMakeFiles/micro_defense_overhead.dir/micro_defense_overhead.cpp.o"
  "CMakeFiles/micro_defense_overhead.dir/micro_defense_overhead.cpp.o.d"
  "micro_defense_overhead"
  "micro_defense_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_defense_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
