# Empty dependencies file for micro_runner.
# This may be replaced when dependencies are built.
