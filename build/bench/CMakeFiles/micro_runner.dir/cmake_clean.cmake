file(REMOVE_RECURSE
  "CMakeFiles/micro_runner.dir/micro_runner.cpp.o"
  "CMakeFiles/micro_runner.dir/micro_runner.cpp.o.d"
  "micro_runner"
  "micro_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
