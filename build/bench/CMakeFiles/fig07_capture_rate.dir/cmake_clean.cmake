file(REMOVE_RECURSE
  "CMakeFiles/fig07_capture_rate.dir/fig07_capture_rate.cpp.o"
  "CMakeFiles/fig07_capture_rate.dir/fig07_capture_rate.cpp.o.d"
  "fig07_capture_rate"
  "fig07_capture_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_capture_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
