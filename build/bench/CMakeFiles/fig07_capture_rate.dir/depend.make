# Empty dependencies file for fig07_capture_rate.
# This may be replaced when dependencies are built.
