# Empty compiler generated dependencies file for defense_eval.
# This may be replaced when dependencies are built.
