file(REMOVE_RECURSE
  "CMakeFiles/fig06_notification_outcomes.dir/fig06_notification_outcomes.cpp.o"
  "CMakeFiles/fig06_notification_outcomes.dir/fig06_notification_outcomes.cpp.o.d"
  "fig06_notification_outcomes"
  "fig06_notification_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_notification_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
