# Empty compiler generated dependencies file for fig06_notification_outcomes.
# This may be replaced when dependencies are built.
