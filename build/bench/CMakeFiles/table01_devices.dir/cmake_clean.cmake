file(REMOVE_RECURSE
  "CMakeFiles/table01_devices.dir/table01_devices.cpp.o"
  "CMakeFiles/table01_devices.dir/table01_devices.cpp.o.d"
  "table01_devices"
  "table01_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table01_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
