# Empty dependencies file for table01_devices.
# This may be replaced when dependencies are built.
