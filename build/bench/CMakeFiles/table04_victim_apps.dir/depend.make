# Empty dependencies file for table04_victim_apps.
# This may be replaced when dependencies are built.
