file(REMOVE_RECURSE
  "CMakeFiles/table04_victim_apps.dir/table04_victim_apps.cpp.o"
  "CMakeFiles/table04_victim_apps.dir/table04_victim_apps.cpp.o.d"
  "table04_victim_apps"
  "table04_victim_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_victim_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
