file(REMOVE_RECURSE
  "CMakeFiles/prevalence_analysis.dir/prevalence_analysis.cpp.o"
  "CMakeFiles/prevalence_analysis.dir/prevalence_analysis.cpp.o.d"
  "prevalence_analysis"
  "prevalence_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prevalence_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
