# Empty compiler generated dependencies file for prevalence_analysis.
# This may be replaced when dependencies are built.
