file(REMOVE_RECURSE
  "CMakeFiles/fig02_notification_interpolator.dir/fig02_notification_interpolator.cpp.o"
  "CMakeFiles/fig02_notification_interpolator.dir/fig02_notification_interpolator.cpp.o.d"
  "fig02_notification_interpolator"
  "fig02_notification_interpolator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_notification_interpolator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
