# Empty compiler generated dependencies file for fig02_notification_interpolator.
# This may be replaced when dependencies are built.
