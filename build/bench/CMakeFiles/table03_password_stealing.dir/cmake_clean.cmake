file(REMOVE_RECURSE
  "CMakeFiles/table03_password_stealing.dir/table03_password_stealing.cpp.o"
  "CMakeFiles/table03_password_stealing.dir/table03_password_stealing.cpp.o.d"
  "table03_password_stealing"
  "table03_password_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_password_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
