# Empty dependencies file for table03_password_stealing.
# This may be replaced when dependencies are built.
