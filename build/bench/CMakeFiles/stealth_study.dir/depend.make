# Empty dependencies file for stealth_study.
# This may be replaced when dependencies are built.
