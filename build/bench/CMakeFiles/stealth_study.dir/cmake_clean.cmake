file(REMOVE_RECURSE
  "CMakeFiles/stealth_study.dir/stealth_study.cpp.o"
  "CMakeFiles/stealth_study.dir/stealth_study.cpp.o.d"
  "stealth_study"
  "stealth_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stealth_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
