file(REMOVE_RECURSE
  "CMakeFiles/test_toast_attack.dir/test_toast_attack.cpp.o"
  "CMakeFiles/test_toast_attack.dir/test_toast_attack.cpp.o.d"
  "test_toast_attack"
  "test_toast_attack.pdb"
  "test_toast_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toast_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
