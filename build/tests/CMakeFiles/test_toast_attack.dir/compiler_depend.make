# Empty compiler generated dependencies file for test_toast_attack.
# This may be replaced when dependencies are built.
