# Empty compiler generated dependencies file for test_password_stealer.
# This may be replaced when dependencies are built.
