file(REMOVE_RECURSE
  "CMakeFiles/test_password_stealer.dir/test_password_stealer.cpp.o"
  "CMakeFiles/test_password_stealer.dir/test_password_stealer.cpp.o.d"
  "test_password_stealer"
  "test_password_stealer.pdb"
  "test_password_stealer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_password_stealer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
