file(REMOVE_RECURSE
  "CMakeFiles/test_table2_sweep.dir/test_table2_sweep.cpp.o"
  "CMakeFiles/test_table2_sweep.dir/test_table2_sweep.cpp.o.d"
  "test_table2_sweep"
  "test_table2_sweep.pdb"
  "test_table2_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table2_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
