# Empty compiler generated dependencies file for test_table2_sweep.
# This may be replaced when dependencies are built.
