file(REMOVE_RECURSE
  "CMakeFiles/test_typist.dir/test_typist.cpp.o"
  "CMakeFiles/test_typist.dir/test_typist.cpp.o.d"
  "test_typist"
  "test_typist.pdb"
  "test_typist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_typist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
