# Empty compiler generated dependencies file for test_typist.
# This may be replaced when dependencies are built.
