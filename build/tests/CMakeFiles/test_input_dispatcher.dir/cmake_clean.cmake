file(REMOVE_RECURSE
  "CMakeFiles/test_input_dispatcher.dir/test_input_dispatcher.cpp.o"
  "CMakeFiles/test_input_dispatcher.dir/test_input_dispatcher.cpp.o.d"
  "test_input_dispatcher"
  "test_input_dispatcher.pdb"
  "test_input_dispatcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_input_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
