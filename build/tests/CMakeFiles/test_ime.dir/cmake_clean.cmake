file(REMOVE_RECURSE
  "CMakeFiles/test_ime.dir/test_ime.cpp.o"
  "CMakeFiles/test_ime.dir/test_ime.cpp.o.d"
  "test_ime"
  "test_ime.pdb"
  "test_ime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
