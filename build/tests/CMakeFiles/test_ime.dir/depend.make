# Empty dependencies file for test_ime.
# This may be replaced when dependencies are built.
