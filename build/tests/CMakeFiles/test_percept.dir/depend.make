# Empty dependencies file for test_percept.
# This may be replaced when dependencies are built.
