file(REMOVE_RECURSE
  "CMakeFiles/test_percept.dir/test_percept.cpp.o"
  "CMakeFiles/test_percept.dir/test_percept.cpp.o.d"
  "test_percept"
  "test_percept.pdb"
  "test_percept[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_percept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
