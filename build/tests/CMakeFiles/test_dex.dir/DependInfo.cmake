
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_dex.cpp" "tests/CMakeFiles/test_dex.dir/test_dex.cpp.o" "gcc" "tests/CMakeFiles/test_dex.dir/test_dex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_script.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_percept.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_victim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_input.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_sidechannel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_runner.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
