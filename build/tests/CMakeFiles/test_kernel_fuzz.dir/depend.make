# Empty dependencies file for test_kernel_fuzz.
# This may be replaced when dependencies are built.
