file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_fuzz.dir/test_kernel_fuzz.cpp.o"
  "CMakeFiles/test_kernel_fuzz.dir/test_kernel_fuzz.cpp.o.d"
  "test_kernel_fuzz"
  "test_kernel_fuzz.pdb"
  "test_kernel_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
