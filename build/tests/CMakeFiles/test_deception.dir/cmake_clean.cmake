file(REMOVE_RECURSE
  "CMakeFiles/test_deception.dir/test_deception.cpp.o"
  "CMakeFiles/test_deception.dir/test_deception.cpp.o.d"
  "test_deception"
  "test_deception.pdb"
  "test_deception[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
