# Empty dependencies file for test_deception.
# This may be replaced when dependencies are built.
