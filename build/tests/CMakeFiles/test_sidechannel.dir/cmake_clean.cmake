file(REMOVE_RECURSE
  "CMakeFiles/test_sidechannel.dir/test_sidechannel.cpp.o"
  "CMakeFiles/test_sidechannel.dir/test_sidechannel.cpp.o.d"
  "test_sidechannel"
  "test_sidechannel.pdb"
  "test_sidechannel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
