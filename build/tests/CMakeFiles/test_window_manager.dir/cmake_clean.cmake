file(REMOVE_RECURSE
  "CMakeFiles/test_window_manager.dir/test_window_manager.cpp.o"
  "CMakeFiles/test_window_manager.dir/test_window_manager.cpp.o.d"
  "test_window_manager"
  "test_window_manager.pdb"
  "test_window_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
