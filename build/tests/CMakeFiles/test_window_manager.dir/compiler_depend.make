# Empty compiler generated dependencies file for test_window_manager.
# This may be replaced when dependencies are built.
