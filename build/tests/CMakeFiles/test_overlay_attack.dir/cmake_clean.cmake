file(REMOVE_RECURSE
  "CMakeFiles/test_overlay_attack.dir/test_overlay_attack.cpp.o"
  "CMakeFiles/test_overlay_attack.dir/test_overlay_attack.cpp.o.d"
  "test_overlay_attack"
  "test_overlay_attack.pdb"
  "test_overlay_attack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
