# Empty dependencies file for test_overlay_attack.
# This may be replaced when dependencies are built.
