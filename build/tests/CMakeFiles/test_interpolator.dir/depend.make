# Empty dependencies file for test_interpolator.
# This may be replaced when dependencies are built.
