file(REMOVE_RECURSE
  "CMakeFiles/test_interpolator.dir/test_interpolator.cpp.o"
  "CMakeFiles/test_interpolator.dir/test_interpolator.cpp.o.d"
  "test_interpolator"
  "test_interpolator.pdb"
  "test_interpolator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpolator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
