file(REMOVE_RECURSE
  "CMakeFiles/test_system_server.dir/test_system_server.cpp.o"
  "CMakeFiles/test_system_server.dir/test_system_server.cpp.o.d"
  "test_system_server"
  "test_system_server.pdb"
  "test_system_server[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
