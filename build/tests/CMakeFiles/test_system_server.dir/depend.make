# Empty dependencies file for test_system_server.
# This may be replaced when dependencies are built.
