# Empty compiler generated dependencies file for test_keyboard.
# This may be replaced when dependencies are built.
