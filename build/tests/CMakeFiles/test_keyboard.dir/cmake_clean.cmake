file(REMOVE_RECURSE
  "CMakeFiles/test_keyboard.dir/test_keyboard.cpp.o"
  "CMakeFiles/test_keyboard.dir/test_keyboard.cpp.o.d"
  "test_keyboard"
  "test_keyboard.pdb"
  "test_keyboard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
