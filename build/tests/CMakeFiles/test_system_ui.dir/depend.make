# Empty dependencies file for test_system_ui.
# This may be replaced when dependencies are built.
