file(REMOVE_RECURSE
  "CMakeFiles/test_system_ui.dir/test_system_ui.cpp.o"
  "CMakeFiles/test_system_ui.dir/test_system_ui.cpp.o.d"
  "test_system_ui"
  "test_system_ui.pdb"
  "test_system_ui[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
