# Empty dependencies file for test_notification_manager.
# This may be replaced when dependencies are built.
