file(REMOVE_RECURSE
  "CMakeFiles/test_notification_manager.dir/test_notification_manager.cpp.o"
  "CMakeFiles/test_notification_manager.dir/test_notification_manager.cpp.o.d"
  "test_notification_manager"
  "test_notification_manager.pdb"
  "test_notification_manager[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_notification_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
