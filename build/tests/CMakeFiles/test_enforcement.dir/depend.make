# Empty dependencies file for test_enforcement.
# This may be replaced when dependencies are built.
