file(REMOVE_RECURSE
  "CMakeFiles/test_enforcement.dir/test_enforcement.cpp.o"
  "CMakeFiles/test_enforcement.dir/test_enforcement.cpp.o.d"
  "test_enforcement"
  "test_enforcement.pdb"
  "test_enforcement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
