file(REMOVE_RECURSE
  "CMakeFiles/test_animation.dir/test_animation.cpp.o"
  "CMakeFiles/test_animation.dir/test_animation.cpp.o.d"
  "test_animation"
  "test_animation.pdb"
  "test_animation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_animation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
