# Empty compiler generated dependencies file for test_animation.
# This may be replaced when dependencies are built.
