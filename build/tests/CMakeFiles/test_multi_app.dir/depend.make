# Empty dependencies file for test_multi_app.
# This may be replaced when dependencies are built.
