file(REMOVE_RECURSE
  "CMakeFiles/test_multi_app.dir/test_multi_app.cpp.o"
  "CMakeFiles/test_multi_app.dir/test_multi_app.cpp.o.d"
  "test_multi_app"
  "test_multi_app.pdb"
  "test_multi_app[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
