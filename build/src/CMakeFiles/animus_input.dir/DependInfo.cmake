
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/input/ime.cpp" "src/CMakeFiles/animus_input.dir/input/ime.cpp.o" "gcc" "src/CMakeFiles/animus_input.dir/input/ime.cpp.o.d"
  "/root/repo/src/input/keyboard.cpp" "src/CMakeFiles/animus_input.dir/input/keyboard.cpp.o" "gcc" "src/CMakeFiles/animus_input.dir/input/keyboard.cpp.o.d"
  "/root/repo/src/input/password.cpp" "src/CMakeFiles/animus_input.dir/input/password.cpp.o" "gcc" "src/CMakeFiles/animus_input.dir/input/password.cpp.o.d"
  "/root/repo/src/input/typist.cpp" "src/CMakeFiles/animus_input.dir/input/typist.cpp.o" "gcc" "src/CMakeFiles/animus_input.dir/input/typist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
