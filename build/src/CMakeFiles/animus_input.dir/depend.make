# Empty dependencies file for animus_input.
# This may be replaced when dependencies are built.
