file(REMOVE_RECURSE
  "libanimus_input.a"
)
