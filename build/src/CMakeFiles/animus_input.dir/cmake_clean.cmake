file(REMOVE_RECURSE
  "CMakeFiles/animus_input.dir/input/ime.cpp.o"
  "CMakeFiles/animus_input.dir/input/ime.cpp.o.d"
  "CMakeFiles/animus_input.dir/input/keyboard.cpp.o"
  "CMakeFiles/animus_input.dir/input/keyboard.cpp.o.d"
  "CMakeFiles/animus_input.dir/input/password.cpp.o"
  "CMakeFiles/animus_input.dir/input/password.cpp.o.d"
  "CMakeFiles/animus_input.dir/input/typist.cpp.o"
  "CMakeFiles/animus_input.dir/input/typist.cpp.o.d"
  "libanimus_input.a"
  "libanimus_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
