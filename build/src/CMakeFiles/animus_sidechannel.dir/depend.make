# Empty dependencies file for animus_sidechannel.
# This may be replaced when dependencies are built.
