file(REMOVE_RECURSE
  "libanimus_sidechannel.a"
)
