file(REMOVE_RECURSE
  "CMakeFiles/animus_sidechannel.dir/sidechannel/shared_mem.cpp.o"
  "CMakeFiles/animus_sidechannel.dir/sidechannel/shared_mem.cpp.o.d"
  "libanimus_sidechannel.a"
  "libanimus_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
