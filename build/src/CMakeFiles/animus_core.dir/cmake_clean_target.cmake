file(REMOVE_RECURSE
  "libanimus_core.a"
)
