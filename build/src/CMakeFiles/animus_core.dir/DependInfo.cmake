
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack_analysis.cpp" "src/CMakeFiles/animus_core.dir/core/attack_analysis.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/attack_analysis.cpp.o.d"
  "/root/repo/src/core/deception.cpp" "src/CMakeFiles/animus_core.dir/core/deception.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/deception.cpp.o.d"
  "/root/repo/src/core/overlay_attack.cpp" "src/CMakeFiles/animus_core.dir/core/overlay_attack.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/overlay_attack.cpp.o.d"
  "/root/repo/src/core/password_stealer.cpp" "src/CMakeFiles/animus_core.dir/core/password_stealer.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/password_stealer.cpp.o.d"
  "/root/repo/src/core/payment_hijack.cpp" "src/CMakeFiles/animus_core.dir/core/payment_hijack.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/payment_hijack.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/animus_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/toast_attack.cpp" "src/CMakeFiles/animus_core.dir/core/toast_attack.cpp.o" "gcc" "src/CMakeFiles/animus_core.dir/core/toast_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_input.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_victim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_percept.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_sidechannel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
