# Empty dependencies file for animus_core.
# This may be replaced when dependencies are built.
