file(REMOVE_RECURSE
  "CMakeFiles/animus_core.dir/core/attack_analysis.cpp.o"
  "CMakeFiles/animus_core.dir/core/attack_analysis.cpp.o.d"
  "CMakeFiles/animus_core.dir/core/deception.cpp.o"
  "CMakeFiles/animus_core.dir/core/deception.cpp.o.d"
  "CMakeFiles/animus_core.dir/core/overlay_attack.cpp.o"
  "CMakeFiles/animus_core.dir/core/overlay_attack.cpp.o.d"
  "CMakeFiles/animus_core.dir/core/password_stealer.cpp.o"
  "CMakeFiles/animus_core.dir/core/password_stealer.cpp.o.d"
  "CMakeFiles/animus_core.dir/core/payment_hijack.cpp.o"
  "CMakeFiles/animus_core.dir/core/payment_hijack.cpp.o.d"
  "CMakeFiles/animus_core.dir/core/report.cpp.o"
  "CMakeFiles/animus_core.dir/core/report.cpp.o.d"
  "CMakeFiles/animus_core.dir/core/toast_attack.cpp.o"
  "CMakeFiles/animus_core.dir/core/toast_attack.cpp.o.d"
  "libanimus_core.a"
  "libanimus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
