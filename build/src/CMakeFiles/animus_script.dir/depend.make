# Empty dependencies file for animus_script.
# This may be replaced when dependencies are built.
