file(REMOVE_RECURSE
  "CMakeFiles/animus_script.dir/script/scenario.cpp.o"
  "CMakeFiles/animus_script.dir/script/scenario.cpp.o.d"
  "libanimus_script.a"
  "libanimus_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
