file(REMOVE_RECURSE
  "libanimus_script.a"
)
