# Empty dependencies file for animus_runner.
# This may be replaced when dependencies are built.
