file(REMOVE_RECURSE
  "CMakeFiles/animus_runner.dir/runner/bench_cli.cpp.o"
  "CMakeFiles/animus_runner.dir/runner/bench_cli.cpp.o.d"
  "CMakeFiles/animus_runner.dir/runner/runner.cpp.o"
  "CMakeFiles/animus_runner.dir/runner/runner.cpp.o.d"
  "libanimus_runner.a"
  "libanimus_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
