
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runner/bench_cli.cpp" "src/CMakeFiles/animus_runner.dir/runner/bench_cli.cpp.o" "gcc" "src/CMakeFiles/animus_runner.dir/runner/bench_cli.cpp.o.d"
  "/root/repo/src/runner/runner.cpp" "src/CMakeFiles/animus_runner.dir/runner/runner.cpp.o" "gcc" "src/CMakeFiles/animus_runner.dir/runner/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
