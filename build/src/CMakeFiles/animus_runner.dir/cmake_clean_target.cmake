file(REMOVE_RECURSE
  "libanimus_runner.a"
)
