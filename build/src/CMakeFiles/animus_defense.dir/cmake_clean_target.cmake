file(REMOVE_RECURSE
  "libanimus_defense.a"
)
