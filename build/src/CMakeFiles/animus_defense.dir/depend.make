# Empty dependencies file for animus_defense.
# This may be replaced when dependencies are built.
