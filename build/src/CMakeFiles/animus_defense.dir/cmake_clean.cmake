file(REMOVE_RECURSE
  "CMakeFiles/animus_defense.dir/defense/enforcement.cpp.o"
  "CMakeFiles/animus_defense.dir/defense/enforcement.cpp.o.d"
  "CMakeFiles/animus_defense.dir/defense/ipc_defense.cpp.o"
  "CMakeFiles/animus_defense.dir/defense/ipc_defense.cpp.o.d"
  "CMakeFiles/animus_defense.dir/defense/notification_defense.cpp.o"
  "CMakeFiles/animus_defense.dir/defense/notification_defense.cpp.o.d"
  "CMakeFiles/animus_defense.dir/defense/toast_defense.cpp.o"
  "CMakeFiles/animus_defense.dir/defense/toast_defense.cpp.o.d"
  "libanimus_defense.a"
  "libanimus_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
