file(REMOVE_RECURSE
  "libanimus_metrics.a"
)
