file(REMOVE_RECURSE
  "CMakeFiles/animus_metrics.dir/metrics/histogram.cpp.o"
  "CMakeFiles/animus_metrics.dir/metrics/histogram.cpp.o.d"
  "CMakeFiles/animus_metrics.dir/metrics/stats.cpp.o"
  "CMakeFiles/animus_metrics.dir/metrics/stats.cpp.o.d"
  "CMakeFiles/animus_metrics.dir/metrics/table.cpp.o"
  "CMakeFiles/animus_metrics.dir/metrics/table.cpp.o.d"
  "libanimus_metrics.a"
  "libanimus_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
