# Empty compiler generated dependencies file for animus_metrics.
# This may be replaced when dependencies are built.
