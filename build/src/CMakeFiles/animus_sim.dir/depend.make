# Empty dependencies file for animus_sim.
# This may be replaced when dependencies are built.
