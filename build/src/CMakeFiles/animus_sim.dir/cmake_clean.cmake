file(REMOVE_RECURSE
  "CMakeFiles/animus_sim.dir/sim/actor.cpp.o"
  "CMakeFiles/animus_sim.dir/sim/actor.cpp.o.d"
  "CMakeFiles/animus_sim.dir/sim/chrome_trace.cpp.o"
  "CMakeFiles/animus_sim.dir/sim/chrome_trace.cpp.o.d"
  "CMakeFiles/animus_sim.dir/sim/event_loop.cpp.o"
  "CMakeFiles/animus_sim.dir/sim/event_loop.cpp.o.d"
  "CMakeFiles/animus_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/animus_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/animus_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/animus_sim.dir/sim/trace.cpp.o.d"
  "libanimus_sim.a"
  "libanimus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
