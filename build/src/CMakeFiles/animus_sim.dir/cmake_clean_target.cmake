file(REMOVE_RECURSE
  "libanimus_sim.a"
)
