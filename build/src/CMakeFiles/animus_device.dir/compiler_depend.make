# Empty compiler generated dependencies file for animus_device.
# This may be replaced when dependencies are built.
