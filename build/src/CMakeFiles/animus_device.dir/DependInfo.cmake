
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/android_version.cpp" "src/CMakeFiles/animus_device.dir/device/android_version.cpp.o" "gcc" "src/CMakeFiles/animus_device.dir/device/android_version.cpp.o.d"
  "/root/repo/src/device/profile.cpp" "src/CMakeFiles/animus_device.dir/device/profile.cpp.o" "gcc" "src/CMakeFiles/animus_device.dir/device/profile.cpp.o.d"
  "/root/repo/src/device/registry.cpp" "src/CMakeFiles/animus_device.dir/device/registry.cpp.o" "gcc" "src/CMakeFiles/animus_device.dir/device/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ipc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
