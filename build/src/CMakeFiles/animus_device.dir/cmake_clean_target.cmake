file(REMOVE_RECURSE
  "libanimus_device.a"
)
