file(REMOVE_RECURSE
  "CMakeFiles/animus_device.dir/device/android_version.cpp.o"
  "CMakeFiles/animus_device.dir/device/android_version.cpp.o.d"
  "CMakeFiles/animus_device.dir/device/profile.cpp.o"
  "CMakeFiles/animus_device.dir/device/profile.cpp.o.d"
  "CMakeFiles/animus_device.dir/device/registry.cpp.o"
  "CMakeFiles/animus_device.dir/device/registry.cpp.o.d"
  "libanimus_device.a"
  "libanimus_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
