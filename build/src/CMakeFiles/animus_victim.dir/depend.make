# Empty dependencies file for animus_victim.
# This may be replaced when dependencies are built.
