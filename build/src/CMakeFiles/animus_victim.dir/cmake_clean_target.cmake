file(REMOVE_RECURSE
  "libanimus_victim.a"
)
