file(REMOVE_RECURSE
  "CMakeFiles/animus_victim.dir/victim/accessibility.cpp.o"
  "CMakeFiles/animus_victim.dir/victim/accessibility.cpp.o.d"
  "CMakeFiles/animus_victim.dir/victim/catalog.cpp.o"
  "CMakeFiles/animus_victim.dir/victim/catalog.cpp.o.d"
  "CMakeFiles/animus_victim.dir/victim/payment_app.cpp.o"
  "CMakeFiles/animus_victim.dir/victim/payment_app.cpp.o.d"
  "CMakeFiles/animus_victim.dir/victim/victim_app.cpp.o"
  "CMakeFiles/animus_victim.dir/victim/victim_app.cpp.o.d"
  "libanimus_victim.a"
  "libanimus_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
