file(REMOVE_RECURSE
  "CMakeFiles/animus_ui.dir/ui/animation.cpp.o"
  "CMakeFiles/animus_ui.dir/ui/animation.cpp.o.d"
  "CMakeFiles/animus_ui.dir/ui/interpolator.cpp.o"
  "CMakeFiles/animus_ui.dir/ui/interpolator.cpp.o.d"
  "CMakeFiles/animus_ui.dir/ui/window.cpp.o"
  "CMakeFiles/animus_ui.dir/ui/window.cpp.o.d"
  "libanimus_ui.a"
  "libanimus_ui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_ui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
