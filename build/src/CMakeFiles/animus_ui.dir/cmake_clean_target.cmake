file(REMOVE_RECURSE
  "libanimus_ui.a"
)
