
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ui/animation.cpp" "src/CMakeFiles/animus_ui.dir/ui/animation.cpp.o" "gcc" "src/CMakeFiles/animus_ui.dir/ui/animation.cpp.o.d"
  "/root/repo/src/ui/interpolator.cpp" "src/CMakeFiles/animus_ui.dir/ui/interpolator.cpp.o" "gcc" "src/CMakeFiles/animus_ui.dir/ui/interpolator.cpp.o.d"
  "/root/repo/src/ui/window.cpp" "src/CMakeFiles/animus_ui.dir/ui/window.cpp.o" "gcc" "src/CMakeFiles/animus_ui.dir/ui/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
