# Empty dependencies file for animus_ui.
# This may be replaced when dependencies are built.
