
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/apk.cpp" "src/CMakeFiles/animus_analysis.dir/analysis/apk.cpp.o" "gcc" "src/CMakeFiles/animus_analysis.dir/analysis/apk.cpp.o.d"
  "/root/repo/src/analysis/corpus.cpp" "src/CMakeFiles/animus_analysis.dir/analysis/corpus.cpp.o" "gcc" "src/CMakeFiles/animus_analysis.dir/analysis/corpus.cpp.o.d"
  "/root/repo/src/analysis/dex.cpp" "src/CMakeFiles/animus_analysis.dir/analysis/dex.cpp.o" "gcc" "src/CMakeFiles/animus_analysis.dir/analysis/dex.cpp.o.d"
  "/root/repo/src/analysis/manifest.cpp" "src/CMakeFiles/animus_analysis.dir/analysis/manifest.cpp.o" "gcc" "src/CMakeFiles/animus_analysis.dir/analysis/manifest.cpp.o.d"
  "/root/repo/src/analysis/scanner.cpp" "src/CMakeFiles/animus_analysis.dir/analysis/scanner.cpp.o" "gcc" "src/CMakeFiles/animus_analysis.dir/analysis/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
