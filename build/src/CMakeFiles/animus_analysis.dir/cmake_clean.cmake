file(REMOVE_RECURSE
  "CMakeFiles/animus_analysis.dir/analysis/apk.cpp.o"
  "CMakeFiles/animus_analysis.dir/analysis/apk.cpp.o.d"
  "CMakeFiles/animus_analysis.dir/analysis/corpus.cpp.o"
  "CMakeFiles/animus_analysis.dir/analysis/corpus.cpp.o.d"
  "CMakeFiles/animus_analysis.dir/analysis/dex.cpp.o"
  "CMakeFiles/animus_analysis.dir/analysis/dex.cpp.o.d"
  "CMakeFiles/animus_analysis.dir/analysis/manifest.cpp.o"
  "CMakeFiles/animus_analysis.dir/analysis/manifest.cpp.o.d"
  "CMakeFiles/animus_analysis.dir/analysis/scanner.cpp.o"
  "CMakeFiles/animus_analysis.dir/analysis/scanner.cpp.o.d"
  "libanimus_analysis.a"
  "libanimus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
