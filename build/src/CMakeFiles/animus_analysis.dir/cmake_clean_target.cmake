file(REMOVE_RECURSE
  "libanimus_analysis.a"
)
