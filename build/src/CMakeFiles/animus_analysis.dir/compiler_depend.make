# Empty compiler generated dependencies file for animus_analysis.
# This may be replaced when dependencies are built.
