file(REMOVE_RECURSE
  "CMakeFiles/animus_percept.dir/percept/flicker.cpp.o"
  "CMakeFiles/animus_percept.dir/percept/flicker.cpp.o.d"
  "CMakeFiles/animus_percept.dir/percept/outcomes.cpp.o"
  "CMakeFiles/animus_percept.dir/percept/outcomes.cpp.o.d"
  "CMakeFiles/animus_percept.dir/percept/survey.cpp.o"
  "CMakeFiles/animus_percept.dir/percept/survey.cpp.o.d"
  "libanimus_percept.a"
  "libanimus_percept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_percept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
