# Empty compiler generated dependencies file for animus_percept.
# This may be replaced when dependencies are built.
