file(REMOVE_RECURSE
  "libanimus_percept.a"
)
