# Empty compiler generated dependencies file for animus_ipc.
# This may be replaced when dependencies are built.
