file(REMOVE_RECURSE
  "CMakeFiles/animus_ipc.dir/ipc/binder.cpp.o"
  "CMakeFiles/animus_ipc.dir/ipc/binder.cpp.o.d"
  "CMakeFiles/animus_ipc.dir/ipc/transaction_log.cpp.o"
  "CMakeFiles/animus_ipc.dir/ipc/transaction_log.cpp.o.d"
  "libanimus_ipc.a"
  "libanimus_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
