file(REMOVE_RECURSE
  "libanimus_ipc.a"
)
