# Empty dependencies file for animus_server.
# This may be replaced when dependencies are built.
