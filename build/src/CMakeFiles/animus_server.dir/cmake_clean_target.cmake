file(REMOVE_RECURSE
  "libanimus_server.a"
)
