file(REMOVE_RECURSE
  "CMakeFiles/animus_server.dir/server/input_dispatcher.cpp.o"
  "CMakeFiles/animus_server.dir/server/input_dispatcher.cpp.o.d"
  "CMakeFiles/animus_server.dir/server/notification_manager.cpp.o"
  "CMakeFiles/animus_server.dir/server/notification_manager.cpp.o.d"
  "CMakeFiles/animus_server.dir/server/system_server.cpp.o"
  "CMakeFiles/animus_server.dir/server/system_server.cpp.o.d"
  "CMakeFiles/animus_server.dir/server/system_ui.cpp.o"
  "CMakeFiles/animus_server.dir/server/system_ui.cpp.o.d"
  "CMakeFiles/animus_server.dir/server/window_manager.cpp.o"
  "CMakeFiles/animus_server.dir/server/window_manager.cpp.o.d"
  "CMakeFiles/animus_server.dir/server/world.cpp.o"
  "CMakeFiles/animus_server.dir/server/world.cpp.o.d"
  "libanimus_server.a"
  "libanimus_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animus_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
