
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/input_dispatcher.cpp" "src/CMakeFiles/animus_server.dir/server/input_dispatcher.cpp.o" "gcc" "src/CMakeFiles/animus_server.dir/server/input_dispatcher.cpp.o.d"
  "/root/repo/src/server/notification_manager.cpp" "src/CMakeFiles/animus_server.dir/server/notification_manager.cpp.o" "gcc" "src/CMakeFiles/animus_server.dir/server/notification_manager.cpp.o.d"
  "/root/repo/src/server/system_server.cpp" "src/CMakeFiles/animus_server.dir/server/system_server.cpp.o" "gcc" "src/CMakeFiles/animus_server.dir/server/system_server.cpp.o.d"
  "/root/repo/src/server/system_ui.cpp" "src/CMakeFiles/animus_server.dir/server/system_ui.cpp.o" "gcc" "src/CMakeFiles/animus_server.dir/server/system_ui.cpp.o.d"
  "/root/repo/src/server/window_manager.cpp" "src/CMakeFiles/animus_server.dir/server/window_manager.cpp.o" "gcc" "src/CMakeFiles/animus_server.dir/server/window_manager.cpp.o.d"
  "/root/repo/src/server/world.cpp" "src/CMakeFiles/animus_server.dir/server/world.cpp.o" "gcc" "src/CMakeFiles/animus_server.dir/server/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/animus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ui.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/animus_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
