# Empty compiler generated dependencies file for payment_hijack.
# This may be replaced when dependencies are built.
