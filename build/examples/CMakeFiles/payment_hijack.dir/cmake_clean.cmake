file(REMOVE_RECURSE
  "CMakeFiles/payment_hijack.dir/payment_hijack.cpp.o"
  "CMakeFiles/payment_hijack.dir/payment_hijack.cpp.o.d"
  "payment_hijack"
  "payment_hijack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payment_hijack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
