file(REMOVE_RECURSE
  "CMakeFiles/toast_banner.dir/toast_banner.cpp.o"
  "CMakeFiles/toast_banner.dir/toast_banner.cpp.o.d"
  "toast_banner"
  "toast_banner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toast_banner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
