# Empty dependencies file for toast_banner.
# This may be replaced when dependencies are built.
