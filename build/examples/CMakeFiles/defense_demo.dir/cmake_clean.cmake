file(REMOVE_RECURSE
  "CMakeFiles/defense_demo.dir/defense_demo.cpp.o"
  "CMakeFiles/defense_demo.dir/defense_demo.cpp.o.d"
  "defense_demo"
  "defense_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
