# Empty compiler generated dependencies file for device_survey.
# This may be replaced when dependencies are built.
