# Empty compiler generated dependencies file for password_heist.
# This may be replaced when dependencies are built.
