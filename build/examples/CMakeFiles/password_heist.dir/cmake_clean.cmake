file(REMOVE_RECURSE
  "CMakeFiles/password_heist.dir/password_heist.cpp.o"
  "CMakeFiles/password_heist.dir/password_heist.cpp.o.d"
  "password_heist"
  "password_heist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/password_heist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
