// Scenario runner: execute ANIMUS scenario scripts from a file, or run
// the built-in demo when no file is given.
//
//   ./build/examples/scenario_runner              # built-in demo
//   ./build/examples/scenario_runner my.scenario  # run a script file
//
// The DSL (see src/script/scenario.hpp): device/seed/grant-overlay/
// defense/window/attack/tap/run/stop-attacks/expect.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "script/scenario.hpp"

namespace {

constexpr const char* kDemo = R"(# Demo: draw-and-destroy overlay attack vs the defense daemon.
device mi8 9
seed 1

# --- attacker setup ---
grant-overlay 10666
window activity uid=10100 bounds=0,0,1080,2280
attack overlay d=190 bounds=0,0,1080,2280

# --- the user taps around; the attack intercepts ---
tap 540 1100 at=1000
tap 300  900 at=1600
tap 700 1400 at=2300
run 4000
expect alert L1
expect captures >= 3

# --- now the same attack with the enforcement daemon watching ---
defense daemon
run 8000
expect flagged 10666 true
expect overlays 10666 == 0
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text = kDemo;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::puts("(no script given — running the built-in demo)\n");
  }

  const auto result = animus::script::run_scenario(text);
  std::fputs(result.log.c_str(), stdout);
  if (result.ok) {
    std::printf("\nscenario OK — %d expectation(s) checked\n", result.expects_checked);
    return 0;
  }
  std::printf("\nscenario FAILED at %zu:%zu: %s\n", result.error->line, result.error->column,
              result.error->message.c_str());
  return 1;
}
