// Device survey: what an attacker's reconnaissance pass looks like.
//
// For every handset in the Table I/II fleet, derive the largest stealthy
// attacking window (full simulation), the expected mistouch gap, and the
// predicted per-touch capture probability at that window — the numbers a
// real malicious app would precompute per model before attacking
// ("the malicious app can collect the phone information before launching
// the attack", Section VI-B).
//
// Build & run:   ./build/examples/device_survey
#include <cstdio>

#include "core/attack_analysis.hpp"
#include "core/password_stealer.hpp"
#include "device/registry.hpp"
#include "metrics/table.hpp"

int main() {
  using namespace animus;
  std::puts("Attacker reconnaissance over the 30-device fleet:\n");
  metrics::Table table({"Model", "Android", "max stealthy D (ms)", "attack D (ms)",
                        "E[Tmis] (ms)", "per-touch capture", "len-8 success est."});
  for (const auto& dev : device::all_devices()) {
    const int bound = core::run_d_bound_trial({.profile = dev}).d_upper_ms;
    const double attack_d = core::kBoundSafetyFactor * bound;
    // ACTION_DOWN harvesting: contact duration does not matter.
    const double per_touch = core::predicted_capture_rate(dev, attack_d, 0.0);
    double est = 1.0;
    for (int i = 0; i < 11; ++i) est *= per_touch;  // ~11 touches for length 8
    table.add_row({dev.model, std::string(device::to_string(dev.version)),
                   metrics::fmt("%d", bound), metrics::fmt("%.0f", attack_d),
                   metrics::fmt("%.1f", dev.expected_tmis_ms()), metrics::percent(per_touch),
                   metrics::percent(est)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nDevices with small D bounds (Vivo x21iA/v1813A, Samsung s8) are the");
  std::puts("attacker's hardest targets: the alert animation must be reset so often that");
  std::puts("mistouch gaps eat into the capture rate.");
  return 0;
}
