// Payment hijack scenario (Section I names it as a composition of the
// two draw-and-destroy primitives): the user believes they are approving
// a small coffee payment; the attacker covers the payee/amount label
// with a draw-and-destroy toast, steals the PIN through transparent
// draw-and-destroy overlays over the pad, replays it, and the user's own
// confirm tap executes the attacker's transaction.
//
// Build & run:   ./build/examples/payment_hijack
#include <cstdio>

#include "core/payment_hijack.hpp"
#include "device/registry.hpp"
#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "victim/payment_app.hpp"

int main() {
  using namespace animus;
  server::World world{{.profile = device::reference_device(), .seed = 17}};
  world.server().grant_overlay_permission(server::kMalwareUid);
  std::printf("Device: %s\n\n", world.profile().display_name().c_str());

  victim::PaymentApp pay{world, "PayFast"};
  pay.set_expected_pin("4711");

  core::PaymentHijack::Config cfg;
  cfg.displayed_payee = "Coffee Corner";
  cfg.displayed_amount_cents = 450;
  core::PaymentHijack hijack{world, pay, cfg};
  hijack.arm();

  // The malware initiates its own transfer; the confirmation screen
  // opens and the hijack triggers off the accessibility event.
  pay.open_payment_screen({"Mallory Ltd", 99900});
  std::printf("Real pending transaction : %s, %.2f EUR\n", pay.request().payee.c_str(),
              pay.request().amount_cents / 100.0);
  std::printf("What the cover displays  : %s, %.2f EUR\n\n", cfg.displayed_payee.c_str(),
              cfg.displayed_amount_cents / 100.0);

  // The user reads "Coffee Corner 4.50", types their PIN, confirms.
  const std::string pin = "4711";
  for (std::size_t i = 0; i < pin.size(); ++i) {
    world.loop().schedule_at(sim::seconds(2) + sim::ms(450 * static_cast<long>(i)),
                             [&world, &pay, &pin, i] {
                               world.input().inject_tap(pay.digit_center(pin[i] - '0'));
                             });
  }
  world.loop().schedule_at(sim::seconds(5), [&world, &pay] {
    world.input().inject_tap(pay.confirm_bounds().center());
  });
  world.run_until(sim::seconds(6));

  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid,
                                             "attack:fake_amount", sim::seconds(1),
                                             sim::seconds(6));
  const auto alert = world.system_ui().snapshot(server::kMalwareUid);
  std::printf("Stolen PIN          : %s\n", hijack.result().stolen_pin.c_str());
  std::printf("Transaction executed: %s -> %s, %.2f EUR\n",
              pay.executed() ? "YES" : "no", pay.request().payee.c_str(),
              pay.request().amount_cents / 100.0);
  std::printf("Cover flicker       : %s (min alpha %.2f)\n",
              flicker.noticeable ? "NOTICEABLE" : "imperceptible", flicker.min_alpha);
  std::printf("Warning alert       : %s\n",
              std::string(percept::to_string(percept::classify(alert))).c_str());
  hijack.stop();
  std::puts("\nThe user authorized 999.00 EUR to Mallory Ltd while reading a 4.50 EUR");
  std::puts("coffee receipt; their PIN is in the attacker's hands as a bonus.");
  return 0;
}
