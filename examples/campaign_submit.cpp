// campaign_submit — submission client for campaignd.
//
// Submits one campaign, optionally waits for it to finish and prints
// the result CSV on stdout — which is byte-identical to running the
// same bench directly with --csv (the daemon and the CLI share one
// campaign definition):
//
//   campaign_submit --port 8791 --bench fig07 --seed 42 --wait > fig07.csv
//   campaign_submit --port 8791 --list          # dump GET /campaigns
//
// The client speaks just enough HTTP/1.1 over a loopback socket for
// the daemon's JSON surface; status goes to stderr, payload to stdout.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#if !defined(_WIN32)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "service/json_util.hpp"

namespace {

#if !defined(_WIN32)

/// One HTTP/1.1 exchange against 127.0.0.1:`port`; returns the response
/// body, or nullopt on any socket failure.
std::optional<std::string> http_exchange(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::send(fd, request.data() + off, request.size() - off, 0);
    if (n < 0) {
      ::close(fd);
      return std::nullopt;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (ssize_t n = ::recv(fd, buf, sizeof(buf), 0); n > 0; n = ::recv(fd, buf, sizeof(buf), 0)) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto body_at = raw.find("\r\n\r\n");
  if (body_at == std::string::npos) return std::nullopt;
  return raw.substr(body_at + 4);
}

std::optional<std::string> http_get(int port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::optional<std::string> http_post(int port, const std::string& path,
                                     const std::string& body) {
  return http_exchange(port, "POST " + path + " HTTP/1.1\r\nHost: localhost\r\n" +
                                 "Content-Length: " + std::to_string(body.size()) +
                                 "\r\n\r\n" + body);
}

#endif  // !_WIN32

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s [--port N] (--bench NAME | --scenario NAME) [--seed S] [--jobs N]\n"
               "          [--backend NAME] [--shards N] [--batch N|auto] [--tier NAME]\n"
               "          [--trace] [--wait]\n"
               "       %s [--port N] --list\n"
               "       %s [--port N] --list-scenarios\n"
               "  --scenario        sweep a registered attack scenario's canonical\n"
               "                    campaign grid (names from --list-scenarios)\n"
               "  --batch  trials per process-backend command frame (auto = size\n"
               "           frames from measured trial cost; results are identical\n"
               "           at any value)\n"
               "  --trace  capture the representative trial's Chrome trace\n"
               "           (fetch it later via GET /campaigns/<id>/trace)\n"
               "  --wait   poll until the campaign finishes, print its CSV on stdout\n"
               "  --list   dump GET /campaigns and exit\n"
               "  --list-scenarios  dump GET /scenarios (name, description,\n"
               "                    analytic-eligible flag) and exit\n",
               argv0, argv0, argv0);
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
#if defined(_WIN32)
  (void)argc;
  (void)argv;
  std::fprintf(stderr, "campaign_submit: POSIX sockets required\n");
  return 2;
#else
  using animus::service::json_field;
  int port = 8791;
  std::string bench, scenario, backend, tier;
  unsigned long long seed = 0;
  int jobs = 0, shards = 0;
  std::string batch;  // "" = omit, "auto" or a number otherwise
  bool wait = false, list = false, list_scenarios = false, trace = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--port") {
      port = std::atoi(value());
    } else if (arg == "--bench") {
      bench = value();
    } else if (arg == "--scenario") {
      scenario = value();
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 0);
    } else if (arg == "--jobs") {
      jobs = std::atoi(value());
    } else if (arg == "--backend") {
      backend = value();
    } else if (arg == "--shards") {
      shards = std::atoi(value());
    } else if (arg == "--batch") {
      batch = value();
    } else if (arg == "--tier") {
      tier = value();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--wait") {
      wait = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--list-scenarios") {
      list_scenarios = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], argv[i]);
      usage(argv[0], 2);
    }
  }

  if (list || list_scenarios) {
    const auto body = http_get(port, list ? "/campaigns" : "/scenarios");
    if (!body) {
      std::fprintf(stderr, "%s: cannot reach campaignd on port %d\n", argv[0], port);
      return 2;
    }
    std::fputs(body->c_str(), stdout);
    return 0;
  }
  if (bench.empty() == scenario.empty()) usage(argv[0], 2);  // exactly one of the two

  // A scenario submission ships the "scenario" field; the daemon resolves
  // it to the "scenario:<name>" bench (and 400s unknown names with the
  // list of valid ones).
  std::string submission = (scenario.empty() ? "{\"bench\":\"" + bench : "{\"scenario\":\"" + scenario) +
                           "\",\"seed\":" + std::to_string(seed) +
                           ",\"jobs\":" + std::to_string(jobs);
  if (!backend.empty()) submission += ",\"backend\":\"" + backend + "\"";
  if (shards > 0) submission += ",\"shards\":" + std::to_string(shards);
  if (!batch.empty()) {
    // "auto" ships as a string; anything else as a number the daemon
    // validates against [0, kMaxBatch].
    submission += batch == "auto" ? ",\"batch\":\"auto\""
                                  : ",\"batch\":" + std::to_string(std::atoi(batch.c_str()));
  }
  if (!tier.empty()) submission += ",\"tier\":\"" + tier + "\"";
  if (trace) submission += ",\"trace\":true";
  submission += "}";

  const auto reply = http_post(port, "/campaigns", submission);
  if (!reply) {
    std::fprintf(stderr, "%s: cannot reach campaignd on port %d\n", argv[0], port);
    return 2;
  }
  if (const auto error = json_field(*reply, "error")) {
    std::fprintf(stderr, "%s: submission rejected: %s\n", argv[0], error->c_str());
    return 2;
  }
  const auto id = json_field(*reply, "id");
  if (!id) {
    std::fprintf(stderr, "%s: unexpected reply: %s\n", argv[0], reply->c_str());
    return 2;
  }
  std::fprintf(stderr, "[campaign_submit] submitted %s as %s\n",
               (scenario.empty() ? bench : "scenario:" + scenario).c_str(), id->c_str());
  if (!wait) {
    std::printf("%s\n", id->c_str());
    return 0;
  }

  // Poll the result store until the campaign leaves the queue.
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto record = http_get(port, "/campaigns/" + *id);
    if (!record) {
      std::fprintf(stderr, "%s: lost connection to campaignd\n", argv[0]);
      return 2;
    }
    const std::string status = json_field(*record, "status").value_or("");
    if (status == "queued" || status == "running") continue;
    if (status == "done") {
      std::fputs(json_field(*record, "csv").value_or("").c_str(), stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: campaign %s finished with status '%s'\n", argv[0], id->c_str(),
                 status.c_str());
    return 1;
  }
#endif
}
