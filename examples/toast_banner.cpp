// Draw-and-destroy toast attack demo (Section IV): keep a customized
// toast ("fake keyboard", here a phishing banner) on screen far beyond
// the 3.5 s Android allows, with no perceptible flicker, then swap its
// content mid-flight via Toast.cancel().
//
// Build & run:   ./build/examples/toast_banner
#include <cstdio>

#include "core/toast_attack.hpp"
#include "device/registry.hpp"
#include "percept/flicker.hpp"

int main() {
  using namespace animus;
  server::World world{{.profile = device::reference_device(), .seed = 99}};
  std::printf("Device: %s — no permissions requested, no alert triggered.\n\n",
              world.profile().display_name().c_str());

  core::ToastAttackConfig config;
  config.toast_duration = server::kToastLong;  // 3.5 s per toast (Section IV-D)
  config.content = "fake_keyboard:lower";
  core::ToastAttack attack{world, config};
  attack.start();

  // Swap the displayed board twice mid-run (what a fake keyboard does on
  // shift / ?123 presses).
  world.loop().schedule_at(sim::seconds(12), [&attack] {
    attack.switch_content("fake_keyboard:upper");
  });
  world.loop().schedule_at(sim::seconds(20), [&attack] {
    attack.switch_content("fake_keyboard:symbols");
  });

  const sim::SimTime horizon = sim::seconds(30);
  world.run_until(horizon);

  // Coverage + opacity timeline, sampled every second.
  std::puts("t(s)  toasts-alive  composited-alpha  queue-tokens");
  for (int t = 1; t <= 30; ++t) {
    const auto at = sim::seconds(t);
    int alive = 0;
    for (const auto& rec : world.wms().history()) {
      alive += rec.window.type == ui::WindowType::kToast && rec.alive_at(at);
    }
    std::printf("%3d   %8d      %10.2f      %6d\n", t, alive,
                world.wms().combined_alpha_at(server::kMalwareUid, "fake_keyboard", at),
                world.nms().queued_tokens(server::kMalwareUid));
  }

  const auto flicker = percept::scan_flicker(world.wms(), server::kMalwareUid,
                                             "fake_keyboard", sim::ms(1500), horizon);
  std::printf("\nToasts shown: %d over 30 s (one visible at a time, tokens <= %d/app)\n",
              attack.stats().shown, world.nms().max_tokens_per_app());
  std::printf("Content switches: %d (Toast.cancel + fresh token)\n",
              attack.stats().content_switches);
  std::printf("Flicker: %s — min composited alpha %.2f, longest dip %.0f ms\n",
              flicker.noticeable ? "NOTICEABLE" : "imperceptible", flicker.min_alpha,
              sim::to_ms(flicker.longest_dip));
  std::puts("\nThe slow y = x^2 fade-out keeps each dying toast nearly opaque while its");
  std::puts("successor fades in fast (y = 1-(1-x)^2); stacked, the surface never dips.");
  attack.stop();
  return 0;
}
