// End-to-end password-stealing scenario (Section V), narrated.
//
// A user logs into the simulated Bank of America app. The malicious app
// waits for the password field to take focus (accessibility events),
// then raises a fake keyboard out of draw-and-destroy toasts and stacks
// transparent draw-and-destroy overlays over it. Every keystroke's
// coordinates are intercepted and decoded by Euclidean nearest-key
// matching, tracking shift/symbol sub-keyboard switches; the decoded
// password is finally written back into the real widget.
//
// Build & run:   ./build/examples/password_heist
#include <cstdio>

#include "core/password_stealer.hpp"
#include "device/registry.hpp"
#include "input/typist.hpp"
#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "victim/catalog.hpp"

int main() {
  using namespace animus;
  const char* kPassword = "tk&%48GH";  // the password from the paper's video demo

  server::World world{{.profile = device::reference_device(), .seed = 2022}};
  std::printf("Device: %s\n", world.profile().display_name().c_str());
  world.server().grant_overlay_permission(server::kMalwareUid);

  victim::VictimApp bofa{world, victim::find_app("Bank of America")->spec};
  bofa.open_login_screen();

  core::PasswordStealer stealer{world, bofa, {}};
  stealer.arm();
  std::printf("Malware armed; attacking window D = %.0f ms (from the device profile)\n\n",
              sim::to_ms(stealer.attacking_window()));

  // The user: focus username, type it, focus password, type the password.
  input::TypistProfile user;
  user.jitter_frac = 0.05;
  user.misspell_rate = 0.0;  // a careful typist, to showcase an exact steal
  input::Typist typist{user, world.fork_rng("user")};
  const input::Keyboard keyboard{bofa.keyboard_bounds()};

  world.loop().schedule_at(sim::ms(300), [&] {
    world.input().inject_tap(bofa.username_bounds().center());
  });
  auto touches = typist.plan(keyboard, "alice", sim::ms(800));
  const sim::SimTime username_done = touches.back().at;
  world.loop().schedule_at(username_done + sim::ms(400), [&] {
    world.input().inject_tap(bofa.password_bounds().center());
  });
  auto pw_touches = typist.plan(keyboard, kPassword, username_done + sim::ms(1400));
  touches.insert(touches.end(), pw_touches.begin(), pw_touches.end());
  for (const auto& pt : touches) {
    world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
  }

  const sim::SimTime end = touches.back().at + sim::ms(600);
  world.run_until(end);

  const auto alert = world.system_ui().snapshot(server::kMalwareUid);
  const std::string decoded = stealer.finalize();
  world.run_all();

  std::puts("Keystroke decode trace:");
  for (const auto& ks : stealer.result().keystrokes) {
    std::printf("  [%.2f s] (%4d,%4d) -> key '%s'%s\n", sim::to_seconds(ks.at), ks.point.x,
                ks.point.y, ks.decoded_key.c_str(), ks.ch ? "" : " (mode switch)");
  }

  const auto flicker =
      percept::scan_flicker(world.wms(), server::kMalwareUid, "fake_keyboard",
                            stealer.result().triggered_at + sim::ms(800), end);
  std::printf("\nTyped password   : %s\n", kPassword);
  std::printf("Stolen password  : %s  (%s)\n", decoded.c_str(),
              decoded == kPassword ? "exact match" : "mismatch");
  std::printf("Widget filled    : %s (victim UI looks normal)\n",
              stealer.result().widget_filled ? "yes" : "no");
  std::printf("Warning alert    : %s\n",
              std::string(percept::to_string(percept::classify(alert))).c_str());
  std::printf("Fake-kbd flicker : %s (min composited alpha %.2f)\n",
              flicker.noticeable ? "NOTICEABLE" : "imperceptible", flicker.min_alpha);
  std::printf("Sub-kbd switches : %d toast view swaps\n",
              stealer.toast_attack().stats().content_switches);
  return 0;
}
