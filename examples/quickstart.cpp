// Quickstart: the draw-and-destroy overlay attack in ~40 lines.
//
// Creates one simulated handset, launches the attack with the device's
// Table II attacking window, taps the screen a few times, and shows that
// (a) every tap was intercepted and (b) the overlay warning notification
// never became visible.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/overlay_attack.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

int main() {
  using namespace animus;

  // One simulated phone: a Xiaomi mi8 on Android 9 (Table II bound: 215 ms).
  const device::DeviceProfile& phone = device::reference_device_android9();
  server::World world{{.profile = phone, .seed = 7}};
  std::printf("Device: %s, published D bound: %.0f ms\n\n", phone.display_name().c_str(),
              phone.d_upper_bound_table_ms);

  // The victim app on screen (anything touchable beneath the overlays).
  ui::Window victim;
  victim.owner_uid = server::kVictimUid;
  victim.bounds = {0, 0, 1080, 2280};
  victim.content = "victim:app";
  world.wms().add_window_now(std::move(victim));

  // The malicious overlay app: SYSTEM_ALERT_WINDOW granted at install.
  world.server().grant_overlay_permission(server::kMalwareUid);
  core::OverlayAttackConfig config;
  config.attacking_window = sim::ms(190);  // safely under the 215 ms bound
  config.on_capture = [](sim::SimTime t, ui::Point p) {
    std::printf("  [%.2f s] intercepted touch at (%d, %d)\n", sim::to_seconds(t), p.x, p.y);
  };
  core::OverlayAttack attack{world, config};
  attack.start();

  // The user taps around for five seconds.
  for (int i = 0; i < 8; ++i) {
    world.loop().schedule_at(sim::ms(500 + i * 550), [&world, i] {
      world.input().inject_tap({200 + i * 90, 900 + i * 120});
    });
  }
  world.run_until(sim::seconds(6));
  attack.stop();
  world.run_all();

  const auto alert = world.system_ui().snapshot(server::kMalwareUid);
  std::printf("\nDraw-and-destroy cycles: %d\n", attack.stats().cycles);
  std::printf("Touches intercepted:     %d / 8\n", attack.stats().captures);
  std::printf("Notification outcome:    %s (max %d of %d px ever drawn)\n",
              std::string(percept::to_string(percept::classify(alert))).c_str(),
              alert.max_pixels, phone.notification_height_px);
  std::puts("\nThe alert's slide-in animation was reset on every cycle before it could");
  std::puts("reveal a naked-eye pixel — the user never saw a warning.");
  return 0;
}
