// Defense demo (Section VII): the same draw-and-destroy overlay attack,
// first against a stock system, then against a system running both the
// IPC transaction analyzer and the enhanced notification defense.
//
// Build & run:   ./build/examples/defense_demo
#include <cstdio>

#include "core/overlay_attack.hpp"
#include "defense/ipc_defense.hpp"
#include "defense/notification_defense.hpp"
#include "device/registry.hpp"
#include "percept/outcomes.hpp"
#include "server/world.hpp"

using namespace animus;

namespace {

void run_scenario(bool defended) {
  server::World world{{.profile = device::reference_device_android9(), .seed = 5}};
  world.server().grant_overlay_permission(server::kMalwareUid);

  defense::IpcDefenseAnalyzer analyzer;
  if (defended) {
    analyzer.attach(world.transactions());
    defense::install_enhanced_notification_defense(world);
  }

  core::OverlayAttackConfig config;
  config.attacking_window = sim::ms(190);
  core::OverlayAttack attack{world, config};
  attack.start();
  for (int i = 0; i < 10; ++i) {
    world.loop().schedule_at(sim::seconds(1 + i), [&world] {
      world.input().inject_tap({540, 1200});
    });
  }
  world.run_until(sim::seconds(12));
  const auto alert = world.system_ui().snapshot(server::kMalwareUid);
  attack.stop();
  world.run_all();

  std::printf("%s system:\n", defended ? "DEFENDED" : "Stock");
  std::printf("  touches intercepted : %d / 10\n", attack.stats().captures);
  std::printf("  warning alert       : %s, visible for %.1f s\n",
              std::string(percept::to_string(percept::classify(alert))).c_str(),
              sim::to_seconds(alert.visible_time));
  if (defended) {
    if (analyzer.flagged(server::kMalwareUid)) {
      const auto& d = analyzer.detections().front();
      std::printf("  IPC analyzer        : FLAGGED uid %d after %d rapid remove->add "
                  "pairs (%.1f s into the attack)\n",
                  d.uid, d.pairs, sim::to_seconds(d.last_pair));
    } else {
      std::puts("  IPC analyzer        : no detection");
    }
  }
  std::puts("");
}

}  // namespace

int main() {
  std::puts("Draw-and-destroy overlay attack, D = 190 ms, 10 user touches over 12 s.\n");
  run_scenario(/*defended=*/false);
  run_scenario(/*defended=*/true);
  std::puts("With the enhanced notification defense the removal of the alert is");
  std::puts("postponed by 690 ms and cancelled when the app re-adds an overlay, so the");
  std::puts("slide-in completes and stays in the drawer; independently, the Binder");
  std::puts("transaction analyzer identifies the attack within seconds.");
  return 0;
}
