#include "server/system_server.hpp"

#include <utility>

#include "metrics/table.hpp"

namespace animus::server {

SystemServer::SystemServer(sim::EventLoop& loop, sim::Rng rng, sim::TraceRecorder& trace,
                           const device::DeviceProfile& profile, WindowManagerService& wms,
                           NotificationManagerService& nms, SystemUi& sysui,
                           ipc::TransactionLog& txlog)
    : loop_(&loop),
      rng_(rng),
      trace_(&trace),
      profile_(profile),
      wms_(&wms),
      nms_(&nms),
      sysui_(&sysui),
      txlog_(&txlog),
      traits_(device::traits(profile.version)) {}

sim::SimTime SystemServer::sample(const ipc::LatencyModel& m) {
  return deterministic_ ? m.mean() : m.sample(rng_);
}

void SystemServer::reset(sim::Rng rng, const device::DeviceProfile& profile) {
  rng_ = rng;
  profile_ = profile;
  traits_ = device::traits(profile.version);
  deterministic_ = false;
  settings_foreground_ = false;
  alert_removal_delay_ = sim::SimTime{0};
  overlay_permitted_.clear();
  rejected_overlays_ = 0;
  next_handle_ = 1;
  handle_to_window_.clear();
  deferred_removals_.clear();
  pending_alert_removal_.clear();
  pending_alert_show_.clear();
  nms_last_delivery_ = sim::SimTime{0};
}

void SystemServer::set_deterministic(bool on) {
  deterministic_ = on;
  nms_->set_deterministic(on);
}

sim::SimTime SystemServer::effective_tn() const {
  // The profile's Tn is calibrated against Table II and already includes
  // the ANA share on Android 10/11 (see device/registry.cpp).
  return profile_.tn.mean();
}

ViewHandle SystemServer::add_view(int uid, OverlaySpec spec) {
  if (!has_overlay_permission(uid)) {
    ++rejected_overlays_;
    if (trace_->enabled()) {
      trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                     metrics::fmt("wms: addView denied (no SYSTEM_ALERT_WINDOW) uid=%d", uid));
    }
    return 0;
  }
  const ViewHandle handle = next_handle_++;
  const sim::SimTime transit = sample(profile_.tam);
  txlog_->record(uid, ipc::MethodCode::kAddView, "android.view.IWindowManager", loop_->now(),
                 loop_->now() + transit);
  // Flow arrow: app-side call -> server-side creation completion. Ids
  // are scoped per transaction kind so concurrent addView/removeView
  // arrows cannot collide. All formatting is gated on the recorder so
  // untraced trials never build the strings (the dominant per-cycle cost).
  std::uint64_t flow = 0;
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kApp,
                   metrics::fmt("app uid=%d addView h=%llu", uid,
                                static_cast<unsigned long long>(handle)));
    flow = trace_->new_flow("addView");
    trace_->flow_start(loop_->now(), sim::TraceCategory::kApp,
                       metrics::fmt("addView h=%llu",
                                    static_cast<unsigned long long>(handle)),
                       flow, "addView");
  }

  // Arrival at System Server after Tam, then Tas of window creation.
  const sim::SimTime creation = sample(profile_.tas);
  loop_->schedule_after(transit + creation,
                        [this, uid, handle, flow, spec = std::move(spec)]() mutable {
    if (trace_->enabled()) {
      trace_->flow_end(loop_->now(), sim::TraceCategory::kSystemServer,
                       metrics::fmt("addView delivered h=%llu",
                                    static_cast<unsigned long long>(handle)),
                       flow, "addView");
    }
    if (settings_foreground_) {
      ++rejected_overlays_;
      if (trace_->enabled()) {
        trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                       metrics::fmt("wms: overlay blocked over Settings uid=%d", uid));
      }
      return;
    }
    ui::Window w;
    w.owner_uid = uid;
    w.type = ui::WindowType::kAppOverlay;
    w.flags = spec.flags;
    w.bounds = spec.bounds;
    w.content = std::move(spec.content);
    w.on_touch = std::move(spec.on_touch);
    w.deliver_on_down = spec.deliver_on_down;
    const ui::WindowId id = wms_->add_window_now(std::move(w));
    handle_to_window_[handle] = id;
    if (deferred_removals_.erase(handle) > 0) {
      // A removeView for this handle overtook the creation; honour it.
      wms_->remove_window_now(id);
      on_overlay_removed(uid);
      return;
    }
    on_overlay_added(uid);
  });
  return handle;
}

void SystemServer::remove_view(int uid, ViewHandle handle) {
  const sim::SimTime transit = sample(profile_.trm);
  txlog_->record(uid, ipc::MethodCode::kRemoveView, "android.view.IWindowManager",
                 loop_->now(), loop_->now() + transit);
  std::uint64_t flow = 0;
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kApp,
                   metrics::fmt("app uid=%d removeView h=%llu", uid,
                                static_cast<unsigned long long>(handle)));
    flow = trace_->new_flow("removeView");
    trace_->flow_start(loop_->now(), sim::TraceCategory::kApp,
                       metrics::fmt("removeView h=%llu",
                                    static_cast<unsigned long long>(handle)),
                       flow, "removeView");
  }
  loop_->schedule_after(transit, [this, uid, handle, flow] {
    if (trace_->enabled()) {
      trace_->flow_end(loop_->now(), sim::TraceCategory::kSystemServer,
                       metrics::fmt("removeView delivered h=%llu",
                                    static_cast<unsigned long long>(handle)),
                       flow, "removeView");
    }
    const auto it = handle_to_window_.find(handle);
    if (it == handle_to_window_.end()) {
      // The window is still being created; remove it as soon as it lands.
      deferred_removals_.insert(handle);
      return;
    }
    // "System Server removes O1 instantly" (Section III-C).
    if (wms_->remove_window_now(it->second)) on_overlay_removed(uid);
  });
}

void SystemServer::deliver_to_nms(sim::SimTime transit, std::function<void()> handler) {
  sim::SimTime arrival = loop_->now() + transit;
  if (arrival < nms_last_delivery_) arrival = nms_last_delivery_;
  nms_last_delivery_ = arrival;
  loop_->schedule_at(arrival, std::move(handler));
}

void SystemServer::enqueue_toast(int uid, ToastRequest request) {
  const sim::SimTime transit = sample(profile_.tam);
  txlog_->record(uid, ipc::MethodCode::kEnqueueToast,
                 "android.app.INotificationManager", loop_->now(), loop_->now() + transit);
  request.uid = uid;
  deliver_to_nms(transit, [this, request = std::move(request)]() mutable {
    nms_->enqueue_toast_now(std::move(request));
  });
}

void SystemServer::cancel_toast(int uid) {
  const sim::SimTime transit = sample(profile_.tam);
  txlog_->record(uid, ipc::MethodCode::kOther, "android.app.INotificationManager",
                 loop_->now(), loop_->now() + transit);
  deliver_to_nms(transit, [this, uid] { nms_->cancel_current(uid); });
}

void SystemServer::cancel_queued_toasts(int uid, std::string keep_content) {
  const sim::SimTime transit = sample(profile_.tam);
  txlog_->record(uid, ipc::MethodCode::kOther, "android.app.INotificationManager",
                 loop_->now(), loop_->now() + transit);
  deliver_to_nms(transit, [this, uid, keep_content = std::move(keep_content)] {
    nms_->cancel_queued(uid, keep_content);
  });
}

ViewHandle SystemServer::add_type_toast_view(int uid, ui::Rect bounds, std::string content) {
  if (traits_.type_toast_removed) {
    if (trace_->enabled()) {
      trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                     metrics::fmt("wms: TYPE_TOAST rejected (removed in Android 8) uid=%d",
                                  uid));
    }
    return 0;
  }
  const ViewHandle handle = next_handle_++;
  const sim::SimTime transit = sample(profile_.tam);
  txlog_->record(uid, ipc::MethodCode::kAddView, "android.view.IWindowManager", loop_->now(),
                 loop_->now() + transit);
  const sim::SimTime creation = sample(profile_.tas);
  loop_->schedule_after(transit + creation,
                        [this, uid, handle, bounds, content = std::move(content)] {
    ui::Window w;
    w.owner_uid = uid;
    w.type = ui::WindowType::kToast;
    w.bounds = bounds;
    w.content = content;
    handle_to_window_[handle] = wms_->add_window_now(std::move(w));
  });
  return handle;
}

void SystemServer::on_overlay_added(int uid) {
  // Pre-Android-8 systems never warn about overlays at all.
  if (!traits_.overlay_notification) return;
  // Enhanced notification defense: a re-added overlay during the removal
  // grace period keeps the alert alive (and animating) in System UI.
  const auto pending = pending_alert_removal_.find(uid);
  if (pending != pending_alert_removal_.end()) {
    loop_->cancel(pending->second);
    pending_alert_removal_.erase(pending);
    if (trace_->enabled()) {
      trace_->record(loop_->now(), sim::TraceCategory::kDefense,
                     metrics::fmt("system_server: alert removal cancelled (re-add) uid=%d",
                                  uid));
    }
  }
  // Notify System UI to show the warning alert (Tn transit, which
  // includes the ANA share on Android 10/11; the view construction Tv
  // happens inside System UI).
  const sim::SimTime tn = sample(profile_.tn);
  const sim::SimTime tv = sample(profile_.tv);
  pending_alert_show_[uid] = loop_->schedule_after(tn, [this, uid, tv] {
    pending_alert_show_.erase(uid);
    sysui_->show_overlay_alert(uid, tv);
  });
}

void SystemServer::on_overlay_removed(int uid) {
  // "After removing O1, System Server checks whether there is still an
  // overlay from the same app in the foreground" (Section III-C).
  if (wms_->overlay_count(uid) > 0) return;
  auto dispatch_removal = [this, uid] {
    // A post still in transit to System UI is cancelled outright — both
    // operations key the same per-app notification, and the cancel wins
    // once the app has no overlay left.
    const auto pending_show = pending_alert_show_.find(uid);
    if (pending_show != pending_alert_show_.end()) {
      loop_->cancel(pending_show->second);
      pending_alert_show_.erase(pending_show);
    }
    const sim::SimTime tnr = sample(profile_.tnr);
    loop_->schedule_after(tnr, [this, uid] { sysui_->dismiss_overlay_alert(uid); });
  };
  if (alert_removal_delay_ <= sim::SimTime{0}) {
    dispatch_removal();
    return;
  }
  // Defense path: postpone; cancelled if the app re-adds an overlay.
  const auto id = loop_->schedule_after(alert_removal_delay_, [this, uid, dispatch_removal] {
    pending_alert_removal_.erase(uid);
    if (wms_->overlay_count(uid) == 0) dispatch_removal();
  });
  pending_alert_removal_[uid] = id;
}

}  // namespace animus::server
