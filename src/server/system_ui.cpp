#include "server/system_ui.hpp"

#include <algorithm>
#include <cassert>

#include "metrics/table.hpp"

namespace animus::server {

SystemUi::SystemUi(sim::EventLoop& loop, sim::TraceRecorder& trace,
                   const device::DeviceProfile& profile)
    : loop_(&loop),
      trace_(&trace),
      anim_(ui::notification_slide_in()),
      view_height_px_(profile.notification_height_px),
      visible_threshold_(anim_.time_to_reveal(ui::kNakedEyeMinPixels, view_height_px_)) {}

void SystemUi::reset(const device::DeviceProfile& profile) {
  view_height_px_ = profile.notification_height_px;
  visible_threshold_ = anim_.time_to_reveal(ui::kNakedEyeMinPixels, view_height_px_);
  entries_.clear();
  status_bar_icons_.clear();
}

sim::SimTime SystemUi::elapsed_at(const Entry& e, sim::SimTime t) const {
  const sim::SimTime delta = t - e.anchor_time;
  sim::SimTime el = e.anchor_elapsed + sim::SimTime{e.direction * delta.count()};
  return std::clamp(el, sim::SimTime{0}, anim_.duration());
}

double SystemUi::message_progress_at(const Entry& e, sim::SimTime t) const {
  if (e.phase != AlertPhase::kShown) return 0.0;
  const auto frac =
      static_cast<double>((t - e.shown_at - kMessageStartDelay).count()) /
      static_cast<double>(kMessageDrawTime.count());
  return std::clamp(frac, 0.0, 1.0);
}

void SystemUi::account_segment(Entry& e, sim::SimTime seg_start_elapsed,
                               sim::SimTime seg_end_elapsed, int direction) {
  // Track the extreme reached during the segment. For a forward segment
  // the maximum is at its end; for a reverse segment the maximum was
  // already accounted when the forward segment ended.
  const sim::SimTime peak = std::max(seg_start_elapsed, seg_end_elapsed);
  e.stats.max_pixels = std::max(e.stats.max_pixels, anim_.presented_pixels_at(peak, view_height_px_));
  e.stats.max_completeness =
      std::max(e.stats.max_completeness, anim_.presented_completeness_at(peak));
  // Visible time: portion of the segment where elapsed >= threshold
  // (elapsed moves at |1| per unit wall time in either direction).
  const sim::SimTime lo = std::min(seg_start_elapsed, seg_end_elapsed);
  const sim::SimTime hi = peak;
  if (hi > visible_threshold_) {
    e.stats.visible_time += hi - std::max(lo, visible_threshold_);
  }
  (void)direction;
}

void SystemUi::start_in_animation(Entry& e, int uid) {
  e.phase = AlertPhase::kAnimatingIn;
  e.anchor_time = loop_->now();
  e.direction = +1;
  const sim::SimTime remaining = anim_.duration() - e.anchor_elapsed;
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kAnimation,
                   metrics::fmt("sysui: startTopAnimation uid=%d from=%.1fms", uid,
                                sim::to_ms(e.anchor_elapsed)));
  }
  e.pending = loop_->schedule_after(remaining, [this, uid] {
    Entry& en = entry(uid);
    account_segment(en, en.anchor_elapsed, anim_.duration(), +1);
    // Completed forward segment (anchor_time still marks its start).
    sim::profile_span("sysui.slide_in", sim::TraceCategory::kAnimation, en.anchor_time,
                      loop_->now());
    if (trace_->enabled()) {
      trace_->span(en.anchor_time, loop_->now(), sim::TraceCategory::kAnimation,
                   metrics::fmt("slide-in uid=%d", uid));
    }
    en.anchor_elapsed = anim_.duration();
    en.anchor_time = loop_->now();
    en.direction = 0;
    en.phase = AlertPhase::kShown;
    en.shown_at = loop_->now();
    en.stats.completions += 1;
    if (trace_->enabled()) {
      trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                     metrics::fmt("sysui: alert fully shown uid=%d", uid));
    }
    // Message layout starts after a delay, draws over kMessageDrawTime,
    // then the icon appears.
    en.icon_event = loop_->schedule_after(
        kMessageStartDelay + kMessageDrawTime + kIconDelay, [this, uid] {
          Entry& e2 = entry(uid);
          e2.stats.icon_shown = true;
          if (!status_bar_has_icon(uid) &&
              static_cast<int>(status_bar_icons_.size()) < kStatusBarIconCapacity) {
            status_bar_icons_.push_back(uid);
            if (trace_->enabled()) {
              trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                             metrics::fmt("sysui: status-bar icon uid=%d", uid));
            }
          } else if (trace_->enabled()) {
            trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                           metrics::fmt("sysui: status bar full, icon hidden uid=%d", uid));
          }
        });
  });
}

void SystemUi::show_overlay_alert(int uid, sim::SimTime construction_time) {
  Entry& e = entry(uid);
  switch (e.phase) {
    case AlertPhase::kHidden: {
      e.stats.shows += 1;
      e.phase = AlertPhase::kConstructing;
      e.anchor_elapsed = sim::SimTime{0};
      e.lifecycle_start = loop_->now();
      if (trace_->enabled()) {
        trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                       metrics::fmt("sysui: constructing alert view uid=%d", uid));
      }
      e.pending = loop_->schedule_after(construction_time, [this, uid] {
        Entry& en = entry(uid);
        start_in_animation(en, uid);
      });
      return;
    }
    case AlertPhase::kAnimatingOut: {
      // The dismissed entry is being slid out; a new overlay posts a
      // *fresh* notification. The old view finishes disappearing and a
      // new one is constructed from scratch (progress restarts at zero —
      // this is why Eq. (3) bounds each draw-and-destroy cycle
      // independently).
      e.stats.shows += 1;
      loop_->cancel(e.pending);
      const sim::SimTime el = elapsed_at(e, loop_->now());
      account_segment(e, e.anchor_elapsed, el, -1);
      // The reverse segment is cut short; close it and the old lifecycle
      // so the new construction opens a fresh span pair.
      sim::profile_span("sysui.slide_out.cut", sim::TraceCategory::kAnimation, e.anchor_time,
                        loop_->now());
      sim::profile_span("sysui.alert_lifecycle", sim::TraceCategory::kSystemUi,
                        e.lifecycle_start, loop_->now());
      if (trace_->enabled()) {
        trace_->span(e.anchor_time, loop_->now(), sim::TraceCategory::kAnimation,
                     metrics::fmt("slide-out (cut) uid=%d", uid));
        trace_->span(e.lifecycle_start, loop_->now(), sim::TraceCategory::kSystemUi,
                     metrics::fmt("alert lifecycle uid=%d", uid));
      }
      e.lifecycle_start = loop_->now();
      e.anchor_elapsed = sim::SimTime{0};
      e.direction = 0;
      e.phase = AlertPhase::kConstructing;
      if (trace_->enabled()) {
        trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                       metrics::fmt("sysui: reconstructing alert view uid=%d", uid));
      }
      e.pending = loop_->schedule_after(construction_time, [this, uid] {
        Entry& en = entry(uid);
        start_in_animation(en, uid);
      });
      return;
    }
    case AlertPhase::kConstructing:
    case AlertPhase::kAnimatingIn:
    case AlertPhase::kShown:
      // Alert already in progress for this uid; Android keeps a single
      // notification entry per app.
      return;
  }
}

void SystemUi::dismiss_overlay_alert(int uid) {
  Entry& e = entry(uid);
  switch (e.phase) {
    case AlertPhase::kHidden:
    case AlertPhase::kAnimatingOut:
      return;
    case AlertPhase::kConstructing: {
      // View never started animating; drop it silently.
      loop_->cancel(e.pending);
      e.phase = AlertPhase::kHidden;
      e.anchor_elapsed = sim::SimTime{0};
      e.stats.dismissals += 1;
      sim::profile_span("sysui.alert_lifecycle.cancelled", sim::TraceCategory::kSystemUi,
                        e.lifecycle_start, loop_->now());
      if (trace_->enabled()) {
        trace_->span(e.lifecycle_start, loop_->now(), sim::TraceCategory::kSystemUi,
                     metrics::fmt("alert lifecycle (cancelled) uid=%d", uid));
        trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                       metrics::fmt("sysui: alert construction cancelled uid=%d", uid));
      }
      return;
    }
    case AlertPhase::kAnimatingIn:
    case AlertPhase::kShown: {
      loop_->cancel(e.pending);
      loop_->cancel(e.icon_event);
      e.stats.dismissals += 1;
      if (e.phase == AlertPhase::kShown) {
        e.stats.max_message_progress =
            std::max(e.stats.max_message_progress, message_progress_at(e, loop_->now()));
        e.stats.visible_time += loop_->now() - e.shown_at;  // static fully-shown period
        e.anchor_elapsed = anim_.duration();
      } else {
        const sim::SimTime el = elapsed_at(e, loop_->now());
        account_segment(e, e.anchor_elapsed, el, +1);
        // Forward segment interrupted mid-flight.
        sim::profile_span("sysui.slide_in.cut", sim::TraceCategory::kAnimation, e.anchor_time,
                          loop_->now());
        if (trace_->enabled()) {
          trace_->span(e.anchor_time, loop_->now(), sim::TraceCategory::kAnimation,
                       metrics::fmt("slide-in (cut) uid=%d", uid));
        }
        e.anchor_elapsed = el;
      }
      e.anchor_time = loop_->now();
      e.direction = -1;
      e.phase = AlertPhase::kAnimatingOut;
      if (trace_->enabled()) {
        trace_->record(loop_->now(), sim::TraceCategory::kAnimation,
                       metrics::fmt("sysui: reverse animation uid=%d from=%.1fms", uid,
                                    sim::to_ms(e.anchor_elapsed)));
      }
      e.pending = loop_->schedule_after(e.anchor_elapsed, [this, uid] {
        Entry& en = entry(uid);
        account_segment(en, en.anchor_elapsed, sim::SimTime{0}, -1);
        // Completed reverse segment, then the whole lifecycle.
        sim::profile_span("sysui.slide_out", sim::TraceCategory::kAnimation, en.anchor_time,
                          loop_->now());
        sim::profile_span("sysui.alert_lifecycle", sim::TraceCategory::kSystemUi,
                          en.lifecycle_start, loop_->now());
        if (trace_->enabled()) {
          trace_->span(en.anchor_time, loop_->now(), sim::TraceCategory::kAnimation,
                       metrics::fmt("slide-out uid=%d", uid));
          trace_->span(en.lifecycle_start, loop_->now(), sim::TraceCategory::kSystemUi,
                       metrics::fmt("alert lifecycle uid=%d", uid));
        }
        en.anchor_elapsed = sim::SimTime{0};
        en.anchor_time = loop_->now();
        en.direction = 0;
        en.phase = AlertPhase::kHidden;
        std::erase(status_bar_icons_, uid);
        if (trace_->enabled()) {
          trace_->record(loop_->now(), sim::TraceCategory::kSystemUi,
                         metrics::fmt("sysui: alert hidden uid=%d", uid));
        }
      });
      return;
    }
  }
}

SystemUi::AlertPhase SystemUi::phase(int uid) const {
  const auto it = entries_.find(uid);
  return it == entries_.end() ? AlertPhase::kHidden : it->second.phase;
}

int SystemUi::current_pixels(int uid) const {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return 0;
  const Entry& e = it->second;
  if (e.phase == AlertPhase::kHidden || e.phase == AlertPhase::kConstructing) return 0;
  return anim_.presented_pixels_at(elapsed_at(e, loop_->now()), view_height_px_);
}

const SystemUi::AlertStats& SystemUi::stats(int uid) const {
  static const AlertStats kEmpty;
  const auto it = entries_.find(uid);
  return it == entries_.end() ? kEmpty : it->second.stats;
}

SystemUi::AlertStats SystemUi::snapshot(int uid) const {
  const auto it = entries_.find(uid);
  if (it == entries_.end()) return AlertStats{};
  const Entry& e = it->second;
  AlertStats s = e.stats;
  if (e.phase == AlertPhase::kAnimatingIn || e.phase == AlertPhase::kAnimatingOut ||
      e.phase == AlertPhase::kShown) {
    const sim::SimTime el = elapsed_at(e, loop_->now());
    const sim::SimTime peak = std::max(e.anchor_elapsed, el);
    s.max_pixels = std::max(s.max_pixels, anim_.presented_pixels_at(peak, view_height_px_));
    s.max_completeness = std::max(s.max_completeness, anim_.presented_completeness_at(peak));
    const sim::SimTime lo = std::min(e.anchor_elapsed, el);
    if (peak > visible_threshold_) s.visible_time += peak - std::max(lo, visible_threshold_);
    if (e.phase == AlertPhase::kShown) s.visible_time += loop_->now() - e.shown_at;
    s.max_message_progress =
        std::max(s.max_message_progress, message_progress_at(e, loop_->now()));
  }
  return s;
}

SystemUi::AlertStats SystemUi::totals() const {
  AlertStats out;
  for (const auto& [uid, e] : entries_) {
    out.shows += e.stats.shows;
    out.dismissals += e.stats.dismissals;
    out.completions += e.stats.completions;
    out.max_pixels = std::max(out.max_pixels, e.stats.max_pixels);
    out.max_completeness = std::max(out.max_completeness, e.stats.max_completeness);
    out.max_message_progress =
        std::max(out.max_message_progress, e.stats.max_message_progress);
    out.icon_shown = out.icon_shown || e.stats.icon_shown;
    out.visible_time += e.stats.visible_time;
  }
  return out;
}

bool SystemUi::alert_fully_visible(int uid) const {
  const auto it = entries_.find(uid);
  return it != entries_.end() && it->second.phase == AlertPhase::kShown;
}

int SystemUi::status_bar_icon_count() const {
  return static_cast<int>(status_bar_icons_.size());
}

bool SystemUi::status_bar_has_icon(int uid) const {
  return std::find(status_bar_icons_.begin(), status_bar_icons_.end(), uid) !=
         status_bar_icons_.end();
}

}  // namespace animus::server
