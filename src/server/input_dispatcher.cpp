#include "server/input_dispatcher.hpp"

#include "metrics/table.hpp"

namespace animus::server {

InputDispatcher::InputDispatcher(sim::EventLoop& loop, sim::TraceRecorder& trace,
                                 WindowManagerService& wms, sim::Rng rng)
    : loop_(&loop), trace_(&trace), wms_(&wms), rng_(rng) {}

void InputDispatcher::inject_tap(ui::Point p, std::function<void(const TouchOutcome&)> done) {
  const double c = rng_.truncated_normal(contact_.mean_ms, contact_.sd_ms, contact_.min_ms,
                                         contact_.max_ms);
  inject_tap(p, sim::ms_f(c), std::move(done));
}

void InputDispatcher::inject_tap(ui::Point p, sim::SimTime contact,
                                 std::function<void(const TouchOutcome&)> done) {
  ++stats_.taps;
  const sim::SimTime down = loop_->now();
  const WindowRecord* rec = wms_->topmost_touchable_at(p, down);
  if (rec == nullptr) {
    ++stats_.untargeted;
    if (trace_->enabled()) {
      trace_->record(down, sim::TraceCategory::kInput,
                     metrics::fmt("input: tap (%d,%d) -> no target", p.x, p.y));
    }
    if (done) done(TouchOutcome{});
    return;
  }
  TouchOutcome outcome;
  outcome.target = rec->window.id;
  outcome.target_type = rec->window.type;
  outcome.target_uid = rec->window.owner_uid;
  const ui::WindowId id = rec->window.id;
  if (rec->window.deliver_on_down) {
    // ACTION_DOWN capture: the handler sees the coordinate immediately;
    // later destruction of the window cannot take it back.
    outcome.kind = TouchOutcome::Kind::kDelivered;
    ++stats_.delivered;
    if (trace_->enabled()) {
      trace_->record(down, sim::TraceCategory::kInput,
                     metrics::fmt("input: down (%d,%d) -> %s uid=%d", p.x, p.y,
                                  std::string(ui::to_string(outcome.target_type)).c_str(),
                                  outcome.target_uid));
    }
    if (rec->window.on_touch) rec->window.on_touch(down, p);
    if (done) done(outcome);
    return;
  }
  // The capture is kept <= 64 bytes so the event loop stores it inline;
  // the outcome is rebuilt at delivery from the record (which outlives
  // the window) instead of riding along in the capture.
  loop_->schedule_after(contact, [this, id, p, down, done = std::move(done)]() mutable {
    const WindowRecord* bound = wms_->find(id);
    TouchOutcome outcome;
    outcome.target = id;
    if (bound != nullptr) {
      outcome.target_type = bound->window.type;
      outcome.target_uid = bound->window.owner_uid;
    }
    if (bound != nullptr && bound->alive_at(loop_->now())) {
      outcome.kind = TouchOutcome::Kind::kDelivered;
      ++stats_.delivered;
      if (trace_->enabled()) {
        trace_->record(loop_->now(), sim::TraceCategory::kInput,
                       metrics::fmt("input: tap (%d,%d) -> %s uid=%d", p.x, p.y,
                                    std::string(ui::to_string(outcome.target_type)).c_str(),
                                    outcome.target_uid));
      }
      if (bound->window.on_touch) bound->window.on_touch(down, p);
    } else {
      outcome.kind = TouchOutcome::Kind::kCancelled;
      ++stats_.cancelled;
      if (trace_->enabled()) {
        trace_->record(loop_->now(), sim::TraceCategory::kInput,
                       metrics::fmt("input: tap (%d,%d) cancelled (window gone)", p.x, p.y));
      }
    }
    if (done) done(outcome);
  });
}

}  // namespace animus::server
