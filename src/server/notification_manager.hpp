// Simulated NotificationManagerService: the toast pipeline.
//
// Post-Android-8 semantics the paper exploits (Sections II-B, IV):
//  - every Toast.show() enqueues a *token*; the queue holds at most 50
//    tokens per app (enqueueToast rejects beyond that);
//  - toasts are shown strictly one at a time, in FIFO order, for their
//    requested duration (2 s or 3.5 s);
//  - when a toast's time is up, the service calls removeView on the
//    Window Manager — which starts the 500 ms fade-out — and *immediately*
//    fetches the next token, whose window appears after the server-side
//    creation time Tas. The fade-out overlap is the attack surface.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "device/profile.hpp"
#include "server/window_manager.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace animus::server {

/// Toast durations Android allows (Toast.LENGTH_SHORT / LENGTH_LONG).
inline constexpr sim::SimTime kToastShort = sim::ms(2000);
inline constexpr sim::SimTime kToastLong = sim::ms(3500);

struct ToastRequest {
  int uid = -1;
  std::string content;    // customized view content tag
  ui::Rect bounds{};
  sim::SimTime duration = kToastShort;  // clamped to SHORT/LONG
};

class NotificationManagerService {
 public:
  struct Stats {
    std::size_t enqueued = 0;
    std::size_t rejected = 0;   // over the per-app token cap
    std::size_t shown = 0;
    std::size_t max_queue_depth = 0;
  };

  /// Hook invoked whenever a toast window is placed on screen; the toast
  /// attack uses it to keep the token queue primed.
  using ToastShownListener = std::function<void(const ToastRequest&, ui::WindowId)>;

  NotificationManagerService(sim::EventLoop& loop, sim::TraceRecorder& trace,
                             WindowManagerService& wms, const device::DeviceProfile& profile,
                             sim::Rng rng);

  /// Server-side entry point (Binder transit already applied by
  /// SystemServer). Returns false when the per-app cap rejects the token.
  bool enqueue_toast_now(ToastRequest request);

  /// Toast.cancel(): if `uid`'s toast is currently showing, remove it
  /// early (fade-out starts now) and immediately fetch the next token —
  /// this is how the attack swaps sub-keyboard views without waiting for
  /// the toast duration to elapse.
  bool cancel_current(int uid);

  /// Cancel `uid`'s *queued* tokens whose content differs from
  /// `keep_content` (an app can cancel Toast objects it still holds
  /// references to). Returns the number of tokens dropped. The attack
  /// uses this to purge stale sub-keyboard toasts on a layout switch.
  int cancel_queued(int uid, std::string_view keep_content);

  /// Enforce an artificial gap between successive toasts (the scheduling
  /// defense of Section VII-B: "change the scheduling algorithm for
  /// adding more delay between successive toasts").
  void set_inter_toast_gap(sim::SimTime gap) { inter_toast_gap_ = gap; }

  void set_deterministic(bool on) { deterministic_ = on; }
  void add_shown_listener(ToastShownListener l) { listeners_.push_back(std::move(l)); }

  [[nodiscard]] int queued_tokens(int uid) const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] bool showing() const { return showing_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] int max_tokens_per_app() const { return max_tokens_per_app_; }

  /// Restore the freshly-constructed state for `profile` with a fresh RNG
  /// substream (queue, token caps, current toast and listeners cleared).
  /// Scheduled expiry events must be torn down via EventLoop::reset.
  void reset(const device::DeviceProfile& profile, sim::Rng rng);

 private:
  void maybe_show_next();
  void retire(ui::WindowId id);

  sim::EventLoop* loop_;
  sim::TraceRecorder* trace_;
  WindowManagerService* wms_;
  sim::Rng rng_;
  ipc::LatencyModel toast_create_;
  int max_tokens_per_app_;
  bool serialized_;  // false on legacy Android 7: toasts may overlap
  bool deterministic_ = false;
  sim::SimTime inter_toast_gap_{0};
  sim::SimTime next_allowed_show_{0};

  std::deque<ToastRequest> queue_;
  std::map<int, int> tokens_per_uid_;
  bool showing_ = false;
  struct Current {
    int uid = -1;
    ui::WindowId window = ui::kInvalidWindow;
    sim::EventLoop::EventId expiry{};
    bool on_screen = false;  // false while the surface is being created
    sim::SimTime shown_at{0};  // telemetry: when the surface landed
  };
  Current current_;
  Stats stats_;
  std::vector<ToastShownListener> listeners_;
};

}  // namespace animus::server
