// Simulated System UI: the notification drawer and the overlay-warning
// alert whose slide-in animation the draw-and-destroy overlay attack
// suppresses (Section III).
//
// Per-uid alert lifecycle:
//
//   hidden --show--> constructing --(Tv)--> animating_in --(360ms)--> shown
//     ^                 |  dismiss              | dismiss               |
//     |                 v                       v                       v
//     +------------- (cancel)            animating_out <---dismiss-- shown
//                                               | (reverse at same rate)
//                                               v
//                                            hidden
//
// Once shown, the notification *message* is drawn progressively and the
// status-bar *icon* appears after the message completes — this ordering
// produces the five observable outcomes Λ1..Λ5 of Fig. 6 ("the
// notification view is a container and shows up first; other elements
// ... are not displayed until the notification view has been drawn
// completely").
#pragma once

#include <map>
#include <optional>

#include "device/profile.hpp"
#include "sim/event_loop.hpp"
#include "sim/trace.hpp"
#include "ui/animation.hpp"

namespace animus::server {

/// Message/icon rendering pipeline once the view container is fully
/// visible: the text layout starts after kMessageStartDelay (the Λ3
/// window of Fig. 6c — "the view is fully visible, but no message or
/// icon is displayed"), draws progressively over kMessageDrawTime (Λ4),
/// and the status-bar icon lands kIconDelay later (Λ5). Modeling
/// constants — the paper gives the ordering, not the durations.
inline constexpr sim::SimTime kMessageStartDelay = sim::ms(60);
inline constexpr sim::SimTime kMessageDrawTime = sim::ms(120);
inline constexpr sim::SimTime kIconDelay = sim::ms(30);

/// Status-bar icon slots: "Android 10 of Google Pixel 2 can show 4 icons
/// at the status bar" (Section II-A2).
inline constexpr int kStatusBarIconCapacity = 4;

class SystemUi {
 public:
  enum class AlertPhase { kHidden, kConstructing, kAnimatingIn, kShown, kAnimatingOut };

  /// Everything the perception model needs to classify an outcome.
  struct AlertStats {
    int shows = 0;             // show requests accepted
    int dismissals = 0;        // dismiss requests acted upon
    int completions = 0;       // times the slide-in animation completed
    int max_pixels = 0;        // max rounded pixels ever presented
    double max_completeness = 0.0;
    double max_message_progress = 0.0;  // 0..1
    bool icon_shown = false;
    sim::SimTime visible_time{0};  // cumulative time >= naked-eye pixels
  };

  SystemUi(sim::EventLoop& loop, sim::TraceRecorder& trace,
           const device::DeviceProfile& profile);

  /// System Server -> System UI: an overlay from `uid` is in the
  /// foreground; construct the alert view (Tv) and run the slide-in
  /// animation (startTopAnimation). Resumes mid-animation state.
  void show_overlay_alert(int uid, sim::SimTime construction_time);

  /// System Server -> System UI: no overlay from `uid` remains; stop the
  /// slide-in and reverse it ("removes the notification view with
  /// startTopAnimation in a reverse way").
  void dismiss_overlay_alert(int uid);

  [[nodiscard]] AlertPhase phase(int uid) const;
  /// Rounded pixels of the alert view currently presented for `uid`.
  [[nodiscard]] int current_pixels(int uid) const;
  [[nodiscard]] const AlertStats& stats(int uid) const;

  /// Stats with any in-flight animation segment folded in — use this to
  /// classify outcomes while an alert is still animating or shown.
  [[nodiscard]] AlertStats snapshot(int uid) const;

  /// Telemetry rollup across every uid: counters summed, extrema maxed.
  [[nodiscard]] AlertStats totals() const;

  /// Whether a fully-drawn alert entry currently sits in the drawer.
  [[nodiscard]] bool alert_fully_visible(int uid) const;

  /// Status bar: icons currently displayed / whether `uid`'s alert icon
  /// holds a slot. At most kStatusBarIconCapacity icons fit; alerts past
  /// that are only visible by swiping the drawer open.
  [[nodiscard]] int status_bar_icon_count() const;
  [[nodiscard]] bool status_bar_has_icon(int uid) const;

  /// Restore the freshly-constructed state for `profile` (alert entries
  /// and status-bar slots dropped, view geometry recomputed). Scheduled
  /// lifecycle events must be torn down separately via EventLoop::reset.
  void reset(const device::DeviceProfile& profile);

 private:
  struct Entry {
    AlertPhase phase = AlertPhase::kHidden;
    // Animation elapsed-time anchor: at `anchor_time` the slide-in had
    // played for `anchor_elapsed`; direction +1 in, -1 out, 0 static.
    sim::SimTime anchor_time{0};
    sim::SimTime anchor_elapsed{0};
    int direction = 0;
    sim::SimTime shown_at{0};  // when the view completed (for message draw)
    sim::SimTime lifecycle_start{0};  // telemetry: first show of this lifecycle
    sim::EventLoop::EventId pending{};  // construction/completion/hidden event
    sim::EventLoop::EventId icon_event{};
    AlertStats stats;
  };

  [[nodiscard]] sim::SimTime elapsed_at(const Entry& e, sim::SimTime t) const;
  [[nodiscard]] double message_progress_at(const Entry& e, sim::SimTime t) const;
  void account_segment(Entry& e, sim::SimTime seg_start_elapsed, sim::SimTime seg_end_elapsed,
                       int direction);
  void start_in_animation(Entry& e, int uid);
  Entry& entry(int uid) { return entries_[uid]; }

  sim::EventLoop* loop_;
  sim::TraceRecorder* trace_;
  ui::Animation anim_;
  int view_height_px_;
  sim::SimTime visible_threshold_;  // elapsed time at which view is naked-eye visible
  std::map<int, Entry> entries_;
  std::vector<int> status_bar_icons_;  // uids holding a slot, oldest first
};

}  // namespace animus::server
