#include "server/notification_manager.hpp"

#include <algorithm>

#include "metrics/table.hpp"

namespace animus::server {

NotificationManagerService::NotificationManagerService(sim::EventLoop& loop,
                                                       sim::TraceRecorder& trace,
                                                       WindowManagerService& wms,
                                                       const device::DeviceProfile& profile,
                                                       sim::Rng rng)
    : loop_(&loop),
      trace_(&trace),
      wms_(&wms),
      rng_(rng),
      toast_create_(profile.toast_create),
      max_tokens_per_app_(traits(profile.version).max_toast_tokens_per_app),
      serialized_(traits(profile.version).serialized_toasts) {}

void NotificationManagerService::reset(const device::DeviceProfile& profile, sim::Rng rng) {
  rng_ = rng;
  toast_create_ = profile.toast_create;
  max_tokens_per_app_ = traits(profile.version).max_toast_tokens_per_app;
  serialized_ = traits(profile.version).serialized_toasts;
  deterministic_ = false;
  inter_toast_gap_ = sim::SimTime{0};
  next_allowed_show_ = sim::SimTime{0};
  queue_.clear();
  tokens_per_uid_.clear();
  showing_ = false;
  current_ = Current{};
  stats_ = Stats{};
  listeners_.clear();
}

bool NotificationManagerService::enqueue_toast_now(ToastRequest request) {
  // Clamp to the two durations Android offers.
  request.duration = request.duration >= kToastLong ? kToastLong : kToastShort;
  int& tokens = tokens_per_uid_[request.uid];
  if (tokens >= max_tokens_per_app_) {
    ++stats_.rejected;
    if (trace_->enabled()) {
      trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                     metrics::fmt("nms: enqueueToast rejected uid=%d (cap %d)", request.uid,
                                  max_tokens_per_app_));
    }
    return false;
  }
  ++tokens;
  ++stats_.enqueued;
  if (!serialized_) {
    // Legacy (pre-Android 8): no one-at-a-time scheduling; the toast is
    // shown immediately and may overlap others ("one toast may appear
    // before the previous toast disappears", Section II-B).
    --tokens;
    const sim::SimTime create =
        deterministic_ ? toast_create_.mean() : toast_create_.sample(rng_);
    loop_->schedule_after(create, [this, request = std::move(request)] {
      ui::Window w;
      w.owner_uid = request.uid;
      w.bounds = request.bounds;
      w.content = request.content;
      const ui::WindowId id = wms_->add_toast_now(w);
      ++stats_.shown;
      for (const auto& l : listeners_) l(request, id);
      loop_->schedule_after(request.duration,
                            [this, id] { wms_->fade_out_and_remove(id); });
    });
    return true;
  }
  queue_.push_back(std::move(request));
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                   metrics::fmt("nms: token enqueued uid=%d depth=%zu", queue_.back().uid,
                                queue_.size()));
  }
  maybe_show_next();
  return true;
}

void NotificationManagerService::maybe_show_next() {
  if (showing_ || queue_.empty()) return;
  if (loop_->now() < next_allowed_show_) {
    // Toast-gap defense: wait out the mandated gap, then retry.
    loop_->schedule_at(next_allowed_show_, [this] { maybe_show_next(); });
    return;
  }
  showing_ = true;
  const ToastRequest request = queue_.front();
  queue_.pop_front();
  --tokens_per_uid_[request.uid];
  current_ = Current{request.uid, ui::kInvalidWindow, {}, false};

  // The Window Manager needs Tas to create the toast surface.
  const sim::SimTime create = deterministic_ ? toast_create_.mean() : toast_create_.sample(rng_);
  loop_->schedule_after(create, [this, request] {
    ui::Window w;
    w.owner_uid = request.uid;
    w.bounds = request.bounds;
    w.content = request.content;
    const ui::WindowId id = wms_->add_toast_now(w);
    ++stats_.shown;
    if (trace_->enabled()) {
      trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                     metrics::fmt("nms: toast shown uid=%d id=%llu dur=%.0fms", request.uid,
                                  static_cast<unsigned long long>(id),
                                  sim::to_ms(request.duration)));
    }
    current_.window = id;
    current_.on_screen = true;
    current_.shown_at = loop_->now();
    // When the duration elapses, start the fade-out and immediately
    // fetch the next token (Section IV-C step 2).
    current_.expiry = loop_->schedule_after(request.duration, [this, id] { retire(id); });
    for (const auto& l : listeners_) l(request, id);
  });
}

void NotificationManagerService::retire(ui::WindowId id) {
  // Full-opacity slot of the retiring toast (surface landed -> fade-out
  // start); the 500 ms fade tails are separate kAnimation records.
  if (current_.on_screen && current_.window == id) {
    sim::profile_span("nms.toast_visible", sim::TraceCategory::kSystemServer,
                      current_.shown_at, loop_->now());
    if (trace_->enabled()) {
      trace_->span(current_.shown_at, loop_->now(), sim::TraceCategory::kSystemServer,
                   metrics::fmt("toast visible uid=%d id=%llu", current_.uid,
                                static_cast<unsigned long long>(id)));
    }
  }
  wms_->fade_out_and_remove(id);
  showing_ = false;
  current_ = Current{};
  next_allowed_show_ = loop_->now() + inter_toast_gap_;
  maybe_show_next();
}

bool NotificationManagerService::cancel_current(int uid) {
  if (!showing_ || current_.uid != uid || !current_.on_screen) return false;
  loop_->cancel(current_.expiry);
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                   metrics::fmt("nms: toast cancelled uid=%d id=%llu", uid,
                                static_cast<unsigned long long>(current_.window)));
  }
  retire(current_.window);
  return true;
}

int NotificationManagerService::cancel_queued(int uid, std::string_view keep_content) {
  int dropped = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->uid == uid && it->content != keep_content) {
      --tokens_per_uid_[uid];
      it = queue_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0 && trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                   metrics::fmt("nms: %d queued tokens cancelled uid=%d", dropped, uid));
  }
  return dropped;
}

int NotificationManagerService::queued_tokens(int uid) const {
  const auto it = tokens_per_uid_.find(uid);
  return it == tokens_per_uid_.end() ? 0 : it->second;
}

}  // namespace animus::server
