// Simulated WindowManagerService.
//
// Owns every on-screen surface, in z-order, and keeps the *history* of
// windows (creation and removal timestamps) so that perception models
// (toast flicker) and input semantics (gesture cancellation when a window
// disappears mid-contact) can be evaluated over the full timeline.
//
// Latency note: the WMS methods here are the *server-side completion*
// points; Binder transit and server processing costs are applied by
// SystemServer before these run (Fig. 3's Tam/Trm/Tas).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/trace.hpp"
#include "ui/window.hpp"

namespace animus::server {

/// A window plus its lifetime; removed_at is unset while alive.
struct WindowRecord {
  ui::Window window;
  std::optional<sim::SimTime> removed_at;

  [[nodiscard]] bool alive_at(sim::SimTime t) const {
    return t >= window.added_at && (!removed_at || t < *removed_at);
  }
};

class WindowManagerService {
 public:
  WindowManagerService(sim::EventLoop& loop, sim::TraceRecorder& trace);

  /// Place a window on screen *now*. Returns its id.
  ui::WindowId add_window_now(ui::Window window);

  /// Place a toast window *now* with the 500 ms DecelerateInterpolator
  /// fade-in attached (Section IV-B).
  ui::WindowId add_toast_now(ui::Window window);

  /// Remove a window immediately (overlay removal path: "System Server
  /// removes O1 instantly", Section III-C). Returns false if unknown/dead.
  bool remove_window_now(ui::WindowId id);

  /// Start the 500 ms AccelerateInterpolator fade-out on a toast and
  /// schedule its physical removal when the animation ends.
  bool fade_out_and_remove(ui::WindowId id);

  // ----- queries over live state -----

  /// Topmost *touchable* live window containing `p` (higher base layer
  /// wins; ties broken by most-recent addition).
  [[nodiscard]] const WindowRecord* topmost_touchable_at(ui::Point p, sim::SimTime t) const;

  /// Topmost live window of any kind at a point (for rendering queries).
  [[nodiscard]] const WindowRecord* topmost_at(ui::Point p, sim::SimTime t) const;

  [[nodiscard]] bool alive_at(ui::WindowId id, sim::SimTime t) const;
  [[nodiscard]] const WindowRecord* find(ui::WindowId id) const;

  /// Live overlay (TYPE_APPLICATION_OVERLAY) windows owned by `uid` —
  /// the check System Server performs before clearing the alert.
  [[nodiscard]] int overlay_count(int uid) const;

  /// Live windows of a given type owned by `uid`.
  [[nodiscard]] int count(int uid, ui::WindowType type) const;

  // ----- queries over history (perception / analysis) -----

  /// Maximum alpha over all (live or historical) windows of `uid` whose
  /// content starts with `content_prefix`, evaluated at time `t`. This is
  /// what the user "sees" of the attacker's fake surface; the flicker
  /// detector samples it per frame.
  [[nodiscard]] double max_alpha_at(int uid, std::string_view content_prefix,
                                    sim::SimTime t) const;

  /// Composited opacity of all of `uid`'s matching surfaces stacked on
  /// top of each other: 1 - prod(1 - alpha_i). During a toast switch the
  /// fading-out old toast and the fading-in new toast overlap, so the
  /// *combined* coverage is what the user perceives (both render the
  /// same fake-keyboard content).
  [[nodiscard]] double combined_alpha_at(int uid, std::string_view content_prefix,
                                         sim::SimTime t) const;

  [[nodiscard]] const std::vector<WindowRecord>& history() const { return records_; }
  [[nodiscard]] std::size_t live_count() const;

  /// Total number of add operations ever performed.
  [[nodiscard]] std::size_t total_added() const { return records_.size(); }

  /// Restore the freshly-constructed state (history and live set
  /// emptied, ids rewound); storage capacity is retained for the next
  /// trial of a session.
  void reset() {
    next_id_ = 1;
    records_.clear();
    live_.clear();
  }

 private:
  [[nodiscard]] WindowRecord* find_mutable(ui::WindowId id);

  sim::EventLoop* loop_;
  sim::TraceRecorder* trace_;
  std::uint64_t next_id_ = 1;
  std::vector<WindowRecord> records_;
  /// Indices into records_ of windows not yet removed. Ids are dense and
  /// records append-only, so find() is array indexing, and the live set
  /// keeps the per-event queries (overlay_count, topmost_* at now())
  /// O(live) instead of O(history) — the draw-and-destroy attack grows
  /// the history by two records per cycle while at most a handful of
  /// windows are ever alive at once.
  std::vector<std::uint32_t> live_;
};

}  // namespace animus::server
