// Simulated input pipeline.
//
// A tap is a short *gesture*: finger down, contact for ~10-20 ms, finger
// up. The dispatcher binds the gesture to the topmost touchable window
// under the down-point; if that window disappears before the finger
// lifts, the gesture is cancelled (Android sends ACTION_CANCEL) and the
// tap is delivered to no one. This is the microscopic mechanism behind
// the paper's "mistouch" losses: a draw-and-destroy cycle boundary that
// lands inside a gesture destroys that gesture, and a tap that begins
// inside the gap Tmis finds no overlay at all and falls through to the
// window beneath (the victim app or the real keyboard).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "server/window_manager.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"
#include "ui/geometry.hpp"

namespace animus::server {

/// Finger-contact duration model (milliseconds).
struct TouchContactModel {
  double mean_ms = 14.0;
  double sd_ms = 4.0;
  double min_ms = 6.0;
  double max_ms = 28.0;
};

struct TouchOutcome {
  enum class Kind : std::uint8_t {
    kDelivered,  // gesture completed on the bound window
    kCancelled,  // bound window vanished mid-contact (ACTION_CANCEL)
    kNoTarget,   // no touchable window under the point
  };
  Kind kind = Kind::kNoTarget;
  ui::WindowId target = ui::kInvalidWindow;
  ui::WindowType target_type = ui::WindowType::kActivity;
  int target_uid = -1;
};

class InputDispatcher {
 public:
  struct Stats {
    std::size_t taps = 0;
    std::size_t delivered = 0;
    std::size_t cancelled = 0;
    std::size_t untargeted = 0;
  };

  InputDispatcher(sim::EventLoop& loop, sim::TraceRecorder& trace, WindowManagerService& wms,
                  sim::Rng rng);

  /// Inject a tap at `p` now. The outcome is known when the finger lifts;
  /// `done` (optional) runs at that point. On delivery the target
  /// window's on_touch handler receives (down_time, p).
  void inject_tap(ui::Point p, std::function<void(const TouchOutcome&)> done = {});

  /// Same, with an explicit contact duration (tests).
  void inject_tap(ui::Point p, sim::SimTime contact,
                  std::function<void(const TouchOutcome&)> done = {});

  void set_contact_model(const TouchContactModel& m) { contact_ = m; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Restore the freshly-constructed state with a fresh RNG substream.
  void reset(sim::Rng rng) {
    rng_ = rng;
    contact_ = TouchContactModel{};
    stats_ = Stats{};
  }

 private:
  sim::EventLoop* loop_;
  sim::TraceRecorder* trace_;
  WindowManagerService* wms_;
  sim::Rng rng_;
  TouchContactModel contact_;
  Stats stats_;
};

}  // namespace animus::server
