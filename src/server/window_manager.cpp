#include "server/window_manager.hpp"

#include <algorithm>

#include "metrics/table.hpp"
#include "ui/animation.hpp"

namespace animus::server {

WindowManagerService::WindowManagerService(sim::EventLoop& loop, sim::TraceRecorder& trace)
    : loop_(&loop), trace_(&trace) {}

ui::WindowId WindowManagerService::add_window_now(ui::Window window) {
  window.id = next_id_++;
  window.added_at = loop_->now();
  trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                 metrics::fmt("wms: add %s uid=%d id=%llu",
                              std::string(ui::to_string(window.type)).c_str(),
                              window.owner_uid,
                              static_cast<unsigned long long>(window.id)));
  records_.push_back(WindowRecord{std::move(window), std::nullopt});
  return records_.back().window.id;
}

ui::WindowId WindowManagerService::add_toast_now(ui::Window window) {
  window.type = ui::WindowType::kToast;
  window.enter_fade = ui::FadeAnimation{ui::toast_fade_in(), loop_->now(), /*fade_in=*/true};
  return add_window_now(std::move(window));
}

bool WindowManagerService::remove_window_now(ui::WindowId id) {
  WindowRecord* rec = find_mutable(id);
  if (rec == nullptr || rec->removed_at.has_value()) return false;
  rec->removed_at = loop_->now();
  // The whole on-screen lifetime as one duration span: Perfetto then shows
  // each window as a bar from addView completion to removal.
  trace_->span(rec->window.added_at, loop_->now(), sim::TraceCategory::kSystemServer,
               metrics::fmt("window %s uid=%d id=%llu",
                            std::string(ui::to_string(rec->window.type)).c_str(),
                            rec->window.owner_uid,
                            static_cast<unsigned long long>(id)));
  trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                 metrics::fmt("wms: remove id=%llu", static_cast<unsigned long long>(id)));
  return true;
}

bool WindowManagerService::fade_out_and_remove(ui::WindowId id) {
  WindowRecord* rec = find_mutable(id);
  if (rec == nullptr || rec->removed_at.has_value()) return false;
  const ui::Animation anim = ui::toast_fade_out();
  rec->window.exit_fade = ui::FadeAnimation{anim, loop_->now(), /*fade_in=*/false};
  trace_->record(loop_->now(), sim::TraceCategory::kAnimation,
                 metrics::fmt("wms: fade-out start id=%llu",
                              static_cast<unsigned long long>(id)));
  loop_->schedule_after(anim.duration(), [this, id] { remove_window_now(id); });
  return true;
}

namespace {
/// True when `a` draws above `b`.
bool above(const ui::Window& a, const ui::Window& b) {
  const int la = ui::base_layer(a.type), lb = ui::base_layer(b.type);
  if (la != lb) return la > lb;
  if (a.added_at != b.added_at) return a.added_at > b.added_at;
  return a.id > b.id;
}
}  // namespace

const WindowRecord* WindowManagerService::topmost_touchable_at(ui::Point p,
                                                               sim::SimTime t) const {
  const WindowRecord* best = nullptr;
  for (const auto& rec : records_) {
    if (!rec.alive_at(t) || !rec.window.touchable() || !rec.window.bounds.contains(p)) continue;
    if (best == nullptr || above(rec.window, best->window)) best = &rec;
  }
  return best;
}

const WindowRecord* WindowManagerService::topmost_at(ui::Point p, sim::SimTime t) const {
  const WindowRecord* best = nullptr;
  for (const auto& rec : records_) {
    if (!rec.alive_at(t) || !rec.window.bounds.contains(p)) continue;
    if (best == nullptr || above(rec.window, best->window)) best = &rec;
  }
  return best;
}

bool WindowManagerService::alive_at(ui::WindowId id, sim::SimTime t) const {
  const WindowRecord* rec = find(id);
  return rec != nullptr && rec->alive_at(t);
}

const WindowRecord* WindowManagerService::find(ui::WindowId id) const {
  for (const auto& rec : records_) {
    if (rec.window.id == id) return &rec;
  }
  return nullptr;
}

WindowRecord* WindowManagerService::find_mutable(ui::WindowId id) {
  for (auto& rec : records_) {
    if (rec.window.id == id) return &rec;
  }
  return nullptr;
}

int WindowManagerService::overlay_count(int uid) const {
  return count(uid, ui::WindowType::kAppOverlay);
}

int WindowManagerService::count(int uid, ui::WindowType type) const {
  int n = 0;
  const sim::SimTime now = loop_->now();
  for (const auto& rec : records_) {
    if (rec.alive_at(now) && rec.window.owner_uid == uid && rec.window.type == type) ++n;
  }
  return n;
}

double WindowManagerService::max_alpha_at(int uid, std::string_view content_prefix,
                                          sim::SimTime t) const {
  double best = 0.0;
  for (const auto& rec : records_) {
    if (rec.window.owner_uid != uid) continue;
    if (rec.window.content.rfind(content_prefix, 0) != 0) continue;
    if (t < rec.window.added_at) continue;
    if (rec.removed_at && t >= *rec.removed_at) continue;
    best = std::max(best, rec.window.alpha_at(t));
    if (best >= 1.0) break;
  }
  return best;
}

double WindowManagerService::combined_alpha_at(int uid, std::string_view content_prefix,
                                               sim::SimTime t) const {
  double transparency = 1.0;
  for (const auto& rec : records_) {
    if (rec.window.owner_uid != uid) continue;
    if (rec.window.content.rfind(content_prefix, 0) != 0) continue;
    if (t < rec.window.added_at) continue;
    if (rec.removed_at && t >= *rec.removed_at) continue;
    transparency *= 1.0 - rec.window.alpha_at(t);
    if (transparency <= 0.0) return 1.0;
  }
  return 1.0 - transparency;
}

std::size_t WindowManagerService::live_count() const {
  const sim::SimTime now = loop_->now();
  std::size_t n = 0;
  for (const auto& rec : records_) n += rec.alive_at(now);
  return n;
}

}  // namespace animus::server
