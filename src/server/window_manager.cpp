#include "server/window_manager.hpp"

#include <algorithm>

#include "metrics/table.hpp"
#include "ui/animation.hpp"

namespace animus::server {

WindowManagerService::WindowManagerService(sim::EventLoop& loop, sim::TraceRecorder& trace)
    : loop_(&loop), trace_(&trace) {}

ui::WindowId WindowManagerService::add_window_now(ui::Window window) {
  window.id = next_id_++;
  window.added_at = loop_->now();
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                   metrics::fmt("wms: add %s uid=%d id=%llu",
                                std::string(ui::to_string(window.type)).c_str(),
                                window.owner_uid,
                                static_cast<unsigned long long>(window.id)));
  }
  live_.push_back(static_cast<std::uint32_t>(records_.size()));
  records_.push_back(WindowRecord{std::move(window), std::nullopt});
  return records_.back().window.id;
}

ui::WindowId WindowManagerService::add_toast_now(ui::Window window) {
  window.type = ui::WindowType::kToast;
  window.enter_fade = ui::FadeAnimation{ui::toast_fade_in(), loop_->now(), /*fade_in=*/true};
  return add_window_now(std::move(window));
}

bool WindowManagerService::remove_window_now(ui::WindowId id) {
  WindowRecord* rec = find_mutable(id);
  if (rec == nullptr || rec->removed_at.has_value()) return false;
  rec->removed_at = loop_->now();
  const auto idx = static_cast<std::uint32_t>(rec - records_.data());
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i] == idx) {
      live_[i] = live_.back();
      live_.pop_back();
      break;
    }
  }
  // The whole on-screen lifetime as one duration span: Perfetto then shows
  // each window as a bar from addView completion to removal.
  sim::profile_span(rec->window.type == ui::WindowType::kToast ? "wm.window.toast"
                                                               : "wm.window",
                    sim::TraceCategory::kSystemServer, rec->window.added_at, loop_->now());
  if (trace_->enabled()) {
    trace_->span(rec->window.added_at, loop_->now(), sim::TraceCategory::kSystemServer,
                 metrics::fmt("window %s uid=%d id=%llu",
                              std::string(ui::to_string(rec->window.type)).c_str(),
                              rec->window.owner_uid,
                              static_cast<unsigned long long>(id)));
    trace_->record(loop_->now(), sim::TraceCategory::kSystemServer,
                   metrics::fmt("wms: remove id=%llu", static_cast<unsigned long long>(id)));
  }
  return true;
}

bool WindowManagerService::fade_out_and_remove(ui::WindowId id) {
  WindowRecord* rec = find_mutable(id);
  if (rec == nullptr || rec->removed_at.has_value()) return false;
  const ui::Animation anim = ui::toast_fade_out();
  rec->window.exit_fade = ui::FadeAnimation{anim, loop_->now(), /*fade_in=*/false};
  if (trace_->enabled()) {
    trace_->record(loop_->now(), sim::TraceCategory::kAnimation,
                   metrics::fmt("wms: fade-out start id=%llu",
                                static_cast<unsigned long long>(id)));
  }
  loop_->schedule_after(anim.duration(), [this, id] { remove_window_now(id); });
  return true;
}

namespace {
/// True when `a` draws above `b`.
bool above(const ui::Window& a, const ui::Window& b) {
  const int la = ui::base_layer(a.type), lb = ui::base_layer(b.type);
  if (la != lb) return la > lb;
  if (a.added_at != b.added_at) return a.added_at > b.added_at;
  return a.id > b.id;
}
}  // namespace

const WindowRecord* WindowManagerService::topmost_touchable_at(ui::Point p,
                                                               sim::SimTime t) const {
  const WindowRecord* best = nullptr;
  if (t == loop_->now()) {
    // Current-time query (the input hot path): only the live set can
    // match, and every live record is alive at now().
    for (const std::uint32_t idx : live_) {
      const WindowRecord& rec = records_[idx];
      if (!rec.window.touchable() || !rec.window.bounds.contains(p)) continue;
      if (best == nullptr || above(rec.window, best->window)) best = &rec;
    }
    return best;
  }
  for (const auto& rec : records_) {
    if (!rec.alive_at(t) || !rec.window.touchable() || !rec.window.bounds.contains(p)) continue;
    if (best == nullptr || above(rec.window, best->window)) best = &rec;
  }
  return best;
}

const WindowRecord* WindowManagerService::topmost_at(ui::Point p, sim::SimTime t) const {
  const WindowRecord* best = nullptr;
  if (t == loop_->now()) {
    for (const std::uint32_t idx : live_) {
      const WindowRecord& rec = records_[idx];
      if (!rec.window.bounds.contains(p)) continue;
      if (best == nullptr || above(rec.window, best->window)) best = &rec;
    }
    return best;
  }
  for (const auto& rec : records_) {
    if (!rec.alive_at(t) || !rec.window.bounds.contains(p)) continue;
    if (best == nullptr || above(rec.window, best->window)) best = &rec;
  }
  return best;
}

bool WindowManagerService::alive_at(ui::WindowId id, sim::SimTime t) const {
  const WindowRecord* rec = find(id);
  return rec != nullptr && rec->alive_at(t);
}

const WindowRecord* WindowManagerService::find(ui::WindowId id) const {
  // Ids are minted densely from 1 in append order, so a record's index
  // is its id - 1.
  if (id == 0 || id > records_.size()) return nullptr;
  return &records_[static_cast<std::size_t>(id - 1)];
}

WindowRecord* WindowManagerService::find_mutable(ui::WindowId id) {
  if (id == 0 || id > records_.size()) return nullptr;
  return &records_[static_cast<std::size_t>(id - 1)];
}

int WindowManagerService::overlay_count(int uid) const {
  return count(uid, ui::WindowType::kAppOverlay);
}

int WindowManagerService::count(int uid, ui::WindowType type) const {
  int n = 0;
  for (const std::uint32_t idx : live_) {
    const ui::Window& w = records_[idx].window;
    if (w.owner_uid == uid && w.type == type) ++n;
  }
  return n;
}

double WindowManagerService::max_alpha_at(int uid, std::string_view content_prefix,
                                          sim::SimTime t) const {
  double best = 0.0;
  for (const auto& rec : records_) {
    if (rec.window.owner_uid != uid) continue;
    if (rec.window.content.rfind(content_prefix, 0) != 0) continue;
    if (t < rec.window.added_at) continue;
    if (rec.removed_at && t >= *rec.removed_at) continue;
    best = std::max(best, rec.window.alpha_at(t));
    if (best >= 1.0) break;
  }
  return best;
}

double WindowManagerService::combined_alpha_at(int uid, std::string_view content_prefix,
                                               sim::SimTime t) const {
  double transparency = 1.0;
  for (const auto& rec : records_) {
    if (rec.window.owner_uid != uid) continue;
    if (rec.window.content.rfind(content_prefix, 0) != 0) continue;
    if (t < rec.window.added_at) continue;
    if (rec.removed_at && t >= *rec.removed_at) continue;
    transparency *= 1.0 - rec.window.alpha_at(t);
    if (transparency <= 0.0) return 1.0;
  }
  return 1.0 - transparency;
}

std::size_t WindowManagerService::live_count() const { return live_.size(); }

}  // namespace animus::server
