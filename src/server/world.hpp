// World: one simulated handset.
//
// Owns the event loop, randomness, trace, and every system service, wired
// for a given device profile. Attacks, victims and experiments all
// operate through a World. Construction order matters (services hold
// references); destruction is the reverse, and nothing outlives the
// World.
//
// Typical use:
//   server::World world{{.profile = device::reference_device(), .seed = 1}};
//   world.server().grant_overlay_permission(kMalwareUid);
//   core::OverlayAttack attack{world, {...}};
//   attack.start();
//   world.run_until(sim::seconds(30));
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "device/profile.hpp"
#include "ipc/transaction_log.hpp"
#include "server/input_dispatcher.hpp"
#include "server/notification_manager.hpp"
#include "server/system_server.hpp"
#include "server/system_ui.hpp"
#include "server/window_manager.hpp"
#include "sim/actor.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "sim/trace.hpp"

namespace animus::server {

/// Conventional uids used across examples, tests and benches.
inline constexpr int kMalwareUid = 10666;
inline constexpr int kVictimUid = 10100;
inline constexpr int kBenignUid = 10200;
inline constexpr int kImeUid = 10001;

struct WorldConfig {
  device::DeviceProfile profile;
  std::uint64_t seed = 0x414e494d5553ULL;  // "ANIMUS"
  /// Use latency means instead of samples (boundary searches).
  bool deterministic = false;
  bool trace_enabled = true;
};

class World {
 public:
  explicit World(WorldConfig config);
  /// Publishes run counters to obs::global_registry() and, when this
  /// World claimed the process-wide trace capture, delivers its trace.
  ~World();

  // ----- epoch lifecycle (TrialSession fast path) -----
  //
  // A World *epoch* is one trial's worth of simulated activity: it opens
  // at construction (or reset_to_epoch) and closes at finish_epoch, which
  // publishes the same telemetry destruction would. reset_to_epoch then
  // restores the pristine just-constructed state for `config` without
  // reallocating the event-loop slabs, window history or ledgers —
  // byte-identical to a fresh World, at a fraction of the cost.

  /// Close the current epoch: publish run counters and deliver the trace
  /// if this epoch claimed the process-wide capture. Idempotent; the
  /// destructor calls it for the final epoch.
  void finish_epoch();

  /// Finish the current epoch (if still open) and re-initialise every
  /// component exactly as `World(config)` would, reusing warm storage.
  void reset_to_epoch(WorldConfig config);
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] sim::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] ipc::TransactionLog& transactions() { return txlog_; }
  [[nodiscard]] WindowManagerService& wms() { return wms_; }
  [[nodiscard]] NotificationManagerService& nms() { return nms_; }
  [[nodiscard]] SystemUi& system_ui() { return sysui_; }
  [[nodiscard]] SystemServer& server() { return server_; }
  [[nodiscard]] InputDispatcher& input() { return input_; }
  [[nodiscard]] const device::DeviceProfile& profile() const { return config_.profile; }
  [[nodiscard]] sim::SimTime now() const { return loop_.now(); }

  /// Create a named execution context (an app thread). The World owns it.
  sim::Actor& new_actor(std::string name);

  /// Fork a deterministic RNG substream for a component.
  [[nodiscard]] sim::Rng fork_rng(std::string_view label) { return rng_.fork(label); }

  /// Advance simulated time to `t`; when tracing, the whole run shows up
  /// as one span on the "sim" track.
  void run_until(sim::SimTime t);
  void run_all() { loop_.run_all(); }

 private:
  WorldConfig config_;
  sim::EventLoop loop_;
  sim::Rng rng_;
  sim::TraceRecorder trace_;
  ipc::TransactionLog txlog_;
  WindowManagerService wms_;
  NotificationManagerService nms_;
  SystemUi sysui_;
  SystemServer server_;
  InputDispatcher input_;
  std::vector<std::unique_ptr<sim::Actor>> actors_;
  bool captured_ = false;    // this epoch holds the process trace capture
  bool epoch_open_ = true;   // telemetry for the current epoch not yet published
};

}  // namespace animus::server
