// Simulated System Server: the Binder surface apps call, plus the
// overlay-notification policy of Android 8+.
//
// Responsibilities reproduced from the paper (Sections II, III, VII-B):
//  - SYSTEM_ALERT_WINDOW permission gate on overlay windows;
//  - the Settings app (and installer) can never be covered by overlays;
//  - when an app's first overlay appears, notify System UI to slide in
//    the warning alert (after Tn, which includes the ANA delay on
//    Android 10/11);
//  - when an app's *last* overlay disappears, notify System UI to remove
//    the alert (after Tnr) — optionally postponed by the enhanced
//    notification defense (t = 690 ms), during which a re-added overlay
//    cancels the removal so the alert animation completes;
//  - toast requests are forwarded to the Notification Manager;
//  - every incoming call is recorded as a Binder transaction (the hook
//    the IPC defense of Section VII-A builds on).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "device/profile.hpp"
#include "ipc/binder.hpp"
#include "ipc/transaction_log.hpp"
#include "server/notification_manager.hpp"
#include "server/system_ui.hpp"
#include "server/window_manager.hpp"
#include "sim/actor.hpp"
#include "sim/rng.hpp"

namespace animus::server {

/// Client-side handle an app holds for a view it added; maps to the real
/// WindowId once the server has created the surface.
using ViewHandle = std::uint64_t;

/// Client-side blocking cost of addView — the reason the paper's attack
/// must call removeView *before* addView (Section III-C).
inline constexpr sim::SimTime kAddViewClientCost = sim::ms(5);

struct OverlaySpec {
  ui::Rect bounds{};
  std::uint32_t flags = ui::kFlagNone;
  std::string content = "overlay";
  std::function<void(sim::SimTime, ui::Point)> on_touch;
  /// Harvest coordinates from ACTION_DOWN (see ui::Window).
  bool deliver_on_down = false;
};

class SystemServer {
 public:
  SystemServer(sim::EventLoop& loop, sim::Rng rng, sim::TraceRecorder& trace,
               const device::DeviceProfile& profile, WindowManagerService& wms,
               NotificationManagerService& nms, SystemUi& sysui, ipc::TransactionLog& txlog);

  // ----- app-side API (call on the app thread at the current time) -----

  /// WindowManager.addView for an overlay window. Returns a handle, or 0
  /// when rejected (missing permission, or Settings in the foreground).
  ViewHandle add_view(int uid, OverlaySpec spec);

  /// WindowManager.removeView.
  void remove_view(int uid, ViewHandle handle);

  /// Toast.show(): enqueue a toast token.
  void enqueue_toast(int uid, ToastRequest request);

  /// Legacy TYPE_TOAST window (Section II-B1): a toast-layer view that
  /// persists until removed, requiring no permission. Removed since
  /// Android 8.0 — returns 0 there. Remove via remove_view().
  ViewHandle add_type_toast_view(int uid, ui::Rect bounds, std::string content);

  /// Toast.cancel(): retire the currently showing toast of `uid` early.
  void cancel_toast(int uid);

  /// Cancel queued Toast objects whose content differs from
  /// `keep_content` (the app still holds their references).
  void cancel_queued_toasts(int uid, std::string keep_content);

  // ----- policy / configuration -----

  void grant_overlay_permission(int uid) { overlay_permitted_.insert(uid); }
  void revoke_overlay_permission(int uid) { overlay_permitted_.erase(uid); }
  [[nodiscard]] bool has_overlay_permission(int uid) const {
    return overlay_permitted_.count(uid) > 0;
  }

  /// While true, overlay creation is refused (Settings app foreground).
  void set_settings_foreground(bool on) { settings_foreground_ = on; }

  /// Enhanced notification defense (Section VII-B): delay the
  /// notification-removal dispatch by `t`; 0 disables.
  void set_alert_removal_delay(sim::SimTime t) { alert_removal_delay_ = t; }
  [[nodiscard]] sim::SimTime alert_removal_delay() const { return alert_removal_delay_; }

  /// Disable latency jitter for boundary-search experiments.
  void set_deterministic(bool on);
  [[nodiscard]] bool deterministic() const { return deterministic_; }

  // ----- introspection -----

  [[nodiscard]] std::size_t rejected_overlays() const { return rejected_overlays_; }
  [[nodiscard]] const device::DeviceProfile& profile() const { return profile_; }
  [[nodiscard]] sim::SimTime effective_tn() const;

  /// Restore the freshly-constructed state for `profile` with a fresh RNG
  /// substream (permissions, policy toggles, handles and pending-dispatch
  /// bookkeeping all cleared). In-flight events must be torn down
  /// separately via EventLoop::reset.
  void reset(sim::Rng rng, const device::DeviceProfile& profile);

 private:
  sim::SimTime sample(const ipc::LatencyModel& m);
  /// Deliver a Notification-Manager call after `transit`, preserving
  /// issue order: oneway Binder transactions to the same node arrive
  /// FIFO, so a later call can never overtake an earlier one.
  void deliver_to_nms(sim::SimTime transit, std::function<void()> handler);
  void on_overlay_added(int uid);
  void on_overlay_removed(int uid);

  sim::EventLoop* loop_;
  sim::Rng rng_;
  sim::TraceRecorder* trace_;
  device::DeviceProfile profile_;
  WindowManagerService* wms_;
  NotificationManagerService* nms_;
  SystemUi* sysui_;
  ipc::TransactionLog* txlog_;

  device::VersionTraits traits_;
  bool deterministic_ = false;
  bool settings_foreground_ = false;
  sim::SimTime alert_removal_delay_{0};
  std::set<int> overlay_permitted_;
  std::size_t rejected_overlays_ = 0;

  ViewHandle next_handle_ = 1;
  std::map<ViewHandle, ui::WindowId> handle_to_window_;
  std::set<ViewHandle> deferred_removals_;
  std::map<int, sim::EventLoop::EventId> pending_alert_removal_;  // per uid (defense)
  std::map<int, sim::EventLoop::EventId> pending_alert_show_;     // per uid (in-flight Tn)
  sim::SimTime nms_last_delivery_{0};  // FIFO guarantee for NMS calls
};

}  // namespace animus::server
