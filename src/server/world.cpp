#include "server/world.hpp"

#include "ipc/transaction_log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_capture.hpp"
#include "sim/span.hpp"

namespace animus::server {

World::World(WorldConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      wms_(loop_, trace_),
      nms_(loop_, trace_, wms_, config_.profile, rng_.fork("nms")),
      sysui_(loop_, trace_, config_.profile),
      server_(loop_, rng_.fork("system_server"), trace_, config_.profile, wms_, nms_, sysui_,
              txlog_),
      input_(loop_, trace_, wms_, rng_.fork("input")) {
  // Simulated time starts at zero for this trial: clear the sweep
  // profiler's containment stack left by the previous trial on this
  // thread (self-time attribution would otherwise cross trials).
  sim::profile_flush();
  trace_.set_enabled(config_.trace_enabled);
  server_.set_deterministic(config_.deterministic);
  // If --trace-out armed the process-wide capture for the trial this
  // World is constructed in, claim it and force tracing on: sweeps run
  // with trace_enabled=false by default, but the captured representative
  // trial must record everything.
  if (obs::trace_capture().try_claim()) {
    captured_ = true;
    trace_.set_enabled(true);
  }
  if (trace_.enabled()) txlog_.set_trace(&trace_);
}

World::~World() { finish_epoch(); }

void World::finish_epoch() {
  if (!epoch_open_) return;
  epoch_open_ = false;
  // Trial boundary for the sweep profiler: simulated time rewinds before
  // the next epoch (or the next World on this thread).
  sim::profile_flush();
  // Publish run totals to the process-wide registry. Worlds are destroyed
  // on worker threads during parallel sweeps; all updates are atomic.
  auto& reg = obs::global_registry();
  reg.counter("animus_worlds_total").inc();
  reg.counter("animus_events_executed_total").add(static_cast<double>(loop_.executed()));
  reg.counter("animus_events_cancelled_total").add(static_cast<double>(loop_.cancelled()));
  reg.gauge("animus_events_max_pending").set_max(static_cast<double>(loop_.max_pending()));
  // Nonzero means some run_all() stopped at its max_events guard with
  // events still pending — a runaway self-rescheduling loop that would
  // otherwise truncate a fault-injection sweep silently.
  if (loop_.hit_event_cap()) {
    reg.counter("animus_event_cap_hits_total").add(static_cast<double>(loop_.cap_hits()));
  }
  reg.counter("animus_windows_added_total").add(static_cast<double>(wms_.total_added()));
  reg.counter("animus_toasts_shown_total").add(static_cast<double>(nms_.stats().shown));
  reg.counter("animus_toasts_rejected_total").add(static_cast<double>(nms_.stats().rejected));
  reg.counter("animus_overlays_rejected_total")
      .add(static_cast<double>(server_.rejected_overlays()));
  const SystemUi::AlertStats alerts = sysui_.totals();
  reg.counter("animus_alert_shows_total").add(static_cast<double>(alerts.shows));
  reg.counter("animus_alert_dismissals_total").add(static_cast<double>(alerts.dismissals));
  reg.counter("animus_alert_completions_total").add(static_cast<double>(alerts.completions));
  using ipc::MethodCode;
  for (const MethodCode m : {MethodCode::kAddView, MethodCode::kRemoveView,
                             MethodCode::kEnqueueToast, MethodCode::kOther}) {
    const std::size_t n = txlog_.count(m);
    if (n == 0) continue;
    reg.counter("animus_binder_transactions_total",
                {{"method", std::string(ipc::to_string(m))}})
        .add(static_cast<double>(n));
  }
  if (captured_) {
    obs::trace_capture().deliver(trace_);
    captured_ = false;
  }
}

void World::reset_to_epoch(WorldConfig config) {
  finish_epoch();
  config_ = std::move(config);
  // Mirror the construction sequence exactly: member-init order first
  // (loop, rng, trace, txlog, wms, nms, sysui, server, input — the RNG
  // forks MUST be drawn in that order to reproduce the substreams), then
  // the constructor body.
  loop_.reset();
  actors_.clear();
  rng_ = sim::Rng(config_.seed);
  trace_.reset();
  txlog_.reset();
  wms_.reset();
  nms_.reset(config_.profile, rng_.fork("nms"));
  sysui_.reset(config_.profile);
  server_.reset(rng_.fork("system_server"), config_.profile);
  input_.reset(rng_.fork("input"));
  trace_.set_enabled(config_.trace_enabled);
  server_.set_deterministic(config_.deterministic);
  if (obs::trace_capture().try_claim()) {
    captured_ = true;
    trace_.set_enabled(true);
  }
  if (trace_.enabled()) txlog_.set_trace(&trace_);
  epoch_open_ = true;
}

void World::run_until(sim::SimTime t) {
  sim::ScopedSpan span(trace_, loop_, sim::TraceCategory::kSim, "run_until", 0.0,
                       "world.run_until");
  loop_.run_until(t);
}

sim::Actor& World::new_actor(std::string name) {
  actors_.push_back(std::make_unique<sim::Actor>(loop_, std::move(name)));
  return *actors_.back();
}

}  // namespace animus::server
