#include "server/world.hpp"

namespace animus::server {

World::World(WorldConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      wms_(loop_, trace_),
      nms_(loop_, trace_, wms_, config_.profile, rng_.fork("nms")),
      sysui_(loop_, trace_, config_.profile),
      server_(loop_, rng_.fork("system_server"), trace_, config_.profile, wms_, nms_, sysui_,
              txlog_),
      input_(loop_, trace_, wms_, rng_.fork("input")) {
  trace_.set_enabled(config_.trace_enabled);
  server_.set_deterministic(config_.deterministic);
}

sim::Actor& World::new_actor(std::string name) {
  actors_.push_back(std::make_unique<sim::Actor>(loop_, std::move(name)));
  return *actors_.back();
}

}  // namespace animus::server
