#include "metrics/table.hpp"

#include <cstdarg>
#include <cstdio>

namespace animus::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

const std::string& Table::cell(std::size_t r, std::size_t c) const {
  static const std::string empty;
  if (r >= rows_.size() || c >= rows_[r].size()) return empty;
  return rows_[r][c];
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += ' ' + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + '\n';
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) sep += std::string(width[c] + 2, '-') + "|";
  out += sep + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Table::to_csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) line += ',';
      line += row[c];
    }
    return line + '\n';
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

std::string percent(double fraction) { return fmt("%.1f%%", fraction * 100.0); }

}  // namespace animus::metrics
