// Fixed-width ASCII table printer used by every bench binary so that the
// reproduced tables visually resemble the paper's.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace animus::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; extra/missing cells relative to the header count are
  /// an error in the caller and are padded/truncated defensively.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Cell (r, c) as written (padded empty when out of range), so
  /// callers can derive commentary from a finished table.
  [[nodiscard]] const std::string& cell(std::size_t r, std::size_t c) const;

  /// Render with a header separator, columns padded to content width.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (no quoting of separators; cells must be simple).
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style convenience: fmt("%.1f", x).
std::string fmt(const char* format, ...) __attribute__((format(printf, 1, 2)));

/// "93.2%"-style percent with one decimal.
std::string percent(double fraction);

}  // namespace animus::metrics
