// Fixed-bin histogram with ASCII rendering for the curve figures
// (Fig. 2 / Fig. 4) and latency distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace animus::metrics {

class Histogram {
 public:
  /// `bins` equal-width bins over [lo, hi); out-of-range samples clamp
  /// into the first/last bin.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Horizontal bar chart, one line per bin.
  [[nodiscard]] std::string to_string(std::size_t max_bar = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Render a y(x) series as a coarse ASCII line chart (used by the
/// figure benches to show the interpolator curves in the terminal).
std::string ascii_curve(const std::vector<double>& xs, const std::vector<double>& ys,
                        std::size_t width = 72, std::size_t height = 20);

}  // namespace animus::metrics
