// Small numerically-stable statistics toolkit used by every experiment.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace animus::metrics {

/// Welford running mean/variance with min/max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& o);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated quantile of a sample (q in [0,1]). Copies + sorts.
double quantile(std::span<const double> xs, double q);

double mean(std::span<const double> xs);
double median(std::span<const double> xs);
double stddev(std::span<const double> xs);

/// Tukey five-number summary (the box-plot of Fig. 7).
struct FiveNumber {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
};
FiveNumber five_number_summary(std::span<const double> xs);

/// Box-plot whiskers at 1.5*IQR with outliers listed (box-plot rendering).
struct BoxPlot {
  FiveNumber summary;
  double lower_whisker = 0, upper_whisker = 0;
  std::vector<double> outliers;
  double mean = 0;
};
BoxPlot box_plot(std::span<const double> xs);

}  // namespace animus::metrics
