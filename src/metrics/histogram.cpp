#include "metrics/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "metrics/table.hpp"

namespace animus::metrics {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto i = static_cast<std::ptrdiff_t>(std::floor(t * static_cast<double>(counts_.size())));
  i = std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(i)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::to_string(std::size_t max_bar) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(counts_[i]) / static_cast<double>(peak) *
                     static_cast<double>(max_bar)));
    out += fmt("[%8.2f, %8.2f) %6zu ", bin_lo(i), bin_hi(i), counts_[i]);
    out += std::string(bar, '#');
    out += '\n';
  }
  return out;
}

std::string ascii_curve(const std::vector<double>& xs, const std::vector<double>& ys,
                        std::size_t width, std::size_t height) {
  if (xs.empty() || xs.size() != ys.size() || width < 2 || height < 2) return {};
  const auto [xmin_it, xmax_it] = std::minmax_element(xs.begin(), xs.end());
  const auto [ymin_it, ymax_it] = std::minmax_element(ys.begin(), ys.end());
  const double xmin = *xmin_it, xmax = *xmax_it;
  double ymin = *ymin_it, ymax = *ymax_it;
  if (xmax <= xmin) return {};
  if (ymax <= ymin) ymax = ymin + 1.0;
  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    auto col = static_cast<std::size_t>(std::llround((xs[i] - xmin) / (xmax - xmin) *
                                                     static_cast<double>(width - 1)));
    auto row = static_cast<std::size_t>(std::llround((ys[i] - ymin) / (ymax - ymin) *
                                                     static_cast<double>(height - 1)));
    grid[height - 1 - row][col] = '*';
  }
  std::string out;
  for (std::size_t r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * static_cast<double>(r) / static_cast<double>(height - 1);
    out += fmt("%8.2f |", yv) + grid[r] + '\n';
  }
  out += "         +" + std::string(width, '-') + '\n';
  out += fmt("          %-10.2f%*s%.2f\n", xmin, static_cast<int>(width) - 14, "", xmax);
  return out;
}

}  // namespace animus::metrics
