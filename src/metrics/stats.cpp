#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

namespace animus::metrics {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double delta = o.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
  const double total = n + m;
  m2_ = m2_ + o.m2_ + delta * delta * n * m / total;
  mean_ = (n * mean_ + m * o.mean_) / total;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  n_ += o.n_;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double stddev(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

FiveNumber five_number_summary(std::span<const double> xs) {
  FiveNumber f;
  if (xs.empty()) return f;
  f.min = quantile(xs, 0.0);
  f.q1 = quantile(xs, 0.25);
  f.median = quantile(xs, 0.5);
  f.q3 = quantile(xs, 0.75);
  f.max = quantile(xs, 1.0);
  return f;
}

BoxPlot box_plot(std::span<const double> xs) {
  BoxPlot bp;
  bp.summary = five_number_summary(xs);
  bp.mean = mean(xs);
  const double iqr = bp.summary.q3 - bp.summary.q1;
  const double lo_fence = bp.summary.q1 - 1.5 * iqr;
  const double hi_fence = bp.summary.q3 + 1.5 * iqr;
  bp.lower_whisker = bp.summary.max;  // start inverted; tighten below
  bp.upper_whisker = bp.summary.min;
  bool any_in_fence = false;
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) {
      bp.outliers.push_back(x);
    } else {
      any_in_fence = true;
      bp.lower_whisker = std::min(bp.lower_whisker, x);
      bp.upper_whisker = std::max(bp.upper_whisker, x);
    }
  }
  if (!any_in_fence) {
    bp.lower_whisker = bp.summary.min;
    bp.upper_whisker = bp.summary.max;
  }
  std::sort(bp.outliers.begin(), bp.outliers.end());
  return bp;
}

}  // namespace animus::metrics
