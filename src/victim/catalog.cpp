#include "victim/catalog.hpp"

#include <vector>

namespace animus::victim {

std::span<const CatalogEntry> table_iv_apps() {
  static const std::vector<CatalogEntry> kApps = [] {
    std::vector<CatalogEntry> v;
    auto app = [&v](std::string name, std::string version, bool disables_pwd_a11y,
                    bool extra_effort) {
      CatalogEntry e;
      e.spec.name = std::move(name);
      e.spec.version = std::move(version);
      e.spec.disables_password_accessibility = disables_pwd_a11y;
      e.spec.shares_parent_view = true;
      e.needs_extra_effort = extra_effort;
      v.push_back(std::move(e));
    };
    app("Bank of America", "8.1.16", false, false);
    app("Skype", "8.45.0.43", false, false);
    app("Facebook", "196.0.0.16.95", false, false);
    app("Evernote", "8.4.1", false, false);
    app("Snapchat", "10.44.3.0", false, false);
    app("Twitter", "7.68.1", false, false);
    app("Instagram", "69.0.0.10.95", false, false);
    // Alipay disables accessibility on the password widget; the attack
    // needs the username-widget timing + getParent() traversal.
    app("Alipay", "10.1.65", true, true);
    return v;
  }();
  return kApps;
}

const CatalogEntry* find_app(std::string_view name) {
  for (const auto& e : table_iv_apps()) {
    if (e.spec.name == name) return &e;
  }
  return nullptr;
}

}  // namespace animus::victim
