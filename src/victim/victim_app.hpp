// Victim application model: a login screen with username and password
// fields, the real software keyboard, and app-specific accessibility
// behaviour (Table IV).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "input/ime.hpp"
#include "sidechannel/shared_mem.hpp"
#include "server/world.hpp"
#include "victim/accessibility.hpp"

namespace animus::victim {

/// Widget identifiers inside the login activity.
enum Widget : int {
  kUsernameField = 1,
  kPasswordField = 2,
  kSignInButton = 3,
};

struct VictimAppSpec {
  std::string name = "victim";
  std::string version = "1.0";
  /// Alipay: no accessibility events from the password widget.
  bool disables_password_accessibility = false;
  /// Username and password widgets share a parent view, enabling the
  /// getParent() traversal workaround of Section VI-C1.
  bool shares_parent_view = true;
};

/// Opaque reference to a widget obtained through accessibility APIs —
/// what the malware needs in order to fill the password field up and
/// hide the attack.
struct WidgetRef {
  int widget_id = 0;
  [[nodiscard]] bool valid() const { return widget_id != 0; }
};

class VictimApp {
 public:
  VictimApp(server::World& world, VictimAppSpec spec);

  /// Create the login activity window and the real keyboard (hidden
  /// until a field takes focus).
  void open_login_screen();

  /// Move input focus (publishes the Section VI-C1 event sequence).
  void focus(Widget w);

  [[nodiscard]] Widget focused() const { return focused_; }
  [[nodiscard]] const std::string& username_text() const { return username_; }
  [[nodiscard]] const std::string& password_text() const { return password_; }
  [[nodiscard]] bool signed_in() const { return signed_in_; }
  [[nodiscard]] const VictimAppSpec& spec() const { return spec_; }

  [[nodiscard]] AccessibilityBus& bus() { return bus_; }
  [[nodiscard]] input::SoftKeyboard& ime() { return ime_; }

  /// Attach a shared-memory oracle: from then on activity transitions
  /// (login screen open, password-field focus) bump the process's
  /// public counter with their characteristic signatures — the side
  /// channel of Section V's alternative trigger.
  void attach_side_channel(sidechannel::SharedMemOracle& oracle) { oracle_ = &oracle; }

  /// Screen geometry of the fields (the malware aligns overlays/toasts
  /// with the keyboard, and taps on fields move focus).
  [[nodiscard]] ui::Rect username_bounds() const { return username_bounds_; }
  [[nodiscard]] ui::Rect password_bounds() const { return password_bounds_; }
  [[nodiscard]] ui::Rect keyboard_bounds() const { return keyboard_bounds_; }

  // ---- accessibility object APIs (used by the malware) ----

  /// getParent() traversal from the username widget to its siblings;
  /// yields the password widget reference when the app lays both out
  /// under one parent (Section VI-C1, Alipay workaround).
  [[nodiscard]] std::optional<WidgetRef> password_ref_via_parent() const;

  /// Direct reference from a password-widget accessibility event; only
  /// available when the app does not suppress those events.
  [[nodiscard]] std::optional<WidgetRef> password_ref_via_events() const;

  /// AccessibilityNodeInfo.setText(): the malware fills the real widget
  /// so the victim UI looks normal while inputs are intercepted.
  bool set_text_by_ref(WidgetRef ref, const std::string& text);

 private:
  void publish(AccessibilityEventType type, int widget);
  void on_activity_touch(sim::SimTime t, ui::Point p);
  void on_key(const input::KeyboardState::PressResult& r);

  server::World* world_;
  VictimAppSpec spec_;
  AccessibilityBus bus_;
  sidechannel::SharedMemOracle* oracle_ = nullptr;
  input::SoftKeyboard ime_;
  ui::WindowId activity_window_ = ui::kInvalidWindow;
  Widget focused_ = kUsernameField;
  bool any_focus_ = false;
  std::string username_;
  std::string password_;
  bool signed_in_ = false;
  ui::Rect username_bounds_{};
  ui::Rect password_bounds_{};
  ui::Rect keyboard_bounds_{};
};

}  // namespace animus::victim
