#include "victim/victim_app.hpp"

#include "metrics/table.hpp"

namespace animus::victim {
namespace {

/// Login-screen geometry for the standard 1080x2280 profile: fields in
/// the upper half, keyboard in the lower third.
constexpr ui::Rect kUsernameRect{90, 700, 900, 120};
constexpr ui::Rect kPasswordRect{90, 880, 900, 120};
constexpr ui::Rect kKeyboardRect{0, 1500, 1080, 780};

}  // namespace

VictimApp::VictimApp(server::World& world, VictimAppSpec spec)
    : world_(&world),
      spec_(std::move(spec)),
      ime_(world, kKeyboardRect),
      username_bounds_(kUsernameRect),
      password_bounds_(kPasswordRect),
      keyboard_bounds_(kKeyboardRect) {
  ime_.set_text_sink([this](const input::KeyboardState::PressResult& r) { on_key(r); });
}

void VictimApp::open_login_screen() {
  if (activity_window_ != ui::kInvalidWindow) return;
  ui::Window w;
  w.owner_uid = server::kVictimUid;
  w.type = ui::WindowType::kActivity;
  w.bounds = ui::Rect{0, 0, 1080, 2280};
  w.content = "victim:login:" + spec_.name;
  w.on_touch = [this](sim::SimTime t, ui::Point p) { on_activity_touch(t, p); };
  activity_window_ = world_->wms().add_window_now(std::move(w));
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                           metrics::fmt("victim %s: login screen", spec_.name.c_str()));
  }
  if (oracle_ != nullptr) {
    oracle_->record_transition(server::kVictimUid, "LoginActivity",
                               sidechannel::login_screen_signature());
  }
}

void VictimApp::publish(AccessibilityEventType type, int widget) {
  if (widget == kPasswordField && spec_.disables_password_accessibility) return;
  bus_.publish(AccessibilityEvent{type, widget, spec_.name, world_->now()});
}

void VictimApp::focus(Widget w) {
  if (any_focus_ && w == focused_) return;
  if (any_focus_) {
    // "When a user finished typing and switches the focus to another
    // widget, only one event (TYPE_WINDOW_CONTENT_CHANGED) was sent."
    publish(AccessibilityEventType::kWindowContentChanged, focused_);
  }
  focused_ = w;
  any_focus_ = true;
  if (oracle_ != nullptr && w == kPasswordField) {
    oracle_->record_transition(server::kVictimUid, "LoginActivity:password",
                               sidechannel::password_focus_signature());
  }
  publish(AccessibilityEventType::kViewFocused, w);
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                           metrics::fmt("victim %s: focus widget %d", spec_.name.c_str(), w));
  }
  if (w == kUsernameField || w == kPasswordField) {
    ime_.show();
  } else {
    ime_.hide();
  }
}

void VictimApp::on_activity_touch(sim::SimTime, ui::Point p) {
  if (username_bounds_.contains(p)) {
    focus(kUsernameField);
  } else if (password_bounds_.contains(p)) {
    focus(kPasswordField);
  }
}

void VictimApp::on_key(const input::KeyboardState::PressResult& r) {
  if (!any_focus_) return;
  std::string* field = focused_ == kPasswordField ? &password_
                       : focused_ == kUsernameField ? &username_ : nullptr;
  if (field == nullptr) return;
  if (r.backspace) {
    if (!field->empty()) field->pop_back();
  } else if (r.enter) {
    if (focused_ == kPasswordField && !password_.empty()) signed_in_ = true;
    return;
  } else if (r.ch) {
    field->push_back(*r.ch);
  } else {
    return;  // pure layout switch: no text change events
  }
  // "When a user starts typing, two events are sent by the input widget."
  publish(AccessibilityEventType::kViewTextChanged, focused_);
  publish(AccessibilityEventType::kWindowContentChanged, focused_);
}

std::optional<WidgetRef> VictimApp::password_ref_via_parent() const {
  if (!spec_.shares_parent_view) return std::nullopt;
  // getParent() on the username node, then enumerate children: the
  // password field is a sibling.
  return WidgetRef{kPasswordField};
}

std::optional<WidgetRef> VictimApp::password_ref_via_events() const {
  if (spec_.disables_password_accessibility) return std::nullopt;
  return WidgetRef{kPasswordField};
}

bool VictimApp::set_text_by_ref(WidgetRef ref, const std::string& text) {
  if (!ref.valid()) return false;
  switch (ref.widget_id) {
    case kUsernameField: username_ = text; return true;
    case kPasswordField: password_ = text; return true;
    default: return false;
  }
}

}  // namespace animus::victim
