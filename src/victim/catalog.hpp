// The eight real-world apps of Table IV, as victim-app specs.
#pragma once

#include <span>

#include "victim/victim_app.hpp"

namespace animus::victim {

/// Expected experimental outcome for Table IV.
struct CatalogEntry {
  VictimAppSpec spec;
  /// "*" in Table IV: compromise requires the username-widget workaround.
  bool needs_extra_effort = false;
};

/// Table IV, in row order: Bank of America, Skype, Facebook, Evernote,
/// Snapchat, Twitter, Instagram, Alipay.
std::span<const CatalogEntry> table_iv_apps();

/// Lookup by name (e.g. "Alipay"). Returns nullptr when unknown.
const CatalogEntry* find_app(std::string_view name);

}  // namespace animus::victim
