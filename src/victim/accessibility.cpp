#include "victim/accessibility.hpp"

namespace animus::victim {

std::string_view to_string(AccessibilityEventType t) {
  switch (t) {
    case AccessibilityEventType::kViewFocused: return "TYPE_VIEW_FOCUSED";
    case AccessibilityEventType::kViewTextChanged: return "TYPE_VIEW_TEXT_CHANGED";
    case AccessibilityEventType::kWindowContentChanged: return "TYPE_WINDOW_CONTENT_CHANGED";
  }
  return "?";
}

}  // namespace animus::victim
