// Victim payment app: a confirmation screen showing payee + amount, a
// PIN pad, and a confirm button. Used by the payment-hijack scenario the
// paper names as a further composition of the two draw-and-destroy
// primitives (Section I: "password stealing, content hiding and payment
// hijack").
#pragma once

#include <string>

#include "server/world.hpp"
#include "victim/accessibility.hpp"

namespace animus::victim {

/// Widget ids on the payment screen (disjoint from the login widgets).
enum PaymentWidget : int {
  kAmountLabel = 10,
  kPinPad = 11,
  kConfirmButton = 12,
};

struct PaymentRequest {
  std::string payee;
  long amount_cents = 0;
};

class PaymentApp {
 public:
  PaymentApp(server::World& world, std::string name);

  /// Open the confirmation screen for a pending payment. Publishes a
  /// TYPE_WINDOW_CONTENT_CHANGED accessibility event (the attack's
  /// trigger).
  void open_payment_screen(PaymentRequest request);

  /// Geometry (the attacker aligns covers/overlays with these).
  [[nodiscard]] ui::Rect amount_bounds() const { return amount_bounds_; }
  [[nodiscard]] ui::Rect pin_pad_bounds() const { return pin_pad_bounds_; }
  [[nodiscard]] ui::Rect confirm_bounds() const { return confirm_bounds_; }

  /// Center of digit `d`'s key on the 3x4 PIN pad.
  [[nodiscard]] ui::Point digit_center(int d) const;
  /// Digit under a point, or -1.
  [[nodiscard]] int digit_at(ui::Point p) const;

  [[nodiscard]] const std::string& entered_pin() const { return entered_pin_; }
  [[nodiscard]] bool executed() const { return executed_; }
  [[nodiscard]] const PaymentRequest& request() const { return request_; }
  [[nodiscard]] AccessibilityBus& bus() { return bus_; }

  /// Accessibility setText on the PIN field (the malware's replay path).
  void set_pin_by_ref(const std::string& pin) { entered_pin_ = pin; }

  /// The PIN that authorizes this account.
  void set_expected_pin(std::string pin) { expected_pin_ = std::move(pin); }

 private:
  void on_touch(sim::SimTime t, ui::Point p);

  server::World* world_;
  std::string name_;
  AccessibilityBus bus_;
  PaymentRequest request_;
  ui::WindowId window_ = ui::kInvalidWindow;
  ui::Rect amount_bounds_{90, 500, 900, 200};
  ui::Rect pin_pad_bounds_{240, 1100, 600, 800};
  ui::Rect confirm_bounds_{340, 1960, 400, 160};
  std::string entered_pin_;
  std::string expected_pin_ = "0000";
  bool executed_ = false;
};

}  // namespace animus::victim
