// Accessibility event model.
//
// Section V uses the accessibility service to detect when the user
// enters a password ("there is related work addressing this challenge
// ... accessibility service"); Section VI-C1 details the events:
//   - while a user types, the input widget sends TYPE_VIEW_TEXT_CHANGED
//     and TYPE_WINDOW_CONTENT_CHANGED;
//   - when the user finishes and moves focus, the widget sends a single
//     TYPE_WINDOW_CONTENT_CHANGED.
// Alipay suppresses accessibility events from its password widget, which
// forces the attacker through the username-widget workaround.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace animus::victim {

enum class AccessibilityEventType : std::uint8_t {
  kViewFocused,           // TYPE_VIEW_FOCUSED
  kViewTextChanged,       // TYPE_VIEW_TEXT_CHANGED
  kWindowContentChanged,  // TYPE_WINDOW_CONTENT_CHANGED
};

std::string_view to_string(AccessibilityEventType t);

struct AccessibilityEvent {
  AccessibilityEventType type = AccessibilityEventType::kViewFocused;
  int widget_id = 0;
  std::string app;
  sim::SimTime time{0};
};

/// System-wide accessibility event stream. Apps publish; an app holding
/// the accessibility-service permission (the malware) subscribes.
class AccessibilityBus {
 public:
  using Listener = std::function<void(const AccessibilityEvent&)>;

  void subscribe(Listener l) { listeners_.push_back(std::move(l)); }

  void publish(const AccessibilityEvent& ev) {
    history_.push_back(ev);
    for (const auto& l : listeners_) l(ev);
  }

  [[nodiscard]] const std::vector<AccessibilityEvent>& history() const { return history_; }

 private:
  std::vector<Listener> listeners_;
  std::vector<AccessibilityEvent> history_;
};

}  // namespace animus::victim
