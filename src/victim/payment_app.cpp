#include "victim/payment_app.hpp"

#include "metrics/table.hpp"

namespace animus::victim {

PaymentApp::PaymentApp(server::World& world, std::string name)
    : world_(&world), name_(std::move(name)) {}

void PaymentApp::open_payment_screen(PaymentRequest request) {
  request_ = std::move(request);
  entered_pin_.clear();
  executed_ = false;
  if (window_ == ui::kInvalidWindow) {
    ui::Window w;
    w.owner_uid = server::kVictimUid;
    w.type = ui::WindowType::kActivity;
    w.bounds = ui::Rect{0, 0, 1080, 2280};
    w.content = "victim:payment:" + name_;
    w.on_touch = [this](sim::SimTime t, ui::Point p) { on_touch(t, p); };
    window_ = world_->wms().add_window_now(std::move(w));
  }
  world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                         metrics::fmt("payment %s: confirm %s %ld cents", name_.c_str(),
                                      request_.payee.c_str(), request_.amount_cents));
  bus_.publish(AccessibilityEvent{AccessibilityEventType::kWindowContentChanged, kAmountLabel,
                                  name_, world_->now()});
}

ui::Point PaymentApp::digit_center(int d) const {
  // 3x4 grid: rows [1 2 3] [4 5 6] [7 8 9] [  0  ].
  const int cell_w = pin_pad_bounds_.w / 3;
  const int cell_h = pin_pad_bounds_.h / 4;
  int row = 3, col = 1;  // default: '0'
  if (d >= 1 && d <= 9) {
    row = (d - 1) / 3;
    col = (d - 1) % 3;
  }
  return ui::Point{pin_pad_bounds_.x + col * cell_w + cell_w / 2,
                   pin_pad_bounds_.y + row * cell_h + cell_h / 2};
}

int PaymentApp::digit_at(ui::Point p) const {
  if (!pin_pad_bounds_.contains(p)) return -1;
  const int cell_w = pin_pad_bounds_.w / 3;
  const int cell_h = pin_pad_bounds_.h / 4;
  const int col = (p.x - pin_pad_bounds_.x) / cell_w;
  const int row = (p.y - pin_pad_bounds_.y) / cell_h;
  if (row == 3) return col == 1 ? 0 : -1;  // only the middle cell is '0'
  const int d = row * 3 + col + 1;
  return d >= 1 && d <= 9 ? d : -1;
}

void PaymentApp::on_touch(sim::SimTime, ui::Point p) {
  const int d = digit_at(p);
  if (d >= 0) {
    entered_pin_.push_back(static_cast<char>('0' + d));
    world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                           metrics::fmt("payment %s: pin digit entered", name_.c_str()));
    return;
  }
  if (confirm_bounds_.contains(p)) {
    if (entered_pin_ == expected_pin_) {
      executed_ = true;
      world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                             metrics::fmt("payment %s: EXECUTED %s %ld", name_.c_str(),
                                          request_.payee.c_str(), request_.amount_cents));
    } else {
      world_->trace().record(world_->now(), sim::TraceCategory::kVictim,
                             metrics::fmt("payment %s: wrong pin", name_.c_str()));
    }
  }
}

}  // namespace animus::victim
