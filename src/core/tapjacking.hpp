// Tapjacking pack (classic clickjacking, Lim et al. — see PAPERS.md):
// a full-screen NON-UI-intercepting decoy overlay (FLAG_NOT_TOUCHABLE,
// Section II-A) is drawn-and-destroyed with window D above a victim
// permission dialog. The user taps what looks like the decoy's button;
// the touch falls through to the dialog's Allow button underneath.
//
// The attack succeeds only inside the vulnerable D-window: the tap
// always passes through, but for D above the device's Table II bound
// the draw-and-destroy cycling can no longer suppress the overlay
// warning alert (Λ2+), so the user is warned and the attack loses its
// stealth. The result records both halves — delivery and stealth — so
// sweeps reproduce that boundary.
#pragma once

#include "core/attack_analysis.hpp"
#include "server/world.hpp"

namespace animus::core {

class TrialSession;

struct TapjackingConfig {
  device::DeviceProfile profile;
  /// Draw-and-destroy attacking window D of the decoy overlay.
  sim::SimTime attacking_window = sim::ms(150);
  /// When the victim's permission dialog opens.
  sim::SimTime dialog_at = sim::ms(100);
  /// When the deceived user taps the decoy (over the Allow button).
  sim::SimTime tap_at = sim::ms(1200);
  /// Trial length; must cover the tap plus the alert's settle time.
  sim::SimTime duration = sim::seconds(4);
  /// The victim dialog's bounds; the Allow button is its center strip.
  ui::Rect dialog_bounds{140, 900, 800, 480};
  std::uint64_t seed = 0x414e494d5553ULL;
  /// Use latency means instead of samples (boundary-search style).
  bool deterministic = true;
};

struct TapjackingResult {
  /// The victim dialog received the pass-through tap.
  bool tap_delivered = false;
  /// The decoy overlay was on screen when the user tapped (the deception
  /// half: without a decoy there is nothing to mislead the tap).
  bool decoy_covered = false;
  /// The alert stayed Λ1 (never a visible pixel).
  bool stealthy = false;
  /// Delivered + covered + stealthy: the full tapjacking claim.
  bool success = false;
  int cycles = 0;  ///< draw-and-destroy rounds completed
  server::SystemUi::AlertStats alert;
  percept::LambdaOutcome alert_outcome = percept::LambdaOutcome::kL1;
};

/// Simulation body (registry: "tapjacking").
TapjackingResult run_tapjacking_sim(TrialSession& session, const TapjackingConfig& config);

/// One-shot convenience (fresh session per call).
TapjackingResult run_tapjacking_trial(const TapjackingConfig& config);

/// Registry hook called by register_builtin_scenarios().
void register_tapjacking_scenario();

}  // namespace animus::core
