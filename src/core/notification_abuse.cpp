#include "core/notification_abuse.hpp"

#include "core/attack_scenario.hpp"
#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "server/world.hpp"

namespace animus::core {

NotificationAbuseResult run_notification_abuse_sim(TrialSession& session,
                                                   const NotificationAbuseConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World& world = session.begin_epoch(std::move(wc));
  world.nms().set_inter_toast_gap(config.inter_toast_gap);

  NotificationAbuseResult r;
  bool victim_shown = false;
  sim::SimTime victim_shown_at{0};
  world.nms().add_shown_listener(
      [&victim_shown, &victim_shown_at, &world](const server::ToastRequest& request,
                                                ui::WindowId) {
        if (request.uid == server::kVictimUid && !victim_shown) {
          victim_shown = true;
          victim_shown_at = world.now();
        }
      });

  for (int i = 0; i < config.flood_count; ++i) {
    const sim::SimTime at = config.flood_at + i * config.flood_interval;
    world.loop().schedule_at(at, [&world, &config] {
      server::ToastRequest flood;
      flood.uid = server::kMalwareUid;
      flood.content = "attack:flood";
      flood.duration = config.toast_duration;
      world.server().enqueue_toast(server::kMalwareUid, std::move(flood));
    });
  }

  world.loop().schedule_at(config.victim_post_at, [&world] {
    server::ToastRequest headsup;
    headsup.uid = server::kVictimUid;
    headsup.content = "victim:headsup";
    headsup.duration = server::kToastShort;
    world.server().enqueue_toast(server::kVictimUid, std::move(headsup));
  });

  world.run_until(config.duration);

  const server::NotificationManagerService::Stats& stats = world.nms().stats();
  // The victim's single token is always under its own per-app cap, so
  // every rejection belongs to the flood.
  r.flood_rejected = static_cast<int>(stats.rejected);
  r.flood_enqueued = config.flood_count - r.flood_rejected;
  r.toasts_shown = static_cast<int>(stats.shown);
  r.max_queue_depth = static_cast<int>(stats.max_queue_depth);
  r.victim_shown = victim_shown;
  r.victim_delay_ms = victim_shown ? sim::to_ms(victim_shown_at - config.victim_post_at) : -1.0;
  r.victim_in_window =
      victim_shown && victim_shown_at - config.victim_post_at <= config.heads_up_window;
  r.victim_queued = world.nms().queued_tokens(server::kVictimUid);
  world.finish_epoch();
  return r;
}

NotificationAbuseResult run_notification_abuse_trial(const NotificationAbuseConfig& config) {
  TrialSession session;
  return run_scenario<NotificationAbuseConfig, NotificationAbuseResult>("notification-abuse",
                                                                        session, config);
}

namespace {

std::vector<NotificationAbuseConfig> notification_abuse_campaign() {
  std::vector<NotificationAbuseConfig> configs;
  for (const int flood : {0, 60}) {
    for (const int gap_ms : {0, 500}) {
      NotificationAbuseConfig c;
      c.profile = device::reference_device();
      c.flood_count = flood;
      c.inter_toast_gap = sim::ms(gap_ms);
      configs.push_back(c);
    }
  }
  return configs;
}

}  // namespace

void register_notification_abuse_scenario() {
  register_scenario<NotificationAbuseConfig, NotificationAbuseResult>({
      .name = "notification-abuse",
      .description =
          "Knock-Knock toast flooding that starves the victim's heads-up slot",
      .run_sim = [](TrialSession& s, const NotificationAbuseConfig& c) {
        return run_notification_abuse_sim(s, c);
      },
      .campaign = notification_abuse_campaign,
  });
}

}  // namespace animus::core
