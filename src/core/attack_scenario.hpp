// Pluggable attack-scenario registry: one named descriptor per attack
// workload, consumed uniformly by every layer that dispatches trials.
//
// Each scenario bundles
//   - a config struct and a result struct, both with ANIMUS_FIELDS
//     descriptors (core/trial_fields.hpp) so the runner's TrialCodec,
//     checkpoints, the process-shard backend and the per-trial CSV all
//     derive from the one field list;
//   - a simulation body `run_sim(TrialSession&, const Config&)`;
//   - an optional analytic tier (eligibility predicate + closed-form
//     body). When the config carries a `tier` field the registry applies
//     the same dispatch TrialSession always has: eligible non-kSim
//     configs answer analytically, a forced-kAnalytic ineligible config
//     falls back to the simulation and bumps
//     `animus_analytic_fallbacks_total{scenario=<name>}`;
//   - a canonical campaign grid (`campaign_configs`) so the shared bench
//     CLI (--scenario=<name>), campaignd submissions and the
//     scenario-smoke CI job can sweep any registered scenario without
//     per-attack plumbing.
//
// Registration is explicit and lazy — register_builtin_scenarios() wires
// the four paper attacks plus the related-work packs (tapjacking,
// notification-abuse, frosted-glass) on first registry access. Static
// initializers are deliberately avoided: the subsystems build as static
// archives, and an unreferenced registration TU would be dropped by the
// linker. Registering two scenarios under one name aborts with a clear
// message (it is a programming error, never an input error).
//
// Adding a pack (see docs/scenarios.md):
//   1. declare Config/Result structs + ANIMUS_FIELDS for both;
//   2. write the sim body against TrialSession::begin_epoch();
//   3. call register_scenario() from your pack's register function;
//   4. list that function in register_builtin_scenarios().
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <typeinfo>
#include <vector>

#include "core/tier.hpp"
#include "core/trial_session.hpp"
#include "metrics/table.hpp"
#include "runner/field_codec.hpp"

namespace animus::core {

/// Per-trial overrides a campaign applies on top of a decoded config:
/// the sweep's per-trial seed and the CLI's --tier choice. Fields the
/// config does not carry are silently skipped (a stochastic scenario
/// without a `tier` field ignores --tier, which keeps its CSV
/// byte-identical across tier flags by construction).
struct ScenarioOverrides {
  const std::uint64_t* seed = nullptr;
  const Tier* tier = nullptr;
};

namespace scenario_detail {

template <typename Config, typename Result>
struct TypedOps {
  std::function<Result(TrialSession&, const Config&)> run;
};

}  // namespace scenario_detail

/// Type-erased scenario descriptor. Everything the runner, the bench CLI
/// and campaignd need is a std::function over encoded text, so those
/// layers stay independent of the concrete config/result types.
struct AttackScenario {
  std::string name;
  std::string description;
  /// True when the scenario registered an analytic-tier body.
  bool analytic_eligible = false;
  /// Stable campaign label ("scenario:<name>") whose c_str() outlives
  /// every sweep — run_campaign keeps the pointer.
  std::string campaign_label;

  const std::type_info* config_type = nullptr;
  const std::type_info* result_type = nullptr;

  /// Flattened CSV column names derived from the field descriptors.
  std::string config_header;
  std::string result_header;
  std::function<std::string(std::string_view encoded_config)> config_csv_row;
  std::function<std::string(std::string_view encoded_result)> result_csv_row;

  /// Decode a config, apply the overrides, tier-dispatch, run, encode
  /// the result. Throws std::runtime_error when the config does not
  /// decode (a corrupt checkpoint or submission — the campaign error
  /// path reports it as a failed trial).
  std::function<std::string(TrialSession&, std::string_view encoded_config,
                            const ScenarioOverrides&)>
      run_encoded;

  /// The canonical sweep grid, already encoded. Every registered
  /// scenario provides one so `--scenario=<name>` and campaignd can run
  /// it without scenario-specific code.
  std::function<std::vector<std::string>()> campaign_configs;

  /// Encode/decode round-trip self-check of both structs, including
  /// every float field forced to nan/-nan/inf/-inf. Returns false and
  /// fills `*detail` on the first mismatch.
  std::function<bool(std::string* detail)> codec_self_test;

  /// scenario_detail::TypedOps<Config, Result>; accessed via run_scenario().
  std::shared_ptr<void> typed;
};

/// Every registered scenario, sorted by name. Ensures the builtin packs
/// are registered first.
std::vector<const AttackScenario*> scenario_registry();

/// Lookup by name (builtins ensured); nullptr when unknown.
const AttackScenario* find_scenario(std::string_view name);

/// Lookup that aborts with a clear message when the name is unknown —
/// for internal callers where a miss is a programming error.
const AttackScenario& require_scenario(std::string_view name);

/// Idempotent explicit registration of the builtin scenario packs.
void register_builtin_scenarios();

/// Comma-joined "name (analytic|sim-only): description" lines for
/// --list-scenarios style output.
std::string scenario_listing();

/// Canonical result table of one scenario campaign: one row per trial,
/// columns scenario,trial + the flattened config and result fields.
metrics::Table scenario_table(const AttackScenario& scenario,
                              const std::vector<std::string>& encoded_configs,
                              const std::vector<std::string>& encoded_results);

namespace scenario_detail {

/// Allocate the registry slot; aborts when `name` is already taken.
AttackScenario& allocate(std::string name, std::string description);

/// Bump animus_analytic_fallbacks_total{scenario=<name>}.
void count_analytic_fallback(const std::string& scenario);

[[noreturn]] void bad_encoded_config(const std::string& scenario);
[[noreturn]] void typed_mismatch(const std::string& scenario);

/// Force every floating-point leaf of a described struct to `x`.
template <typename T>
void set_float_fields(T& v, double x) {
  runner::for_each_field(v, [&](const char*, auto& member) {
    using M = std::remove_reference_t<decltype(member)>;
    if constexpr (std::is_floating_point_v<M>) {
      member = static_cast<M>(x);
    } else if constexpr (runner::kHasFields<M>) {
      set_float_fields(member, x);
    }
  });
}

template <typename T>
bool round_trip_exact(const char* label, std::string* detail) {
  const auto check = [&](const T& v) {
    const std::string once = runner::TrialCodec<T>::encode(v);
    T back{};
    if (!runner::TrialCodec<T>::decode(once, &back)) {
      if (detail != nullptr) *detail = std::string(label) + ": decode failed for '" + once + "'";
      return false;
    }
    const std::string twice = runner::TrialCodec<T>::encode(back);
    if (twice != once) {
      if (detail != nullptr) {
        *detail = std::string(label) + ": '" + once + "' re-encoded as '" + twice + "'";
      }
      return false;
    }
    return true;
  };
  T v{};
  if (!check(v)) return false;
  const double specials[] = {std::numeric_limits<double>::quiet_NaN(),
                             -std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
  for (const double x : specials) {
    T p{};
    set_float_fields(p, x);
    if (!check(p)) return false;
  }
  return true;
}

}  // namespace scenario_detail

/// Typed registration input. The bodies are plain function pointers so a
/// pack registers with capture-less lambdas; `eligible`/`run_analytic`
/// stay null for simulation-only scenarios, `campaign` must produce the
/// canonical sweep grid.
template <typename Config, typename Result>
struct ScenarioSpec {
  std::string name;
  std::string description;
  Result (*run_sim)(TrialSession&, const Config&) = nullptr;
  bool (*eligible)(const Config&) = nullptr;
  Result (*run_analytic)(const Config&) = nullptr;
  std::vector<Config> (*campaign)() = nullptr;
};

template <typename Config, typename Result>
const AttackScenario& register_scenario(ScenarioSpec<Config, Result> spec) {
  static_assert(runner::kHasFields<Config>, "scenario config needs ANIMUS_FIELDS");
  static_assert(runner::kHasFields<Result>, "scenario result needs ANIMUS_FIELDS");
  using ConfigCodec = runner::TrialCodec<Config>;
  using ResultCodec = runner::TrialCodec<Result>;

  AttackScenario& s = scenario_detail::allocate(std::move(spec.name), std::move(spec.description));
  const std::string name = s.name;
  s.analytic_eligible = spec.run_analytic != nullptr;
  s.config_type = &typeid(Config);
  s.result_type = &typeid(Result);
  s.config_header = runner::csv_header<Config>();
  s.result_header = runner::csv_header<Result>();

  auto ops = std::make_shared<scenario_detail::TypedOps<Config, Result>>();
  auto run_sim = spec.run_sim;
  auto eligible = spec.eligible;
  auto run_analytic = spec.run_analytic;
  ops->run = [run_sim, eligible, run_analytic, name](TrialSession& session,
                                                     const Config& config) -> Result {
    if constexpr (requires(const Config& c) { c.tier; }) {
      if (run_analytic != nullptr && config.tier != Tier::kSim &&
          (eligible == nullptr || eligible(config))) {
        return run_analytic(config);
      }
      if (config.tier == Tier::kAnalytic) scenario_detail::count_analytic_fallback(name);
    }
    return run_sim(session, config);
  };
  s.typed = ops;

  s.run_encoded = [ops, name](TrialSession& session, std::string_view encoded,
                              const ScenarioOverrides& overrides) -> std::string {
    Config config{};
    if (!ConfigCodec::decode(encoded, &config)) scenario_detail::bad_encoded_config(name);
    if (overrides.seed != nullptr) {
      if constexpr (requires(Config& c) { c.seed; }) config.seed = *overrides.seed;
    }
    if (overrides.tier != nullptr) {
      if constexpr (requires(Config& c) { c.tier; }) config.tier = *overrides.tier;
    }
    return ResultCodec::encode(ops->run(session, config));
  };

  auto campaign = spec.campaign;
  s.campaign_configs = [campaign]() {
    std::vector<std::string> out;
    if (campaign != nullptr) {
      for (const Config& c : campaign()) out.push_back(ConfigCodec::encode(c));
    }
    return out;
  };

  s.config_csv_row = [name](std::string_view encoded) -> std::string {
    Config config{};
    if (!ConfigCodec::decode(encoded, &config)) scenario_detail::bad_encoded_config(name);
    return runner::csv_row(config);
  };
  s.result_csv_row = [name](std::string_view encoded) -> std::string {
    Result result{};
    if (!ResultCodec::decode(encoded, &result)) scenario_detail::bad_encoded_config(name);
    return runner::csv_row(result);
  };

  s.codec_self_test = [](std::string* detail) {
    return scenario_detail::round_trip_exact<Config>("config", detail) &&
           scenario_detail::round_trip_exact<Result>("result", detail);
  };
  return s;
}

/// Zero-copy typed dispatch for the thin legacy wrappers: runs `name`
/// with the registry's tier dispatch, no encode/decode round-trip.
/// Aborts when the registered types do not match (programming error).
template <typename Config, typename Result>
Result run_scenario(std::string_view name, TrialSession& session, const Config& config) {
  const AttackScenario& s = require_scenario(name);
  if (*s.config_type != typeid(Config) || *s.result_type != typeid(Result)) {
    scenario_detail::typed_mismatch(s.name);
  }
  auto* ops = static_cast<scenario_detail::TypedOps<Config, Result>*>(s.typed.get());
  return ops->run(session, config);
}

}  // namespace animus::core
