#include "core/report.hpp"

#include <cctype>

namespace animus::core {

std::string_view to_string(PasswordErrorKind k) {
  switch (k) {
    case PasswordErrorKind::kNone: return "none";
    case PasswordErrorKind::kLength: return "length";
    case PasswordErrorKind::kCapitalization: return "capitalization";
    case PasswordErrorKind::kWrongKey: return "wrong_key";
  }
  return "?";
}

PasswordErrorKind classify_password_error(const std::string& intended,
                                          const std::string& decoded) {
  if (intended == decoded) return PasswordErrorKind::kNone;
  if (intended.size() != decoded.size()) return PasswordErrorKind::kLength;
  bool case_only = true;
  for (std::size_t i = 0; i < intended.size(); ++i) {
    const auto a = static_cast<unsigned char>(intended[i]);
    const auto b = static_cast<unsigned char>(decoded[i]);
    if (std::tolower(a) != std::tolower(b)) {
      case_only = false;
      break;
    }
  }
  return case_only ? PasswordErrorKind::kCapitalization : PasswordErrorKind::kWrongKey;
}

}  // namespace animus::core
