#include "core/frosted_glass.hpp"

#include <algorithm>

#include "core/attack_scenario.hpp"
#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"
#include "server/world.hpp"
#include "ui/animation.hpp"

namespace animus::core {

namespace {

/// Shared trajectory accounting: both tiers walk t = 0, 10 ms, ... and
/// feed the perceived opacity a(t) through this fold, so their results
/// can only differ if the alpha values themselves differ.
struct TrajectoryProbe {
  const FrostedGlassConfig* config;
  FrostedGlassResult result;

  void sample(sim::SimTime t, double alpha) {
    ++result.samples;
    result.peak_alpha = std::max(result.peak_alpha, alpha);
    if (alpha >= config->visible_threshold) {
      if (result.first_visible_ms < 0.0) result.first_visible_ms = sim::to_ms(t);
      result.visible_ms += sim::to_ms(ui::kDefaultRefresh);
    }
  }

  FrostedGlassResult finish() {
    result.noticed = result.first_visible_ms >= 0.0;
    return result;
  }
};

sim::SimTime trajectory_end(const FrostedGlassConfig& config) {
  return config.appear_at + config.dwell + ui::kToastAnimDuration;
}

}  // namespace

FrostedGlassResult run_frosted_glass_sim(TrialSession& session,
                                         const FrostedGlassConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World& world = session.begin_epoch(std::move(wc));

  ui::WindowId glass = ui::kInvalidWindow;
  world.loop().schedule_at(config.appear_at, [&world, &glass, &config] {
    ui::Window w;
    w.owner_uid = server::kMalwareUid;
    w.bounds = config.bounds;
    w.content = "attack:frosted";
    glass = world.wms().add_toast_now(std::move(w));
  });
  world.loop().schedule_at(config.appear_at + config.dwell, [&world, &glass] {
    world.wms().fade_out_and_remove(glass);
  });

  const sim::SimTime end = trajectory_end(config);
  world.run_until(end);

  TrajectoryProbe probe{&config, {}};
  for (sim::SimTime t{0}; t < end; t += ui::kDefaultRefresh) {
    probe.sample(t, config.glass_alpha *
                        world.wms().max_alpha_at(server::kMalwareUid, "attack:frosted", t));
  }
  FrostedGlassResult r = probe.finish();
  world.finish_epoch();
  return r;
}

FrostedGlassResult run_frosted_glass_analytic(const FrostedGlassConfig& config) {
  // Replay the exact alpha pipeline of the simulation: the same
  // FadeAnimation value objects WMS attaches in add_toast_now /
  // fade_out_and_remove, gated by the same lifetime window
  // [added_at, removed_at) that max_alpha_at applies. Bit-identical to
  // the sim because every arithmetic step is shared value-type code.
  const sim::SimTime added_at = config.appear_at;
  const sim::SimTime fade_out_at = config.appear_at + config.dwell;
  const ui::FadeAnimation enter{ui::toast_fade_in(), added_at, /*fade_in=*/true};
  const ui::FadeAnimation exit_fade{ui::toast_fade_out(), fade_out_at, /*fade_in=*/false};
  const sim::SimTime removed_at = fade_out_at + exit_fade.animation.duration();

  const sim::SimTime end = trajectory_end(config);
  TrajectoryProbe probe{&config, {}};
  for (sim::SimTime t{0}; t < end; t += ui::kDefaultRefresh) {
    double alpha = 0.0;
    if (t >= added_at && t < removed_at) {
      alpha = enter.alpha_at(t);
      if (t >= exit_fade.start) alpha = std::min(alpha, exit_fade.alpha_at(t));
    }
    probe.sample(t, config.glass_alpha * alpha);
  }
  return probe.finish();
}

FrostedGlassResult run_frosted_glass_trial(const FrostedGlassConfig& config) {
  TrialSession session;
  return run_scenario<FrostedGlassConfig, FrostedGlassResult>("frosted-glass", session, config);
}

namespace {

std::vector<FrostedGlassConfig> frosted_glass_campaign() {
  std::vector<FrostedGlassConfig> configs;
  for (const double alpha : {0.05, 0.2, 0.5, 0.9}) {
    FrostedGlassConfig c;
    c.profile = device::reference_device();
    c.glass_alpha = alpha;
    configs.push_back(c);
  }
  return configs;
}

}  // namespace

void register_frosted_glass_scenario() {
  register_scenario<FrostedGlassConfig, FrostedGlassResult>({
      .name = "frosted-glass",
      .description =
          "translucent toast-layer glass with an alpha-trajectory visibility probe",
      .run_sim = [](TrialSession& s, const FrostedGlassConfig& c) {
        return run_frosted_glass_sim(s, c);
      },
      .eligible = [](const FrostedGlassConfig& c) { return c.deterministic; },
      .run_analytic = run_frosted_glass_analytic,
      .campaign = frosted_glass_campaign,
  });
}

}  // namespace animus::core
