// Execution tier of a trial: full event-driven simulation, the
// closed-form/replay analytic fast path, or automatic selection.
//
// The analytic tier is bit-exact with the simulation on its domain
// (deterministic latencies, remove-before-add attack order, no defense,
// no fault injection, no background contention) — differential tests
// lock the two together. Outside that domain the analytic tier falls
// back to simulation, so `kAuto` is always safe to request.
#pragma once

#include <optional>
#include <string_view>

namespace animus::core {

enum class Tier {
  kAuto,      ///< analytic when the config is eligible, simulation otherwise
  kSim,       ///< always run the full event-driven simulation
  kAnalytic,  ///< request the analytic fast path (simulation if ineligible)
};

constexpr std::string_view to_string(Tier t) {
  switch (t) {
    case Tier::kAuto: return "auto";
    case Tier::kSim: return "sim";
    case Tier::kAnalytic: return "analytic";
  }
  return "?";
}

/// Parse a --tier value; empty optional on an unknown name.
constexpr std::optional<Tier> parse_tier(std::string_view s) {
  if (s == "auto") return Tier::kAuto;
  if (s == "sim") return Tier::kSim;
  if (s == "analytic") return Tier::kAnalytic;
  return std::nullopt;
}

}  // namespace animus::core
