// Error taxonomy (Table III) and end-to-end trial runners shared by the
// tests, examples and bench harnesses.
//
// Trial entry points follow one shape across src/core: a config struct
// in (with `seed` and `deterministic` fields, named identically
// everywhere) and a result struct out, so any trial plugs into
// runner::sweep without adapters. See also attack_analysis.hpp for the
// outcome-probe and D-bound trials. The free run_* functions are
// one-shot conveniences over core::TrialSession (trial_session.hpp),
// which reuses one World across trials; sweeps should use
// TrialSession::local().
#pragma once

#include <string>

#include "device/profile.hpp"
#include "input/typist.hpp"
#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "server/system_ui.hpp"
#include "victim/victim_app.hpp"

namespace animus::core {

/// Table III's three error classes. Exactly one class is assigned per
/// failed trial:
///   length error          derived length != entered length (a mistouch
///                         or misspelling dropped/added a character)
///   capitalization error  same length, differs only in letter case
///                         (a missed "shift" tap)
///   wrong touched key     same length, some character differs beyond
///                         case (touch jitter / misspelling)
enum class PasswordErrorKind { kNone, kLength, kCapitalization, kWrongKey };

std::string_view to_string(PasswordErrorKind k);

PasswordErrorKind classify_password_error(const std::string& intended,
                                          const std::string& decoded);

// ---------------------------------------------------------------------
// Full password-stealing trial (Section VI-C1): login screen, username
// typed on the real keyboard, attack triggered by accessibility events,
// password typed over the fake keyboard, decode + widget fill-up.
// ---------------------------------------------------------------------

struct PasswordTrialConfig {
  device::DeviceProfile profile;
  victim::VictimAppSpec app;
  input::TypistProfile typist;
  std::string username = "alice";
  std::string password;
  std::uint64_t seed = 1;
  /// Use latency means instead of samples (boundary-search style).
  bool deterministic = false;
  /// 0 = use the device's Table II upper bound of D.
  sim::SimTime d_override{0};
  sim::SimTime toast_duration = server::kToastLong;
};

struct PasswordTrialResult {
  std::string intended;
  std::string decoded;
  PasswordErrorKind error = PasswordErrorKind::kNone;
  bool success = false;
  bool triggered = false;
  bool used_username_workaround = false;
  bool widget_filled = false;
  int captured_touches = 0;
  int password_touches = 0;       // touches the user made for the password
  int leaked_to_real_keyboard = 0;  // characters the real IME received
  server::SystemUi::AlertStats alert;
  percept::LambdaOutcome alert_outcome = percept::LambdaOutcome::kL1;
  percept::FlickerResult flicker;
};

PasswordTrialResult run_password_trial(const PasswordTrialConfig& config);

// ---------------------------------------------------------------------
// Capture-rate trial (Section VI-B): the instrumented test app records
// random taps into an input widget while the draw-and-destroy overlay
// attack runs with a given D; the rate is captured characters over all
// characters. Characters register on complete gestures.
// ---------------------------------------------------------------------

struct CaptureTrialConfig {
  device::DeviceProfile profile;
  input::TypistProfile typist;
  sim::SimTime attacking_window = sim::ms(150);
  std::size_t touches = 100;  // 10 strings x 10 characters
  std::uint64_t seed = 1;
  /// Use latency means instead of samples (boundary-search style).
  bool deterministic = false;
};

struct CaptureTrialResult {
  std::size_t touches = 0;
  std::size_t captured = 0;
  double rate = 0.0;
  server::SystemUi::AlertStats alert;
  percept::LambdaOutcome alert_outcome = percept::LambdaOutcome::kL1;
};

CaptureTrialResult run_capture_trial(const CaptureTrialConfig& config);

}  // namespace animus::core
