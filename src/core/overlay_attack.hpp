// Draw-and-destroy overlay attack (Section III).
//
// A worker thread ticks every attacking-window D; on each tick it
// notifies the malware's main thread, which removes the currently shown
// UI-intercepting overlay and adds the other one of a pre-created pair
// (O1/O2). Because the remove-view Binder event travels slower than the
// add-view event (Tam < Trm), System Server briefly observes *zero*
// overlays from the app and resets the warning-alert animation — which,
// for D below the device's Table II bound, never reveals a single pixel.
//
// Workflow steps map to Section III-C:
//   Step 1  start(): worker notifies main; main performs only addView(O1)
//   Step 2  tick: main calls removeView(previous) then addView(other)
//   Step 3  worker waits D
//   Step 4  repeat
//   Step 5  stop(): the last displayed overlay is removed
//
// `add_before_remove` flips Step 2's call order to reproduce the failure
// mode the paper describes: the blocking addView delays removeView, the
// replacement overlay registers before the removal check, and the alert
// animation is never reset.
#pragma once

#include <functional>
#include <string>

#include "server/world.hpp"

namespace animus::core {

struct OverlayAttackConfig {
  /// Attacking window D.
  sim::SimTime attacking_window = sim::ms(150);
  /// Screen region the overlays cover (e.g. the keyboard area, or an
  /// input widget in the capture-rate test app).
  ui::Rect bounds{0, 0, 1080, 2280};
  /// Transparent UI-intercepting overlays (the password-attack shape).
  bool transparent = true;
  /// When false the overlays carry FLAG_NOT_TOUCHABLE: touches pass
  /// through to the victim beneath — the clickjacking configuration of
  /// Section II-A ("non-UI-intercepting overlay").
  bool intercept_touches = true;
  /// Surface content tag (what the user sees when not transparent).
  std::string content = "attack:overlay";
  /// Reproduce the paper's failure mode (addView before removeView).
  bool add_before_remove = false;
  /// Capture coordinates from ACTION_DOWN (the password attack). The
  /// capture-rate study of Fig. 7/8 instead counts fully-registered
  /// characters, i.e. complete gestures — set false to reproduce it.
  bool capture_on_down = true;
  /// Jitter of the worker thread's timer (thread scheduling noise).
  double timer_jitter_ms = 0.4;
  int uid = server::kMalwareUid;
  /// Callback for every intercepted touch (down-time, point).
  std::function<void(sim::SimTime, ui::Point)> on_capture;
};

class OverlayAttack {
 public:
  struct Stats {
    int cycles = 0;            // draw-and-destroy rounds completed
    int captures = 0;          // touches intercepted
    sim::SimTime started{0};
    sim::SimTime stopped{0};
    bool running = false;
  };

  OverlayAttack(server::World& world, OverlayAttackConfig config);

  /// Begin the attack now (Step 1). Requires SYSTEM_ALERT_WINDOW to have
  /// been granted; otherwise every addView is refused and the attack is
  /// inert (observable via world.server().rejected_overlays()).
  void start();

  /// Step 5: stop ticking and remove the last displayed overlay.
  void stop();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const OverlayAttackConfig& config() const { return config_; }

 private:
  void tick();
  server::OverlaySpec make_spec();

  server::World* world_;
  OverlayAttackConfig config_;
  sim::Actor* main_thread_;
  sim::Actor* worker_thread_;
  sim::Rng rng_;
  server::ViewHandle current_ = 0;
  sim::EventLoop::EventId timer_{};
  sim::SimTime cycle_start_{0};  // telemetry: start of the current cycle
  Stats stats_;
};

}  // namespace animus::core
