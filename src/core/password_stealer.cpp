#include "core/password_stealer.hpp"

#include "metrics/table.hpp"

namespace animus::core {

PasswordStealer::PasswordStealer(server::World& world, victim::VictimApp& victim,
                                 PasswordStealerConfig config)
    : world_(&world),
      victim_(&victim),
      config_(config),
      keyboard_(victim.keyboard_bounds()) {
  ToastAttackConfig tc;
  tc.toast_duration = config_.toast_duration;
  tc.bounds = victim.keyboard_bounds();
  tc.content = "fake_keyboard:lower";
  tc.uid = config_.uid;
  toast_ = std::make_unique<ToastAttack>(world, tc);

  OverlayAttackConfig oc;
  oc.attacking_window = attacking_window();
  oc.bounds = victim.keyboard_bounds();
  oc.transparent = true;
  oc.uid = config_.uid;
  oc.on_capture = [this](sim::SimTime t, ui::Point p) { on_capture(t, p); };
  overlay_ = std::make_unique<OverlayAttack>(world, oc);
}

sim::SimTime PasswordStealer::attacking_window() const {
  if (config_.attacking_window > sim::SimTime{0}) return config_.attacking_window;
  // The Table II value is the razor's edge; real latency jitter would
  // occasionally push a cycle past it, so the malware backs off by a
  // safety margin ("avoid being discovered by the users", Section VI-C1).
  return sim::ms_f(kBoundSafetyFactor * world_->profile().d_upper_bound_table_ms);
}

bool PasswordStealer::arm() {
  if (armed_) return true;
  const auto& spec = victim_->spec();
  if (config_.trigger == TriggerMode::kSharedMemory) {
    if (config_.oracle == nullptr) return false;
    armed_ = true;
    inferrer_ = std::make_unique<sidechannel::UiStateInferrer>(*world_, *config_.oracle,
                                                               server::kVictimUid);
    inferrer_->learn("LoginActivity", sidechannel::login_screen_signature());
    inferrer_->learn("LoginActivity:password", sidechannel::password_focus_signature());
    inferrer_->start([this](const std::string& activity, sim::SimTime) {
      if (!running_ && activity == "LoginActivity:password") trigger(false);
    });
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           "password stealer armed (shared-memory side channel) on " +
                               spec.name);
    return true;
  }
  if (spec.disables_password_accessibility && !spec.shares_parent_view) return false;
  armed_ = true;
  victim_->bus().subscribe(
      [this](const victim::AccessibilityEvent& ev) { on_accessibility_event(ev); });
  world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                         "password stealer armed on " + spec.name);
  return true;
}

void PasswordStealer::on_accessibility_event(const victim::AccessibilityEvent& ev) {
  if (running_) {
    last_event_ = ev;
    return;
  }
  const auto& spec = victim_->spec();
  if (!spec.disables_password_accessibility) {
    // Direct trigger: the password widget announces focus or typing.
    if (ev.widget_id == victim::kPasswordField) trigger(false);
    last_event_ = ev;
    return;
  }
  // Alipay path: while the user types, events arrive in
  // (TYPE_VIEW_TEXT_CHANGED, TYPE_WINDOW_CONTENT_CHANGED) pairs; when
  // the user finishes and moves focus, a *lone* WINDOW_CONTENT_CHANGED
  // arrives from the username widget — that is the start signal
  // (Section VI-C1).
  if (ev.widget_id == victim::kUsernameField &&
      ev.type == victim::AccessibilityEventType::kWindowContentChanged) {
    const bool typing_pair =
        last_event_ &&
        last_event_->type == victim::AccessibilityEventType::kViewTextChanged &&
        last_event_->widget_id == victim::kUsernameField && last_event_->time == ev.time;
    if (!typing_pair) trigger(true);
  }
  last_event_ = ev;
}

void PasswordStealer::trigger(bool via_username_workaround) {
  running_ = true;
  result_.triggered = true;
  result_.used_username_workaround = via_username_workaround;
  result_.triggered_at = world_->now();
  believed_.reset(input::LayoutKind::kLower);
  stream_.clear();
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           metrics::fmt("password stealer triggered (%s) D=%.1fms",
                                        via_username_workaround ? "username workaround"
                                                                : "password focus",
                                        sim::to_ms(attacking_window())));
  }
  toast_->start();
  overlay_->start();
}

void PasswordStealer::on_capture(sim::SimTime t, ui::Point p) {
  if (!running_) return;
  ++result_.captured_touches;
  // Euclidean decode against the believed sub-keyboard (Section V).
  const input::KeyboardLayout& layout = keyboard_.layout(believed_.current());
  const input::Key& key = layout.nearest(p);
  const auto press = believed_.press(key);

  Keystroke ks;
  ks.at = t;
  ks.point = p;
  ks.decoded_key = key.label;
  ks.ch = press.ch;
  result_.keystrokes.push_back(ks);

  if (press.layout_changed) {
    toast_->switch_content("fake_keyboard:" +
                           std::string(input::to_string(believed_.current())));
  }
  if (press.ch) {
    stream_.push_back(*press.ch);
  } else if (press.backspace && !stream_.empty()) {
    stream_.pop_back();
  }
}

std::string PasswordStealer::finalize() {
  if (inferrer_) inferrer_->stop();
  if (result_.triggered) {
    overlay_->stop();
    toast_->stop();
  }
  running_ = false;
  result_.decoded = stream_;
  // Fill the real widget so the UI looks consistent: direct reference
  // when the app exposes password events, otherwise via getParent().
  auto ref = victim_->password_ref_via_events();
  if (!ref) ref = victim_->password_ref_via_parent();
  if (ref && result_.triggered) {
    result_.widget_filled = victim_->set_text_by_ref(*ref, result_.decoded);
  }
  world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                         "password stealer decoded: " + result_.decoded);
  return result_.decoded;
}

}  // namespace animus::core
