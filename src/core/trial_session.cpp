#include "core/trial_session.hpp"

#include "core/analytic.hpp"
#include "core/attack_scenario.hpp"
#include "core/overlay_attack.hpp"
#include "core/password_stealer.hpp"
#include "core/trial_fields.hpp"
#include "device/registry.hpp"

namespace animus::core {

TrialSession& TrialSession::local() {
  thread_local TrialSession session;
  return session;
}

server::World& TrialSession::begin_epoch(server::WorldConfig config) {
  ++epochs_;
  if (world_) {
    world_->reset_to_epoch(std::move(config));
  } else {
    world_.emplace(std::move(config));
  }
  return *world_;
}

OutcomeProbe TrialSession::run(const OutcomeProbeConfig& config) {
  return run_scenario<OutcomeProbeConfig, OutcomeProbe>("outcome-probe", *this, config);
}

DBoundTrialResult TrialSession::run(const DBoundTrialConfig& config) {
  return run_scenario<DBoundTrialConfig, DBoundTrialResult>("d-bound", *this, config);
}

CaptureTrialResult TrialSession::run(const CaptureTrialConfig& config) {
  return run_scenario<CaptureTrialConfig, CaptureTrialResult>("capture-rate", *this, config);
}

PasswordTrialResult TrialSession::run(const PasswordTrialConfig& config) {
  return run_scenario<PasswordTrialConfig, PasswordTrialResult>("password-steal", *this, config);
}

OutcomeProbe TrialSession::run_sim(const OutcomeProbeConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World& world = begin_epoch(std::move(wc));
  world.server().grant_overlay_permission(server::kMalwareUid);

  OutcomeProbe probe;
  {
    OverlayAttackConfig oc;
    oc.attacking_window = config.attacking_window;
    oc.add_before_remove = config.add_before_remove;
    OverlayAttack attack{world, oc};
    attack.start();
    world.run_until(config.duration);

    probe.alert = world.system_ui().snapshot(server::kMalwareUid);
    probe.outcome = percept::classify(probe.alert);
    probe.cycles = attack.stats().cycles;
    attack.stop();
  }
  world.finish_epoch();
  return probe;
}

DBoundTrialResult TrialSession::run_sim(const DBoundTrialConfig& config) {
  // Λ1(D) is monotone: more waiting lets the slide-in animation play
  // further. Binary search the boundary; every probe reuses this
  // session's World.
  DBoundTrialResult r;
  auto lambda1 = [this, &config, &r](int d_ms) {
    ++r.probes;
    OutcomeProbeConfig pc;
    pc.profile = config.profile;
    pc.attacking_window = sim::ms(d_ms);
    pc.duration = sim::seconds(3);
    pc.seed = config.seed;
    pc.deterministic = config.deterministic;
    return run_sim(pc).outcome == percept::LambdaOutcome::kL1;
  };
  int lo = 1;                  // assumed Λ1 (checked below)
  int hi = config.max_ms;      // assumed not Λ1
  if (!lambda1(lo)) return r;  // d_upper_ms stays 0
  if (lambda1(hi)) {
    r.d_upper_ms = hi;
    return r;
  }
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (lambda1(mid) ? lo : hi) = mid;
  }
  r.d_upper_ms = lo;
  return r;
}

CaptureTrialResult TrialSession::run_sim(const CaptureTrialConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World& world = begin_epoch(std::move(wc));
  world.server().grant_overlay_permission(server::kMalwareUid);

  CaptureTrialResult r;
  {
    // The instrumented test app: a full-screen activity with an input
    // widget; every completed tap on the widget is a typed character.
    const ui::Rect widget{90, 900, 900, 600};
    std::size_t typed_into_app = 0;
    ui::Window app;
    app.owner_uid = server::kBenignUid;
    app.type = ui::WindowType::kActivity;
    app.bounds = ui::Rect{0, 0, 1080, 2280};
    app.content = "testapp";
    app.on_touch = [&typed_into_app](sim::SimTime, ui::Point) { ++typed_into_app; };
    world.wms().add_window_now(std::move(app));

    OverlayAttackConfig oc;
    oc.attacking_window = config.attacking_window;
    oc.bounds = widget;
    oc.capture_on_down = false;  // characters register on complete gestures
    OverlayAttack attack{world, oc};

    input::Typist typist{config.typist, world.fork_rng("typist").fork(config.seed)};
    const auto taps = typist.plan_taps(widget, config.touches, sim::ms(1000));
    for (const auto& pt : taps) {
      world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
    }

    world.loop().schedule_at(sim::ms(200), [&attack] { attack.start(); });
    const sim::SimTime end = (taps.empty() ? sim::ms(1000) : taps.back().at) + sim::ms(500);
    world.run_until(end);

    r.touches = config.touches;
    r.captured = static_cast<std::size_t>(attack.stats().captures);
    r.rate = config.touches == 0 ? 0.0
                                 : static_cast<double>(r.captured) /
                                       static_cast<double>(config.touches);
    r.alert = world.system_ui().snapshot(server::kMalwareUid);
    r.alert_outcome = percept::classify(r.alert);
    attack.stop();
  }
  world.finish_epoch();
  return r;
}

PasswordTrialResult TrialSession::run_sim(const PasswordTrialConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World& world = begin_epoch(std::move(wc));
  world.server().grant_overlay_permission(server::kMalwareUid);

  PasswordTrialResult r;
  {
    victim::VictimApp victim{world, config.app};
    victim.open_login_screen();

    PasswordStealerConfig sc;
    sc.attacking_window = config.d_override;
    sc.toast_duration = config.toast_duration;
    PasswordStealer stealer{world, victim, sc};
    stealer.arm();

    input::Typist typist{config.typist, world.fork_rng("typist").fork(config.seed)};
    const input::Keyboard keyboard{victim.keyboard_bounds()};

    // --- Phase 1: focus the username field and type the username on the
    // real keyboard (no attack yet). ---
    const ui::Point username_tap = victim.username_bounds().center();
    world.loop().schedule_at(sim::ms(300),
                             [&world, username_tap] { world.input().inject_tap(username_tap); });
    const auto username_touches =
        typist.plan(keyboard, config.username, sim::ms(700), /*press_enter=*/false);
    for (const auto& pt : username_touches) {
      world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
    }
    const sim::SimTime username_done =
        username_touches.empty() ? sim::ms(700) : username_touches.back().at;

    // --- Phase 2: focus the password field; accessibility events trigger
    // the stealer (directly, or via the username workaround). ---
    const sim::SimTime password_focus = username_done + sim::ms(400);
    const ui::Point password_tap = victim.password_bounds().center();
    world.loop().schedule_at(password_focus,
                             [&world, password_tap] { world.input().inject_tap(password_tap); });

    // --- Phase 3: type the password on what the user believes is the
    // keyboard (actually the fake-keyboard toast under the overlays). ---
    const auto password_touches =
        typist.plan(keyboard, config.password, password_focus + sim::ms(800),
                    /*press_enter=*/false);
    for (const auto& pt : password_touches) {
      world.loop().schedule_at(pt.at, [&world, pt] { world.input().inject_tap(pt.point); });
    }
    const sim::SimTime last_touch =
        password_touches.empty() ? password_focus : password_touches.back().at;
    const sim::SimTime trial_end = last_touch + sim::ms(500);
    world.run_until(trial_end);

    r.intended = config.password;
    r.password_touches = static_cast<int>(password_touches.size());
    r.leaked_to_real_keyboard = static_cast<int>(victim.password_text().size());
    r.alert = world.system_ui().snapshot(server::kMalwareUid);
    r.alert_outcome = percept::classify(r.alert);
    r.decoded = stealer.finalize();
    world.run_until(trial_end + sim::seconds(1));  // let teardown settle

    r.triggered = stealer.result().triggered;
    r.used_username_workaround = stealer.result().used_username_workaround;
    r.widget_filled = stealer.result().widget_filled;
    r.captured_touches = stealer.result().captured_touches;
    r.error = classify_password_error(r.intended, r.decoded);
    r.success = r.error == PasswordErrorKind::kNone;
    if (r.triggered) {
      // Scan once the first fake-keyboard toast has fully faded in: during
      // that initial 500 ms the *identical* real keyboard shows through
      // the translucent toast, so there is nothing for the user to see.
      r.flicker = percept::scan_flicker(world.wms(), server::kMalwareUid, "fake_keyboard",
                                        stealer.result().triggered_at + sim::ms(800), trial_end);
    }
  }
  world.finish_epoch();
  return r;
}

// --------------------------------------------- legacy scenario registration

namespace {

std::vector<OutcomeProbeConfig> outcome_probe_campaign() {
  std::vector<OutcomeProbeConfig> configs;
  for (const int d : {50, 150, 190, 250, 400, 690}) {
    OutcomeProbeConfig c;
    c.profile = device::reference_device_android9();
    c.attacking_window = sim::ms(d);
    configs.push_back(c);
  }
  return configs;
}

std::vector<DBoundTrialConfig> d_bound_campaign() {
  std::vector<DBoundTrialConfig> configs;
  for (const device::DeviceProfile& profile : device::all_devices()) {
    DBoundTrialConfig c;
    c.profile = profile;
    configs.push_back(c);
  }
  return configs;
}

std::vector<CaptureTrialConfig> capture_rate_campaign() {
  std::vector<CaptureTrialConfig> configs;
  const auto panel = input::participant_panel(3);
  for (const input::TypistProfile& typist : panel) {
    for (const int d : {100, 150, 200}) {
      CaptureTrialConfig c;
      c.profile = device::reference_device_android9();
      c.typist = typist;
      c.attacking_window = sim::ms(d);
      c.touches = 50;
      configs.push_back(c);
    }
  }
  return configs;
}

std::vector<PasswordTrialConfig> password_steal_campaign() {
  std::vector<PasswordTrialConfig> configs;
  const auto panel = input::participant_panel(1);
  for (const char* password : {"Secret123", "correcthorse"}) {
    PasswordTrialConfig c;
    c.profile = device::reference_device();
    c.typist = panel.front();
    c.password = password;
    configs.push_back(c);
  }
  return configs;
}

}  // namespace

void register_legacy_scenarios() {
  register_scenario<OutcomeProbeConfig, OutcomeProbe>({
      .name = "outcome-probe",
      .description = "Fig. 6 draw-and-destroy overlay attack outcome probe",
      .run_sim = [](TrialSession& s, const OutcomeProbeConfig& c) { return s.run_sim(c); },
      .eligible = [](const OutcomeProbeConfig& c) { return analytic::eligible(c); },
      .run_analytic = analytic::run_probe,
      .campaign = outcome_probe_campaign,
  });
  register_scenario<DBoundTrialConfig, DBoundTrialResult>({
      .name = "d-bound",
      .description = "Table II upper-bound-of-D binary search",
      .run_sim = [](TrialSession& s, const DBoundTrialConfig& c) { return s.run_sim(c); },
      .eligible = [](const DBoundTrialConfig& c) { return analytic::eligible(c); },
      .run_analytic = analytic::run_d_bound,
      .campaign = d_bound_campaign,
  });
  register_scenario<CaptureTrialConfig, CaptureTrialResult>({
      .name = "capture-rate",
      .description = "Section VI-B touch capture-rate trial (stochastic)",
      .run_sim = [](TrialSession& s, const CaptureTrialConfig& c) { return s.run_sim(c); },
      .campaign = capture_rate_campaign,
  });
  register_scenario<PasswordTrialConfig, PasswordTrialResult>({
      .name = "password-steal",
      .description = "Section VI-C1 end-to-end password-stealing trial (stochastic)",
      .run_sim = [](TrialSession& s, const PasswordTrialConfig& c) { return s.run_sim(c); },
      .campaign = password_steal_campaign,
  });
}

// ------------------------------------------------- one-shot conveniences

OutcomeProbe run_outcome_probe(const OutcomeProbeConfig& config) {
  TrialSession session;
  return session.run(config);
}

DBoundTrialResult run_d_bound_trial(const DBoundTrialConfig& config) {
  TrialSession session;
  return session.run(config);
}

CaptureTrialResult run_capture_trial(const CaptureTrialConfig& config) {
  TrialSession session;
  return session.run(config);
}

PasswordTrialResult run_password_trial(const PasswordTrialConfig& config) {
  TrialSession session;
  return session.run(config);
}

}  // namespace animus::core
