#include "core/attack_scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace animus::core {

// Builtin pack registration hooks, one per translation unit that owns
// the bodies. Explicit calls (not static initializers) so the static
// archives never drop a registration TU.
void register_legacy_scenarios();        // trial_session.cpp
void register_tapjacking_scenario();     // tapjacking.cpp
void register_notification_abuse_scenario();  // notification_abuse.cpp
void register_frosted_glass_scenario();  // frosted_glass.cpp

namespace {

std::vector<std::unique_ptr<AttackScenario>>& storage() {
  static auto* s = new std::vector<std::unique_ptr<AttackScenario>>();
  return *s;
}

}  // namespace

namespace scenario_detail {

AttackScenario& allocate(std::string name, std::string description) {
  auto& all = storage();
  for (const auto& s : all) {
    if (s->name == name) {
      std::fprintf(stderr,
                   "fatal: attack scenario '%s' is already registered (%s); "
                   "every scenario needs a unique name\n",
                   name.c_str(), s->description.c_str());
      std::abort();
    }
  }
  auto scenario = std::make_unique<AttackScenario>();
  scenario->name = std::move(name);
  scenario->description = std::move(description);
  scenario->campaign_label = "scenario:" + scenario->name;
  // Keep the registry sorted by name so listings, campaign enumeration
  // and the CI smoke matrix share one stable order.
  const auto at = std::lower_bound(
      all.begin(), all.end(), scenario,
      [](const auto& a, const auto& b) { return a->name < b->name; });
  return **all.insert(at, std::move(scenario));
}

void count_analytic_fallback(const std::string& scenario) {
  obs::global_registry()
      .counter("animus_analytic_fallbacks_total", {{"scenario", scenario}})
      .inc();
}

void bad_encoded_config(const std::string& scenario) {
  throw std::runtime_error("scenario '" + scenario + "': encoded config/result does not decode");
}

void typed_mismatch(const std::string& scenario) {
  std::fprintf(stderr,
               "fatal: scenario '%s' dispatched with mismatched config/result types\n",
               scenario.c_str());
  std::abort();
}

}  // namespace scenario_detail

void register_builtin_scenarios() {
  static const bool once = [] {
    register_legacy_scenarios();
    register_tapjacking_scenario();
    register_notification_abuse_scenario();
    register_frosted_glass_scenario();
    return true;
  }();
  (void)once;
}

std::vector<const AttackScenario*> scenario_registry() {
  register_builtin_scenarios();
  std::vector<const AttackScenario*> out;
  out.reserve(storage().size());
  for (const auto& s : storage()) out.push_back(s.get());
  return out;
}

const AttackScenario* find_scenario(std::string_view name) {
  register_builtin_scenarios();
  for (const auto& s : storage()) {
    if (s->name == name) return s.get();
  }
  return nullptr;
}

const AttackScenario& require_scenario(std::string_view name) {
  const AttackScenario* s = find_scenario(name);
  if (s == nullptr) {
    std::fprintf(stderr, "fatal: attack scenario '%.*s' is not registered\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *s;
}

std::string scenario_listing() {
  std::string out;
  for (const AttackScenario* s : scenario_registry()) {
    out += s->name;
    out += s->analytic_eligible ? " (analytic)" : " (sim-only)";
    out += ": ";
    out += s->description;
    out += '\n';
  }
  return out;
}

namespace {

void split_csv(std::string_view line, std::vector<std::string>* out) {
  std::size_t pos = 0;
  for (;;) {
    const auto comma = line.find(',', pos);
    if (comma == std::string_view::npos) {
      out->emplace_back(line.substr(pos));
      return;
    }
    out->emplace_back(line.substr(pos, comma - pos));
    pos = comma + 1;
  }
}

}  // namespace

metrics::Table scenario_table(const AttackScenario& scenario,
                              const std::vector<std::string>& encoded_configs,
                              const std::vector<std::string>& encoded_results) {
  std::vector<std::string> columns{"scenario", "trial"};
  split_csv(scenario.config_header, &columns);
  split_csv(scenario.result_header, &columns);
  metrics::Table table{columns};
  for (std::size_t i = 0; i < encoded_configs.size(); ++i) {
    std::vector<std::string> row{scenario.name, std::to_string(i)};
    split_csv(scenario.config_csv_row(encoded_configs[i]), &row);
    if (i < encoded_results.size()) {
      split_csv(scenario.result_csv_row(encoded_results[i]), &row);
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace animus::core
