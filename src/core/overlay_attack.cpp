#include "core/overlay_attack.hpp"

#include "metrics/table.hpp"

namespace animus::core {

OverlayAttack::OverlayAttack(server::World& world, OverlayAttackConfig config)
    : world_(&world),
      config_(std::move(config)),
      main_thread_(&world.new_actor("malware-main")),
      worker_thread_(&world.new_actor("malware-worker")),
      rng_(world.fork_rng("overlay_attack")) {}

server::OverlaySpec OverlayAttack::make_spec() {
  server::OverlaySpec spec;
  spec.bounds = config_.bounds;
  spec.flags = config_.transparent ? ui::kFlagTransparent : ui::kFlagNone;
  if (!config_.intercept_touches) spec.flags |= ui::kFlagNotTouchable;
  spec.content = config_.content;
  spec.deliver_on_down = config_.capture_on_down;
  spec.on_touch = [this](sim::SimTime t, ui::Point p) {
    ++stats_.captures;
    if (config_.on_capture) config_.on_capture(t, p);
  };
  return spec;
}

void OverlayAttack::start() {
  if (stats_.running) return;
  stats_ = Stats{};
  stats_.running = true;
  stats_.started = world_->now();
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           metrics::fmt("overlay attack start D=%.1fms",
                                        sim::to_ms(config_.attacking_window)));
  }
  cycle_start_ = world_->now();
  // Step 1: the first notification performs only addView(O1).
  main_thread_->post(sim::ms_f(0.1), server::kAddViewClientCost, [this] {
    current_ = world_->server().add_view(config_.uid, make_spec());
  });
  // Step 3/4: the worker thread waits D and repeats.
  const double jitter =
      world_->server().deterministic() ? 0.0 : rng_.normal(0.0, config_.timer_jitter_ms);
  timer_ = world_->loop().schedule_after(config_.attacking_window + sim::ms_f(jitter),
                                         [this] { tick(); });
}

void OverlayAttack::tick() {
  if (!stats_.running) return;
  ++stats_.cycles;
  // One completed draw-and-destroy round as a duration span: cycles are
  // strictly sequential, so the attack track nests cleanly in Perfetto.
  sim::profile_span("attack.draw_destroy_cycle", sim::TraceCategory::kAttack, cycle_start_,
                    world_->now());
  if (world_->trace().enabled()) {
    world_->trace().span(cycle_start_, world_->now(), sim::TraceCategory::kAttack,
                         metrics::fmt("draw-destroy cycle %d", stats_.cycles));
  }
  cycle_start_ = world_->now();
  // Step 2: remove the displayed overlay, then add the other one. The
  // add call blocks the main thread for kAddViewClientCost, which is why
  // issuing it first (add_before_remove) delays the removal dispatch.
  main_thread_->post(sim::ms_f(0.1), server::kAddViewClientCost, [this] {
    const server::OverlaySpec spec = make_spec();
    const server::ViewHandle previous = current_;
    if (config_.add_before_remove) {
      current_ = world_->server().add_view(config_.uid, spec);
      // addView blocks; the removeView call only leaves the app after
      // the client-side cost has elapsed.
      main_thread_->post(sim::SimTime{0}, sim::ms_f(0.2), [this, previous] {
        world_->server().remove_view(config_.uid, previous);
      });
    } else {
      world_->server().remove_view(config_.uid, previous);
      current_ = world_->server().add_view(config_.uid, spec);
    }
  });
  const double jitter =
      world_->server().deterministic() ? 0.0 : rng_.normal(0.0, config_.timer_jitter_ms);
  timer_ = world_->loop().schedule_after(config_.attacking_window + sim::ms_f(jitter),
                                         [this] { tick(); });
}

void OverlayAttack::stop() {
  if (!stats_.running) return;
  stats_.running = false;
  stats_.stopped = world_->now();
  world_->loop().cancel(timer_);
  // Step 5: remove the last displayed overlay.
  main_thread_->post(sim::ms_f(0.1), sim::ms_f(0.2), [this] {
    if (current_ != 0) world_->server().remove_view(config_.uid, current_);
    current_ = 0;
  });
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           metrics::fmt("overlay attack stop after %d cycles", stats_.cycles));
  }
}

}  // namespace animus::core
