#include "core/deception.hpp"

namespace animus::core {

double surface_coverage(const server::WindowManagerService& wms, int uid,
                        std::string_view content_prefix, sim::SimTime from, sim::SimTime to,
                        double min_alpha, sim::SimTime step) {
  if (to <= from) return 0.0;
  std::size_t covered = 0, samples = 0;
  for (sim::SimTime t = from; t <= to; t += step) {
    ++samples;
    covered += wms.combined_alpha_at(uid, content_prefix, t) >= min_alpha;
  }
  return static_cast<double>(covered) / static_cast<double>(samples);
}

namespace {

OverlayAttackConfig clickjack_overlay_config(const ClickjackingAttack::Config& c) {
  OverlayAttackConfig oc;
  oc.attacking_window = c.attacking_window;
  oc.bounds = c.bounds;
  oc.transparent = false;        // the bait must be visible
  oc.intercept_touches = false;  // taps fall through to the victim
  oc.content = c.bait_content;
  oc.uid = c.uid;
  return oc;
}

ToastAttackConfig content_hiding_toast_config(const ContentHidingAttack::Config& c) {
  ToastAttackConfig tc;
  tc.bounds = c.cover_region;
  tc.content = c.cover_content;
  tc.toast_duration = c.toast_duration;
  tc.uid = c.uid;
  return tc;
}

}  // namespace

ClickjackingAttack::ClickjackingAttack(server::World& world, Config config)
    : world_(&world),
      config_(std::move(config)),
      overlay_(world, clickjack_overlay_config(config_)) {}

double ClickjackingAttack::bait_coverage(sim::SimTime from, sim::SimTime to) const {
  // Opaque overlays have no fade; coverage is presence of a live surface.
  return surface_coverage(world_->wms(), config_.uid, config_.bait_content, from, to,
                          /*min_alpha=*/0.99);
}

ContentHidingAttack::ContentHidingAttack(server::World& world, Config config)
    : world_(&world),
      config_(std::move(config)),
      toast_(world, content_hiding_toast_config(config_)) {}

double ContentHidingAttack::cover_coverage(sim::SimTime from, sim::SimTime to,
                                           double min_alpha) const {
  return surface_coverage(world_->wms(), config_.uid, "attack:", from, to, min_alpha);
}

}  // namespace animus::core
