// Field descriptors for the trial result structs.
//
// Declaring ANIMUS_FIELDS(Type, ...) gives a struct a TrialCodec "for
// free": checkpoint encode/decode, cross-process transport over the
// shard backend, and --trials-out CSV columns are all derived from this
// one list (runner/field_codec.hpp). The descriptors live here — not in
// the domain headers — so server/percept/core stay independent of the
// runner layer; any bench or test that sweeps these structs includes
// this header next to bench_cli.hpp.
//
// Each declaration must list every field that defines the result: a
// field left out silently round-trips as its default, which would break
// the backends' byte-identical-stdout contract.
#pragma once

#include "core/attack_analysis.hpp"
#include "core/report.hpp"
#include "percept/flicker.hpp"
#include "runner/field_codec.hpp"
#include "server/system_ui.hpp"

namespace animus::server {

ANIMUS_FIELDS(SystemUi::AlertStats, shows, dismissals, completions, max_pixels,
              max_completeness, max_message_progress, icon_shown, visible_time)

}  // namespace animus::server

namespace animus::percept {

ANIMUS_FIELDS(FlickerResult, min_alpha, longest_dip, dips, noticeable)

}  // namespace animus::percept

namespace animus::core {

ANIMUS_FIELDS(OutcomeProbe, outcome, alert, cycles)

ANIMUS_FIELDS(DBoundTrialResult, d_upper_ms, probes)

ANIMUS_FIELDS(PasswordTrialResult, intended, decoded, error, success, triggered,
              used_username_workaround, widget_filled, captured_touches, password_touches,
              leaked_to_real_keyboard, alert, alert_outcome, flicker)

ANIMUS_FIELDS(CaptureTrialResult, touches, captured, rate, alert, alert_outcome)

}  // namespace animus::core
