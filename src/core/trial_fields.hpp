// Field descriptors for the trial config and result structs.
//
// Declaring ANIMUS_FIELDS(Type, ...) gives a struct a TrialCodec "for
// free": checkpoint encode/decode, cross-process transport over the
// shard backend, and --trials-out CSV columns are all derived from this
// one list (runner/field_codec.hpp). The descriptors live here — not in
// the domain headers — so server/percept/core stay independent of the
// runner layer; any bench or test that sweeps these structs includes
// this header next to bench_cli.hpp.
//
// Each declaration must list every field that defines the result: a
// field left out silently round-trips as its default, which would break
// the backends' byte-identical-stdout contract. The config structs are
// declared too, so a campaign can ship a whole trial description across
// the process boundary (or pin one into a checkpoint) with the same
// byte-exact guarantees as the results.
#pragma once

#include "core/attack_analysis.hpp"
#include "core/report.hpp"
#include "input/typist.hpp"
#include "percept/flicker.hpp"
#include "runner/field_codec.hpp"
#include "server/system_ui.hpp"
#include "victim/victim_app.hpp"

namespace animus::ipc {

ANIMUS_FIELDS(LatencyModel, mean_ms, sd_ms, floor_ms)

}  // namespace animus::ipc

namespace animus::device {

ANIMUS_FIELDS(DeviceProfile, manufacturer, model, version, screen_w, screen_h,
              notification_height_px, tam, trm, tas, tn, tv, tnr, toast_create,
              d_upper_bound_table_ms, load_factor)

}  // namespace animus::device

namespace animus::input {

ANIMUS_FIELDS(TypistProfile, name, inter_key_mean_ms, inter_key_sd_ms, inter_key_min_ms,
              jitter_frac, misspell_rate)

}  // namespace animus::input

namespace animus::victim {

ANIMUS_FIELDS(VictimAppSpec, name, version, disables_password_accessibility,
              shares_parent_view)

}  // namespace animus::victim

namespace animus::server {

ANIMUS_FIELDS(SystemUi::AlertStats, shows, dismissals, completions, max_pixels,
              max_completeness, max_message_progress, icon_shown, visible_time)

}  // namespace animus::server

namespace animus::percept {

ANIMUS_FIELDS(FlickerResult, min_alpha, longest_dip, dips, noticeable)

}  // namespace animus::percept

namespace animus::core {

ANIMUS_FIELDS(OutcomeProbeConfig, profile, attacking_window, duration, add_before_remove,
              seed, deterministic, tier)

ANIMUS_FIELDS(OutcomeProbe, outcome, alert, cycles)

ANIMUS_FIELDS(DBoundTrialConfig, profile, max_ms, seed, deterministic, tier)

ANIMUS_FIELDS(DBoundTrialResult, d_upper_ms, probes)

ANIMUS_FIELDS(CaptureTrialConfig, profile, typist, attacking_window, touches, seed,
              deterministic)

ANIMUS_FIELDS(PasswordTrialConfig, profile, app, typist, username, password, seed,
              deterministic, d_override, toast_duration)

ANIMUS_FIELDS(PasswordTrialResult, intended, decoded, error, success, triggered,
              used_username_workaround, widget_filled, captured_touches, password_touches,
              leaked_to_real_keyboard, alert, alert_outcome, flicker)

ANIMUS_FIELDS(CaptureTrialResult, touches, captured, rate, alert, alert_outcome)

}  // namespace animus::core
