// Field descriptors for the trial config and result structs.
//
// Declaring ANIMUS_FIELDS(Type, ...) gives a struct a TrialCodec "for
// free": checkpoint encode/decode, cross-process transport over the
// shard backend, and --trials-out CSV columns are all derived from this
// one list (runner/field_codec.hpp). The descriptors live here — not in
// the domain headers — so server/percept/core stay independent of the
// runner layer; any bench or test that sweeps these structs includes
// this header next to bench_cli.hpp.
//
// Each declaration must list every field that defines the result: a
// field left out silently round-trips as its default, which would break
// the backends' byte-identical-stdout contract. The config structs are
// declared too, so a campaign can ship a whole trial description across
// the process boundary (or pin one into a checkpoint) with the same
// byte-exact guarantees as the results.
#pragma once

#include "core/attack_analysis.hpp"
#include "core/frosted_glass.hpp"
#include "core/notification_abuse.hpp"
#include "core/report.hpp"
#include "core/tapjacking.hpp"
#include "input/typist.hpp"
#include "percept/flicker.hpp"
#include "runner/field_codec.hpp"
#include "server/system_ui.hpp"
#include "victim/victim_app.hpp"

namespace animus::ui {

ANIMUS_FIELDS(Rect, x, y, w, h)

}  // namespace animus::ui

namespace animus::ipc {

ANIMUS_FIELDS(LatencyModel, mean_ms, sd_ms, floor_ms)

}  // namespace animus::ipc

namespace animus::device {

ANIMUS_FIELDS(DeviceProfile, manufacturer, model, version, screen_w, screen_h,
              notification_height_px, tam, trm, tas, tn, tv, tnr, toast_create,
              d_upper_bound_table_ms, load_factor)

}  // namespace animus::device

namespace animus::input {

ANIMUS_FIELDS(TypistProfile, name, inter_key_mean_ms, inter_key_sd_ms, inter_key_min_ms,
              jitter_frac, misspell_rate)

}  // namespace animus::input

namespace animus::victim {

ANIMUS_FIELDS(VictimAppSpec, name, version, disables_password_accessibility,
              shares_parent_view)

}  // namespace animus::victim

namespace animus::server {

ANIMUS_FIELDS(SystemUi::AlertStats, shows, dismissals, completions, max_pixels,
              max_completeness, max_message_progress, icon_shown, visible_time)

}  // namespace animus::server

namespace animus::percept {

ANIMUS_FIELDS(FlickerResult, min_alpha, longest_dip, dips, noticeable)

}  // namespace animus::percept

namespace animus::core {

ANIMUS_FIELDS(OutcomeProbeConfig, profile, attacking_window, duration, add_before_remove,
              seed, deterministic, tier)

ANIMUS_FIELDS(OutcomeProbe, outcome, alert, cycles)

ANIMUS_FIELDS(DBoundTrialConfig, profile, max_ms, seed, deterministic, tier)

ANIMUS_FIELDS(DBoundTrialResult, d_upper_ms, probes)

ANIMUS_FIELDS(CaptureTrialConfig, profile, typist, attacking_window, touches, seed,
              deterministic)

ANIMUS_FIELDS(PasswordTrialConfig, profile, app, typist, username, password, seed,
              deterministic, d_override, toast_duration)

ANIMUS_FIELDS(PasswordTrialResult, intended, decoded, error, success, triggered,
              used_username_workaround, widget_filled, captured_touches, password_touches,
              leaked_to_real_keyboard, alert, alert_outcome, flicker)

ANIMUS_FIELDS(CaptureTrialResult, touches, captured, rate, alert, alert_outcome)

ANIMUS_FIELDS(TapjackingConfig, profile, attacking_window, dialog_at, tap_at, duration,
              dialog_bounds, seed, deterministic)

ANIMUS_FIELDS(TapjackingResult, tap_delivered, decoy_covered, stealthy, success, cycles,
              alert, alert_outcome)

ANIMUS_FIELDS(NotificationAbuseConfig, profile, flood_count, flood_at, flood_interval,
              victim_post_at, heads_up_window, toast_duration, inter_toast_gap, duration,
              seed, deterministic)

ANIMUS_FIELDS(NotificationAbuseResult, flood_enqueued, flood_rejected, toasts_shown,
              max_queue_depth, victim_shown, victim_delay_ms, victim_in_window, victim_queued)

ANIMUS_FIELDS(FrostedGlassConfig, profile, glass_alpha, appear_at, dwell, bounds,
              visible_threshold, seed, deterministic, tier)

ANIMUS_FIELDS(FrostedGlassResult, peak_alpha, first_visible_ms, visible_ms, samples, noticed)

}  // namespace animus::core
