// Frosted-glass pack: a translucent full-screen "glass" surface on the
// toast layer (no SYSTEM_ALERT_WINDOW needed, Section II-B1) that dims
// and blurs the victim's screen — e.g. to mask a UI change happening
// beneath it. Whether the user notices is an *animation* question: the
// surface enters through the 500 ms DecelerateInterpolator toast
// fade-in and leaves through the AccelerateInterpolator fade-out
// (Section IV-B), so its perceived opacity is glass_alpha scaled by the
// frame-quantized fade trajectory. The probe samples that trajectory
// every animation frame and reports when (and for how long) the glass
// crossed the naked-eye visibility threshold.
//
// The trajectory is closed-form: the scenario registers an analytic
// tier that replays the exact FadeAnimation value objects the Window
// Manager attaches, so sim and analytic answers are bit-identical for
// deterministic configs — the registry's cross-tier CSV contract.
#pragma once

#include "core/tier.hpp"
#include "device/profile.hpp"
#include "sim/time.hpp"
#include "ui/geometry.hpp"

namespace animus::core {

class TrialSession;

struct FrostedGlassConfig {
  device::DeviceProfile profile;
  /// Intrinsic opacity of the glass surface (0 transparent .. 1 opaque).
  double glass_alpha = 0.35;
  /// When the glass is posted and how long it dwells before fading out.
  sim::SimTime appear_at = sim::ms(200);
  sim::SimTime dwell = sim::ms(1500);
  ui::Rect bounds{0, 0, 1080, 2280};
  /// Perceived-opacity threshold at which a user notices the dimming.
  double visible_threshold = 0.15;
  std::uint64_t seed = 0x414e494d5553ULL;
  bool deterministic = true;
  /// Execution tier; kAuto takes the analytic fast path when eligible.
  Tier tier = Tier::kAuto;
};

struct FrostedGlassResult {
  /// Peak perceived opacity over the sampled trajectory.
  double peak_alpha = 0.0;
  /// First sample at/above the threshold; -1 when never visible.
  double first_visible_ms = -1.0;
  /// Total sampled time at/above the threshold.
  double visible_ms = 0.0;
  int samples = 0;  ///< trajectory samples taken (one per frame)
  /// The glass ever crossed the visibility threshold.
  bool noticed = false;
};

/// Simulation body (registry: "frosted-glass").
FrostedGlassResult run_frosted_glass_sim(TrialSession& session, const FrostedGlassConfig& config);

/// Closed-form trajectory replay (registry analytic tier).
FrostedGlassResult run_frosted_glass_analytic(const FrostedGlassConfig& config);

/// One-shot convenience (fresh session per call, registry tier dispatch).
FrostedGlassResult run_frosted_glass_trial(const FrostedGlassConfig& config);

/// Registry hook called by register_builtin_scenarios().
void register_frosted_glass_scenario();

}  // namespace animus::core
