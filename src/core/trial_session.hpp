// TrialSession: the redesigned trial entry point.
//
// One session owns one arena-backed World and runs trials back to back
// against it: instead of constructing (and tearing down) a World per
// trial, each trial opens a fresh *epoch* via World::reset_to_epoch,
// which restores the pristine just-constructed state while keeping the
// event-loop slabs, window history vectors and Binder ledgers warm.
// Results are byte-identical to fresh-World runs — the session tests
// lock the two flows together, including under fault injection — at a
// fraction of the per-trial cost.
//
// Trial dispatch lives in the attack-scenario registry
// (core/attack_scenario.hpp): each run() overload is a thin wrapper
// over run_scenario("<name>", ...), whose registered descriptor owns
// the tier dispatch — probe and D-bound configs carry a `tier` field
// (core/tier.hpp), eligible deterministic trials are answered by the
// analytic replay (core/analytic.hpp) without touching the World at
// all, and requesting `kAnalytic` for an ineligible config falls back
// to simulation and bumps the per-scenario
// `animus_analytic_fallbacks_total{scenario=...}` counter. The
// simulation bodies stay here as public run_sim() overloads; the
// registry wires them up in register_legacy_scenarios().
//
// Construction idiom (uniform across every trial kind): configs are
// aggregates with designated-initializer-friendly defaults; name the
// fields you change and let the rest default —
//
//   core::TrialSession session;
//   auto probe = session.run(core::OutcomeProbeConfig{
//       .profile = device::reference_device(),
//       .attacking_window = sim::ms(150),
//   });
//
// The free run_* functions remain as one-shot conveniences (fresh
// session per call) for tests and examples that run a single trial;
// sweeps should use TrialSession::local(), one session per worker
// thread.
#pragma once

#include <cstddef>
#include <optional>

#include "core/attack_analysis.hpp"
#include "core/report.hpp"
#include "server/world.hpp"

namespace animus::core {

class TrialSession {
 public:
  TrialSession() = default;
  TrialSession(const TrialSession&) = delete;
  TrialSession& operator=(const TrialSession&) = delete;

  /// Fig. 6 outcome probe. Analytic-tier eligible when deterministic
  /// with the paper's remove-before-add ordering.
  OutcomeProbe run(const OutcomeProbeConfig& config);

  /// Table II D-upper-bound search. Analytic-tier eligible when
  /// deterministic; the search reuses this session's World across its
  /// probes on the simulation tier.
  DBoundTrialResult run(const DBoundTrialConfig& config);

  /// Section VI-B capture-rate trial (stochastic: always simulated).
  CaptureTrialResult run(const CaptureTrialConfig& config);

  /// Section VI-C1 password-stealing trial (stochastic: always simulated).
  PasswordTrialResult run(const PasswordTrialConfig& config);

  /// Session shared by all trials on the current thread — what
  /// runner::sweep trial bodies should use.
  static TrialSession& local();

  /// Epochs opened so far (trials run on the simulation tier).
  [[nodiscard]] std::size_t epochs() const { return epochs_; }

  /// Open a fresh epoch: reset the session World to `config`, or build
  /// it on first use. The returned World is byte-identical to a freshly
  /// constructed one. Public so attack packs (core/attack_scenario.hpp)
  /// can write their simulation bodies against a session.
  server::World& begin_epoch(server::WorldConfig config);

  // Simulation-tier bodies, bypassing the registry's tier dispatch —
  // these are what register_legacy_scenarios() wires up as each
  // scenario's run_sim.
  OutcomeProbe run_sim(const OutcomeProbeConfig& config);
  DBoundTrialResult run_sim(const DBoundTrialConfig& config);
  CaptureTrialResult run_sim(const CaptureTrialConfig& config);
  PasswordTrialResult run_sim(const PasswordTrialConfig& config);

 private:
  std::optional<server::World> world_;
  std::size_t epochs_ = 0;
};

}  // namespace animus::core
