#include "core/analytic.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "percept/outcomes.hpp"
#include "server/system_server.hpp"
#include "server/system_ui.hpp"
#include "server/world.hpp"
#include "sim/event_loop.hpp"
#include "sim/trace.hpp"
#include "ui/animation.hpp"

namespace animus::core::analytic {

namespace {

/// Client-side transit of an actor post (OverlayAttack's 0.1 ms).
constexpr sim::SimTime kClientTransit = sim::ms_f(0.1);

/// Replays the deterministic probe schedule against a real SystemUi.
///
/// Every event the replay schedules corresponds one-to-one, in creation
/// order, to an event the full simulation would schedule (attack timer
/// ticks, malware-main actor tasks, Binder landings, alert dispatches),
/// so equal-time ties resolve through the event loop's sequence numbers
/// exactly as they do in the simulation. SystemUi then schedules its own
/// lifecycle events in the same loop, and its AlertStats come out
/// byte-identical. What the replay *omits* never reaches the event loop
/// in the simulation either: window objects, Binder ledger rows and
/// trace strings.
///
/// Engines are reusable (EventLoop::reset + SystemUi::reset keep the
/// warm storage), which is what makes the analytic D-bound search and
/// campaign sweeps allocation-quiet after the first probe.
class ReplayEngine {
 public:
  OutcomeProbe run(const OutcomeProbeConfig& config) {
    loop_.reset();
    trace_.set_enabled(false);
    if (sysui_) {
      sysui_->reset(config.profile);
    } else {
      sysui_.emplace(loop_, trace_, config.profile);
    }

    d_ = config.attacking_window;
    c0_ = kClientTransit;
    cc_ = server::kAddViewClientCost;
    tam_tas_ = config.profile.tam.mean() + config.profile.tas.mean();
    trm_ = config.profile.trm.mean();
    tn_ = config.profile.tn.mean();
    tv_ = config.profile.tv.mean();
    tnr_ = config.profile.tnr.mean();
    notify_ = device::traits(config.profile.version).overlay_notification;

    busy_ = sim::SimTime{0};
    cycles_ = 0;
    issues_ = 0;
    live_ = 0;
    show_pending_ = false;
    win_.clear();

    // OverlayAttack::start() at t = 0: post the first addView to the
    // malware-main actor (issue 0), then arm the cycle timer at D.
    schedule_issue();
    loop_.schedule_at(d_, [this] { tick(); });

    loop_.run_until(config.duration);

    OutcomeProbe probe;
    probe.alert = sysui_->snapshot(server::kMalwareUid);
    probe.outcome = percept::classify(probe.alert);
    probe.cycles = cycles_;
    return probe;
  }

 private:
  struct Win {
    bool landed = false;
    bool removed = false;
    bool deferred = false;  // removeView landed before the creation did
  };

  /// Actor::post of one draw-and-destroy round: the task starts at
  /// max(arrival, busy_until) and blocks malware-main for the addView
  /// client cost — the saturation mechanism when D < kAddViewClientCost.
  void schedule_issue() {
    const int k = issues_++;
    win_.emplace_back();
    const sim::SimTime start = std::max(loop_.now() + c0_, busy_);
    loop_.schedule_at(start, [this, k] { issue(k); });
    busy_ = start + cc_;
  }

  /// OverlayAttack::tick at t = cycles * D.
  void tick() {
    ++cycles_;
    schedule_issue();
    loop_.schedule_at(loop_.now() + d_, [this] { tick(); });
  }

  /// The malware-main task: removeView(W_{k-1}) then addView(W_k),
  /// issued back to back — the Binder landings race (Section III-C).
  void issue(int k) {
    if (k > 0) {
      loop_.schedule_at(loop_.now() + trm_, [this, k] { remove_land(k - 1); });
    }
    loop_.schedule_at(loop_.now() + tam_tas_, [this, k] { add_land(k); });
  }

  void add_land(int k) {
    Win& w = win_[static_cast<std::size_t>(k)];
    w.landed = true;
    ++live_;
    if (w.deferred) {
      // The removeView overtook the creation; honour it instantly.
      w.removed = true;
      --live_;
      on_removed();
      return;
    }
    on_added();
  }

  void remove_land(int k) {
    Win& w = win_[static_cast<std::size_t>(k)];
    if (!w.landed) {
      w.deferred = true;  // still being created; remove once it lands
      return;
    }
    if (w.removed) return;
    w.removed = true;
    --live_;
    on_removed();
  }

  /// SystemServer::on_overlay_added — the per-uid pending-show slot is
  /// overwritten, not cancelled, exactly like the map entry it mirrors.
  void on_added() {
    if (!notify_) return;
    show_pending_ = true;
    show_id_ = loop_.schedule_after(tn_, [this] {
      show_pending_ = false;
      sysui_->show_overlay_alert(server::kMalwareUid, tv_);
    });
  }

  /// SystemServer::on_overlay_removed with no defense delay: once no
  /// overlay remains, cancel an in-flight show and dispatch the removal.
  void on_removed() {
    if (live_ > 0) return;
    if (show_pending_) {
      loop_.cancel(show_id_);
      show_pending_ = false;
    }
    loop_.schedule_after(tnr_, [this] {
      sysui_->dismiss_overlay_alert(server::kMalwareUid);
    });
  }

  sim::EventLoop loop_;
  sim::TraceRecorder trace_;
  std::optional<server::SystemUi> sysui_;

  sim::SimTime d_{0}, c0_{0}, cc_{0};
  sim::SimTime tam_tas_{0}, trm_{0}, tn_{0}, tv_{0}, tnr_{0};
  bool notify_ = true;

  sim::SimTime busy_{0};  // malware-main actor busy_until
  int cycles_ = 0;
  int issues_ = 0;
  int live_ = 0;  // live overlay count (wms_->overlay_count(uid))
  bool show_pending_ = false;
  sim::EventLoop::EventId show_id_{};
  std::vector<Win> win_;
};

ReplayEngine& engine() {
  thread_local ReplayEngine e;
  return e;
}

}  // namespace

bool eligible(const OutcomeProbeConfig& config) {
  return config.deterministic && !config.add_before_remove &&
         config.attacking_window > sim::SimTime{0};
}

bool eligible(const DBoundTrialConfig& config) {
  // Every probe the search runs is deterministic, remove-before-add,
  // D >= 1 ms — eligible whenever the trial itself is deterministic.
  return config.deterministic && config.max_ms >= 1;
}

OutcomeProbe run_probe(const OutcomeProbeConfig& config) {
  return engine().run(config);
}

DBoundTrialResult run_d_bound(const DBoundTrialConfig& config) {
  // The same binary search the simulation tier runs — probe for probe —
  // so `probes` and any --trials-out row match bit for bit.
  DBoundTrialResult r;
  auto lambda1 = [&config, &r](int d_ms) {
    ++r.probes;
    OutcomeProbeConfig pc;
    pc.profile = config.profile;
    pc.attacking_window = sim::ms(d_ms);
    pc.duration = sim::seconds(3);
    pc.seed = config.seed;
    pc.deterministic = config.deterministic;
    return run_probe(pc).outcome == percept::LambdaOutcome::kL1;
  };
  int lo = 1;                  // assumed Λ1 (checked below)
  int hi = config.max_ms;      // assumed not Λ1
  if (!lambda1(lo)) return r;  // d_upper_ms stays 0
  if (lambda1(hi)) {
    r.d_upper_ms = hi;
    return r;
  }
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (lambda1(mid) ? lo : hi) = mid;
  }
  r.d_upper_ms = lo;
  return r;
}

sim::SimTime time_to_reveal(const device::DeviceProfile& profile, int min_pixels) {
  return ui::notification_slide_in().time_to_reveal(min_pixels,
                                                    profile.notification_height_px);
}

sim::SimTime first_visible_pixel_after_issue(const device::DeviceProfile& profile) {
  return profile.tam.mean() + profile.tas.mean() + profile.tn.mean() + profile.tv.mean() +
         time_to_reveal(profile, ui::kNakedEyeMinPixels);
}

int closed_form_d_upper_ms(const device::DeviceProfile& profile, int max_ms) {
  // Pre-Android-8 never warns about overlays: Λ1 at any D.
  if (!device::traits(profile.version).overlay_notification) return max_ms;
  const sim::SimTime a = profile.tam.mean() + profile.tas.mean();
  const sim::SimTime r = profile.trm.mean();
  // Removals that land after the next overlay has already been created
  // (Tam + Tas < Trm) never leave the app overlay-less, so the alert is
  // never dismissed and completes at any D.
  if (a < r) return 0;
  const sim::SimTime tmis = a - r;
  // Per cycle the alert may play for D - Tmis - Tn - Tv + Tnr before the
  // dismissal lands; Λ1 needs that below Ta (Eq. 3, exact microseconds).
  const sim::SimTime boundary = time_to_reveal(profile, ui::kNakedEyeMinPixels) + tmis +
                                profile.tn.mean() + profile.tv.mean() - profile.tnr.mean();
  if (boundary <= sim::SimTime{0}) return 0;
  const auto d_upper = static_cast<int>((boundary.count() - 1) / 1000);
  return std::clamp(d_upper, 0, max_ms);
}

}  // namespace animus::core::analytic
