// Password-stealing attack (Section V): draw-and-destroy toast attack
// renders a fake keyboard aligned with the real one; draw-and-destroy
// overlay attack stacks transparent UI-intercepting overlays over it;
// intercepted touch coordinates are decoded by nearest-key-center
// Euclidean distance against the sub-keyboard the malware believes is
// showing, mirroring shift/symbol switches as they are captured.
//
// Trigger logic (Section VI-C1): the attack arms on the victim's
// accessibility events. For normal apps the password widget's focus/text
// events start the attack directly. Alipay suppresses password-widget
// events, so the malware instead watches the *username* widget's
// TYPE_WINDOW_CONTENT_CHANGED (sent when focus leaves it), then walks
// getParent() to locate the password widget reference.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "input/keyboard.hpp"
#include "server/world.hpp"
#include "sidechannel/shared_mem.hpp"
#include "victim/victim_app.hpp"

namespace animus::core {

/// Fraction of the device's Table II bound the stealer uses by default:
/// close to optimal capture, with margin against latency jitter.
inline constexpr double kBoundSafetyFactor = 0.88;

/// How the malware learns that the user is about to type a password.
enum class TriggerMode {
  kAccessibility,  // accessibility events (the paper's worked example)
  kSharedMemory,   // shared-memory UI-state side channel (Chen et al.),
                   // the alternative Section V cites
};

struct PasswordStealerConfig {
  TriggerMode trigger = TriggerMode::kAccessibility;
  /// Required when trigger == kSharedMemory; the victim app must have
  /// the same oracle attached.
  sidechannel::SharedMemOracle* oracle = nullptr;
  /// Attacking window D; 0 selects the device's Table II upper bound
  /// scaled by kBoundSafetyFactor ("the malicious app can collect the
  /// phone information before launching the attack so as to select an
  /// appropriate upper boundary of D", Section VI-B).
  sim::SimTime attacking_window{0};
  sim::SimTime toast_duration = server::kToastLong;
  int uid = server::kMalwareUid;
};

class PasswordStealer {
 public:
  struct Keystroke {
    sim::SimTime at{0};
    ui::Point point{};
    std::string decoded_key;  // label of the nearest key
    std::optional<char> ch;   // produced character, if any
  };

  struct Result {
    bool triggered = false;
    bool used_username_workaround = false;
    sim::SimTime triggered_at{0};
    int captured_touches = 0;
    std::string decoded;          // final decoded password (after finalize)
    bool widget_filled = false;   // decoded text written into the widget
    std::vector<Keystroke> keystrokes;
  };

  PasswordStealer(server::World& world, victim::VictimApp& victim,
                  PasswordStealerConfig config);

  /// Subscribe to the configured trigger channel; the attack starts
  /// itself when the condition fires. For the accessibility channel this
  /// returns false when neither the direct nor the workaround trigger
  /// can ever fire for this victim (password events suppressed and no
  /// shared parent view); the side channel has no such prerequisite but
  /// requires an oracle.
  bool arm();

  /// Stop both attacks, decode the captured stream, and fill the real
  /// password widget through the accessibility reference so the victim
  /// UI looks normal. Returns the decoded password.
  std::string finalize();

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const ToastAttack& toast_attack() const { return *toast_; }
  [[nodiscard]] const OverlayAttack& overlay_attack() const { return *overlay_; }

  /// The D actually used (config override or the device table bound).
  [[nodiscard]] sim::SimTime attacking_window() const;

 private:
  void on_accessibility_event(const victim::AccessibilityEvent& ev);
  void trigger(bool via_username_workaround);
  void on_capture(sim::SimTime t, ui::Point p);

  server::World* world_;
  victim::VictimApp* victim_;
  PasswordStealerConfig config_;
  input::Keyboard keyboard_;       // offline analysis of the layout
  input::KeyboardState believed_;  // layout the malware thinks is showing
  std::unique_ptr<ToastAttack> toast_;
  std::unique_ptr<OverlayAttack> overlay_;
  std::unique_ptr<sidechannel::UiStateInferrer> inferrer_;
  std::string stream_;  // decoded characters (backspace-aware)
  std::optional<victim::AccessibilityEvent> last_event_;
  bool armed_ = false;
  bool running_ = false;
  Result result_;
};

}  // namespace animus::core
