// Payment hijack (Section I names it as a third composition of the two
// draw-and-destroy primitives).
//
// When the victim's payment-confirmation screen appears (accessibility
// trigger), the malware:
//  1. covers the payee/amount label with a draw-and-destroy toast that
//     shows a *benign-looking* transaction (content hiding);
//  2. stacks transparent draw-and-destroy overlays over the PIN pad to
//     harvest the user's PIN digits from ACTION_DOWN coordinates;
//  3. replays the decoded PIN into the real widget via the accessibility
//     reference, so the user's tap on the (uncovered) confirm button
//     executes the attacker's transaction while the user believes they
//     approved the displayed one.
#pragma once

#include <memory>
#include <string>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "victim/payment_app.hpp"

namespace animus::core {

class PaymentHijack {
 public:
  struct Config {
    /// What the fake cover claims the user is approving.
    std::string displayed_payee = "Coffee Corner";
    long displayed_amount_cents = 450;
    /// 0 selects the device's Table II bound scaled by the safety factor.
    sim::SimTime attacking_window{0};
    sim::SimTime toast_duration = server::kToastLong;
    int uid = server::kMalwareUid;
  };

  struct Result {
    bool triggered = false;
    std::string stolen_pin;   // decoded from intercepted coordinates
    bool pin_replayed = false;
    int captured_touches = 0;
  };

  PaymentHijack(server::World& world, victim::PaymentApp& victim, Config config);

  /// Subscribe to the victim's accessibility events; the hijack starts
  /// itself when the confirmation screen appears.
  void arm();

  /// Stop the attacks. The decoded PIN remains available.
  void stop();

  [[nodiscard]] const Result& result() const { return result_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const ToastAttack& cover() const { return *cover_; }
  [[nodiscard]] sim::SimTime attacking_window() const;

 private:
  void trigger();
  void on_capture(sim::SimTime t, ui::Point p);

  server::World* world_;
  victim::PaymentApp* victim_;
  Config config_;
  std::unique_ptr<ToastAttack> cover_;
  std::unique_ptr<OverlayAttack> pad_overlay_;
  bool armed_ = false;
  bool running_ = false;
  Result result_;
};

}  // namespace animus::core
