// Analytic trial tier: closed forms plus a bit-exact schedule replay.
//
// The deterministic draw-and-destroy outcome probe is fully determined
// by latency *means* — no randomness is consumed — so the whole trial
// schedule (issue times under the blocking addView cost, Binder land
// times, alert show/dismiss dispatches, Section III-C's overtaken
// removals) can be precomputed and replayed against a real SystemUi
// instance without constructing a World, windows, Binder records or
// trace strings. The replay drives the very same SystemUi code the
// simulation runs, through an event loop with the same (time, creation
// order) tie-breaking, so the resulting AlertStats are byte-identical
// to the simulation's — differential tests enforce this across every
// device profile.
//
// On top of the replay, two true closed forms answer the paper's
// headline quantities in O(1) from the interpolator, animation
// duration, refresh interval and view height (Section III-B/D):
// first-visible-pixel time and the Eq.(3) upper bound of D in exact
// microsecond arithmetic.
#pragma once

#include "core/attack_analysis.hpp"
#include "device/profile.hpp"
#include "sim/time.hpp"

namespace animus::core::analytic {

/// Whether the analytic tier reproduces this probe exactly: the replay
/// covers deterministic latencies and the paper's remove-before-add
/// ordering (the add-before-remove failure mode serializes through the
/// client-side actor in a way only the simulation models).
[[nodiscard]] bool eligible(const OutcomeProbeConfig& config);

/// Whether the analytic tier reproduces this D-bound search exactly
/// (every probe the search runs must itself be eligible).
[[nodiscard]] bool eligible(const DBoundTrialConfig& config);

/// Replay the probe schedule. Precondition: eligible(config).
[[nodiscard]] OutcomeProbe run_probe(const OutcomeProbeConfig& config);

/// Binary-search the Λ1 boundary over analytic probes — the same search
/// the simulation tier runs, probe for probe. Precondition:
/// eligible(config).
[[nodiscard]] DBoundTrialResult run_d_bound(const DBoundTrialConfig& config);

// ------------------------------------------------------------ closed forms

/// Ta: frame-quantized animation play time before the alert view
/// presents at least `min_pixels` rounded pixels (ui::kNakedEyeMinPixels
/// is the Λ1/Λ2 boundary). Exact, in microseconds.
[[nodiscard]] sim::SimTime time_to_reveal(const device::DeviceProfile& profile,
                                          int min_pixels);

/// Time from an overlay addView *issue* to the first naked-eye-visible
/// alert pixel, were the alert left alone: Tam + Tas + Tn + Tv + Ta.
/// Deterministic means, exact microseconds.
[[nodiscard]] sim::SimTime first_visible_pixel_after_issue(
    const device::DeviceProfile& profile);

/// Eq.(3) in exact microsecond arithmetic: the largest integer-ms
/// attacking window D for which the per-cycle alert play time
/// D - Tmis - Tn - Tv + Tnr stays below Ta — i.e. the boundary the
/// simulated binary search finds, without running it. Clamped to
/// [0, max_ms]; devices that never show the overlay alert (pre-Android
/// 8) report max_ms.
[[nodiscard]] int closed_form_d_upper_ms(const device::DeviceProfile& profile,
                                         int max_ms = 1200);

}  // namespace animus::core::analytic
