#include "core/tapjacking.hpp"

#include "core/attack_scenario.hpp"
#include "core/overlay_attack.hpp"
#include "core/trial_fields.hpp"
#include "core/trial_session.hpp"
#include "device/registry.hpp"

namespace animus::core {

TapjackingResult run_tapjacking_sim(TrialSession& session, const TapjackingConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World& world = session.begin_epoch(std::move(wc));
  world.server().grant_overlay_permission(server::kMalwareUid);

  TapjackingResult r;
  {
    // The victim's permission dialog: a plain activity window whose
    // whole surface acts as the Allow button for this model.
    int victim_taps = 0;
    world.loop().schedule_at(config.dialog_at, [&world, &victim_taps, &config] {
      ui::Window dialog;
      dialog.owner_uid = server::kVictimUid;
      dialog.type = ui::WindowType::kActivity;
      dialog.bounds = config.dialog_bounds;
      dialog.content = "victim:dialog";
      dialog.on_touch = [&victim_taps](sim::SimTime, ui::Point) { ++victim_taps; };
      world.wms().add_window_now(std::move(dialog));
    });

    // The decoy: full-screen, opaque, pass-through. Draw-and-destroy
    // cycling keeps the warning alert reset exactly as in Section III.
    OverlayAttackConfig oc;
    oc.attacking_window = config.attacking_window;
    oc.bounds = ui::Rect{0, 0, config.profile.screen_w, config.profile.screen_h};
    oc.transparent = false;
    oc.intercept_touches = false;  // FLAG_NOT_TOUCHABLE: the tap falls through
    oc.content = "attack:decoy";
    OverlayAttack attack{world, oc};
    attack.start();

    // The deceived user taps the decoy's "button" — the dialog's center.
    const ui::Point tap = config.dialog_bounds.center();
    bool decoy_covered = false;
    world.loop().schedule_at(config.tap_at, [&world, &decoy_covered, tap] {
      decoy_covered = world.wms().overlay_count(server::kMalwareUid) > 0;
      world.input().inject_tap(tap);
    });

    world.run_until(config.duration);

    r.tap_delivered = victim_taps > 0;
    r.decoy_covered = decoy_covered;
    r.alert = world.system_ui().snapshot(server::kMalwareUid);
    r.alert_outcome = percept::classify(r.alert);
    r.stealthy = r.alert_outcome == percept::LambdaOutcome::kL1;
    r.success = r.tap_delivered && r.decoy_covered && r.stealthy;
    r.cycles = attack.stats().cycles;
    attack.stop();
  }
  world.finish_epoch();
  return r;
}

TapjackingResult run_tapjacking_trial(const TapjackingConfig& config) {
  TrialSession session;
  return run_scenario<TapjackingConfig, TapjackingResult>("tapjacking", session, config);
}

namespace {

std::vector<TapjackingConfig> tapjacking_campaign() {
  std::vector<TapjackingConfig> configs;
  for (const int d : {50, 150, 400, 690, 1000}) {
    TapjackingConfig c;
    c.profile = device::reference_device_android9();
    c.attacking_window = sim::ms(d);
    configs.push_back(c);
  }
  return configs;
}

}  // namespace

void register_tapjacking_scenario() {
  register_scenario<TapjackingConfig, TapjackingResult>({
      .name = "tapjacking",
      .description =
          "pass-through decoy overlay timed against a victim permission dialog",
      .run_sim = [](TrialSession& s, const TapjackingConfig& c) {
        return run_tapjacking_sim(s, c);
      },
      .campaign = tapjacking_campaign,
  });
}

}  // namespace animus::core
