#include "core/attack_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "core/overlay_attack.hpp"
#include "server/world.hpp"

namespace animus::core {

double expected_total_mistouch_ms(const device::DeviceProfile& profile, double total_ms,
                                  double d_ms) {
  const double n = std::ceil(total_ms / d_ms);
  return std::max(0.0, n - 1.0) * profile.expected_tmis_ms() + profile.tam.mean_ms +
         profile.tas.mean_ms;
}

double predicted_capture_rate(const device::DeviceProfile& profile, double d_ms,
                              double contact_ms) {
  const double loss = (contact_ms + profile.expected_tmis_ms()) / d_ms;
  return std::clamp(1.0 - loss, 0.0, 1.0);
}

OutcomeProbe run_outcome_probe(const OutcomeProbeConfig& config) {
  server::WorldConfig wc;
  wc.profile = config.profile;
  wc.seed = config.seed;
  wc.deterministic = config.deterministic;
  wc.trace_enabled = false;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);

  OverlayAttackConfig oc;
  oc.attacking_window = config.attacking_window;
  oc.add_before_remove = config.add_before_remove;
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(config.duration);

  OutcomeProbe probe;
  probe.alert = world.system_ui().snapshot(server::kMalwareUid);
  probe.outcome = percept::classify(probe.alert);
  probe.cycles = attack.stats().cycles;
  attack.stop();
  return probe;
}

DBoundTrialResult run_d_bound_trial(const DBoundTrialConfig& config) {
  // Λ1(D) is monotone: more waiting lets the slide-in animation play
  // further. Binary search the boundary.
  DBoundTrialResult r;
  auto lambda1 = [&config, &r](int d_ms) {
    ++r.probes;
    OutcomeProbeConfig pc;
    pc.profile = config.profile;
    pc.attacking_window = sim::ms(d_ms);
    pc.duration = sim::seconds(3);
    pc.seed = config.seed;
    pc.deterministic = config.deterministic;
    return run_outcome_probe(pc).outcome == percept::LambdaOutcome::kL1;
  };
  int lo = 1;                 // assumed Λ1 (checked below)
  int hi = config.max_ms;     // assumed not Λ1
  if (!lambda1(lo)) return r;  // d_upper_ms stays 0
  if (lambda1(hi)) {
    r.d_upper_ms = hi;
    return r;
  }
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (lambda1(mid) ? lo : hi) = mid;
  }
  r.d_upper_ms = lo;
  return r;
}

}  // namespace animus::core
