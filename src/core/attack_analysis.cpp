#include "core/attack_analysis.hpp"

#include <algorithm>
#include <cmath>

namespace animus::core {

double expected_total_mistouch_ms(const device::DeviceProfile& profile, double total_ms,
                                  double d_ms) {
  const double n = std::ceil(total_ms / d_ms);
  return std::max(0.0, n - 1.0) * profile.expected_tmis_ms() + profile.tam.mean_ms +
         profile.tas.mean_ms;
}

double predicted_capture_rate(const device::DeviceProfile& profile, double d_ms,
                              double contact_ms) {
  const double loss = (contact_ms + profile.expected_tmis_ms()) / d_ms;
  return std::clamp(1.0 - loss, 0.0, 1.0);
}

}  // namespace animus::core
