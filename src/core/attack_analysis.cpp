#include "core/attack_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "core/overlay_attack.hpp"
#include "server/world.hpp"

namespace animus::core {

double expected_total_mistouch_ms(const device::DeviceProfile& profile, double total_ms,
                                  double d_ms) {
  const double n = std::ceil(total_ms / d_ms);
  return std::max(0.0, n - 1.0) * profile.expected_tmis_ms() + profile.tam.mean_ms +
         profile.tas.mean_ms;
}

double predicted_capture_rate(const device::DeviceProfile& profile, double d_ms,
                              double contact_ms) {
  const double loss = (contact_ms + profile.expected_tmis_ms()) / d_ms;
  return std::clamp(1.0 - loss, 0.0, 1.0);
}

OutcomeProbe probe_outcome(const device::DeviceProfile& profile, sim::SimTime d,
                           sim::SimTime duration, bool add_before_remove) {
  server::WorldConfig wc;
  wc.profile = profile;
  wc.deterministic = true;
  wc.trace_enabled = false;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);

  OverlayAttackConfig oc;
  oc.attacking_window = d;
  oc.add_before_remove = add_before_remove;
  OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(duration);

  OutcomeProbe probe;
  probe.alert = world.system_ui().snapshot(server::kMalwareUid);
  probe.outcome = percept::classify(probe.alert);
  probe.cycles = attack.stats().cycles;
  attack.stop();
  return probe;
}

int find_d_upper_bound_ms(const device::DeviceProfile& profile, int max_ms) {
  // Λ1(D) is monotone: more waiting lets the slide-in animation play
  // further. Binary search the boundary.
  auto lambda1 = [&profile](int d_ms) {
    return probe_outcome(profile, sim::ms(d_ms), sim::seconds(3)).outcome ==
           percept::LambdaOutcome::kL1;
  };
  int lo = 1;          // assumed Λ1 (checked below)
  int hi = max_ms;     // assumed not Λ1
  if (!lambda1(lo)) return 0;
  if (lambda1(hi)) return hi;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    (lambda1(mid) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace animus::core
