// Notification-abuse pack (Knock-Knock, Patsakis & Alepis — see
// PAPERS.md): the malware floods Toast.show() so the single heads-up
// toast slot is held by attacker content back to back. Android's
// post-8 pipeline shows toasts strictly FIFO, one at a time, for their
// full duration (Section II-B), so a victim toast posted behind the
// flood is starved: its token sits in the queue far past the moment the
// heads-up would have mattered. The per-app 50-token cap bounds the
// flood but does not protect the victim — 50 SHORT toasts still hold
// the slot for ~100 s.
//
// The result records both the flood's fate (accepted/rejected/shown)
// and the victim's: whether its toast surfaced at all before the trial
// ended, how late, and whether that was inside the heads-up window the
// victim needed. The scheduling defense of Section VII-B
// (set_inter_toast_gap) stretches the starvation further — exercised by
// the campaign grid and the DSL scenario.
#pragma once

#include "device/profile.hpp"
#include "server/notification_manager.hpp"

namespace animus::core {

class TrialSession;

struct NotificationAbuseConfig {
  device::DeviceProfile profile;
  /// Flood tokens the malware enqueues (0 = baseline, no attack).
  int flood_count = 60;
  /// When the flood starts and the spacing between Toast.show() calls.
  sim::SimTime flood_at = sim::ms(100);
  sim::SimTime flood_interval = sim::ms(4);
  /// When the victim posts its heads-up toast.
  sim::SimTime victim_post_at = sim::ms(500);
  /// How soon the victim's toast must surface to be useful (its
  /// "heads-up window": a 2FA code prompt, an incoming-call banner).
  sim::SimTime heads_up_window = sim::ms(1500);
  /// Duration of every flood toast (clamped SHORT/LONG by the NMS).
  sim::SimTime toast_duration = server::kToastShort;
  /// Scheduling-defense gap between successive toasts (Section VII-B).
  sim::SimTime inter_toast_gap = sim::ms(0);
  sim::SimTime duration = sim::seconds(6);
  std::uint64_t seed = 0x414e494d5553ULL;
  /// Use latency means instead of samples.
  bool deterministic = true;
};

struct NotificationAbuseResult {
  int flood_enqueued = 0;   ///< flood tokens accepted by the NMS
  int flood_rejected = 0;   ///< flood tokens over the 50-token cap
  int toasts_shown = 0;     ///< toast windows that reached the screen
  int max_queue_depth = 0;  ///< peak NMS token-queue depth
  /// The victim's toast surfaced before the trial ended.
  bool victim_shown = false;
  /// Post-to-screen latency of the victim's toast; -1 when starved.
  double victim_delay_ms = -1.0;
  /// The toast surfaced inside the victim's heads-up window.
  bool victim_in_window = false;
  /// Victim tokens still queued (slot evicted) when the trial ended.
  int victim_queued = 0;
};

/// Simulation body (registry: "notification-abuse").
NotificationAbuseResult run_notification_abuse_sim(TrialSession& session,
                                                   const NotificationAbuseConfig& config);

/// One-shot convenience (fresh session per call).
NotificationAbuseResult run_notification_abuse_trial(const NotificationAbuseConfig& config);

/// Registry hook called by register_builtin_scenarios().
void register_notification_abuse_scenario();

}  // namespace animus::core
