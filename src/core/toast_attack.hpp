// Draw-and-destroy toast attack (Section IV).
//
// The malware keeps a customized toast (e.g. a fake keyboard image) on
// top of the victim app indefinitely. Android shows toasts one at a time
// from a token queue (max 50 tokens per app), but a toast exits through a
// 500 ms AccelerateInterpolator fade-out that is slow at first — so a new
// toast whose token is already queued appears (Tas after the fade-out
// starts) while the old one still looks solid, and the user perceives a
// single continuous surface.
//
// Token strategy: keep the queue primed with `queue_target` tokens; every
// time the Notification Manager shows one of our toasts we enqueue a
// replacement. The queue therefore never empties and never approaches
// the 50-token cap (Section IV-D). A timer-driven strategy (enqueue
// every D) is also available to mirror the paper's Fig. 5 workflow.
#pragma once

#include <string>

#include "server/world.hpp"

namespace animus::core {

struct ToastAttackConfig {
  /// Per-toast on-screen duration; the paper recommends 3.5 s to reduce
  /// the number of switches within the attack period (Section IV-D).
  sim::SimTime toast_duration = server::kToastLong;
  ui::Rect bounds{0, 1500, 1080, 780};  // fake keyboard area
  /// Content tag of the toast surface; sub-keyboard switches change it.
  std::string content = "fake_keyboard:lower";
  int uid = server::kMalwareUid;
  /// Tokens to keep waiting in the queue (>= 1; well below the cap).
  int queue_target = 2;
  /// If nonzero, enqueue on a fixed period D instead of reactively.
  sim::SimTime enqueue_interval{0};
};

class ToastAttack {
 public:
  struct Stats {
    int enqueued = 0;
    int shown = 0;
    int content_switches = 0;
    bool running = false;
    sim::SimTime started{0};
    sim::SimTime stopped{0};
  };

  ToastAttack(server::World& world, ToastAttackConfig config);

  /// Begin keeping a toast on screen. No permission is required — the
  /// paper's toast threat model (Section IV-A).
  void start();

  /// Stop enqueuing; the last toast fades out naturally.
  void stop();

  /// Switch the fake surface (sub-keyboard change): future toasts carry
  /// `content`, and the currently showing toast is cancelled so the new
  /// board appears immediately.
  void switch_content(std::string content);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::string& content() const { return config_.content; }

 private:
  void enqueue_one();
  void timer_tick();
  void on_toast_shown(const server::ToastRequest& request, ui::WindowId id);

  server::World* world_;
  ToastAttackConfig config_;
  sim::Actor* main_thread_;
  sim::EventLoop::EventId timer_{};
  Stats stats_;
};

}  // namespace animus::core
