#include "core/payment_hijack.hpp"

#include "core/password_stealer.hpp"  // kBoundSafetyFactor
#include "metrics/table.hpp"

namespace animus::core {

PaymentHijack::PaymentHijack(server::World& world, victim::PaymentApp& victim, Config config)
    : world_(&world), victim_(&victim), config_(std::move(config)) {
  ToastAttackConfig tc;
  tc.toast_duration = config_.toast_duration;
  tc.bounds = victim.amount_bounds();
  tc.content = metrics::fmt("attack:fake_amount:%s:%ld", config_.displayed_payee.c_str(),
                            config_.displayed_amount_cents);
  tc.uid = config_.uid;
  cover_ = std::make_unique<ToastAttack>(world, tc);

  OverlayAttackConfig oc;
  oc.attacking_window = attacking_window();
  oc.bounds = victim.pin_pad_bounds();
  oc.transparent = true;
  oc.uid = config_.uid;
  oc.on_capture = [this](sim::SimTime t, ui::Point p) { on_capture(t, p); };
  pad_overlay_ = std::make_unique<OverlayAttack>(world, oc);
}

sim::SimTime PaymentHijack::attacking_window() const {
  if (config_.attacking_window > sim::SimTime{0}) return config_.attacking_window;
  return sim::ms_f(kBoundSafetyFactor * world_->profile().d_upper_bound_table_ms);
}

void PaymentHijack::arm() {
  if (armed_) return;
  armed_ = true;
  victim_->bus().subscribe([this](const victim::AccessibilityEvent& ev) {
    if (!running_ && ev.widget_id == victim::kAmountLabel) trigger();
  });
  world_->trace().record(world_->now(), sim::TraceCategory::kAttack, "payment hijack armed");
}

void PaymentHijack::trigger() {
  running_ = true;
  result_.triggered = true;
  world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                         metrics::fmt("payment hijack triggered, D=%.1fms",
                                      sim::to_ms(attacking_window())));
  cover_->start();
  pad_overlay_->start();
}

void PaymentHijack::on_capture(sim::SimTime, ui::Point p) {
  if (!running_) return;
  ++result_.captured_touches;
  const int d = victim_->digit_at(p);
  if (d < 0) return;
  result_.stolen_pin.push_back(static_cast<char>('0' + d));
  // Replay immediately: the real PIN field mirrors the user's intent, so
  // the confirm tap (which the overlays do not cover) goes through.
  victim_->set_pin_by_ref(result_.stolen_pin);
  result_.pin_replayed = true;
}

void PaymentHijack::stop() {
  if (!running_) return;
  running_ = false;
  pad_overlay_->stop();
  cover_->stop();
  world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                         "payment hijack stopped; pin=" + result_.stolen_pin);
}

}  // namespace animus::core
