#include "core/toast_attack.hpp"

#include "metrics/table.hpp"

namespace animus::core {

ToastAttack::ToastAttack(server::World& world, ToastAttackConfig config)
    : world_(&world),
      config_(std::move(config)),
      main_thread_(&world.new_actor("malware-toast")) {
  world_->nms().add_shown_listener(
      [this](const server::ToastRequest& r, ui::WindowId id) { on_toast_shown(r, id); });
}

void ToastAttack::enqueue_one() {
  server::ToastRequest req;
  req.uid = config_.uid;
  req.content = config_.content;
  req.bounds = config_.bounds;
  req.duration = config_.toast_duration;
  world_->server().enqueue_toast(config_.uid, req);
  ++stats_.enqueued;
}

void ToastAttack::start() {
  if (stats_.running) return;
  stats_ = Stats{};
  stats_.running = true;
  stats_.started = world_->now();
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           metrics::fmt("toast attack start dur=%.0fms",
                                        sim::to_ms(config_.toast_duration)));
  }
  if (config_.enqueue_interval > sim::SimTime{0}) {
    // Fig. 5 workflow: the worker thread enqueues every D.
    timer_tick();
    return;
  }
  // Reactive strategy: prime the queue, then top it up on every show.
  for (int i = 0; i < std::max(1, config_.queue_target) + 1; ++i) {
    main_thread_->post(sim::ms_f(0.1), sim::ms_f(0.3), [this] { enqueue_one(); });
  }
}

void ToastAttack::timer_tick() {
  if (!stats_.running) return;
  main_thread_->post(sim::ms_f(0.1), sim::ms_f(0.3), [this] { enqueue_one(); });
  timer_ = world_->loop().schedule_after(config_.enqueue_interval, [this] { timer_tick(); });
}

void ToastAttack::on_toast_shown(const server::ToastRequest& request, ui::WindowId) {
  if (!stats_.running || request.uid != config_.uid) return;
  ++stats_.shown;
  if (config_.enqueue_interval > sim::SimTime{0}) return;  // timer mode tops up itself
  // Keep the queue primed without approaching the 50-token cap.
  const int queued = world_->nms().queued_tokens(config_.uid);
  if (queued < std::max(1, config_.queue_target)) {
    main_thread_->post(sim::ms_f(0.1), sim::ms_f(0.3), [this] { enqueue_one(); });
  }
}

void ToastAttack::switch_content(std::string content) {
  if (config_.content == content) return;
  config_.content = std::move(content);
  ++stats_.content_switches;
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           "toast attack: switch to " + config_.content);
  }
  if (!stats_.running) return;
  // Purge stale queued boards, queue a toast with the new board, then
  // cancel the current one so the replacement appears immediately
  // (Toast.cancel() on held references).
  main_thread_->post(sim::ms_f(0.1), sim::ms_f(0.3), [this] {
    world_->server().cancel_queued_toasts(config_.uid, config_.content);
    enqueue_one();
    world_->server().cancel_toast(config_.uid);
  });
}

void ToastAttack::stop() {
  if (!stats_.running) return;
  stats_.running = false;
  stats_.stopped = world_->now();
  world_->loop().cancel(timer_);
  if (world_->trace().enabled()) {
    world_->trace().record(world_->now(), sim::TraceCategory::kAttack,
                           metrics::fmt("toast attack stop after %d toasts", stats_.shown));
  }
}

}  // namespace animus::core
