// UI-deception building blocks the paper derives from the two
// draw-and-destroy primitives (Sections I, II-A): clickjacking with
// non-UI-intercepting overlays, and content hiding with customized
// toasts. Both inherit the alert suppression / flicker-free persistence
// of the underlying attacks.
#pragma once

#include <string>

#include "core/overlay_attack.hpp"
#include "core/toast_attack.hpp"
#include "server/world.hpp"

namespace animus::core {

/// Clickjacking (Section II-A, "non-UI-intercepting overlay"): a
/// draw-and-destroy overlay with FLAG_NOT_TOUCHABLE shows misleading
/// content; the user's taps pass through to the victim beneath (e.g. a
/// permission-granting button). Draw-and-destroy keeps the overlay
/// warning suppressed while the bait is on screen.
class ClickjackingAttack {
 public:
  struct Config {
    sim::SimTime attacking_window = sim::ms(150);
    ui::Rect bounds{0, 0, 1080, 2280};
    /// What the user believes they are tapping.
    std::string bait_content = "attack:prize_banner";
    int uid = server::kMalwareUid;
  };

  ClickjackingAttack(server::World& world, Config config);

  void start() { overlay_.start(); }
  void stop() { overlay_.stop(); }

  /// Fraction of [from, to] during which the bait covered its region
  /// (sampled every 10 ms).
  [[nodiscard]] double bait_coverage(sim::SimTime from, sim::SimTime to) const;

  [[nodiscard]] const OverlayAttack::Stats& stats() const { return overlay_.stats(); }

 private:
  server::World* world_;
  Config config_;
  OverlayAttack overlay_;
};

/// Content hiding (Section I): a draw-and-destroy toast covers a region
/// of the victim UI — a security warning, a transaction amount — with
/// attacker-chosen content, indefinitely and without flicker, requiring
/// no permission at all.
class ContentHidingAttack {
 public:
  struct Config {
    ui::Rect cover_region{90, 700, 900, 300};
    std::string cover_content = "attack:benign_banner";
    sim::SimTime toast_duration = server::kToastLong;
    int uid = server::kMalwareUid;
  };

  ContentHidingAttack(server::World& world, Config config);

  void start() { toast_.start(); }
  void stop() { toast_.stop(); }

  /// Replace what the cover shows.
  void set_cover_content(std::string content) { toast_.switch_content(std::move(content)); }

  /// Fraction of [from, to] during which the cover was effectively
  /// opaque (composited alpha >= `min_alpha`).
  [[nodiscard]] double cover_coverage(sim::SimTime from, sim::SimTime to,
                                      double min_alpha = 0.85) const;

  [[nodiscard]] const ToastAttack::Stats& stats() const { return toast_.stats(); }

 private:
  server::World* world_;
  Config config_;
  ToastAttack toast_;
};

/// Shared helper: fraction of sampled instants in [from, to] where the
/// composited opacity of `uid`'s surfaces matching `content_prefix`
/// reaches `min_alpha`.
double surface_coverage(const server::WindowManagerService& wms, int uid,
                        std::string_view content_prefix, sim::SimTime from, sim::SimTime to,
                        double min_alpha = 0.85, sim::SimTime step = sim::ms(10));

}  // namespace animus::core
