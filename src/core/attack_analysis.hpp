// Closed-form analysis of Section III-D and simulation probes that
// cross-check it (Eq. 1-3, Table II regeneration, Fig. 6 outcomes).
#pragma once

#include "device/profile.hpp"
#include "percept/outcomes.hpp"
#include "server/system_ui.hpp"
#include "sim/time.hpp"

namespace animus::core {

/// Eq. (2): E(Tm) = (ceil(T/D) - 1) E(Tmis) + E(Tam) + E(Tas), the
/// expected total mistouch time over an attack of length `total_ms` with
/// attacking window `d_ms`.
double expected_total_mistouch_ms(const device::DeviceProfile& profile, double total_ms,
                                  double d_ms);

/// First-order per-touch capture probability for a gesture of
/// `contact_ms` under window `d_ms` (used as an analytic cross-check of
/// the simulated Fig. 7/8 rates): 1 - (contact + E(Tmis)) / D, floored
/// at 0. Pass contact_ms = 0 for ACTION_DOWN capture.
double predicted_capture_rate(const device::DeviceProfile& profile, double d_ms,
                              double contact_ms);

/// Run the draw-and-destroy overlay attack deterministically for
/// `duration` on a fresh world and report what the notification alert
/// did — the Fig. 6 outcome probe.
struct OutcomeProbe {
  percept::LambdaOutcome outcome = percept::LambdaOutcome::kL1;
  server::SystemUi::AlertStats alert;
  int cycles = 0;
};
OutcomeProbe probe_outcome(const device::DeviceProfile& profile, sim::SimTime d,
                           sim::SimTime duration = sim::seconds(5),
                           bool add_before_remove = false);

/// Largest integer-millisecond D that still yields Λ1, found by binary
/// search over full attack simulations — the procedure behind Table II.
int find_d_upper_bound_ms(const device::DeviceProfile& profile, int max_ms = 1200);

}  // namespace animus::core
