// Closed-form analysis of Section III-D and simulation probes that
// cross-check it (Eq. 1-3, Table II regeneration, Fig. 6 outcomes).
//
// The simulation probes follow the unified trial shape (config struct
// in with `seed` + `deterministic`, result struct out) so they plug
// into runner::sweep exactly like the report.hpp trials.
#pragma once

#include "device/profile.hpp"
#include "percept/outcomes.hpp"
#include "server/system_ui.hpp"
#include "sim/time.hpp"

namespace animus::core {

/// Eq. (2): E(Tm) = (ceil(T/D) - 1) E(Tmis) + E(Tam) + E(Tas), the
/// expected total mistouch time over an attack of length `total_ms` with
/// attacking window `d_ms`.
double expected_total_mistouch_ms(const device::DeviceProfile& profile, double total_ms,
                                  double d_ms);

/// First-order per-touch capture probability for a gesture of
/// `contact_ms` under window `d_ms` (used as an analytic cross-check of
/// the simulated Fig. 7/8 rates): 1 - (contact + E(Tmis)) / D, floored
/// at 0. Pass contact_ms = 0 for ACTION_DOWN capture.
double predicted_capture_rate(const device::DeviceProfile& profile, double d_ms,
                              double contact_ms);

// ---------------------------------------------------------------------
// Outcome probe (Fig. 6): run the draw-and-destroy overlay attack for
// `duration` on a fresh world and report what the notification alert did.
// ---------------------------------------------------------------------

struct OutcomeProbeConfig {
  device::DeviceProfile profile;
  sim::SimTime attacking_window = sim::ms(150);
  sim::SimTime duration = sim::seconds(5);
  /// Reproduce the paper's failure mode (addView before removeView).
  bool add_before_remove = false;
  std::uint64_t seed = 0x414e494d5553ULL;  // "ANIMUS"
  /// Use latency means instead of samples (boundary-search style).
  bool deterministic = true;
};

struct OutcomeProbe {
  percept::LambdaOutcome outcome = percept::LambdaOutcome::kL1;
  server::SystemUi::AlertStats alert;
  int cycles = 0;
};

OutcomeProbe run_outcome_probe(const OutcomeProbeConfig& config);

// ---------------------------------------------------------------------
// D upper bound (Table II): largest integer-millisecond D that still
// yields Λ1, found by binary search over full attack simulations.
// ---------------------------------------------------------------------

struct DBoundTrialConfig {
  device::DeviceProfile profile;
  int max_ms = 1200;
  std::uint64_t seed = 0x414e494d5553ULL;
  bool deterministic = true;
};

struct DBoundTrialResult {
  int d_upper_ms = 0;  ///< largest D (ms) still classified Λ1
  int probes = 0;      ///< full attack simulations the search ran
};

DBoundTrialResult run_d_bound_trial(const DBoundTrialConfig& config);

// ---------------------------------------------------------------------
// Deprecated positional wrappers (the pre-runner API). Prefer the
// config-struct entry points above, which share the runner::sweep shape.
// ---------------------------------------------------------------------

inline OutcomeProbe probe_outcome(const device::DeviceProfile& profile, sim::SimTime d,
                                  sim::SimTime duration = sim::seconds(5),
                                  bool add_before_remove = false) {
  OutcomeProbeConfig config;
  config.profile = profile;
  config.attacking_window = d;
  config.duration = duration;
  config.add_before_remove = add_before_remove;
  return run_outcome_probe(config);
}

inline int find_d_upper_bound_ms(const device::DeviceProfile& profile, int max_ms = 1200) {
  DBoundTrialConfig config;
  config.profile = profile;
  config.max_ms = max_ms;
  return run_d_bound_trial(config).d_upper_ms;
}

}  // namespace animus::core
