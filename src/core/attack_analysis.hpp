// Closed-form analysis of Section III-D and simulation probes that
// cross-check it (Eq. 1-3, Table II regeneration, Fig. 6 outcomes).
//
// The probes follow the unified trial shape (config struct in with
// `seed` + `deterministic`, result struct out) so they plug into
// runner::sweep exactly like the report.hpp trials. The free functions
// below are one-shot conveniences over core::TrialSession
// (trial_session.hpp), which reuses one World across trials and routes
// eligible configs to the analytic tier (`tier` field, core/tier.hpp).
#pragma once

#include "core/tier.hpp"
#include "device/profile.hpp"
#include "percept/outcomes.hpp"
#include "server/system_ui.hpp"
#include "sim/time.hpp"

namespace animus::core {

/// Eq. (2): E(Tm) = (ceil(T/D) - 1) E(Tmis) + E(Tam) + E(Tas), the
/// expected total mistouch time over an attack of length `total_ms` with
/// attacking window `d_ms`.
double expected_total_mistouch_ms(const device::DeviceProfile& profile, double total_ms,
                                  double d_ms);

/// First-order per-touch capture probability for a gesture of
/// `contact_ms` under window `d_ms` (used as an analytic cross-check of
/// the simulated Fig. 7/8 rates): 1 - (contact + E(Tmis)) / D, floored
/// at 0. Pass contact_ms = 0 for ACTION_DOWN capture.
double predicted_capture_rate(const device::DeviceProfile& profile, double d_ms,
                              double contact_ms);

// ---------------------------------------------------------------------
// Outcome probe (Fig. 6): run the draw-and-destroy overlay attack for
// `duration` on a fresh world and report what the notification alert did.
// ---------------------------------------------------------------------

struct OutcomeProbeConfig {
  device::DeviceProfile profile;
  sim::SimTime attacking_window = sim::ms(150);
  sim::SimTime duration = sim::seconds(5);
  /// Reproduce the paper's failure mode (addView before removeView).
  bool add_before_remove = false;
  std::uint64_t seed = 0x414e494d5553ULL;  // "ANIMUS"
  /// Use latency means instead of samples (boundary-search style).
  bool deterministic = true;
  /// Execution tier; kAuto takes the analytic fast path when eligible.
  Tier tier = Tier::kAuto;
};

struct OutcomeProbe {
  percept::LambdaOutcome outcome = percept::LambdaOutcome::kL1;
  server::SystemUi::AlertStats alert;
  int cycles = 0;
};

OutcomeProbe run_outcome_probe(const OutcomeProbeConfig& config);

// ---------------------------------------------------------------------
// D upper bound (Table II): largest integer-millisecond D that still
// yields Λ1, found by binary search over full attack simulations.
// ---------------------------------------------------------------------

struct DBoundTrialConfig {
  device::DeviceProfile profile;
  int max_ms = 1200;
  std::uint64_t seed = 0x414e494d5553ULL;
  bool deterministic = true;
  /// Execution tier; kAuto takes the analytic fast path when eligible.
  Tier tier = Tier::kAuto;
};

struct DBoundTrialResult {
  int d_upper_ms = 0;  ///< largest D (ms) still classified Λ1
  int probes = 0;      ///< full attack simulations the search ran
};

DBoundTrialResult run_d_bound_trial(const DBoundTrialConfig& config);

}  // namespace animus::core
