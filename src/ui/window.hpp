// Window model: the rectangular on-screen surfaces managed by the
// simulated WindowManagerService.
//
// Z-ordering follows the composition the paper's combined attack relies
// on (Section V): application overlays sit above toast windows, which sit
// above the input method (the real keyboard), which sits above activity
// content. Touch delivery goes to the topmost *touchable* window under
// the touch point; toasts are never touchable (Section II-B), and
// overlays with FLAG_NOT_TOUCHABLE let touches fall through (the
// clickjacking configuration of Section II-A).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/time.hpp"
#include "ui/animation.hpp"
#include "ui/geometry.hpp"

namespace animus::ui {

using WindowId = std::uint64_t;
inline constexpr WindowId kInvalidWindow = 0;

enum class WindowType : std::uint8_t {
  kActivity,       // normal app window
  kInputMethod,    // the real software keyboard
  kToast,          // transient toast surface (non-touchable)
  kAppOverlay,     // TYPE_APPLICATION_OVERLAY (needs SYSTEM_ALERT_WINDOW)
  kStatusBar,      // system UI chrome
};

/// Base z-layer per type; higher draws on top. Within a layer, the most
/// recently added window is on top.
int base_layer(WindowType t);

enum WindowFlags : std::uint32_t {
  kFlagNone = 0,
  /// Touches pass through to the window beneath (clickjacking overlays).
  kFlagNotTouchable = 1u << 0,
  /// Fully transparent content: the user sees whatever is beneath.
  kFlagTransparent = 1u << 1,
};

/// Alpha trajectory attached by WMS while a window animates in or out.
struct FadeAnimation {
  Animation animation{decelerate(), kToastAnimDuration};
  sim::SimTime start{0};
  bool fade_in = true;

  /// Window alpha contributed by this animation at absolute time `t`.
  [[nodiscard]] double alpha_at(sim::SimTime t) const;
  [[nodiscard]] bool finished_at(sim::SimTime t) const;
};

struct Window {
  WindowId id = kInvalidWindow;
  int owner_uid = -1;
  WindowType type = WindowType::kActivity;
  std::uint32_t flags = kFlagNone;
  Rect bounds{};
  /// What the surface shows (e.g. "fake_keyboard:lower"); used by the
  /// perception model and by tests.
  std::string content;
  sim::SimTime added_at{0};
  /// Enter/exit alpha animations. Both are kept so that alpha_at()
  /// answers *historical* queries correctly after the exit animation has
  /// been attached (the flicker detector scans whole timelines post-hoc).
  std::optional<FadeAnimation> enter_fade;
  std::optional<FadeAnimation> exit_fade;

  /// Touch callback: (time, point). Only invoked when this window is the
  /// dispatch target. Empty handlers swallow the touch silently.
  std::function<void(sim::SimTime, Point)> on_touch;

  /// Deliver on ACTION_DOWN instead of on gesture completion. A normal
  /// widget registers a tap only when the full gesture lands on it, but
  /// an attacker's overlay can harvest the coordinate from the DOWN
  /// event alone — so a draw-and-destroy boundary mid-gesture costs a
  /// regular app the character yet costs the attacker nothing.
  bool deliver_on_down = false;

  [[nodiscard]] bool touchable() const {
    return type != WindowType::kToast && (flags & kFlagNotTouchable) == 0;
  }
  [[nodiscard]] double alpha_at(sim::SimTime t) const;
};

std::string_view to_string(WindowType t);

}  // namespace animus::ui
