// Integer screen geometry (pixel coordinates, origin top-left).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace animus::ui {

struct Point {
  int x = 0;
  int y = 0;
};

inline double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  [[nodiscard]] bool contains(Point p) const {
    return p.x >= x && p.x < x + w && p.y >= y && p.y < y + h;
  }
  [[nodiscard]] Point center() const { return Point{x + w / 2, y + h / 2}; }
  [[nodiscard]] int area() const { return w * h; }
  [[nodiscard]] bool intersects(const Rect& o) const {
    return x < o.x + o.w && o.x < x + w && y < o.y + o.h && o.y < y + h;
  }
  [[nodiscard]] bool operator==(const Rect&) const = default;
};

}  // namespace animus::ui
