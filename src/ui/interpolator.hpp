// Android animation interpolators.
//
// These are the objects the paper's attacks exploit:
//  - FastOutSlowInInterpolator drives the notification alert slide-in
//    (Section III-B, Fig. 2): a cubic Bezier with control points
//    (0.4, 0) and (0.2, 1) over 360 ms. Less than 50% of the view is
//    revealed in the first 100 ms, and the first 10 ms frame reveals
//    only ~0.17% — which rounds to zero pixels for a 72 px view.
//  - DecelerateInterpolator drives the toast fade-in (Section IV-B,
//    Fig. 4): y = 1 - (1-x)^2, fast at first.
//  - AccelerateInterpolator drives the toast fade-out: y = x^2, slow at
//    first, which is what lets a replacement toast appear before the old
//    one visibly fades.
#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace animus::ui {

/// Maps normalized elapsed time x in [0,1] to animation completeness
/// y in [0,1]. All interpolators here are monotone with f(0)=0, f(1)=1.
class Interpolator {
 public:
  virtual ~Interpolator() = default;

  /// Completeness at normalized time x (clamped into [0,1]).
  [[nodiscard]] virtual double value(double x) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Inverse map: smallest x with value(x) >= y, found by bisection
  /// (valid because all our interpolators are monotone nondecreasing).
  [[nodiscard]] double inverse(double y) const;
};

/// y = x.
class LinearInterpolator final : public Interpolator {
 public:
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "Linear"; }
};

/// Android's AccelerateInterpolator: y = x^(2*factor); default factor 1
/// gives the y = x^2 parabola of the toast exit animation.
class AccelerateInterpolator final : public Interpolator {
 public:
  explicit AccelerateInterpolator(double factor = 1.0) : factor_(factor) {}
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "Accelerate"; }

 private:
  double factor_;
};

/// Android's DecelerateInterpolator: y = 1 - (1-x)^(2*factor); default
/// factor 1 gives the upside-down parabola of the toast enter animation.
class DecelerateInterpolator final : public Interpolator {
 public:
  explicit DecelerateInterpolator(double factor = 1.0) : factor_(factor) {}
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "Decelerate"; }

 private:
  double factor_;
};

/// Cubic Bezier easing through (0,0), (x1,y1), (x2,y2), (1,1), evaluated
/// as y(t(x)) where t(x) is recovered by Newton iteration with a bisection
/// fallback — the same approach Android's PathInterpolator takes.
class CubicBezierInterpolator : public Interpolator {
 public:
  CubicBezierInterpolator(double x1, double y1, double x2, double y2);
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "CubicBezier"; }

  [[nodiscard]] double x1() const { return x1_; }
  [[nodiscard]] double y1() const { return y1_; }
  [[nodiscard]] double x2() const { return x2_; }
  [[nodiscard]] double y2() const { return y2_; }

 private:
  [[nodiscard]] double bezier_x(double t) const;
  [[nodiscard]] double bezier_y(double t) const;
  [[nodiscard]] double bezier_dx(double t) const;
  [[nodiscard]] double solve_t_for_x(double x) const;

  double x1_, y1_, x2_, y2_;
};

/// Android's FastOutSlowInInterpolator: cubic Bezier (0.4, 0, 0.2, 1).
/// This is the interpolator of the notification alert slide-in that the
/// draw-and-destroy overlay attack defeats.
class FastOutSlowInInterpolator final : public CubicBezierInterpolator {
 public:
  FastOutSlowInInterpolator() : CubicBezierInterpolator(0.4, 0.0, 0.2, 1.0) {}
  [[nodiscard]] std::string_view name() const override { return "FastOutSlowIn"; }
};

/// Android's LinearOutSlowInInterpolator: cubic Bezier (0, 0, 0.2, 1) —
/// the standard material "incoming element" curve.
class LinearOutSlowInInterpolator final : public CubicBezierInterpolator {
 public:
  LinearOutSlowInInterpolator() : CubicBezierInterpolator(0.0, 0.0, 0.2, 1.0) {}
  [[nodiscard]] std::string_view name() const override { return "LinearOutSlowIn"; }
};

/// Android's FastOutLinearInInterpolator: cubic Bezier (0.4, 0, 1, 1) —
/// the standard material "outgoing element" curve.
class FastOutLinearInInterpolator final : public CubicBezierInterpolator {
 public:
  FastOutLinearInInterpolator() : CubicBezierInterpolator(0.4, 0.0, 1.0, 1.0) {}
  [[nodiscard]] std::string_view name() const override { return "FastOutLinearIn"; }
};

/// Android's AccelerateDecelerateInterpolator:
/// y = cos((x + 1) * pi) / 2 + 0.5.
class AccelerateDecelerateInterpolator final : public Interpolator {
 public:
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "AccelerateDecelerate"; }
};

/// Android's AnticipateInterpolator: backs up before moving forward —
/// y = (t + 1) t^2 - t, with tension t = 2 by default. Note: the output
/// dips below 0 early on (it is *not* a monotone easing).
class AnticipateInterpolator final : public Interpolator {
 public:
  explicit AnticipateInterpolator(double tension = 2.0) : tension_(tension) {}
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "Anticipate"; }

 private:
  double tension_;
};

/// Android's OvershootInterpolator: flings past 1.0 and settles back —
/// y = (t + 1) s^3 + t s^2 + s with s = x - 1. Output exceeds 1 near the
/// end (not a monotone easing into [0,1]).
class OvershootInterpolator final : public Interpolator {
 public:
  explicit OvershootInterpolator(double tension = 2.0) : tension_(tension) {}
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "Overshoot"; }

 private:
  double tension_;
};

/// Android's BounceInterpolator: the value bounces at the end.
class BounceInterpolator final : public Interpolator {
 public:
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] std::string_view name() const override { return "Bounce"; }
};

/// Shared singletons for the three interpolators the paper uses. The
/// objects are immutable and thread-compatible.
const Interpolator& fast_out_slow_in();
const Interpolator& accelerate();
const Interpolator& decelerate();
const Interpolator& linear();

}  // namespace animus::ui
