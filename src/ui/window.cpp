#include "ui/window.hpp"

#include <algorithm>

namespace animus::ui {

int base_layer(WindowType t) {
  switch (t) {
    case WindowType::kActivity: return 1;
    case WindowType::kInputMethod: return 2;
    case WindowType::kToast: return 3;
    case WindowType::kAppOverlay: return 4;
    case WindowType::kStatusBar: return 5;
  }
  return 0;
}

double FadeAnimation::alpha_at(sim::SimTime t) const {
  const sim::SimTime elapsed = t - start;
  const double completeness = animation.presented_completeness_at(elapsed);
  return fade_in ? completeness : 1.0 - completeness;
}

bool FadeAnimation::finished_at(sim::SimTime t) const {
  return t - start >= animation.duration();
}

double Window::alpha_at(sim::SimTime t) const {
  if (t < added_at) return 0.0;
  double alpha = 1.0;
  if (enter_fade && t >= enter_fade->start) alpha = enter_fade->alpha_at(t);
  if (exit_fade && t >= exit_fade->start) {
    // An exit that interrupts the enter animation can only dim further.
    alpha = std::min(alpha, exit_fade->alpha_at(t));
  }
  return alpha;
}

std::string_view to_string(WindowType t) {
  switch (t) {
    case WindowType::kActivity: return "activity";
    case WindowType::kInputMethod: return "input_method";
    case WindowType::kToast: return "toast";
    case WindowType::kAppOverlay: return "app_overlay";
    case WindowType::kStatusBar: return "status_bar";
  }
  return "?";
}

}  // namespace animus::ui
