#include "ui/interpolator.hpp"

#include <algorithm>
#include <cmath>

namespace animus::ui {
namespace {
double clamp01(double x) { return std::clamp(x, 0.0, 1.0); }
}  // namespace

double Interpolator::inverse(double y) const {
  y = clamp01(y);
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (value(mid) >= y) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double LinearInterpolator::value(double x) const { return clamp01(x); }

double AccelerateInterpolator::value(double x) const {
  x = clamp01(x);
  if (factor_ == 1.0) return x * x;
  return std::pow(x, 2.0 * factor_);
}

double DecelerateInterpolator::value(double x) const {
  x = clamp01(x);
  if (factor_ == 1.0) return 1.0 - (1.0 - x) * (1.0 - x);
  return 1.0 - std::pow(1.0 - x, 2.0 * factor_);
}

CubicBezierInterpolator::CubicBezierInterpolator(double x1, double y1, double x2, double y2)
    : x1_(clamp01(x1)), y1_(y1), x2_(clamp01(x2)), y2_(y2) {}

double CubicBezierInterpolator::bezier_x(double t) const {
  const double u = 1.0 - t;
  return 3.0 * u * u * t * x1_ + 3.0 * u * t * t * x2_ + t * t * t;
}

double CubicBezierInterpolator::bezier_y(double t) const {
  const double u = 1.0 - t;
  return 3.0 * u * u * t * y1_ + 3.0 * u * t * t * y2_ + t * t * t;
}

double CubicBezierInterpolator::bezier_dx(double t) const {
  const double u = 1.0 - t;
  return 3.0 * u * u * x1_ + 6.0 * u * t * (x2_ - x1_) + 3.0 * t * t * (1.0 - x2_);
}

double CubicBezierInterpolator::solve_t_for_x(double x) const {
  // Newton iterations from a good initial guess; x(t) is monotone for
  // control x-coordinates inside [0,1].
  double t = x;
  for (int i = 0; i < 8; ++i) {
    const double err = bezier_x(t) - x;
    if (std::abs(err) < 1e-9) return t;
    const double d = bezier_dx(t);
    if (std::abs(d) < 1e-7) break;
    t = clamp01(t - err / d);
  }
  // Bisection fallback for flat-derivative regions.
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 48; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (bezier_x(mid) < x) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double CubicBezierInterpolator::value(double x) const {
  x = clamp01(x);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return clamp01(bezier_y(solve_t_for_x(x)));
}

double AccelerateDecelerateInterpolator::value(double x) const {
  x = clamp01(x);
  return std::cos((x + 1.0) * 3.14159265358979323846) / 2.0 + 0.5;
}

double AnticipateInterpolator::value(double x) const {
  x = clamp01(x);
  return (tension_ + 1.0) * x * x * x - tension_ * x * x;
}

double OvershootInterpolator::value(double x) const {
  const double s = clamp01(x) - 1.0;
  return s * s * ((tension_ + 1.0) * s + tension_) + 1.0;
}

double BounceInterpolator::value(double x) const {
  // AOSP Bounce: piecewise parabolas scaled by 1.1226.
  auto bounce = [](double t) { return t * t * 8.0; };
  x = clamp01(x) * 1.1226;
  if (x < 0.3535) return bounce(x);
  if (x < 0.7408) return bounce(x - 0.54719) + 0.7;
  if (x < 0.9644) return bounce(x - 0.8526) + 0.9;
  return bounce(x - 1.0435) + 0.95;
}

const Interpolator& fast_out_slow_in() {
  static const FastOutSlowInInterpolator kInstance;
  return kInstance;
}

const Interpolator& accelerate() {
  static const AccelerateInterpolator kInstance;
  return kInstance;
}

const Interpolator& decelerate() {
  static const DecelerateInterpolator kInstance;
  return kInstance;
}

const Interpolator& linear() {
  static const LinearInterpolator kInstance;
  return kInstance;
}

}  // namespace animus::ui
