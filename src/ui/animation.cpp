#include "ui/animation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace animus::ui {

Animation::Animation(const Interpolator& interp, sim::SimTime duration, sim::SimTime refresh)
    : interp_(&interp), duration_(duration), refresh_(refresh) {
  assert(duration_.count() > 0);
  assert(refresh_.count() > 0);
}

double Animation::completeness_at(sim::SimTime elapsed) const {
  if (elapsed <= sim::SimTime{0}) return 0.0;
  if (elapsed >= duration_) return 1.0;
  const double x = static_cast<double>(elapsed.count()) / static_cast<double>(duration_.count());
  return interp_->value(x);
}

double Animation::presented_completeness_at(sim::SimTime elapsed) const {
  if (elapsed < refresh_) return 0.0;
  // Last presented frame boundary at or before `elapsed`.
  const auto frames = elapsed.count() / refresh_.count();
  return completeness_at(sim::SimTime{frames * refresh_.count()});
}

int Animation::presented_pixels_at(sim::SimTime elapsed, int height_px) const {
  const double fractional = presented_completeness_at(elapsed) * height_px;
  return static_cast<int>(std::llround(fractional));
}

sim::SimTime Animation::time_to_reveal(int pixels, int height_px) const {
  if (pixels <= 0) return sim::SimTime{0};
  for (sim::SimTime t = refresh_;; t += refresh_) {
    if (presented_pixels_at(t, height_px) >= pixels) return t;
    if (t >= duration_) break;
  }
  return duration_ + refresh_;
}

Animation notification_slide_in() {
  return Animation{fast_out_slow_in(), kNotificationAnimDuration};
}

Animation toast_fade_in() { return Animation{decelerate(), kToastAnimDuration}; }

Animation toast_fade_out() { return Animation{accelerate(), kToastAnimDuration}; }

}  // namespace animus::ui
