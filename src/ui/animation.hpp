// Frame-quantized animation playback model.
//
// Android presents animations at discrete frames; the paper relies on the
// default 10 ms refresh interval (Section III-B): "it takes at least
// 10 ms to display the first frame of the animation", and the pixel count
// revealed at a frame is rounded to an integer, so a 72 px notification
// view shows 0 pixels on the first frame (72 * 0.17% -> 0).
//
// An Animation is a value object: given an elapsed time it answers "what
// completeness has actually been *presented* on screen", accounting for
// frame quantization. Playback direction/retargeting state lives in the
// services (see server/system_ui.hpp), not here.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "ui/interpolator.hpp"

namespace animus::ui {

/// Default animation frame interval (Android developer guides).
inline constexpr sim::SimTime kDefaultRefresh = sim::ms(10);

/// Duration of the notification slide-in animation
/// (ANIMATION_DURATION_STANDARD in System UI).
inline constexpr sim::SimTime kNotificationAnimDuration = sim::ms(360);

/// Duration of the toast enter/exit animations.
inline constexpr sim::SimTime kToastAnimDuration = sim::ms(500);

/// Minimum rounded pixel count of the notification view that counts as
/// "observable with naked eyes" (the Λ1 vs Λ2 boundary of Fig. 6). One
/// rounded pixel for a single 10 ms frame is not visually perceptible;
/// two pixels sustained for a frame is the threshold we calibrate with.
inline constexpr int kNakedEyeMinPixels = 2;

class Animation {
 public:
  Animation(const Interpolator& interp, sim::SimTime duration,
            sim::SimTime refresh = kDefaultRefresh);

  /// Continuous-time completeness (no frame quantization), clamped [0,1].
  [[nodiscard]] double completeness_at(sim::SimTime elapsed) const;

  /// Completeness actually on screen at `elapsed`: the value at the last
  /// presented frame boundary. Before the first frame (elapsed <
  /// refresh) nothing has been drawn and this returns 0.
  [[nodiscard]] double presented_completeness_at(sim::SimTime elapsed) const;

  /// Number of whole pixels of a `height_px`-tall view revealed at
  /// `elapsed`, using the OS's round-to-nearest behaviour the paper
  /// describes (0.1224 px -> 0 px).
  [[nodiscard]] int presented_pixels_at(sim::SimTime elapsed, int height_px) const;

  /// Smallest elapsed time at which at least `pixels` of a
  /// `height_px`-tall view are presented; this is the paper's Ta — the
  /// animation play time before the alert becomes observable. Returns
  /// duration+refresh if the animation never reveals that many pixels.
  [[nodiscard]] sim::SimTime time_to_reveal(int pixels, int height_px) const;

  [[nodiscard]] sim::SimTime duration() const { return duration_; }
  [[nodiscard]] sim::SimTime refresh() const { return refresh_; }
  [[nodiscard]] const Interpolator& interpolator() const { return *interp_; }

 private:
  const Interpolator* interp_;
  sim::SimTime duration_;
  sim::SimTime refresh_;
};

/// The notification alert slide-in animation (360 ms FastOutSlowIn).
Animation notification_slide_in();

/// Toast enter (500 ms Decelerate) and exit (500 ms Accelerate).
Animation toast_fade_in();
Animation toast_fade_out();

}  // namespace animus::ui
