// Sweep-wide span profiler.
//
// Aggregates every span the actor instrumentation reports through
// sim::profile_span() — across all trials, all worker threads, and (via
// the serialized wire form) all process shards — into one deterministic
// profile: per span name, a count, total and self time, min/max, and a
// log2-bucket latency histogram from which p50/p90/p99 are derived.
//
// Design constraints, in order:
//   1. Near-zero overhead. Observation is lock-free per-thread: a
//      pointer-hashed open-addressed table of fixed slots (names are
//      static literals, so the pointer is the identity) and a bounded
//      containment stack for self-time. No allocation, no formatting,
//      no atomics on the hot path.
//   2. Determinism. All statistics are commutative (sums, extrema,
//      bucket counts) over the per-trial span multiset, which is itself
//      a pure function of the trial config. Merging per-thread tables,
//      retired-thread accumulations and shard-worker wire payloads in
//      any order yields the same snapshot, so the profile JSON is
//      byte-identical across {--jobs, --backend, --shards}.
//   3. Wall-clock free. Span times are *simulated* time; anything
//      nondeterministic (worker utilization) lives in runner::SweepStats
//      and is reported on stderr/SSE, never in the profile JSON.
//
// Self time uses the completion-order containment stack: spans arrive
// ordered by end time (TraceRecorder appends on completion), so any
// already-observed span whose start lies inside a newly observed span is
// a completed child; its duration is subtracted once. Trial boundaries
// (sim::profile_flush()) clear the stack because simulated time rewinds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"

namespace animus::obs {

/// log2 duration buckets: bucket 0 holds 0 ns, bucket b >= 1 holds
/// [2^(b-1), 2^b - 1] ns; the last bucket absorbs everything larger.
inline constexpr int kProfileBucketCount = 64;

/// Bucket index for a duration (0 for 0 ns, else bit_width, clamped).
int profile_bucket(std::uint64_t ns);

/// Inclusive upper bound of a bucket in ns (0 for bucket 0).
std::uint64_t profile_bucket_upper_ns(int bucket);

struct ProfileEntry {
  std::string name;
  sim::TraceCategory category = sim::TraceCategory::kSim;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t buckets[kProfileBucketCount] = {};
};

/// `pct`-th percentile (e.g. 50, 90, 99) as the inclusive ns upper bound
/// of the histogram bucket the rank falls in — a deterministic integer.
std::uint64_t profile_percentile_ns(const ProfileEntry& e, int pct);

struct ProfileReport {
  std::vector<ProfileEntry> entries;  // sorted by (name, category)
  std::uint64_t dropped_spans = 0;    // per-thread table full (should be 0)
  std::uint64_t stack_overflows = 0;  // containment stack full (self-time
                                      // of the enclosing span overstated)

  [[nodiscard]] std::uint64_t span_count() const;
  [[nodiscard]] const ProfileEntry* find(std::string_view name) const;
};

/// Deterministic JSON profile report: sorted span names, sparse
/// ["bucket", count] histogram pairs, integer percentile bounds. Two
/// equal reports render byte-identically.
std::string to_profile_json(const ProfileReport& report);

/// Compact summary for SSE `done` events: span total plus the top
/// `top_n` self-time entries. Also deterministic.
std::string profile_summary_json(const ProfileReport& report, std::size_t top_n = 3);

/// Human top-N table by self time for stderr.
std::string profile_table(const ProfileReport& report, std::size_t top_n = 12);

/// Wire form for shipping a shard worker's profile over the result pipe
/// (same idiom as sim::serialize_records): line-oriented with a
/// length-prefixed name per entry.
///
///   animus-profile 1 <entries> <dropped> <overflows>
///   <cat> <count> <total> <self> <min> <max> <n> <b>:<c>... <len>:<name>
std::string serialize_profile(const ProfileReport& report);

/// Inverse of serialize_profile; false on malformed input.
bool deserialize_profile(std::string_view wire, ProfileReport* out);

/// Merge `from` into `to` (commutative and associative: sums, extrema,
/// bucket adds; entries keyed by (name, category)).
void merge_profile(ProfileReport* to, const ProfileReport& from);

/// Process-wide collector behind sim::profile_span(). One instance;
/// per-thread tables register on first observation and fold into a
/// retired accumulator at thread exit, so pool workers joined by the
/// runner leave nothing behind. enable()/reset()/snapshot() are meant to
/// be called while no trials are in flight (between sweeps).
class SpanProfiler {
 public:
  static SpanProfiler& instance();

  /// Install the sim hooks and start aggregating. Idempotent. The
  /// enabled state is inherited across fork(), which is how shard
  /// workers know to profile (they reset() first to drop the parent's
  /// inherited counts, then ship their own delta back on the pipe).
  void enable();
  void disable();
  [[nodiscard]] bool enabled() const;

  /// Drop all accumulated data (retired + live thread tables). Call
  /// quiesced — concurrent observation on another thread races.
  void reset();

  /// Merged view of everything observed so far (retired threads, live
  /// thread tables, and merge()d shard payloads), sorted and ready for
  /// to_profile_json(). Call quiesced.
  [[nodiscard]] ProfileReport snapshot() const;

  /// Fold an external report (a shard worker's deserialized wire
  /// payload) into the accumulator.
  void merge(const ProfileReport& report);

  /// Direct observation entry points (the installed hooks call these;
  /// tests drive them directly).
  void observe(const char* name, sim::TraceCategory c, sim::SimTime start, sim::SimTime end);
  void flush_stack();

 private:
  SpanProfiler() = default;
};

/// The process-wide profiler (sugar mirroring obs::global_registry()).
SpanProfiler& span_profiler();

}  // namespace animus::obs
