// Thread-safe metrics registry shared by the simulator, the defenses and
// the experiment runner.
//
// Three instrument kinds, all addressed by (name, labels):
//   Counter    monotonically increasing double (events, windows, trials)
//   Gauge      last-written value, plus a set_max() high-water helper
//   Histogram  fixed bucket bounds, per-bucket counts + sum/count/min/max,
//              with interpolated quantile estimates
//
// Registration is mutex-guarded and returns a stable reference; updates
// on the returned instrument are lock-free atomics, so hot paths pay one
// registry lookup and then only atomic adds. A Snapshot freezes every
// instrument into deterministic (name, labels) order and serializes as
// JSON-lines or Prometheus text exposition; snapshots merge into other
// registries so per-world or per-thread registries can aggregate.
//
// Metric naming scheme (docs/observability.md): `animus_<noun>_<unit>`
// with `_total` for counters, e.g. animus_trial_latency_ms,
// animus_binder_transactions_total{method="addView"}.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace animus::obs {

/// Label set, e.g. {{"method", "addView"}}. Order-insensitive: keys are
/// sorted on registration so equal sets address the same instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Append `s` to `out` with JSON string escaping (shared by every JSON
/// emitter in this subsystem: snapshots, the telemetry stream, manifests).
void append_json_escaped(std::string& out, std::string_view s);

class Counter {
 public:
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
  }
  void inc() { add(1.0); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Keep the maximum ever observed (high-water gauges, e.g. queue depth).
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `bounds` are inclusive upper bucket bounds, strictly increasing; an
  /// implicit +inf bucket catches the overflow.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Interpolated quantile estimate from the bucket counts (q in [0,1]).
  [[nodiscard]] double quantile(double q) const;

  /// Fold a frozen histogram in (bucket-wise; sizes must match).
  void merge_counts(const std::vector<std::uint64_t>& buckets, double sum, std::uint64_t count,
                    double min, double max);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

/// Default exponential latency buckets in milliseconds (0.01 .. ~160s).
std::vector<double> default_latency_buckets_ms();

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

std::string_view to_string(MetricType t);

/// One frozen instrument.
struct MetricPoint {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  double value = 0.0;                  // counter/gauge
  std::vector<double> bounds;          // histogram
  std::vector<std::uint64_t> buckets;  // histogram, bounds.size() + 1
  double sum = 0.0;                    // histogram
  std::uint64_t count = 0;             // histogram
  double min = 0.0, max = 0.0;         // histogram
};

/// Deterministically ordered freeze of a registry.
struct Snapshot {
  std::vector<MetricPoint> points;

  [[nodiscard]] const MetricPoint* find(std::string_view name, const Labels& labels = {}) const;
  /// One JSON object per line, one line per instrument.
  [[nodiscard]] std::string to_jsonl() const;
  /// Prometheus text exposition format (histograms expand into
  /// _bucket{le=...} / _sum / _count series).
  [[nodiscard]] std::string to_prometheus() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; the returned reference stays valid for the registry
  /// lifetime. Re-registering a name with a different type throws.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  /// `bounds` only matters on first registration; later calls with the
  /// same (name, labels) return the existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds, Labels labels = {});

  [[nodiscard]] Snapshot snapshot() const;

  /// Fold a snapshot in: counters add, gauges keep the max, histograms
  /// add bucket-wise (bounds must match; mismatches are skipped).
  void merge(const Snapshot& snap);

  [[nodiscard]] std::size_t size() const;

 private:
  struct Cell {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, Labels>;

  Cell& cell(std::string_view name, Labels labels, MetricType type,
             const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<Key, Cell> cells_;
};

/// Process-wide registry: instrumented components (World teardown, the
/// runner, the defenses) publish here; --metrics-out snapshots it.
MetricsRegistry& global_registry();

}  // namespace animus::obs
