#include "obs/stream.hpp"

#include <algorithm>
#include <cmath>

namespace animus::obs {
namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_ms(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

TelemetryStreamer::TelemetryStreamer(StreamOptions options) : options_(std::move(options)) {}

TelemetryStreamer::~TelemetryStreamer() { stop(); }

void TelemetryStreamer::add_sampler(std::string kind, std::function<std::string()> fields) {
  std::lock_guard<std::mutex> lock{mu_};
  samplers_.emplace_back(std::move(kind), std::move(fields));
}

std::string TelemetryStreamer::envelope_locked(std::string_view kind, std::string_view fields) {
  const double t_ms = std::max(
      last_t_ms_,
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - epoch_)
          .count());
  last_t_ms_ = t_ms;  // monotone even if the clock misbehaves
  std::string line = "{\"seq\":" + std::to_string(seq_++);
  line += ",\"t_ms\":" + fmt_ms(t_ms);
  line += ",\"kind\":\"";
  append_json_escaped(line, kind);
  line += "\"";
  if (!fields.empty()) {
    line += ",";
    line += fields;
  }
  line += "}\n";
  return line;
}

void TelemetryStreamer::sample_all_locked() {
  for (const auto& [kind, fn] : samplers_) {
    queue_.push_back(envelope_locked(kind, fn()));
  }
}

void TelemetryStreamer::drain_locked() {
  while (!queue_.empty()) {
    const std::string& line = queue_.front();
    if (std::fwrite(line.data(), 1, line.size(), file_) == line.size()) ++lines_written_;
    queue_.pop_front();
  }
  std::fflush(file_);
}

bool TelemetryStreamer::start() {
  std::lock_guard<std::mutex> lock{mu_};
  if (running_ || file_ != nullptr) return running_;
  file_ = std::fopen(options_.path.c_str(), "wb");
  if (file_ == nullptr) return false;
  epoch_ = std::chrono::steady_clock::now();
  running_ = true;
  stopping_ = false;
  flusher_ = std::thread([this] {
    std::unique_lock<std::mutex> lock{mu_};
    const auto interval = std::chrono::duration<double, std::milli>(
        std::max(options_.interval_ms, 1.0));
    while (!stopping_) {
      cv_.wait_for(lock, interval, [this] { return stopping_; });
      if (stopping_) break;
      sample_all_locked();
      drain_locked();
    }
  });
  return true;
}

void TelemetryStreamer::stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock{mu_};
    if (!running_) return;
    stopping_ = true;
    to_join = std::move(flusher_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock{mu_};
  // Clean final flush: one last sample of every sampler, then drain.
  sample_all_locked();
  drain_locked();
  std::fclose(file_);
  file_ = nullptr;
  running_ = false;
}

void TelemetryStreamer::emit(std::string_view kind, std::string_view fields) {
  std::lock_guard<std::mutex> lock{mu_};
  if (!running_) return;
  if (queue_.size() >= options_.max_queue) {
    ++dropped_;
    return;
  }
  queue_.push_back(envelope_locked(kind, fields));
}

bool TelemetryStreamer::active() const {
  std::lock_guard<std::mutex> lock{mu_};
  return running_;
}

std::size_t TelemetryStreamer::lines_written() const {
  std::lock_guard<std::mutex> lock{mu_};
  return lines_written_;
}

std::size_t TelemetryStreamer::dropped() const {
  std::lock_guard<std::mutex> lock{mu_};
  return dropped_;
}

namespace {

/// One snapshot point as a stream JSON object. `changed_buckets`
/// (delta-mode histograms only) appends a "buckets":[[index,count],...]
/// array; the nullptr path is exactly the historical stream_fields
/// rendering, which must stay byte-identical.
void append_point_json(std::string& out, const MetricPoint& p,
                       const std::vector<std::pair<std::size_t, std::uint64_t>>* changed_buckets) {
  out += "{\"name\":\"";
  append_json_escaped(out, p.name);
  out += "\"";
  if (!p.labels.empty()) {
    out += ",\"labels\":{";
    bool lf = true;
    for (const auto& [k, v] : p.labels) {
      if (!lf) out += ",";
      lf = false;
      out += "\"";
      append_json_escaped(out, k);
      out += "\":\"";
      append_json_escaped(out, v);
      out += "\"";
    }
    out += "}";
  }
  if (p.type == MetricType::kHistogram) {
    out += ",\"count\":" + std::to_string(p.count);
    out += ",\"sum\":" + fmt_double(p.sum);
    out += ",\"max\":" + fmt_double(p.max);
    if (changed_buckets != nullptr && !changed_buckets->empty()) {
      out += ",\"buckets\":[";
      bool bf = true;
      for (const auto& [index, count] : *changed_buckets) {
        if (!bf) out += ",";
        bf = false;
        out += "[" + std::to_string(index) + "," + std::to_string(count) + "]";
      }
      out += "]";
    }
  } else {
    out += ",\"value\":" + fmt_double(p.value);
  }
  out += "}";
}

}  // namespace

std::string stream_fields(const Snapshot& snap) {
  std::string out = "\"series\":" + std::to_string(snap.points.size());
  out += ",\"metrics\":[";
  bool first = true;
  for (const auto& p : snap.points) {
    if (!first) out += ",";
    first = false;
    append_point_json(out, p, nullptr);
  }
  out += "]";
  return out;
}

DeltaEncoder::DeltaEncoder(std::size_t keyframe_every)
    : keyframe_every_(std::max<std::size_t>(keyframe_every, 1)) {}

std::string DeltaEncoder::encode(const Snapshot& snap) {
  const bool keyframe = frames_ % keyframe_every_ == 0;
  ++frames_;

  // One merge pass: `prev_` holds the last frame in snapshot order, and
  // series are only ever inserted (never retired or reordered), so each
  // snapshot point either matches the next surviving prev entry or is
  // brand new. The rebuilt state vector recycles the matched entries'
  // string keys and bucket storage — the steady state allocates nothing
  // per series.
  std::string out;
  std::string metrics;
  std::size_t changed = 0;
  std::vector<std::pair<std::size_t, std::uint64_t>> changed_buckets;
  std::vector<SeriesState> next;
  next.reserve(snap.points.size());
  std::size_t j = 0;
  for (const auto& p : snap.points) {
    const bool existing =
        j < prev_.size() && prev_[j].name == p.name && prev_[j].labels == p.labels;
    const SeriesState* st = existing ? &prev_[j] : nullptr;
    if (!keyframe) {
      bool dirty = st == nullptr;
      changed_buckets.clear();
      if (p.type == MetricType::kHistogram) {
        if (!dirty) {
          dirty = p.count != st->count || p.sum != st->sum || p.max != st->max;
        }
        for (std::size_t i = 0; i < p.buckets.size(); ++i) {
          const std::uint64_t before =
              st != nullptr && i < st->buckets.size() ? st->buckets[i] : 0;
          if (p.buckets[i] != before) changed_buckets.push_back({i, p.buckets[i]});
        }
        dirty = dirty || !changed_buckets.empty();
      } else if (!dirty) {
        dirty = p.value != st->value;
      }
      if (dirty) {
        if (changed > 0) metrics += ",";
        append_point_json(metrics, p, &changed_buckets);
        ++changed;
      }
    }
    if (existing) {
      next.push_back(std::move(prev_[j]));
      ++j;
    } else {
      next.emplace_back();
      next.back().name = p.name;
      next.back().labels = p.labels;
    }
    SeriesState& st2 = next.back();
    st2.value = p.value;
    st2.buckets = p.buckets;
    st2.sum = p.sum;
    st2.count = p.count;
    st2.max = p.max;
  }
  prev_ = std::move(next);

  if (keyframe) {
    out = "\"keyframe\":true,";
    out += stream_fields(snap);
  } else {
    out = "\"delta\":true,\"series\":" + std::to_string(snap.points.size());
    out += ",\"changed\":" + std::to_string(changed);
    out += ",\"metrics\":[" + metrics + "]";
  }
  return out;
}

}  // namespace animus::obs
