#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace animus::obs {
namespace {

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    append_json_escaped(out, v);
    out += "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += "\"";
  }
  out += "}";
  return out;
}

}  // namespace

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) throw std::invalid_argument("bounds not increasing");
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    // First sample seeds min/max; racing observers fix it up below.
    min_.store(x, std::memory_order_relaxed);
    max_.store(x, std::memory_order_relaxed);
  }
  atomic_min(min_, x);
  atomic_max(max_, x);
}

double Histogram::min() const { return any_.load(std::memory_order_relaxed) ? min_.load() : 0.0; }
double Histogram::max() const { return any_.load(std::memory_order_relaxed) ? max_.load() : 0.0; }

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate inside bucket i: [lo, hi] where lo is the previous
      // bound (or min()) and hi the bucket's own bound (or max()).
      const double lo = i == 0 ? std::min(min(), bounds_.front()) : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : std::max(max(), bounds_.back());
      const double frac =
          std::clamp((target - static_cast<double>(cum)) / static_cast<double>(c), 0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return max();
}

void Histogram::merge_counts(const std::vector<std::uint64_t>& buckets, double sum,
                             std::uint64_t count, double min, double max) {
  if (buckets.size() != counts_.size() || count == 0) return;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    counts_[i].fetch_add(buckets[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  atomic_add(sum_, sum);
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    min_.store(min, std::memory_order_relaxed);
    max_.store(max, std::memory_order_relaxed);
  }
  atomic_min(min_, min);
  atomic_max(max_, max);
}

std::vector<double> default_latency_buckets_ms() {
  std::vector<double> bounds;
  for (double b = 0.01; b < 200'000.0; b *= 2.0) bounds.push_back(b);
  return bounds;
}

// ---------------------------------------------------------------- Snapshot

std::string_view to_string(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

const MetricPoint* Snapshot::find(std::string_view name, const Labels& labels) const {
  const Labels want = canonical(labels);
  for (const auto& p : points) {
    if (p.name == name && p.labels == want) return &p;
  }
  return nullptr;
}

std::string Snapshot::to_jsonl() const {
  std::string out;
  for (const auto& p : points) {
    out += R"({"name":")";
    append_json_escaped(out, p.name);
    out += R"(","type":")";
    out += to_string(p.type);
    out += R"(","labels":{)";
    bool first = true;
    for (const auto& [k, v] : p.labels) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      append_json_escaped(out, k);
      out += "\":\"";
      append_json_escaped(out, v);
      out += "\"";
    }
    out += "}";
    if (p.type == MetricType::kHistogram) {
      out += R"(,"count":)" + std::to_string(p.count);
      out += R"(,"sum":)" + fmt_double(p.sum);
      out += R"(,"min":)" + fmt_double(p.min);
      out += R"(,"max":)" + fmt_double(p.max);
      out += R"(,"bounds":[)";
      for (std::size_t i = 0; i < p.bounds.size(); ++i) {
        if (i) out += ",";
        out += fmt_double(p.bounds[i]);
      }
      out += R"(],"buckets":[)";
      for (std::size_t i = 0; i < p.buckets.size(); ++i) {
        if (i) out += ",";
        out += std::to_string(p.buckets[i]);
      }
      out += "]";
    } else {
      out += R"(,"value":)" + fmt_double(p.value);
    }
    out += "}\n";
  }
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  std::string last_name;
  for (const auto& p : points) {
    if (p.name != last_name) {
      out += "# TYPE " + p.name + " " + std::string(to_string(p.type)) + "\n";
      last_name = p.name;
    }
    if (p.type == MetricType::kHistogram) {
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < p.buckets.size(); ++i) {
        cum += p.buckets[i];
        const std::string le = i < p.bounds.size() ? fmt_double(p.bounds[i]) : "+Inf";
        out += p.name + "_bucket" + prom_labels(p.labels, "le", le) + " " +
               std::to_string(cum) + "\n";
      }
      out += p.name + "_sum" + prom_labels(p.labels) + " " + fmt_double(p.sum) + "\n";
      out += p.name + "_count" + prom_labels(p.labels) + " " + std::to_string(p.count) + "\n";
    } else {
      out += p.name + prom_labels(p.labels) + " " + fmt_double(p.value) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------- MetricsRegistry

MetricsRegistry::Cell& MetricsRegistry::cell(std::string_view name, Labels labels,
                                             MetricType type,
                                             const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock{mu_};
  const Key key{std::string(name), canonical(std::move(labels))};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell c;
    c.type = type;
    switch (type) {
      case MetricType::kCounter: c.counter = std::make_unique<Counter>(); break;
      case MetricType::kGauge: c.gauge = std::make_unique<Gauge>(); break;
      case MetricType::kHistogram:
        c.histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
    it = cells_.emplace(key, std::move(c)).first;
  } else if (it->second.type != type) {
    throw std::logic_error("metric '" + key.first + "' re-registered with different type");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *cell(name, std::move(labels), MetricType::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *cell(name, std::move(labels), MetricType::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      Labels labels) {
  return *cell(name, std::move(labels), MetricType::kHistogram, &bounds).histogram;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock{mu_};
  Snapshot snap;
  snap.points.reserve(cells_.size());
  for (const auto& [key, c] : cells_) {  // std::map: deterministic order
    MetricPoint p;
    p.name = key.first;
    p.labels = key.second;
    p.type = c.type;
    switch (c.type) {
      case MetricType::kCounter: p.value = c.counter->value(); break;
      case MetricType::kGauge: p.value = c.gauge->value(); break;
      case MetricType::kHistogram: {
        const Histogram& h = *c.histogram;
        p.bounds = h.bounds();
        p.buckets.resize(p.bounds.size() + 1);
        for (std::size_t i = 0; i < p.buckets.size(); ++i) p.buckets[i] = h.bucket_count(i);
        p.sum = h.sum();
        p.count = h.count();
        p.min = h.min();
        p.max = h.max();
        break;
      }
    }
    snap.points.push_back(std::move(p));
  }
  return snap;
}

void MetricsRegistry::merge(const Snapshot& snap) {
  for (const auto& p : snap.points) {
    switch (p.type) {
      case MetricType::kCounter:
        counter(p.name, p.labels).add(p.value);
        break;
      case MetricType::kGauge:
        gauge(p.name, p.labels).set_max(p.value);
        break;
      case MetricType::kHistogram: {
        Histogram& h = histogram(p.name, p.bounds, p.labels);
        if (h.bounds() != p.bounds || p.buckets.size() != p.bounds.size() + 1) break;
        h.merge_counts(p.buckets, p.sum, p.count, p.min, p.max);
        break;
      }
    }
  }
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock{mu_};
  return cells_.size();
}

MetricsRegistry& global_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace animus::obs
