// Deterministic trace capture across a parallel sweep.
//
// `--trace-out` needs the full span trace of ONE representative trial,
// but trial bodies construct their Worlds privately and sweeps usually
// run with tracing disabled for speed. The capture protocol closes that
// gap without threading a sink through every trial signature:
//
//   1. bench_cli arms the process-wide capture for a trial index
//      (default 0) before the sweep starts;
//   2. the runner marks the current trial index in a thread-local slot
//      around each trial body (TrialScope);
//   3. the first World constructed inside the armed trial claims the
//      capture (try_claim), force-enables its TraceRecorder, and
//      delivers a copy of the trace at destruction.
//
// The claimed World is a pure function of the armed index — whichever
// worker thread happens to run the trial — so the captured trace is
// identical at any --jobs value.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "sim/trace.hpp"

namespace animus::obs {

class TraceCapture {
 public:
  /// Arm capture for submission index `trial_index` of the next sweep.
  void arm(std::size_t trial_index);

  [[nodiscard]] bool armed() const;

  /// The submission index the capture is armed for (0 when disarmed).
  [[nodiscard]] std::size_t armed_index() const;

  /// Runner bookkeeping: every sweep reports its trial count so
  /// `--trace-trial=N` can be bounds-checked against the largest sweep
  /// the process ran (benches may run several sweeps of varying sizes).
  void note_sweep_total(std::size_t total);
  [[nodiscard]] std::size_t max_sweep_total() const;

  /// Called by a World constructor: true exactly once, for the first
  /// World built inside the armed trial. The claimant must deliver().
  bool try_claim();

  /// Deliver the claimed World's trace (called from its destructor).
  void deliver(const sim::TraceRecorder& trace);

  /// Deliver a trace that was claimed and captured in ANOTHER process (a
  /// forked shard worker ships the armed trial's spans back over the
  /// result pipe). The claim happened in the worker's copy of this
  /// singleton, so the parent's slot is still armed-but-unclaimed;
  /// accept exactly the first remote delivery while armed.
  void deliver_remote(sim::TraceRecorder&& trace);

  [[nodiscard]] bool captured() const;
  [[nodiscard]] const sim::TraceRecorder& trace() const { return trace_; }

  /// Disarm and drop any captured trace (tests).
  void reset();

  // ---- runner-side trial marking (thread-local) ----

  /// RAII: marks the current thread as executing sweep trial `index`.
  class TrialScope {
   public:
    explicit TrialScope(std::size_t index);
    ~TrialScope();
    TrialScope(const TrialScope&) = delete;
    TrialScope& operator=(const TrialScope&) = delete;

   private:
    std::optional<std::size_t> previous_;
  };

  [[nodiscard]] static std::optional<std::size_t> current_trial();

 private:
  mutable std::mutex mu_;
  bool armed_ = false;
  bool claimed_ = false;
  bool captured_ = false;
  std::size_t trial_index_ = 0;
  std::size_t max_sweep_total_ = 0;
  sim::TraceRecorder trace_;
};

/// Process-wide capture slot used by bench_cli, the runner, and World.
TraceCapture& trace_capture();

}  // namespace animus::obs
