#include "obs/profile.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

namespace animus::obs {

int profile_bucket(std::uint64_t ns) {
  if (ns == 0) return 0;
  const int b = std::bit_width(ns);
  return b < kProfileBucketCount ? b : kProfileBucketCount - 1;
}

std::uint64_t profile_bucket_upper_ns(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= kProfileBucketCount - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t profile_percentile_ns(const ProfileEntry& e, int pct) {
  if (e.count == 0) return 0;
  const std::uint64_t rank = (e.count * static_cast<std::uint64_t>(pct) + 99) / 100;
  std::uint64_t cum = 0;
  for (int b = 0; b < kProfileBucketCount; ++b) {
    cum += e.buckets[b];
    if (cum >= rank && cum > 0) return profile_bucket_upper_ns(b);
  }
  return profile_bucket_upper_ns(kProfileBucketCount - 1);
}

std::uint64_t ProfileReport::span_count() const {
  std::uint64_t n = 0;
  for (const auto& e : entries) n += e.count;
  return n;
}

const ProfileEntry* ProfileReport::find(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

namespace {

// --- per-thread accumulation -----------------------------------------------

constexpr std::size_t kSlots = 256;      // power of two; ~2 dozen static names
constexpr std::size_t kNameCache = 32;   // direct-map shortcut over find_slot
constexpr std::size_t kMaxStack = 4096;  // completed spans awaiting a parent

struct Slot {
  const char* name = nullptr;  // static literal; pointer identity is the key
  sim::TraceCategory category = sim::TraceCategory::kApp;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t buckets[kProfileBucketCount] = {};
};

struct Frame {
  std::int64_t start_us = 0;
  std::uint64_t dur_ns = 0;
};

struct ThreadProfile {
  // Spans land here first: sim::profile_span appends records inline (see
  // trace.hpp) and the aggregation below runs as one tight loop per drain —
  // at trial boundaries, when the ring fills, and before any snapshot.
  sim::detail::SpanRing ring;
  Slot slots[kSlots];
  Frame stack[kMaxStack];
  // Direct-map shortcut keyed on the name pointer's low bits: one load and
  // one compare on the drain path where the hash probe would pay a
  // multiply plus a dependent lookup. Collisions just fall back.
  Slot* name_cache[kNameCache] = {};
  std::size_t depth = 0;
  std::uint64_t dropped = 0;    // table full
  std::uint64_t overflows = 0;  // stack full

  void clear() {
    ring.count = 0;
    std::memset(static_cast<void*>(slots), 0, sizeof(slots));
    std::memset(static_cast<void*>(name_cache), 0, sizeof(name_cache));
    depth = 0;
    dropped = 0;
    overflows = 0;
  }

  Slot* find_slot(const char* name, sim::TraceCategory cat) {
    std::uintptr_t h = reinterpret_cast<std::uintptr_t>(name);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    for (std::size_t probe = 0; probe < kSlots; ++probe) {
      Slot& s = slots[(h + probe) & (kSlots - 1)];
      if (s.name != name && s.name != nullptr) continue;
      if (s.name == nullptr) {
        s.name = name;
        s.category = cat;
        // Sentinel so the hot path needs no first-observation branch.
        s.min_ns = ~std::uint64_t{0};
      }
      return &s;
    }
    return nullptr;
  }

  [[gnu::always_inline]] inline void apply(const char* name, sim::TraceCategory cat,
                                           std::int64_t start_us, std::uint32_t dur_us) {
    const std::uint64_t dur_ns = static_cast<std::uint64_t>(dur_us) * 1000u;

    // Spans arrive in completion order, so every frame on the stack that
    // *starts* inside this span is a completed child: subtract it once.
    std::uint64_t child_ns = 0;
    while (depth > 0 && stack[depth - 1].start_us >= start_us) {
      child_ns += stack[depth - 1].dur_ns;
      --depth;
    }
    const std::uint64_t self_ns = dur_ns > child_ns ? dur_ns - child_ns : 0;
    if (depth < kMaxStack) {
      stack[depth++] = Frame{start_us, dur_ns};
    } else {
      ++overflows;
    }

    const std::size_t ci = (reinterpret_cast<std::uintptr_t>(name) >> 4) & (kNameCache - 1);
    Slot* s = name_cache[ci];
    if (s == nullptr || s->name != name) {
      s = find_slot(name, cat);
      if (s == nullptr) {
        ++dropped;
        return;
      }
      name_cache[ci] = s;
    }
    s->min_ns = std::min(s->min_ns, dur_ns);
    s->max_ns = std::max(s->max_ns, dur_ns);
    ++s->count;
    s->total_ns += dur_ns;
    s->self_ns += self_ns;
    ++s->buckets[profile_bucket(dur_ns)];
  }

  void drain() {
    const std::uint32_t n = ring.count;
    for (std::uint32_t i = 0; i < n; ++i) {
      const sim::detail::SpanRec& r = ring.recs[i];
      apply(r.name, static_cast<sim::TraceCategory>(r.category), r.start_us, r.dur_us);
    }
    ring.count = 0;
  }
};

// --- process-wide collector ------------------------------------------------

using EntryKey = std::pair<std::string, int>;

struct Collector {
  mutable std::mutex mu;
  std::vector<ThreadProfile*> live;
  std::map<EntryKey, ProfileEntry> retired;
  std::uint64_t retired_dropped = 0;
  std::uint64_t retired_overflows = 0;
  std::atomic<bool> enabled{false};
};

// Leaked on purpose: thread_local destructors (including the main
// thread's) must be able to retire into it during teardown in any order.
Collector& collector() {
  static Collector* c = new Collector;
  return *c;
}

void merge_entry(ProfileEntry* into, const ProfileEntry& from) {
  if (from.count == 0) return;
  if (into->count == 0) {
    into->min_ns = from.min_ns;
    into->max_ns = from.max_ns;
  } else {
    into->min_ns = std::min(into->min_ns, from.min_ns);
    into->max_ns = std::max(into->max_ns, from.max_ns);
  }
  into->count += from.count;
  into->total_ns += from.total_ns;
  into->self_ns += from.self_ns;
  for (int b = 0; b < kProfileBucketCount; ++b) into->buckets[b] += from.buckets[b];
}

void fold_slot_locked(Collector& c, const Slot& s) {
  ProfileEntry& e = c.retired[EntryKey{std::string(s.name), static_cast<int>(s.category)}];
  if (e.name.empty()) {
    e.name = s.name;
    e.category = s.category;
  }
  ProfileEntry tmp;
  tmp.count = s.count;
  tmp.total_ns = s.total_ns;
  tmp.self_ns = s.self_ns;
  tmp.min_ns = s.min_ns;
  tmp.max_ns = s.max_ns;
  std::memcpy(tmp.buckets, s.buckets, sizeof(tmp.buckets));
  merge_entry(&e, tmp);
}

struct ThreadSlot {
  ThreadProfile* tp = nullptr;

  ~ThreadSlot();
};

thread_local ThreadSlot t_profile;
// Raw mirror of t_profile.tp: the per-span hot path loads one TLS word
// and calls nothing else. ThreadSlot keeps ownership + the retire-at-
// thread-exit destructor.
thread_local ThreadProfile* t_tp = nullptr;

ThreadSlot::~ThreadSlot() {
  if (tp == nullptr) return;
  sim::detail::t_span_ring = nullptr;
  tp->drain();
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  for (const Slot& s : tp->slots) {
    if (s.name != nullptr && s.count > 0) fold_slot_locked(c, s);
  }
  c.retired_dropped += tp->dropped;
  c.retired_overflows += tp->overflows;
  c.live.erase(std::remove(c.live.begin(), c.live.end(), tp), c.live.end());
  delete tp;
  tp = nullptr;
  t_tp = nullptr;
}

[[gnu::noinline]] ThreadProfile* attach_thread_profile() {
  auto* tp = new ThreadProfile;
  t_profile.tp = tp;
  t_tp = tp;
  sim::detail::t_span_ring = &tp->ring;
  Collector& coll = collector();
  std::lock_guard<std::mutex> lock(coll.mu);
  coll.live.push_back(tp);
  return tp;
}

// Slow path of sim::profile_span: the calling thread has no ring yet, or its
// ring is full. Drain-then-apply keeps completion order exact.
void hook_span(const char* name, sim::TraceCategory c, sim::SimTime start, sim::SimTime end) {
  ThreadProfile* tp = t_tp;
  if (tp == nullptr) tp = attach_thread_profile();
  tp->drain();
  const std::int64_t d = (end - start).count();
  const std::uint32_t dur_us =
      d <= 0 ? 0u : (d >= 0xffffffffll ? 0xffffffffu : static_cast<std::uint32_t>(d));
  tp->apply(name, c, start.count(), dur_us);
}

void hook_flush() {
  if (ThreadProfile* tp = t_tp) {
    tp->drain();
    tp->depth = 0;
  }
}

// --- wire + text helpers ---------------------------------------------------

void append_prefixed(std::string& out, std::string_view s) {
  out += std::to_string(s.size());
  out += ':';
  out += s;
}

bool read_prefixed(std::string_view wire, std::size_t* pos, std::string* out) {
  const std::size_t colon = wire.find(':', *pos);
  if (colon == std::string_view::npos) return false;
  char* end = nullptr;
  const unsigned long long len = std::strtoull(wire.data() + *pos, &end, 10);
  if (end != wire.data() + colon) return false;
  if (colon + 1 + len > wire.size()) return false;
  *out = std::string(wire.substr(colon + 1, len));
  *pos = colon + 1 + len;
  return true;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

/// Entries ranked by self time (desc), name as the deterministic tiebreak.
std::vector<const ProfileEntry*> by_self_time(const ProfileReport& report) {
  std::vector<const ProfileEntry*> order;
  order.reserve(report.entries.size());
  for (const auto& e : report.entries) order.push_back(&e);
  std::sort(order.begin(), order.end(), [](const ProfileEntry* a, const ProfileEntry* b) {
    if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
    return a->name < b->name;
  });
  return order;
}

}  // namespace

// --- report rendering ------------------------------------------------------

std::string to_profile_json(const ProfileReport& report) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": 1,\n";
  out += "  \"report\": \"animus-profile\",\n";
  out += "  \"spans\": " + std::to_string(report.span_count()) + ",\n";
  out += "  \"dropped_spans\": " + std::to_string(report.dropped_spans) + ",\n";
  out += "  \"stack_overflows\": " + std::to_string(report.stack_overflows) + ",\n";
  out += "  \"entries\": [";
  bool first = true;
  for (const ProfileEntry& e : report.entries) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_string(out, e.name);
    out += ", \"category\": ";
    append_json_string(out, sim::to_string(e.category));
    char buf[352];
    std::snprintf(buf, sizeof(buf),
                  ", \"count\": %" PRIu64 ", \"total_ns\": %" PRIu64 ", \"self_ns\": %" PRIu64
                  ", \"min_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 ", \"p50_ns\": %" PRIu64
                  ", \"p90_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64 ", \"buckets\": [",
                  e.count, e.total_ns, e.self_ns, e.min_ns, e.max_ns,
                  profile_percentile_ns(e, 50), profile_percentile_ns(e, 90),
                  profile_percentile_ns(e, 99));
    out += buf;
    bool first_bucket = true;
    for (int b = 0; b < kProfileBucketCount; ++b) {
      if (e.buckets[b] == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[" + std::to_string(b) + ", " + std::to_string(e.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

std::string profile_summary_json(const ProfileReport& report, std::size_t top_n) {
  std::string out = "{\"spans\":" + std::to_string(report.span_count()) + ",\"top\":[";
  const auto order = by_self_time(report);
  for (std::size_t i = 0; i < order.size() && i < top_n; ++i) {
    if (i > 0) out += ',';
    out += "{\"name\":";
    append_json_string(out, order[i]->name);
    out += ",\"self_ns\":" + std::to_string(order[i]->self_ns);
    out += ",\"count\":" + std::to_string(order[i]->count) + "}";
  }
  out += "]}";
  return out;
}

std::string profile_table(const ProfileReport& report, std::size_t top_n) {
  std::string out = "== span profile: top self-time ==\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "  %12s %12s %10s %10s %10s  %s\n", "self_ms", "total_ms",
                "count", "p50_ns", "p99_ns", "span");
  out += buf;
  const auto order = by_self_time(report);
  for (std::size_t i = 0; i < order.size() && i < top_n; ++i) {
    const ProfileEntry& e = *order[i];
    std::snprintf(buf, sizeof(buf), "  %12.3f %12.3f %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                  "  %s (%s)\n",
                  static_cast<double>(e.self_ns) / 1e6, static_cast<double>(e.total_ns) / 1e6,
                  e.count, profile_percentile_ns(e, 50), profile_percentile_ns(e, 99),
                  e.name.c_str(), std::string(sim::to_string(e.category)).c_str());
    out += buf;
  }
  if (report.dropped_spans != 0 || report.stack_overflows != 0) {
    std::snprintf(buf, sizeof(buf), "  (%" PRIu64 " spans dropped, %" PRIu64
                  " stack overflows)\n",
                  report.dropped_spans, report.stack_overflows);
    out += buf;
  }
  return out;
}

// --- wire ------------------------------------------------------------------

std::string serialize_profile(const ProfileReport& report) {
  std::string out = "animus-profile 1 " + std::to_string(report.entries.size()) + " " +
                    std::to_string(report.dropped_spans) + " " +
                    std::to_string(report.stack_overflows) + "\n";
  for (const ProfileEntry& e : report.entries) {
    int nb = 0;
    for (int b = 0; b < kProfileBucketCount; ++b) {
      if (e.buckets[b] != 0) ++nb;
    }
    char head[224];
    std::snprintf(head, sizeof(head),
                  "%u %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %d",
                  static_cast<unsigned>(e.category), e.count, e.total_ns, e.self_ns, e.min_ns,
                  e.max_ns, nb);
    out += head;
    for (int b = 0; b < kProfileBucketCount; ++b) {
      if (e.buckets[b] == 0) continue;
      out += ' ';
      out += std::to_string(b);
      out += ':';
      out += std::to_string(e.buckets[b]);
    }
    out += ' ';
    append_prefixed(out, e.name);
    out += '\n';
  }
  return out;
}

bool deserialize_profile(std::string_view wire, ProfileReport* out) {
  std::size_t pos = 0;
  unsigned long long count = 0;
  unsigned long long dropped = 0;
  unsigned long long overflows = 0;
  {
    const std::size_t nl = wire.find('\n');
    if (nl == std::string_view::npos) return false;
    const std::string head(wire.substr(0, nl));
    if (std::sscanf(head.c_str(), "animus-profile 1 %llu %llu %llu", &count, &dropped,
                    &overflows) != 3) {
      return false;
    }
    pos = nl + 1;
  }
  out->dropped_spans += dropped;
  out->stack_overflows += overflows;
  for (unsigned long long i = 0; i < count; ++i) {
    // Numerics are bounded (head + <=64 bucket pairs); the name is
    // length-prefixed, so it is parsed by consumption like the trace wire.
    const std::string region(wire.substr(pos, std::min<std::size_t>(wire.size() - pos, 2048)));
    const char* s = region.c_str();
    char* end = nullptr;
    const auto read_u64 = [&](unsigned long long* v) -> bool {
      *v = std::strtoull(s, &end, 10);
      if (end == s) return false;
      s = end;
      return true;
    };
    unsigned long long cat = 0;
    unsigned long long nb = 0;
    ProfileEntry e;
    if (!read_u64(&cat) || cat >= static_cast<unsigned>(sim::kTraceCategoryCount)) return false;
    unsigned long long v = 0;
    if (!read_u64(&v)) return false;
    e.count = v;
    if (!read_u64(&v)) return false;
    e.total_ns = v;
    if (!read_u64(&v)) return false;
    e.self_ns = v;
    if (!read_u64(&v)) return false;
    e.min_ns = v;
    if (!read_u64(&v)) return false;
    e.max_ns = v;
    if (!read_u64(&nb) || nb > static_cast<unsigned long long>(kProfileBucketCount)) return false;
    for (unsigned long long b = 0; b < nb; ++b) {
      unsigned long long idx = 0;
      unsigned long long n = 0;
      if (!read_u64(&idx) || idx >= static_cast<unsigned long long>(kProfileBucketCount)) {
        return false;
      }
      if (*s != ':') return false;
      ++s;
      if (!read_u64(&n)) return false;
      e.buckets[idx] = n;
    }
    if (*s != ' ') return false;
    ++s;
    std::size_t name_pos = pos + static_cast<std::size_t>(s - region.c_str());
    if (!read_prefixed(wire, &name_pos, &e.name)) return false;
    if (name_pos >= wire.size() || wire[name_pos] != '\n') return false;
    pos = name_pos + 1;
    e.category = static_cast<sim::TraceCategory>(cat);
    out->entries.push_back(std::move(e));
  }
  return true;
}

void merge_profile(ProfileReport* to, const ProfileReport& from) {
  std::map<EntryKey, ProfileEntry> acc;
  for (ProfileEntry& e : to->entries) {
    acc.emplace(EntryKey{e.name, static_cast<int>(e.category)}, std::move(e));
  }
  for (const ProfileEntry& e : from.entries) {
    auto [it, inserted] = acc.emplace(EntryKey{e.name, static_cast<int>(e.category)}, e);
    if (!inserted) merge_entry(&it->second, e);
  }
  to->entries.clear();
  for (auto& [key, e] : acc) to->entries.push_back(std::move(e));
  to->dropped_spans += from.dropped_spans;
  to->stack_overflows += from.stack_overflows;
}

// --- SpanProfiler ----------------------------------------------------------

SpanProfiler& SpanProfiler::instance() {
  static SpanProfiler profiler;
  return profiler;
}

SpanProfiler& span_profiler() { return SpanProfiler::instance(); }

void SpanProfiler::enable() {
  collector().enabled.store(true, std::memory_order_relaxed);
  sim::set_profile_hooks(&hook_span, &hook_flush);
}

void SpanProfiler::disable() {
  sim::set_profile_hooks(nullptr, nullptr);
  collector().enabled.store(false, std::memory_order_relaxed);
}

bool SpanProfiler::enabled() const {
  return collector().enabled.load(std::memory_order_relaxed);
}

void SpanProfiler::reset() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.retired.clear();
  c.retired_dropped = 0;
  c.retired_overflows = 0;
  for (ThreadProfile* tp : c.live) tp->clear();
}

ProfileReport SpanProfiler::snapshot() const {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  std::map<EntryKey, ProfileEntry> acc = c.retired;
  std::uint64_t dropped = c.retired_dropped;
  std::uint64_t overflows = c.retired_overflows;
  for (ThreadProfile* tp : c.live) {
    // Live threads may hold one trial of undrained records. Snapshot assumes
    // quiescence (workers joined / between trials) — the same assumption the
    // unsynchronized slot reads below have always made.
    tp->drain();
    for (const Slot& s : tp->slots) {
      if (s.name == nullptr || s.count == 0) continue;
      ProfileEntry& e = acc[EntryKey{std::string(s.name), static_cast<int>(s.category)}];
      if (e.name.empty()) {
        e.name = s.name;
        e.category = s.category;
      }
      ProfileEntry tmp;
      tmp.count = s.count;
      tmp.total_ns = s.total_ns;
      tmp.self_ns = s.self_ns;
      tmp.min_ns = s.min_ns;
      tmp.max_ns = s.max_ns;
      std::memcpy(tmp.buckets, s.buckets, sizeof(tmp.buckets));
      merge_entry(&e, tmp);
    }
    dropped += tp->dropped;
    overflows += tp->overflows;
  }
  ProfileReport out;
  out.dropped_spans = dropped;
  out.stack_overflows = overflows;
  out.entries.reserve(acc.size());
  for (auto& [key, e] : acc) out.entries.push_back(std::move(e));  // map order == sorted
  return out;
}

void SpanProfiler::merge(const ProfileReport& report) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  for (const ProfileEntry& e : report.entries) {
    ProfileEntry& into = c.retired[EntryKey{e.name, static_cast<int>(e.category)}];
    if (into.name.empty()) {
      into.name = e.name;
      into.category = e.category;
    }
    merge_entry(&into, e);
  }
  c.retired_dropped += report.dropped_spans;
  c.retired_overflows += report.stack_overflows;
}

void SpanProfiler::observe(const char* name, sim::TraceCategory c, sim::SimTime start,
                           sim::SimTime end) {
  hook_span(name, c, start, end);
}

void SpanProfiler::flush_stack() { hook_flush(); }

}  // namespace animus::obs
