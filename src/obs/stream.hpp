// Streaming telemetry exporter for long campaigns.
//
// A sweep that runs for hours is useless as a black box: `--metrics-out`
// only materializes at exit, so a campaign that dies at trial 48,000 of
// 50,000 reports nothing. `TelemetryStreamer` closes that gap by
// appending timestamped JSONL records to a file *while the sweep runs*:
//
//   - a background flusher thread wakes every `interval_ms`, polls every
//     registered sampler (typically a MetricsRegistry snapshot and the
//     runner's progress counters) and appends one record per sampler;
//   - any thread can `emit()` ad-hoc records (progress heartbeats,
//     campaign start/stop markers) through a bounded queue — when the
//     queue is full the record is dropped and counted, never blocking a
//     worker;
//   - `stop()` takes one final sample of every sampler, drains the
//     queue, flushes and closes — so the last line of the file always
//     reflects the final state (the "clean final flush" contract).
//
// Record envelope, one JSON object per line:
//
//   {"seq":12,"t_ms":2500.1,"kind":"progress",...sampler fields...}
//
// `seq` is strictly increasing and `t_ms` (wall-clock since start(), via
// steady_clock) is non-decreasing across the whole file, so a consumer
// can tail the stream and detect truncation or reordering.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace animus::obs {

struct StreamOptions {
  std::string path;            ///< JSONL destination (append is not used; fresh file)
  double interval_ms = 1000.0; ///< flusher wake period
  std::size_t max_queue = 1024;///< bounded emit() queue; overflow drops + counts
};

class TelemetryStreamer {
 public:
  explicit TelemetryStreamer(StreamOptions options);
  ~TelemetryStreamer();  // stop() if still running

  TelemetryStreamer(const TelemetryStreamer&) = delete;
  TelemetryStreamer& operator=(const TelemetryStreamer&) = delete;

  /// Register a sampler polled on every flusher tick (and once more at
  /// stop()). `fields` is the record body without the envelope, e.g.
  /// `"series":12,"worlds":3`. Must be called before start().
  void add_sampler(std::string kind, std::function<std::string()> fields);

  /// Open the file and launch the flusher. False (with errno intact) if
  /// the file cannot be opened; the streamer then stays inert.
  bool start();

  /// Final sample + drain + flush + close. Idempotent.
  void stop();

  /// Enqueue one ad-hoc record. Thread-safe and non-blocking: when the
  /// bounded queue is full the record is dropped and counted.
  void emit(std::string_view kind, std::string_view fields);

  [[nodiscard]] bool active() const;
  [[nodiscard]] std::size_t lines_written() const;
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] const StreamOptions& options() const { return options_; }

 private:
  std::string envelope_locked(std::string_view kind, std::string_view fields);
  void sample_all_locked();
  void drain_locked();

  StreamOptions options_;
  std::vector<std::pair<std::string, std::function<std::string()>>> samplers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  std::FILE* file_ = nullptr;
  std::thread flusher_;
  bool running_ = false;
  bool stopping_ = false;
  std::uint64_t seq_ = 0;
  double last_t_ms_ = 0.0;
  std::size_t lines_written_ = 0;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// Compact stream rendering of a metrics snapshot: counters and gauges
/// as name/labels/value, histograms as count/sum/max — one
/// `"series":N,"metrics":[...]` body ready for a TelemetryStreamer
/// sampler (full bucket detail stays in --metrics-out).
std::string stream_fields(const Snapshot& snap);

}  // namespace animus::obs
