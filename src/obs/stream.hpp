// Streaming telemetry exporter for long campaigns.
//
// A sweep that runs for hours is useless as a black box: `--metrics-out`
// only materializes at exit, so a campaign that dies at trial 48,000 of
// 50,000 reports nothing. `TelemetryStreamer` closes that gap by
// appending timestamped JSONL records to a file *while the sweep runs*:
//
//   - a background flusher thread wakes every `interval_ms`, polls every
//     registered sampler (typically a MetricsRegistry snapshot and the
//     runner's progress counters) and appends one record per sampler;
//   - any thread can `emit()` ad-hoc records (progress heartbeats,
//     campaign start/stop markers) through a bounded queue — when the
//     queue is full the record is dropped and counted, never blocking a
//     worker;
//   - `stop()` takes one final sample of every sampler, drains the
//     queue, flushes and closes — so the last line of the file always
//     reflects the final state (the "clean final flush" contract).
//
// Record envelope, one JSON object per line:
//
//   {"seq":12,"t_ms":2500.1,"kind":"progress",...sampler fields...}
//
// `seq` is strictly increasing and `t_ms` (wall-clock since start(), via
// steady_clock) is non-decreasing across the whole file, so a consumer
// can tail the stream and detect truncation or reordering.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace animus::obs {

struct StreamOptions {
  std::string path;            ///< JSONL destination (append is not used; fresh file)
  double interval_ms = 1000.0; ///< flusher wake period
  std::size_t max_queue = 1024;///< bounded emit() queue; overflow drops + counts
};

class TelemetryStreamer {
 public:
  explicit TelemetryStreamer(StreamOptions options);
  ~TelemetryStreamer();  // stop() if still running

  TelemetryStreamer(const TelemetryStreamer&) = delete;
  TelemetryStreamer& operator=(const TelemetryStreamer&) = delete;

  /// Register a sampler polled on every flusher tick (and once more at
  /// stop()). `fields` is the record body without the envelope, e.g.
  /// `"series":12,"worlds":3`. Must be called before start().
  void add_sampler(std::string kind, std::function<std::string()> fields);

  /// Open the file and launch the flusher. False (with errno intact) if
  /// the file cannot be opened; the streamer then stays inert.
  bool start();

  /// Final sample + drain + flush + close. Idempotent.
  void stop();

  /// Enqueue one ad-hoc record. Thread-safe and non-blocking: when the
  /// bounded queue is full the record is dropped and counted.
  void emit(std::string_view kind, std::string_view fields);

  [[nodiscard]] bool active() const;
  [[nodiscard]] std::size_t lines_written() const;
  [[nodiscard]] std::size_t dropped() const;
  [[nodiscard]] const StreamOptions& options() const { return options_; }

 private:
  std::string envelope_locked(std::string_view kind, std::string_view fields);
  void sample_all_locked();
  void drain_locked();

  StreamOptions options_;
  std::vector<std::pair<std::string, std::function<std::string()>>> samplers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  std::FILE* file_ = nullptr;
  std::thread flusher_;
  bool running_ = false;
  bool stopping_ = false;
  std::uint64_t seq_ = 0;
  double last_t_ms_ = 0.0;
  std::size_t lines_written_ = 0;
  std::size_t dropped_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

/// Compact stream rendering of a metrics snapshot: counters and gauges
/// as name/labels/value, histograms as count/sum/max — one
/// `"series":N,"metrics":[...]` body ready for a TelemetryStreamer
/// sampler (full bucket detail stays in --metrics-out).
std::string stream_fields(const Snapshot& snap);

/// Incremental snapshot encoder for delta-mode streaming.
///
/// A full `stream_fields` body is O(total series) per tick; on a
/// long campaign with thousands of series, almost all of it repeats the
/// previous tick. DeltaEncoder remembers the last snapshot it encoded
/// and emits one of two bodies:
///
///   keyframe  `"keyframe":true,` + the full stream_fields body —
///             frame 0 and every `keyframe_every`-th frame thereafter,
///             so a late subscriber syncs within one keyframe period;
///   delta     `"delta":true,"series":N,"changed":M,"metrics":[...]` —
///             only series whose value (counter/gauge) or
///             count/sum/max (histogram) changed since the previous
///             frame. Histogram entries additionally carry
///             `"buckets":[[index,count],...]` for the buckets that
///             changed. Values are absolute, so applying a delta means
///             overwriting the named series — consumers never have to
///             add increments, and a lost delta is healed by the next
///             keyframe.
///
/// Series are keyed by (name, labels); the registry never retires a
/// series, so deltas carry no tombstones. Snapshots iterate the
/// registry's map in sorted key order and existing series never move,
/// so the previous frame is kept as a sorted vector and each encode is
/// a single two-pointer merge — no per-series map lookups, which is
/// what lets a 10k-series registry tick at sub-second intervals.
class DeltaEncoder {
 public:
  /// `keyframe_every` = total frame period of keyframes: frame 0, K,
  /// 2K, ... are keyframes, everything between is a delta.
  explicit DeltaEncoder(std::size_t keyframe_every = kDefaultKeyframeEvery);

  /// Encode `snap` relative to the previously encoded frame. Returns a
  /// TelemetryStreamer sampler body (no envelope).
  std::string encode(const Snapshot& snap);

  [[nodiscard]] std::size_t frames() const { return frames_; }

  static constexpr std::size_t kDefaultKeyframeEvery = 10;

 private:
  struct SeriesState {
    std::string name;
    Labels labels;
    double value = 0.0;                  // counter/gauge
    std::vector<std::uint64_t> buckets;  // histogram
    double sum = 0.0;
    std::uint64_t count = 0;
    double max = 0.0;
  };

  std::size_t keyframe_every_;
  std::size_t frames_ = 0;
  std::vector<SeriesState> prev_;  // snapshot order (sorted by name+labels)
};

}  // namespace animus::obs
