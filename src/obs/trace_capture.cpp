#include "obs/trace_capture.hpp"

namespace animus::obs {
namespace {

thread_local std::optional<std::size_t> tl_current_trial;

}  // namespace

void TraceCapture::arm(std::size_t trial_index) {
  std::lock_guard<std::mutex> lock{mu_};
  armed_ = true;
  claimed_ = false;
  captured_ = false;
  trial_index_ = trial_index;
  trace_.clear();
}

bool TraceCapture::armed() const {
  std::lock_guard<std::mutex> lock{mu_};
  return armed_;
}

std::size_t TraceCapture::armed_index() const {
  std::lock_guard<std::mutex> lock{mu_};
  return armed_ ? trial_index_ : 0;
}

void TraceCapture::note_sweep_total(std::size_t total) {
  std::lock_guard<std::mutex> lock{mu_};
  if (total > max_sweep_total_) max_sweep_total_ = total;
}

std::size_t TraceCapture::max_sweep_total() const {
  std::lock_guard<std::mutex> lock{mu_};
  return max_sweep_total_;
}

bool TraceCapture::try_claim() {
  if (tl_current_trial == std::nullopt) return false;
  std::lock_guard<std::mutex> lock{mu_};
  if (!armed_ || claimed_ || *tl_current_trial != trial_index_) return false;
  claimed_ = true;
  return true;
}

void TraceCapture::deliver(const sim::TraceRecorder& trace) {
  std::lock_guard<std::mutex> lock{mu_};
  if (!claimed_ || captured_) return;
  trace_ = trace;
  captured_ = true;
}

void TraceCapture::deliver_remote(sim::TraceRecorder&& trace) {
  std::lock_guard<std::mutex> lock{mu_};
  if (!armed_ || captured_) return;
  claimed_ = true;
  trace_ = std::move(trace);
  captured_ = true;
}

bool TraceCapture::captured() const {
  std::lock_guard<std::mutex> lock{mu_};
  return captured_;
}

void TraceCapture::reset() {
  std::lock_guard<std::mutex> lock{mu_};
  armed_ = claimed_ = captured_ = false;
  trial_index_ = 0;
  max_sweep_total_ = 0;
  trace_.clear();
}

TraceCapture::TrialScope::TrialScope(std::size_t index) : previous_(tl_current_trial) {
  tl_current_trial = index;
}

TraceCapture::TrialScope::~TrialScope() { tl_current_trial = previous_; }

std::optional<std::size_t> TraceCapture::current_trial() { return tl_current_trial; }

TraceCapture& trace_capture() {
  static TraceCapture* capture = new TraceCapture();  // never destroyed
  return *capture;
}

}  // namespace animus::obs
