#include "obs/manifest.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/metrics.hpp"

namespace animus::obs {
namespace {

void field_str(std::string& out, const char* key, std::string_view value, bool comma = true) {
  out += "  \"";
  out += key;
  out += "\": \"";
  append_json_escaped(out, value);
  out += comma ? "\",\n" : "\"\n";
}

void field_u64(std::string& out, const char* key, std::uint64_t value) {
  out += "  \"";
  out += key;
  out += "\": " + std::to_string(value) + ",\n";
}

void field_bool(std::string& out, const char* key, bool value) {
  out += "  \"";
  out += key;
  out += value ? "\": true,\n" : "\": false,\n";
}

/// Extract the raw token after `"key":` (string contents unescaped only
/// for \\ and \"; numbers/bools verbatim). Empty optional when absent.
std::optional<std::string> raw_value(std::string_view json, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  auto pos = json.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  pos += needle.size();
  while (pos < json.size() && (json[pos] == ' ' || json[pos] == '\n')) ++pos;
  if (pos >= json.size()) return std::nullopt;
  if (json[pos] == '"') {
    std::string out;
    for (++pos; pos < json.size() && json[pos] != '"'; ++pos) {
      if (json[pos] == '\\' && pos + 1 < json.size()) {
        ++pos;
        out += json[pos] == 'n' ? '\n' : json[pos] == 't' ? '\t' : json[pos];
      } else {
        out += json[pos];
      }
    }
    return out;
  }
  std::string out;
  while (pos < json.size() && json[pos] != ',' && json[pos] != '\n' && json[pos] != '}') {
    out += json[pos++];
  }
  return out;
}

std::uint64_t as_u64(const std::optional<std::string>& v) {
  return v ? std::strtoull(v->c_str(), nullptr, 10) : 0;
}

double as_double(const std::optional<std::string>& v) {
  return v ? std::strtod(v->c_str(), nullptr) : 0.0;
}

}  // namespace

std::string RunManifest::to_json() const {
  std::string out = "{\n";
  field_u64(out, "schema", static_cast<std::uint64_t>(schema));
  field_str(out, "bench", bench);
  field_str(out, "scenario", scenario);
  out += "  \"argv\": [";
  for (std::size_t i = 0; i < argv.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    append_json_escaped(out, argv[i]);
    out += "\"";
  }
  out += "],\n";
  field_u64(out, "root_seed", root_seed);
  field_u64(out, "jobs", static_cast<std::uint64_t>(jobs));
  field_str(out, "backend", backend);
  field_u64(out, "shards", static_cast<std::uint64_t>(shards));
  field_u64(out, "batch", static_cast<std::uint64_t>(batch));
  {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", inject_fault);
    out += "  \"inject_fault\": ";
    out += buf;
    out += ",\n";
  }
  field_bool(out, "deterministic", deterministic);
  field_bool(out, "csv", csv);
  {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", stream_interval_ms);
    out += "  \"stream_interval_ms\": ";
    out += buf;
    out += ",\n";
  }
  field_bool(out, "stream_delta", stream_delta);
  field_u64(out, "checkpoint_interval", checkpoint_interval);
  field_u64(out, "trace_trial", trace_trial);
  out += "  \"artifacts\": {\n";
  out += "  ";
  field_str(out, "trace", trace_out);
  out += "  ";
  field_str(out, "profile", profile_out);
  out += "  ";
  field_str(out, "metrics", metrics_out);
  out += "  ";
  field_str(out, "stream", stream_out);
  out += "  ";
  field_str(out, "checkpoint", checkpoint_out);
  out += "  ";
  field_str(out, "resumed_from", resume_from, /*comma=*/false);
  out += "  },\n";
  field_u64(out, "trials_total", trials_total);
  field_u64(out, "trials_resumed", trials_resumed);
  field_u64(out, "trial_errors", trial_errors);
  field_u64(out, "errors_injected", errors_injected);
  field_u64(out, "errors_organic", errors_organic);
  field_u64(out, "stream_lines", stream_lines);
  field_u64(out, "stream_dropped", stream_dropped);
  out += "  \"build\": {\n";
  out += "  ";
  field_str(out, "compiler", compiler);
  out += "  ";
  field_str(out, "type", build_type);
  out += "    \"cxx\": " + std::to_string(cxx_standard) + "\n";
  out += "  }\n}\n";
  return out;
}

std::optional<RunManifest> RunManifest::parse(std::string_view json) {
  if (!raw_value(json, "schema")) return std::nullopt;
  RunManifest m;
  m.schema = static_cast<int>(as_u64(raw_value(json, "schema")));
  if (auto v = raw_value(json, "bench")) m.bench = *v;
  if (auto v = raw_value(json, "scenario")) m.scenario = *v;
  m.root_seed = as_u64(raw_value(json, "root_seed"));
  m.jobs = static_cast<int>(as_u64(raw_value(json, "jobs")));
  if (auto v = raw_value(json, "backend")) m.backend = *v;
  m.shards = static_cast<int>(as_u64(raw_value(json, "shards")));
  m.batch = static_cast<int>(as_u64(raw_value(json, "batch")));
  m.inject_fault = as_double(raw_value(json, "inject_fault"));
  m.deterministic = raw_value(json, "deterministic").value_or("true") == "true";
  m.csv = raw_value(json, "csv").value_or("false") == "true";
  m.stream_interval_ms = as_double(raw_value(json, "stream_interval_ms"));
  m.stream_delta = raw_value(json, "stream_delta").value_or("false") == "true";
  m.checkpoint_interval = as_u64(raw_value(json, "checkpoint_interval"));
  m.trace_trial = as_u64(raw_value(json, "trace_trial"));
  if (auto v = raw_value(json, "trace")) m.trace_out = *v;
  if (auto v = raw_value(json, "profile")) m.profile_out = *v;
  if (auto v = raw_value(json, "metrics")) m.metrics_out = *v;
  if (auto v = raw_value(json, "stream")) m.stream_out = *v;
  if (auto v = raw_value(json, "checkpoint")) m.checkpoint_out = *v;
  if (auto v = raw_value(json, "resumed_from")) m.resume_from = *v;
  m.trials_total = as_u64(raw_value(json, "trials_total"));
  m.trials_resumed = as_u64(raw_value(json, "trials_resumed"));
  m.trial_errors = as_u64(raw_value(json, "trial_errors"));
  m.errors_injected = as_u64(raw_value(json, "errors_injected"));
  m.errors_organic = as_u64(raw_value(json, "errors_organic"));
  m.stream_lines = as_u64(raw_value(json, "stream_lines"));
  m.stream_dropped = as_u64(raw_value(json, "stream_dropped"));
  if (auto v = raw_value(json, "compiler")) m.compiler = *v;
  if (auto v = raw_value(json, "type")) m.build_type = *v;
  m.cxx_standard = static_cast<long>(as_u64(raw_value(json, "cxx")));
  // `argv` entries.
  const std::string needle = "\"argv\": [";
  if (auto pos = json.find(needle); pos != std::string_view::npos) {
    pos += needle.size();
    while (pos < json.size() && json[pos] != ']') {
      if (json[pos] == '"') {
        std::string arg;
        for (++pos; pos < json.size() && json[pos] != '"'; ++pos) {
          if (json[pos] == '\\' && pos + 1 < json.size()) ++pos;
          arg += json[pos];
        }
        m.argv.push_back(std::move(arg));
      }
      ++pos;
    }
  }
  return m;
}

std::string RunManifest::path_for(const std::string& artifact) {
  return artifact + ".manifest.json";
}

std::string build_compiler_id() {
#if defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

std::string build_type_id() {
#if defined(ANIMUS_BUILD_TYPE)
  return ANIMUS_BUILD_TYPE;
#elif defined(NDEBUG)
  return "release-like";
#else
  return "debug-like";
#endif
}

}  // namespace animus::obs
