// Self-describing run manifests.
//
// Every campaign artifact (--csv table, --metrics-out snapshot,
// --trace-out trace, telemetry stream, checkpoint) is an orphan without
// the configuration that produced it: which seed, how many jobs, which
// build. `RunManifest` records all of that as a small JSON file written
// next to the artifacts, so a results directory is reproducible from its
// own contents months later:
//
//   {
//     "schema": 1,
//     "bench": "fig07_capture_rate",
//     "argv": ["--jobs", "8", "--csv"],
//     "root_seed": 71829455837523,
//     ...
//     "artifacts": {"metrics": "fig07.prom", "stream": "fig07.stream.jsonl"},
//     "build": {"compiler": "...", "type": "Release", "cxx": 202002}
//   }
//
// `parse()` round-trips the scalar fields and artifact paths (a minimal
// extractor, not a general JSON parser) so tooling and tests can verify
// a manifest without external dependencies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace animus::obs {

struct RunManifest {
  int schema = 1;
  std::string bench;               ///< binary basename
  std::string scenario;            ///< --scenario name ("" = bench-defined sweep)
  std::vector<std::string> argv;   ///< arguments after argv[0]
  std::uint64_t root_seed = 0;
  int jobs = 0;                    ///< requested (0 = all hardware cores)
  std::string backend = "threads"; ///< execution backend ("threads"|"process")
  int shards = 0;                  ///< process-backend workers (0 = all cores)
  int batch = 0;                   ///< trials per process-backend frame (0 = auto)
  double inject_fault = 0.0;       ///< --inject-fault rate (0 = disabled)
  bool deterministic = true;
  bool csv = false;
  double stream_interval_ms = 0.0; ///< 0 = streaming disabled
  bool stream_delta = false;       ///< metrics samples were delta-encoded
  std::size_t checkpoint_interval = 0;
  std::size_t trace_trial = 0;

  // Artifact paths, "" = not produced.
  std::string trace_out;
  std::string profile_out;
  std::string metrics_out;
  std::string stream_out;
  std::string checkpoint_out;
  std::string resume_from;

  // Outcome, filled in at finish time.
  std::size_t trials_total = 0;    ///< across all sweeps in the run
  std::size_t trials_resumed = 0;  ///< satisfied from --resume-from
  std::size_t trial_errors = 0;
  std::size_t errors_injected = 0; ///< errors from --inject-fault trials
  std::size_t errors_organic = 0;  ///< everything else (incl. worker crashes)
  std::size_t stream_lines = 0;
  std::size_t stream_dropped = 0;

  // Build identity.
  std::string compiler;            ///< __VERSION__
  std::string build_type;          ///< CMAKE_BUILD_TYPE (or "unknown")
  long cxx_standard = 0;           ///< __cplusplus

  [[nodiscard]] std::string to_json() const;

  /// Minimal-extractor inverse of to_json(): recovers every scalar field
  /// and the artifact paths. Returns nullopt when `json` is not a
  /// manifest (no "schema" field).
  static std::optional<RunManifest> parse(std::string_view json);

  /// Conventional manifest path next to an artifact:
  /// "out/fig07.prom" -> "out/fig07.prom.manifest.json".
  static std::string path_for(const std::string& artifact);
};

/// Compiler / build-type identity baked into this binary.
std::string build_compiler_id();
std::string build_type_id();

}  // namespace animus::obs
