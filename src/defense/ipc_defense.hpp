// IPC-based defense (Section VII-A).
//
// Binder is modified (in a minor fashion) to collect transactions of
// interest — addView / removeView with caller and timestamp — and an
// analyzer applies a decision rule over two factors: the number of
// add/remove call pairs, and the duration between the calls of a pair.
// The draw-and-destroy overlay attack produces a dense train of
// near-simultaneous removeView→addView pairs (one per attacking window
// D); benign overlay apps (floating players, navigation bubbles) add an
// overlay once and remove it much later.
#pragma once

#include <map>
#include <vector>

#include "ipc/transaction_log.hpp"
#include "sim/time.hpp"

namespace animus::defense {

struct IpcDefenseConfig {
  /// A removeView followed by an addView from the same uid within this
  /// gap counts as one draw-and-destroy pair.
  sim::SimTime pair_gap_threshold = sim::ms(500);
  /// Pairs within `window` needed to flag the uid.
  int min_pairs = 8;
  sim::SimTime window = sim::seconds(10);
};

struct Detection {
  int uid = -1;
  int pairs = 0;
  sim::SimTime first_pair{0};
  sim::SimTime last_pair{0};
};

class IpcDefenseAnalyzer {
 public:
  explicit IpcDefenseAnalyzer(IpcDefenseConfig config = {});

  /// Feed one transaction (online mode — attach as a log observer).
  void observe(const ipc::Transaction& t);

  /// Offline scan of a recorded log. Stateless with respect to online
  /// observations.
  [[nodiscard]] std::vector<Detection> scan(const ipc::TransactionLog& log) const;

  /// Attach to a live log; from then on every recorded transaction is
  /// analyzed immediately.
  void attach(ipc::TransactionLog& log);

  /// When set, each observed remove→add pair emits a duration span on
  /// the "defense" track (the pair gap the decision rule measures), and
  /// detections appear as instants.
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

  [[nodiscard]] bool flagged(int uid) const;
  [[nodiscard]] const std::vector<Detection>& detections() const { return detections_; }
  [[nodiscard]] const IpcDefenseConfig& config() const { return config_; }

 private:
  struct UidState {
    sim::SimTime last_remove{-1};
    bool remove_pending = false;
    std::vector<sim::SimTime> pair_times;  // pair completion times
    bool flagged = false;
  };

  /// Shared incremental rule; returns a detection when the uid crosses
  /// the threshold for the first time.
  static bool advance(UidState& st, const ipc::Transaction& t, const IpcDefenseConfig& cfg,
                      Detection* out);

  IpcDefenseConfig config_;
  sim::TraceRecorder* trace_ = nullptr;
  std::map<int, UidState> online_;
  std::vector<Detection> detections_;
};

}  // namespace animus::defense
