#include "defense/ipc_defense.hpp"

#include <algorithm>

#include "metrics/table.hpp"
#include "obs/metrics.hpp"

namespace animus::defense {

IpcDefenseAnalyzer::IpcDefenseAnalyzer(IpcDefenseConfig config) : config_(config) {}

bool IpcDefenseAnalyzer::advance(UidState& st, const ipc::Transaction& t,
                                 const IpcDefenseConfig& cfg, Detection* out) {
  if (t.code == ipc::MethodCode::kRemoveView) {
    st.last_remove = t.sent;
    st.remove_pending = true;
    return false;
  }
  if (t.code != ipc::MethodCode::kAddView) return false;
  if (!st.remove_pending || t.sent - st.last_remove > cfg.pair_gap_threshold) return false;
  st.remove_pending = false;
  st.pair_times.push_back(t.sent);
  // Count pairs inside the trailing window.
  const sim::SimTime horizon = t.sent - cfg.window;
  const auto begin = std::lower_bound(st.pair_times.begin(), st.pair_times.end(), horizon);
  const int in_window = static_cast<int>(st.pair_times.end() - begin);
  if (in_window >= cfg.min_pairs && !st.flagged) {
    st.flagged = true;
    if (out != nullptr) {
      out->uid = t.caller_uid;
      out->pairs = in_window;
      out->first_pair = *begin;
      out->last_pair = t.sent;
    }
    return true;
  }
  return false;
}

void IpcDefenseAnalyzer::observe(const ipc::Transaction& t) {
  UidState& st = online_[t.caller_uid];
  const sim::SimTime remove_at = st.last_remove;
  const std::size_t pairs_before = st.pair_times.size();
  Detection det;
  const bool flagged_now = advance(st, t, config_, &det);
  if (st.pair_times.size() > pairs_before) {
    sim::profile_span("defense.ipc_pair", sim::TraceCategory::kDefense, remove_at, t.sent);
    if (trace_ != nullptr) {
      // The remove→add gap the decision rule measures, as a span.
      trace_->span(remove_at, t.sent, sim::TraceCategory::kDefense,
                   metrics::fmt("ipc pair uid=%d n=%zu", t.caller_uid, st.pair_times.size()));
    }
  }
  if (flagged_now) {
    detections_.push_back(det);
    if (trace_ != nullptr) {
      trace_->record(t.sent, sim::TraceCategory::kDefense,
                     metrics::fmt("ipc defense flagged uid=%d pairs=%d", det.uid, det.pairs));
    }
    obs::global_registry().counter("animus_ipc_defense_detections_total").inc();
  }
}

std::vector<Detection> IpcDefenseAnalyzer::scan(const ipc::TransactionLog& log) const {
  std::map<int, UidState> state;
  std::vector<Detection> found;
  for (const auto& t : log.all()) {
    Detection det;
    if (advance(state[t.caller_uid], t, config_, &det)) found.push_back(det);
  }
  return found;
}

void IpcDefenseAnalyzer::attach(ipc::TransactionLog& log) {
  log.add_observer([this](const ipc::Transaction& t) { observe(t); });
}

bool IpcDefenseAnalyzer::flagged(int uid) const {
  const auto it = online_.find(uid);
  return it != online_.end() && it->second.flagged;
}

}  // namespace animus::defense
