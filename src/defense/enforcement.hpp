// Detection-to-enforcement pipeline (Section VII-A closes with "...to
// detect and thus terminate them").
//
// The DefenseDaemon couples the online IPC analyzer to System Server
// policy actions: when a uid is flagged, the daemon (after a configurable
// reaction delay modelling the kill path) revokes SYSTEM_ALERT_WINDOW,
// removes every overlay the uid still has on screen, and purges its toast
// tokens — neutralizing a running draw-and-destroy attack mid-flight.
#pragma once

#include <set>
#include <vector>

#include "defense/ipc_defense.hpp"
#include "server/world.hpp"

namespace animus::defense {

struct EnforcementConfig {
  IpcDefenseConfig detector;
  /// Time between the analyzer flagging a uid and the policy actions
  /// landing (collector -> analyzer -> activity manager round trip).
  sim::SimTime reaction_delay = sim::ms(50);
  bool revoke_permission = true;
  bool remove_windows = true;
  bool purge_toasts = true;
};

class DefenseDaemon {
 public:
  struct Action {
    int uid = -1;
    sim::SimTime detected_at{0};
    sim::SimTime enforced_at{0};
    int windows_removed = 0;
  };

  DefenseDaemon(server::World& world, EnforcementConfig config = {});

  /// Attach to the world's transaction log and start enforcing.
  void install();

  [[nodiscard]] bool installed() const { return installed_; }
  [[nodiscard]] const std::vector<Action>& actions() const { return actions_; }
  [[nodiscard]] bool neutralized(int uid) const { return neutralized_.count(uid) > 0; }
  [[nodiscard]] const IpcDefenseAnalyzer& analyzer() const { return analyzer_; }

 private:
  void enforce(const Detection& detection);

  server::World* world_;
  EnforcementConfig config_;
  IpcDefenseAnalyzer analyzer_;
  bool installed_ = false;
  std::set<int> neutralized_;
  std::vector<Action> actions_;
};

}  // namespace animus::defense
