// Toast-gap defense (Section VII-B, closing remark): change the toast
// scheduling so successive toasts are separated by an enforced gap; the
// fake surface then visibly flickers and alerts the user.
#pragma once

#include "device/profile.hpp"
#include "percept/flicker.hpp"
#include "server/world.hpp"

namespace animus::defense {

inline constexpr sim::SimTime kDefaultToastGap = sim::ms(500);

/// Install on a live world.
void install_toast_gap_defense(server::World& world, sim::SimTime gap = kDefaultToastGap);

struct ToastDefenseProbe {
  percept::FlickerResult flicker;
  int toasts_shown = 0;
};

/// Run the draw-and-destroy toast attack for `duration` with the given
/// scheduling gap (0 = stock behaviour) and measure the perceived
/// flicker of the fake surface.
ToastDefenseProbe probe_toast_attack(const device::DeviceProfile& profile, sim::SimTime gap,
                                     sim::SimTime duration = sim::seconds(20),
                                     sim::SimTime toast_duration = server::kToastLong);

}  // namespace animus::defense
