// Enhanced-notification defense (Section VII-B).
//
// The System Server postpones the "remove the alert" notification to
// System UI by t = 690 ms after an app's last overlay disappears; if the
// same app re-adds an overlay during the grace period, the removal is
// cancelled and the slide-in animation keeps playing — so under the
// draw-and-destroy attack the alert completes and becomes fully visible
// (Λ5), defeating the suppression.
#pragma once

#include "core/attack_analysis.hpp"
#include "device/profile.hpp"
#include "server/world.hpp"

namespace animus::defense {

/// The delay validated on a Google Pixel 2 in the paper.
inline constexpr sim::SimTime kEnhancedAlertRemovalDelay = sim::ms(690);

/// Install the defense on a live world.
void install_enhanced_notification_defense(server::World& world,
                                           sim::SimTime delay = kEnhancedAlertRemovalDelay);

/// Run the draw-and-destroy overlay attack against a device with the
/// defense installed and report the alert outcome (expected: Λ5 for any
/// D, vs Λ1 without the defense at D below the Table II bound).
core::OutcomeProbe probe_attack_under_defense(const device::DeviceProfile& profile,
                                              sim::SimTime d,
                                              sim::SimTime delay = kEnhancedAlertRemovalDelay,
                                              sim::SimTime duration = sim::seconds(5));

}  // namespace animus::defense
