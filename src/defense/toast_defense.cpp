#include "defense/toast_defense.hpp"

#include "core/toast_attack.hpp"
#include "obs/metrics.hpp"

namespace animus::defense {

void install_toast_gap_defense(server::World& world, sim::SimTime gap) {
  world.nms().set_inter_toast_gap(gap);
  world.trace().record(world.now(), sim::TraceCategory::kDefense,
                       "toast gap defense installed", sim::to_ms(gap));
  obs::global_registry().counter("animus_defense_installs_total", {{"kind", "toast_gap"}}).inc();
}

ToastDefenseProbe probe_toast_attack(const device::DeviceProfile& profile, sim::SimTime gap,
                                     sim::SimTime duration, sim::SimTime toast_duration) {
  server::WorldConfig wc;
  wc.profile = profile;
  wc.deterministic = true;
  wc.trace_enabled = false;
  server::World world{wc};
  if (gap > sim::SimTime{0}) install_toast_gap_defense(world, gap);

  core::ToastAttackConfig tc;
  tc.toast_duration = toast_duration;
  tc.content = "fake_keyboard:lower";
  core::ToastAttack attack{world, tc};
  attack.start();
  world.run_until(duration);

  ToastDefenseProbe probe;
  // Measure once the first toast is up (skip the initial fade-in).
  probe.flicker = percept::scan_flicker(world.wms(), server::kMalwareUid, "fake_keyboard",
                                        sim::ms(1200), duration);
  probe.toasts_shown = attack.stats().shown;
  attack.stop();
  return probe;
}

}  // namespace animus::defense
