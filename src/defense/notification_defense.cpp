#include "defense/notification_defense.hpp"

#include "core/overlay_attack.hpp"
#include "obs/metrics.hpp"
#include "percept/outcomes.hpp"

namespace animus::defense {

void install_enhanced_notification_defense(server::World& world, sim::SimTime delay) {
  world.server().set_alert_removal_delay(delay);
  world.trace().record(world.now(), sim::TraceCategory::kDefense,
                       "enhanced notification defense installed", sim::to_ms(delay));
  obs::global_registry()
      .counter("animus_defense_installs_total", {{"kind", "enhanced_notification"}})
      .inc();
}

core::OutcomeProbe probe_attack_under_defense(const device::DeviceProfile& profile,
                                              sim::SimTime d, sim::SimTime delay,
                                              sim::SimTime duration) {
  server::WorldConfig wc;
  wc.profile = profile;
  wc.deterministic = true;
  wc.trace_enabled = false;
  server::World world{wc};
  world.server().grant_overlay_permission(server::kMalwareUid);
  install_enhanced_notification_defense(world, delay);

  core::OverlayAttackConfig oc;
  oc.attacking_window = d;
  core::OverlayAttack attack{world, oc};
  attack.start();
  world.run_until(duration);

  core::OutcomeProbe probe;
  probe.alert = world.system_ui().snapshot(server::kMalwareUid);
  probe.outcome = percept::classify(probe.alert);
  probe.cycles = attack.stats().cycles;
  attack.stop();
  return probe;
}

}  // namespace animus::defense
