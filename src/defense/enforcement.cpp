#include "defense/enforcement.hpp"

#include "metrics/table.hpp"
#include "obs/metrics.hpp"

namespace animus::defense {

DefenseDaemon::DefenseDaemon(server::World& world, EnforcementConfig config)
    : world_(&world), config_(config), analyzer_(config.detector) {}

void DefenseDaemon::install() {
  if (installed_) return;
  installed_ = true;
  obs::global_registry().counter("animus_defense_installs_total", {{"kind", "daemon"}}).inc();
  analyzer_.set_trace(&world_->trace());
  world_->transactions().add_observer([this](const ipc::Transaction& t) {
    analyzer_.observe(t);
    // The analyzer appends a Detection exactly once per uid; enforce any
    // detection we have not yet acted on.
    for (const auto& d : analyzer_.detections()) {
      if (neutralized_.count(d.uid) == 0) {
        neutralized_.insert(d.uid);
        const sim::SimTime detected = world_->now();
        world_->loop().schedule_after(config_.reaction_delay, [this, d, detected] {
          Detection det = d;
          det.last_pair = detected;
          enforce(det);
        });
      }
    }
  });
  world_->trace().record(world_->now(), sim::TraceCategory::kDefense,
                         "defense daemon installed");
}

void DefenseDaemon::enforce(const Detection& detection) {
  const int uid = detection.uid;
  Action action;
  action.uid = uid;
  action.detected_at = detection.last_pair;
  action.enforced_at = world_->now();

  if (config_.revoke_permission) world_->server().revoke_overlay_permission(uid);
  if (config_.remove_windows) {
    // Sweep every live window the uid still holds (overlays and any
    // legacy toast-layer views).
    for (const auto& rec : world_->wms().history()) {
      if (rec.window.owner_uid != uid || !rec.alive_at(world_->now())) continue;
      if (rec.window.type != ui::WindowType::kAppOverlay &&
          rec.window.type != ui::WindowType::kToast) {
        continue;
      }
      if (world_->wms().remove_window_now(rec.window.id)) ++action.windows_removed;
    }
  }
  if (config_.purge_toasts) {
    world_->nms().cancel_queued(uid, /*keep_content=*/"");
    world_->nms().cancel_current(uid);
  }
  // Detection-to-enforcement latency as a span on the defense track.
  sim::profile_span("defense.neutralize", sim::TraceCategory::kDefense, action.detected_at,
                    action.enforced_at);
  world_->trace().span(action.detected_at, action.enforced_at, sim::TraceCategory::kDefense,
                       metrics::fmt("neutralize uid=%d", uid));
  world_->trace().record(world_->now(), sim::TraceCategory::kDefense,
                         metrics::fmt("defense daemon: uid %d neutralized (%d windows)", uid,
                                      action.windows_removed));
  obs::global_registry().counter("animus_defense_neutralized_total").inc();
  actions_.push_back(action);
}

}  // namespace animus::defense
