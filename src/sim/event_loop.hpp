// Deterministic discrete-event loop — slab engine.
//
// Events are (time, sequence, callback) triples executed in nondecreasing
// time order; ties are broken by scheduling order, so a simulation run is
// a pure function of its inputs.
//
// Storage is a slab of generation-tagged slots recycled through a free
// list, ordered by a binary min-heap of POD entries that index into the
// slab:
//
//   - the slab grows in fixed 512-slot chunks and slots NEVER move:
//     growing appends a chunk instead of reallocating, so callbacks are
//     move-constructed exactly once (into their slot) no matter how big
//     the slab gets;
//   - schedule: pop a free slot (no allocation once the slab is warm),
//     move the callback into it, push a 24-byte {when, seq, slot,
//     generation} entry onto the heap. The sort key lives *in* the heap
//     entry, so sift comparisons stay cache-local and never touch the
//     slab. The returned EventId is {slot, generation}.
//   - cancel: O(1). The id addresses its slot directly; the generation
//     tag rejects stale handles (event already ran, double cancel, slot
//     reused) without any hash probe. The callback is destroyed and the
//     slot reclaimed onto the free list immediately — the matching heap
//     entry goes stale and is skipped (one generation compare) when it
//     surfaces at the top. Unlike the previous tombstone design nothing
//     is ever tombstoned in a map: a cancelled event costs 24 bytes of
//     heap entry until its time would have come, and nothing else.
//   - callbacks are InlineCallback<64>: typical captures (`this` plus a
//     couple of ints) live inside the slot; only oversized captures
//     heap-allocate.
//
// Compared to the previous std::priority_queue + std::unordered_map
// design this removes the per-schedule hash insert + node allocation,
// the per-pop hash find + erase, and the per-cancel hash erase — and
// cancel is *the* hot operation in the overlay attack: every
// draw-destroy iteration cancels the pending alert-animation event
// (§III). Steady state allocates nothing: slots and heap capacity are
// reused across the draw-destroy cycles of an entire trial.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace animus::sim {

class EventLoop {
 public:
  /// Small-buffer callback: captures up to 64 bytes never allocate.
  using Callback = InlineCallback<64>;

  /// Opaque handle for cancelling a scheduled event. Default-constructed
  /// handles are invalid and cancel() on them is a no-op returning false.
  /// Handles are generation-tagged: once the event runs or is cancelled
  /// its slot may be reused, and the old handle is rejected.
  struct EventId {
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;
    [[nodiscard]] bool valid() const { return generation != 0; }
  };

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;
  /// Destroys pending callbacks and returns the slab's chunks to a
  /// thread-local pool for the next EventLoop on this thread (a sweep
  /// builds one World — and thus one loop — per trial, so chunks cycle
  /// loop-to-loop instead of malloc-to-OS; see thread_cache()).
  ~EventLoop();

  /// Engine identifier stamped into perf reports (BENCH_kernel.json).
  [[nodiscard]] static const char* engine_name() { return "slab+genheap"; }

  /// Current virtual time; advances only while events run.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `when`. Scheduling in the past
  /// clamps to now() (the event still runs, after already-due events).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` at now() + delay (delay < 0 clamps to 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Hot-path overloads for plain callables: the callable is constructed
  /// directly inside its slab slot, skipping the wrapper temporary and
  /// its two type-erased relocations per schedule.
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, Callback> &&
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_at(SimTime when, F&& fn) {
    if (heap_.capacity() == heap_.size()) grow_heap();
    const Acquired a = acquire_slot();
    a.s->cb.emplace(std::forward<F>(fn));
    return finish_schedule(when, a);
  }

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, Callback> &&
                            std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventId schedule_after(SimTime delay, F&& fn) {
    if (delay < SimTime{0}) delay = SimTime{0};
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending event in O(1). Returns true iff the event existed
  /// and had not yet run; stale ids (double cancel, already-executed
  /// event, reused slot) return false.
  bool cancel(EventId id);

  /// Run the single next event. Returns false when the queue is empty.
  bool step();

  /// Run all events with time <= `until` (inclusive); returns the number
  /// of events executed. now() is advanced to `until` afterwards so that
  /// subsequent relative scheduling measures from the horizon.
  std::size_t run_until(SimTime until);

  /// Drain the queue completely (events may schedule more events).
  /// `max_events` guards against runaway self-rescheduling loops; when
  /// the guard fires with events still pending, hit_event_cap() latches.
  std::size_t run_all(std::size_t max_events = 100'000'000);

  /// Number of events currently pending (cancelled ones excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Restore the freshly-constructed state — pending callbacks are
  /// destroyed (not run), virtual time returns to zero and every counter
  /// clears — while keeping the slab chunks and heap capacity warm, so a
  /// session that runs thousands of trials through one loop pays the
  /// allocation cost once. Every EventId minted before the reset is
  /// invalidated (each touched slot's generation is bumped); callers
  /// must nevertheless drop old handles, as slot indices are recycled.
  void reset();

  // ----- lifetime telemetry (fed into obs::MetricsRegistry at World
  // teardown; plain counters, so the hot path stays allocation- and
  // lock-free) -----

  /// Events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Events scheduled since construction.
  [[nodiscard]] std::uint64_t scheduled() const { return scheduled_; }
  /// Successful cancellations since construction.
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }
  /// High-water mark of the pending-event queue.
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }
  /// True iff some run_all() call ever stopped at its max_events guard
  /// with events still pending — runaway self-rescheduling, which used
  /// to truncate fault-injection sweeps silently. Sticky; also counted
  /// by cap_hits() so World teardown can export it as a metric.
  [[nodiscard]] bool hit_event_cap() const { return cap_hits_ != 0; }
  /// Number of run_all() calls that stopped at the guard.
  [[nodiscard]] std::uint64_t cap_hits() const { return cap_hits_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Heap entry: the full sort key plus the slab address of the payload.
  /// POD and self-contained so sift comparisons never touch the slab.
  struct Entry {
    SimTime when;
    std::uint64_t seq;         ///< global scheduling order (tie-break)
    std::uint32_t slot;
    std::uint32_t generation;  ///< stale when != slots_[slot].generation
    [[nodiscard]] bool before(const Entry& o) const {
      // `when` is never negative (schedule_at clamps to now_ >= 0), so
      // (when, seq) orders lexicographically as one unsigned 128-bit
      // key: cmp/sbb on x86, no time-equality branch to mispredict in
      // the sift loops' min-child selection over near-random keys.
#if defined(__SIZEOF_INT128__)
      __extension__ using Key = unsigned __int128;
      const Key a = Key{static_cast<std::uint64_t>(when.count())} << 64 | seq;
      const Key b = Key{static_cast<std::uint64_t>(o.when.count())} << 64 | o.seq;
      return a < b;
#else
      return when != o.when ? when < o.when : seq < o.seq;
#endif
    }
  };

  /// Callback storage. Generation 0 is never live, so a
  /// default-constructed EventId can't address a slot.
  struct Slot {
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNone;  ///< free-list link while free
    Callback cb;
  };

  // Slots live in stable fixed-size chunks: growth appends a chunk and
  // never moves existing slots (an InlineCallback move is an indirect
  // call, so vector reallocation of live slots would dominate bulk
  // scheduling).
  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  [[nodiscard]] Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  /// Thread-local storage recycled across EventLoop lifetimes on this
  /// thread: a stack of slab chunks plus a spare heap buffer. Without
  /// it, every short-lived loop (one per trial World) frees ~50 KB
  /// chunks back to malloc, glibc trims the arena, and the next loop
  /// pays a page fault per 4 KB it re-touches — which dominated
  /// cold-loop scheduling by ~4x. Parked chunks hold no live callbacks
  /// (all destroyed by then) but their headers are NOT scrubbed: bump
  /// allocation stamps the generation on first use, and cancel()
  /// rejects any slot at or above bump_, so stale headers are
  /// unreachable.
  ///
  /// `alive` exists because loops themselves live in thread_local
  /// sessions (TrialSession::local(), the analytic replay engine),
  /// whose destructors can run *after* this cache's: the destructor
  /// flips the flag, and a late ~EventLoop that sees it down frees its
  /// buffers normally instead of parking them into destructed vectors
  /// (which double-freed the parked storage at thread exit).
  struct ThreadCache {
    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<Entry> spare;
    bool alive = true;
    ~ThreadCache() { alive = false; }
  };
  static ThreadCache& thread_cache();
  /// Ensure room for one more heap entry (adopt the spare buffer or
  /// reserve geometrically from a 1024-entry floor).
  void grow_heap();
  /// A freshly acquired slot: the resolved pointer (so callers don't
  /// re-walk the chunk table) plus its index and current generation.
  struct Acquired {
    Slot* s;
    std::uint32_t idx;
    std::uint32_t generation;
  };

  /// Append a chunk to the slab (recycled from the thread-local pool
  /// when possible). Cold path of acquire_slot().
  void append_chunk();

  /// Take a slot off the free list, or bump-allocate. Inline: schedule
  /// is two calls' worth of hot path (this + finish_schedule) per event,
  /// and keeping both in the caller's frame is worth ~10% on the
  /// schedule-heavy kernel benchmarks.
  Acquired acquire_slot() {
    // Recycled slots first (LIFO keeps the hot cache lines hot) ...
    if (free_head_ != kNone) {
      const std::uint32_t idx = free_head_;
      Slot& s = slot(idx);
      free_head_ = s.next_free;
      return {&s, idx, s.generation};
    }
    // ... then bump-allocate never-used capacity in address order.
    if (bump_ == slab_size_) append_chunk();
    const std::uint32_t idx = bump_++;
    Slot* s = bump_chunk_ + (idx & (kChunkSize - 1));
    s->generation = 1;
    return {s, idx, 1};
  }

  /// Shared tail of every schedule path: push the heap entry for the
  /// acquired slot (whose callback is already in place), update
  /// telemetry, and mint the handle. `when` is clamped to now() here.
  EventId finish_schedule(SimTime when, const Acquired& a) {
    if (when < now_) when = now_;
    heap_.push_back(Entry{when, next_seq_++, a.idx, a.generation});
    sift_up(heap_.size() - 1);
    ++scheduled_;
    if (++live_ > max_pending_) max_pending_ = live_;
    return EventId{a.idx, a.generation};
  }

  void sift_up(std::size_t pos) {
    const Entry moving = heap_[pos];
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / 4;
      if (!moving.before(heap_[parent])) break;
      heap_[pos] = heap_[parent];
      pos = parent;
    }
    heap_[pos] = moving;
  }
  void sift_down(std::size_t pos);
  /// Floyd's pop-path sift: the entry at `pos` came from the heap's
  /// back, so descend the min-child chain all the way down (3 compares
  /// per level instead of 4) and bubble back up the rare overshoot.
  void sift_down_refill(std::size_t pos);
  /// Pop heap entries until the top is live; false when drained.
  bool skim_stale();
  /// Drop every stale entry and re-heapify in place. O(heap) — called
  /// from cancel() once stales exceed a third of the heap, so a
  /// cancel-heavy phase pays amortized O(1) per cancel instead of a full
  /// sift_down per stale entry when it eventually surfaces at the top.
  void compact();
  /// Bump the generation (staling every outstanding handle and heap
  /// entry) and push the slot back on the free list.
  void release_slot(std::uint32_t idx);

  SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t cap_hits_ = 0;
  std::size_t live_ = 0;  ///< scheduled, not yet run or cancelled
  std::size_t max_pending_ = 0;
  std::size_t stale_ = 0;    ///< cancelled entries still parked in heap_
  std::vector<Entry> heap_;  ///< min-heap by (when, seq); may hold stale entries
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* bump_chunk_ = nullptr;   ///< chunks_.back().get(), bump fast path
  std::uint32_t slab_size_ = 0;  ///< total slots across chunks
  std::uint32_t bump_ = 0;       ///< next never-used slot
  std::uint32_t free_head_ = kNone;
};

}  // namespace animus::sim
