// Deterministic discrete-event loop.
//
// Events are (time, sequence, callback) triples executed in nondecreasing
// time order; ties are broken by scheduling order, so a simulation run is
// a pure function of its inputs. Cancellation is O(log n) amortized via a
// tombstone map.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace animus::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Opaque handle for cancelling a scheduled event. Default-constructed
  /// handles are invalid and cancel() on them is a no-op returning false.
  struct EventId {
    std::uint64_t seq = 0;
    [[nodiscard]] bool valid() const { return seq != 0; }
  };

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time; advances only while events run.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `when`. Scheduling in the past
  /// clamps to now() (the event still runs, after already-due events).
  EventId schedule_at(SimTime when, Callback cb);

  /// Schedule `cb` at now() + delay (delay < 0 clamps to 0).
  EventId schedule_after(SimTime delay, Callback cb);

  /// Cancel a pending event. Returns true iff the event existed and had
  /// not yet run.
  bool cancel(EventId id);

  /// Run the single next event. Returns false when the queue is empty.
  bool step();

  /// Run all events with time <= `until` (inclusive); returns the number
  /// of events executed. now() is advanced to `until` afterwards so that
  /// subsequent relative scheduling measures from the horizon.
  std::size_t run_until(SimTime until);

  /// Drain the queue completely (events may schedule more events).
  /// `max_events` guards against runaway self-rescheduling loops.
  std::size_t run_all(std::size_t max_events = 100'000'000);

  /// Number of events currently pending (cancelled ones excluded).
  [[nodiscard]] std::size_t pending() const { return callbacks_.size(); }

  // ----- lifetime telemetry (fed into obs::MetricsRegistry at World
  // teardown; plain counters, so the hot path stays allocation- and
  // lock-free) -----

  /// Events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Events scheduled since construction.
  [[nodiscard]] std::uint64_t scheduled() const { return next_seq_ - 1; }
  /// Successful cancellations since construction.
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_; }
  /// High-water mark of the pending-event queue.
  [[nodiscard]] std::size_t max_pending() const { return max_pending_; }

 private:
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;
    bool operator>(const HeapEntry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  /// Pop the next live entry off the heap, skipping tombstones.
  bool pop_next(HeapEntry& out, Callback& cb);

  SimTime now_{0};
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t max_pending_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace animus::sim
