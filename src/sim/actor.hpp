// Single-threaded execution contexts ("actors") on top of the event loop.
//
// An Actor models one OS thread inside one simulated process: the malware
// main/worker threads, the System Server binder thread, the System UI
// render thread, etc. Tasks posted to an actor are serialized: a task
// arriving while the actor is busy waits until the actor frees up. Each
// task carries an execution `cost`, which is how we reproduce the paper's
// observation that the blocking addView() delays a subsequent
// removeView() from even leaving the app process (Section III-C).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "sim/event_loop.hpp"
#include "sim/time.hpp"

namespace animus::sim {

class Actor {
 public:
  using Task = std::function<void()>;

  Actor(EventLoop& loop, std::string name) : loop_(&loop), name_(std::move(name)) {}

  /// Deliver `task` to this actor after `arrival_delay` of transit time.
  /// The task starts at max(arrival, busy_until) and holds the actor for
  /// `cost`. Returns the handle of the start event (cancellable until the
  /// task begins; the reserved busy time is not reclaimed on cancel,
  /// mirroring a thread that already committed to the work).
  EventLoop::EventId post(SimTime arrival_delay, SimTime cost, Task task);

  /// Post with zero transit delay.
  EventLoop::EventId post(SimTime cost, Task task) {
    return post(SimTime{0}, cost, std::move(task));
  }

  /// Earliest time a newly arriving task could start executing.
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] EventLoop& loop() { return *loop_; }

 private:
  EventLoop* loop_;
  std::string name_;
  SimTime busy_until_{0};
};

}  // namespace animus::sim
