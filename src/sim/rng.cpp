#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace animus::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the child stream id into a fresh seed derived from our state.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 17) ^ (stream * 0xd1342543de82ef95ULL + 1);
  return Rng{splitmix64(x)};
}

Rng Rng::fork(std::string_view label) const { return fork(fnv1a(label)); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto lowbits = static_cast<std::uint64_t>(m);
  if (lowbits < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (lowbits < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * span;
      lowbits = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 1e-300);
  const double v = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  assert(lo <= hi);
  for (int i = 0; i < 16; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  const double x = normal(mean, stddev);
  return x < lo ? lo : (x > hi ? hi : x);
}

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

SimTime Rng::normal_ms(double mean_ms, double sd_ms, double floor_ms) {
  const double v = sd_ms <= 0.0 ? mean_ms : normal(mean_ms, sd_ms);
  return ms_f(v < floor_ms ? floor_ms : v);
}

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace animus::sim
