// Small-buffer-optimized move-only callable, the event engine's callback
// type.
//
// `std::function` heap-allocates any capture bigger than its (tiny,
// implementation-defined) inline buffer and drags in RTTI-based type
// erasure. Event-loop callbacks are scheduled millions of times per
// sweep and their captures are almost always small — `this` plus a
// couple of ints — so InlineCallback<64> stores them inline and the
// steady-state schedule/cancel path never allocates. Oversized captures
// still work: they fall back to a single heap allocation, and the
// wrapper's layout (one ops pointer + the buffer) stays identical.
//
// Differences from std::function, chosen deliberately for the hot path:
//   - move-only (copying a scheduled event is meaningless);
//   - invoking an empty callback is undefined instead of throwing;
//   - no target()/target_type() introspection.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace animus::sim {

template <std::size_t Capacity>
class InlineCallback {
 public:
  InlineCallback() = default;

  /// Wrap any void() callable. Captures up to `Capacity` bytes (and no
  /// stricter than max_align_t alignment) are stored inline; larger ones
  /// take one heap allocation.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    construct(std::forward<F>(fn));
  }

  /// Destroy the current callable (if any) and construct `fn` in place —
  /// lets owners of a stored InlineCallback (the event loop's slot slab)
  /// skip the intermediate wrapper object and its type-erased moves.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& fn) {
    reset();
    construct(std::forward<F>(fn));
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(std::move(other)); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroy the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buf_); }

  /// Invoke, then destroy, in one type-erased dispatch — the event
  /// loop's execute path, where the callback is dead after it runs.
  /// Leaves *this empty. The callable may re-enter the owner of this
  /// wrapper (e.g. schedule into the slot slab) because the wrapper is
  /// marked empty before the call.
  void consume() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True iff a callable of type F would be stored without allocating.
  template <typename F>
  [[nodiscard]] static constexpr bool fits_inline() {
    using Fn = std::decay_t<F>;
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*invoke)(unsigned char*);
    /// Invoke then destroy (the execute path fuses both dispatches).
    void (*invoke_destroy)(unsigned char*);
    /// Move-construct dst's payload from src's, then destroy src's.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](unsigned char* b) { (*std::launder(reinterpret_cast<Fn*>(b)))(); },
      [](unsigned char* b) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(b));
        (*f)();
        f->~Fn();
      },
      [](unsigned char* dst, unsigned char* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (static_cast<void*>(dst)) Fn(std::move(*s));
        s->~Fn();
      },
      [](unsigned char* b) { std::launder(reinterpret_cast<Fn*>(b))->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](unsigned char* b) { (**std::launder(reinterpret_cast<Fn**>(b)))(); },
      [](unsigned char* b) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(b));
        (*f)();
        delete f;
      },
      [](unsigned char* dst, unsigned char* src) {
        // The stored pointer is trivially destructible; copying it over
        // transfers ownership.
        ::new (static_cast<void*>(dst)) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](unsigned char* b) { delete *std::launder(reinterpret_cast<Fn**>(b)); },
  };

  template <typename F>
  void construct(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  void move_from(InlineCallback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  // Buffer first: with Capacity a multiple of alignof(max_align_t) the
  // wrapper packs to Capacity + sizeof(void*) with no padding holes.
  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace animus::sim
