// Export a TraceRecorder to the Chrome trace-event JSON format, so any
// simulated attack can be inspected visually in chrome://tracing or
// https://ui.perfetto.dev (load the file as a legacy JSON trace).
//
// Instant records become "ph":"i" events, duration spans become "ph":"X"
// complete events, and flow endpoints become "ph":"s"/"ph":"f" arrows —
// one named track per TraceCategory, timestamped in virtual-time
// microseconds.
#pragma once

#include <string>

#include "sim/trace.hpp"

namespace animus::sim {

/// Serialize all records as a JSON array of trace events.
std::string to_chrome_trace_json(const TraceRecorder& trace,
                                 std::string_view process_name = "animus");

/// Convenience: write the JSON to a file. Returns false on I/O failure.
bool write_chrome_trace(const TraceRecorder& trace, const std::string& path,
                        std::string_view process_name = "animus");

}  // namespace animus::sim
