// RAII duration span over virtual time.
//
// Opens at construction, closes at destruction, and records a completed
// span ("ph":"X") covering however far the event loop advanced in
// between. Useful around the lexical scopes where virtual time actually
// moves — World::run_until horizons, scenario steps — as opposed to
// event-loop callbacks, which execute at a single instant.
#pragma once

#include <string>
#include <utility>

#include "sim/event_loop.hpp"
#include "sim/trace.hpp"

namespace animus::sim {

class ScopedSpan {
 public:
  /// `profile_name`, when set, must be a static string literal: the span
  /// is also reported to the sweep profiler (see sim::profile_span).
  ScopedSpan(TraceRecorder& trace, const EventLoop& loop, TraceCategory category,
             std::string message, double value = 0.0, const char* profile_name = nullptr)
      : trace_(&trace),
        loop_(&loop),
        category_(category),
        message_(std::move(message)),
        value_(value),
        profile_name_(profile_name),
        start_(loop.now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (profile_name_ != nullptr) profile_span(profile_name_, category_, start_, loop_->now());
    trace_->span(start_, loop_->now(), category_, std::move(message_), value_);
  }

  [[nodiscard]] SimTime start() const { return start_; }

 private:
  TraceRecorder* trace_;
  const EventLoop* loop_;
  TraceCategory category_;
  std::string message_;
  double value_;
  const char* profile_name_;
  SimTime start_;
};

}  // namespace animus::sim
