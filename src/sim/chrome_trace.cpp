#include "sim/chrome_trace.hpp"

#include <fstream>

namespace animus::sim {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Stable small thread-id per category so each gets its own track.
int track_of(TraceCategory c) { return static_cast<int>(c) + 1; }

}  // namespace

std::string to_chrome_trace_json(const TraceRecorder& trace, std::string_view process_name) {
  std::string out;
  out.reserve(128 + trace.size() * 96);
  out += "[\n";
  // Process + per-track metadata.
  out += R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":")";
  append_escaped(out, process_name);
  out += "\"}}";
  for (int c = 0; c < kTraceCategoryCount; ++c) {
    const auto cat = static_cast<TraceCategory>(c);
    out += ",\n";
    out += R"({"name":"thread_name","ph":"M","pid":1,"tid":)";
    out += std::to_string(track_of(cat));
    out += R"(,"args":{"name":")";
    append_escaped(out, to_string(cat));
    out += "\"}}";
  }
  for (const auto& rec : trace.records()) {
    out += ",\n";
    out += R"({"name":")";
    append_escaped(out, rec.message);
    switch (rec.phase) {
      case TracePhase::kInstant:
        out += R"(","ph":"i","s":"t")";
        break;
      case TracePhase::kSpan:
        out += R"(","ph":"X","dur":)";
        out += std::to_string(rec.duration.count());
        break;
      case TracePhase::kFlowStart:
        out += R"(","ph":"s")";
        break;
      case TracePhase::kFlowEnd:
        // bp:e binds the arrow to the enclosing slice at this timestamp.
        out += R"(","ph":"f","bp":"e")";
        break;
    }
    if (rec.flow != 0) {
      out += R"(,"id":)";
      out += std::to_string(rec.flow);
    }
    out += R"(,"pid":1,"tid":)";
    out += std::to_string(track_of(rec.category));
    out += R"(,"ts":)";
    out += std::to_string(rec.time.count());
    out += R"(,"cat":")";
    // Flow endpoints pair on (cat, id); the cat is shared by both ends
    // of an arrow so it can cross category tracks, but scoped per
    // transaction kind ("flow:addView" vs "flow:removeView") so ids
    // drawn from per-kind counters can never pair across kinds.
    if (rec.phase == TracePhase::kFlowStart || rec.phase == TracePhase::kFlowEnd) {
      out += "flow";
      if (!rec.flow_kind.empty()) {
        out += ":";
        append_escaped(out, rec.flow_kind);
      }
    } else {
      append_escaped(out, to_string(rec.category));
    }
    out += "\"";
    if (rec.value != 0.0) {
      out += R"(,"args":{"value":)";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", rec.value);
      out += buf;
      out += "}";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool write_chrome_trace(const TraceRecorder& trace, const std::string& path,
                        std::string_view process_name) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace_json(trace, process_name);
  return static_cast<bool>(out);
}

}  // namespace animus::sim
