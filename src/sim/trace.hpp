// Structured event trace.
//
// Every subsystem can append timestamped records; tests assert on the
// trace, benches summarize it, and the examples print it as a narrated
// timeline. Recording is append-only and cheap, and can be disabled.
//
// Records come in three phases:
//   - instants  (record)      a point event, the original API;
//   - spans     (span)        a duration [start, end] — window lifetimes,
//                             Binder transits, animation segments;
//   - flows     (flow_start/flow_end)  links across actors — an app-side
//                             addView tied to its server-side landing.
// Spans are appended when their *end* is known, so the record vector is
// ordered by completion time, not start time; the Chrome-trace exporter
// emits the start timestamp and a duration ("ph":"X").
//
// Flow ids are scoped per transaction kind: `new_flow("addView")` and
// `new_flow("removeView")` draw from independent counters, and the
// exporter pairs endpoints on (kind, id), so arrows of different kinds
// can never collide even when their ids coincide.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace animus::sim {

enum class TraceCategory : std::uint8_t {
  kApp,           // malicious/benign app actions (addView, removeView, show)
  kSystemServer,  // WMS/NMS processing
  kSystemUi,      // notification alert lifecycle
  kAnimation,     // animation start/stop/progress milestones
  kInput,         // touch dispatch decisions
  kAttack,        // attack logic milestones
  kDefense,       // defense decisions
  kVictim,        // victim app / accessibility events
  kIpc,           // Binder transactions in flight
  kSim,           // simulation driver (World::run_until horizons)
};

inline constexpr int kTraceCategoryCount = 10;

std::string_view to_string(TraceCategory c);

enum class TracePhase : std::uint8_t {
  kInstant,    // point event ("ph":"i")
  kSpan,       // duration event ("ph":"X"), time = start, duration = extent
  kFlowStart,  // flow origin ("ph":"s")
  kFlowEnd,    // flow target ("ph":"f")
};

struct TraceRecord {
  SimTime time{0};
  TraceCategory category{TraceCategory::kApp};
  std::string message;
  double value = 0.0;  // optional numeric payload (pixels, alpha, D, ...)
  TracePhase phase = TracePhase::kInstant;
  SimTime duration{0};     // spans only
  std::uint64_t flow = 0;  // nonzero links records into a flow
  std::string flow_kind;   // flow id namespace ("" = legacy shared scope)
};

class TraceRecorder {
 public:
  void record(SimTime t, TraceCategory c, std::string message, double value = 0.0);

  /// Append a completed duration span [start, end]. end < start clamps to
  /// a zero-length span at `start`. A nonzero `flow` links the span into
  /// a flow (see flow_start/flow_end).
  void span(SimTime start, SimTime end, TraceCategory c, std::string message,
            double value = 0.0, std::uint64_t flow = 0);

  /// Flow endpoints: a cross-actor arrow from the start record to the end
  /// record carrying the same nonzero flow id (use new_flow()). Both
  /// endpoints must carry the same `kind` — endpoints pair on (kind, id).
  void flow_start(SimTime t, TraceCategory c, std::string message, std::uint64_t flow,
                  std::string_view kind = {});
  void flow_end(SimTime t, TraceCategory c, std::string message, std::uint64_t flow,
                std::string_view kind = {});

  /// Fresh flow id, unique within this recorder (deterministic counter).
  [[nodiscard]] std::uint64_t new_flow() { return next_flow_++; }

  /// Fresh flow id scoped to `kind` (per-kind deterministic counter).
  /// Ids of different kinds live in disjoint namespaces, so concurrent
  /// addView/removeView arrows cannot collide in one trace.
  [[nodiscard]] std::uint64_t new_flow(std::string_view kind);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] std::span<const TraceRecord> records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Restore the freshly-constructed state (records dropped, flow
  /// counters rewound, recording re-enabled); record storage capacity is
  /// retained for the next trial of a session.
  void reset() {
    enabled_ = true;
    next_flow_ = 1;
    flow_counters_.clear();
    records_.clear();
  }

  /// Append a fully-formed record (deserialization path; bypasses the
  /// enabled() gate because the record was already captured elsewhere).
  void append(TraceRecord record) { records_.push_back(std::move(record)); }

  /// All records whose message contains `needle` (simple substring).
  [[nodiscard]] std::vector<TraceRecord> matching(std::string_view needle) const;

  /// Count of records in a category.
  [[nodiscard]] std::size_t count(TraceCategory c) const;

  /// Count of duration spans in a category.
  [[nodiscard]] std::size_t span_count(TraceCategory c) const;

  /// Render as "  12.345ms [category] message (value)" lines.
  [[nodiscard]] std::string to_text(std::size_t max_lines = 200) const;

 private:
  bool enabled_ = true;
  std::uint64_t next_flow_ = 1;
  std::map<std::string, std::uint64_t, std::less<>> flow_counters_;
  std::vector<TraceRecord> records_;
};

/// Exact wire form of a recorder's records, for shipping a captured
/// trace across a process boundary (a forked shard worker sends the
/// claimed trial's spans back to the coordinating parent). The format
/// is line-oriented with length-prefixed strings, so any message or
/// flow-kind content round-trips byte-exactly:
///
///   animus-trace 1 <record count>
///   <time_us> <cat> <phase> <value %.17g> <dur_us> <flow> <k>:<kind><m>:<msg>
///
/// Two recorders holding equal records serialize identically, which is
/// what the threads-vs-process trace equivalence tests compare.
std::string serialize_records(const TraceRecorder& trace);

/// Inverse of serialize_records: appends every record to `*out` (which
/// should be empty for an exact reconstruction). False on malformed
/// input; `*out` may then hold a prefix.
bool deserialize_records(std::string_view wire, TraceRecorder* out);

// ---------------------------------------------------------------------------
// Sweep-wide span profiling hook.
//
// TraceRecorder captures *one* armed trial in full; the profiler wants a
// cheap statistical observation of *every* span in *every* trial, even when
// tracing is disabled. Call sites report completed spans through
// profile_span() with a statically-allocated name (a string literal — the
// profiler keys its per-thread tables on the pointer, so the name must
// outlive the sweep and must not be rebuilt per call). With no hook
// installed the cost is one relaxed atomic load.
//
// The hook lives here in `sim` — the lowest layer — because call sites span
// `ipc`, `server`, `core` and `defense`, none of which may depend on `obs`.
// `obs::SpanProfiler` installs the actual aggregation via
// set_profile_hooks().
//
// The hot path is two-tier. Dense workloads emit a span every couple of
// hundred nanoseconds of real work, so even an empty out-of-line hook call
// is a measurable tax; profile_span() therefore appends a 24-byte record to
// a per-thread ring *inline* and only falls out to the hook when the thread
// has no ring yet or the ring is full. The profiler drains the ring — hash,
// min/max, histogram, self-time containment — in one tight warm-cache loop
// per trial instead of once per span. Batching cannot reorder anything:
// records are drained on the owning thread in append (= completion) order,
// and every aggregate is commutative, so sweep output stays byte-identical.
//
// profile_flush() marks a trial boundary: simulated time rewinds between
// trials (World construction, reset_to_epoch, finish_epoch), which would
// otherwise confuse the profiler's self-time containment stack. It also
// drains the ring, so at most one in-flight trial is ever buffered.

namespace detail {
using ProfileSpanFn = void (*)(const char* name, TraceCategory c, SimTime start, SimTime end);
using ProfileFlushFn = void (*)();
extern std::atomic<ProfileSpanFn> g_profile_span;
extern std::atomic<ProfileFlushFn> g_profile_flush;

/// One buffered span completion. Durations are stored in whole simulated
/// microseconds (clamped to u32 — ~71 simulated minutes, far past any
/// trial) so a record packs into 24 bytes / three stores.
struct SpanRec {
  const char* name;       // static literal, pointer identity is the key
  std::int64_t start_us;  // needed in full for the containment stack
  std::uint32_t dur_us;
  std::uint32_t category;
};

inline constexpr std::uint32_t kSpanRingCapacity = 1024;

struct SpanRing {
  std::uint32_t count = 0;
  SpanRec recs[kSpanRingCapacity];
};

/// Owned by the profiler's per-thread state (obs layer); null until the
/// installed hook attaches this thread, and while no profiler is installed.
extern thread_local SpanRing* t_span_ring;
}  // namespace detail

/// Report a completed span [start, end] under a *static* name. Near-free
/// when no profiler is installed; one TLS load and a 24-byte ring append
/// when one is.
inline void profile_span(const char* name, TraceCategory c, SimTime start, SimTime end) {
  auto* fn = detail::g_profile_span.load(std::memory_order_relaxed);
  if (fn == nullptr) return;
  detail::SpanRing* r = detail::t_span_ring;
  if (r == nullptr || r->count == detail::kSpanRingCapacity) [[unlikely]] {
    fn(name, c, start, end);  // attach this thread, or drain the full ring
    return;
  }
  detail::SpanRec& rec = r->recs[r->count++];
  rec.name = name;
  rec.start_us = start.count();
  const std::int64_t d = (end - start).count();
  rec.dur_us = d <= 0 ? 0u
                      : (d >= 0xffffffffll ? 0xffffffffu : static_cast<std::uint32_t>(d));
  rec.category = static_cast<std::uint32_t>(c);
}

/// Mark a trial/epoch boundary on the calling thread (simulated time is
/// about to rewind); resets the profiler's containment stack.
inline void profile_flush() {
  if (auto* fn = detail::g_profile_flush.load(std::memory_order_relaxed)) fn();
}

/// Install (or, with nullptrs, remove) the process-wide profiling hooks.
void set_profile_hooks(detail::ProfileSpanFn span_fn, detail::ProfileFlushFn flush_fn);

}  // namespace animus::sim
