// Structured event trace.
//
// Every subsystem can append timestamped records; tests assert on the
// trace, benches summarize it, and the examples print it as a narrated
// timeline. Recording is append-only and cheap, and can be disabled.
//
// Records come in three phases:
//   - instants  (record)      a point event, the original API;
//   - spans     (span)        a duration [start, end] — window lifetimes,
//                             Binder transits, animation segments;
//   - flows     (flow_start/flow_end)  links across actors — an app-side
//                             addView tied to its server-side landing.
// Spans are appended when their *end* is known, so the record vector is
// ordered by completion time, not start time; the Chrome-trace exporter
// emits the start timestamp and a duration ("ph":"X").
//
// Flow ids are scoped per transaction kind: `new_flow("addView")` and
// `new_flow("removeView")` draw from independent counters, and the
// exporter pairs endpoints on (kind, id), so arrows of different kinds
// can never collide even when their ids coincide.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace animus::sim {

enum class TraceCategory : std::uint8_t {
  kApp,           // malicious/benign app actions (addView, removeView, show)
  kSystemServer,  // WMS/NMS processing
  kSystemUi,      // notification alert lifecycle
  kAnimation,     // animation start/stop/progress milestones
  kInput,         // touch dispatch decisions
  kAttack,        // attack logic milestones
  kDefense,       // defense decisions
  kVictim,        // victim app / accessibility events
  kIpc,           // Binder transactions in flight
  kSim,           // simulation driver (World::run_until horizons)
};

inline constexpr int kTraceCategoryCount = 10;

std::string_view to_string(TraceCategory c);

enum class TracePhase : std::uint8_t {
  kInstant,    // point event ("ph":"i")
  kSpan,       // duration event ("ph":"X"), time = start, duration = extent
  kFlowStart,  // flow origin ("ph":"s")
  kFlowEnd,    // flow target ("ph":"f")
};

struct TraceRecord {
  SimTime time{0};
  TraceCategory category{TraceCategory::kApp};
  std::string message;
  double value = 0.0;  // optional numeric payload (pixels, alpha, D, ...)
  TracePhase phase = TracePhase::kInstant;
  SimTime duration{0};     // spans only
  std::uint64_t flow = 0;  // nonzero links records into a flow
  std::string flow_kind;   // flow id namespace ("" = legacy shared scope)
};

class TraceRecorder {
 public:
  void record(SimTime t, TraceCategory c, std::string message, double value = 0.0);

  /// Append a completed duration span [start, end]. end < start clamps to
  /// a zero-length span at `start`. A nonzero `flow` links the span into
  /// a flow (see flow_start/flow_end).
  void span(SimTime start, SimTime end, TraceCategory c, std::string message,
            double value = 0.0, std::uint64_t flow = 0);

  /// Flow endpoints: a cross-actor arrow from the start record to the end
  /// record carrying the same nonzero flow id (use new_flow()). Both
  /// endpoints must carry the same `kind` — endpoints pair on (kind, id).
  void flow_start(SimTime t, TraceCategory c, std::string message, std::uint64_t flow,
                  std::string_view kind = {});
  void flow_end(SimTime t, TraceCategory c, std::string message, std::uint64_t flow,
                std::string_view kind = {});

  /// Fresh flow id, unique within this recorder (deterministic counter).
  [[nodiscard]] std::uint64_t new_flow() { return next_flow_++; }

  /// Fresh flow id scoped to `kind` (per-kind deterministic counter).
  /// Ids of different kinds live in disjoint namespaces, so concurrent
  /// addView/removeView arrows cannot collide in one trace.
  [[nodiscard]] std::uint64_t new_flow(std::string_view kind);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] std::span<const TraceRecord> records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Restore the freshly-constructed state (records dropped, flow
  /// counters rewound, recording re-enabled); record storage capacity is
  /// retained for the next trial of a session.
  void reset() {
    enabled_ = true;
    next_flow_ = 1;
    flow_counters_.clear();
    records_.clear();
  }

  /// Append a fully-formed record (deserialization path; bypasses the
  /// enabled() gate because the record was already captured elsewhere).
  void append(TraceRecord record) { records_.push_back(std::move(record)); }

  /// All records whose message contains `needle` (simple substring).
  [[nodiscard]] std::vector<TraceRecord> matching(std::string_view needle) const;

  /// Count of records in a category.
  [[nodiscard]] std::size_t count(TraceCategory c) const;

  /// Count of duration spans in a category.
  [[nodiscard]] std::size_t span_count(TraceCategory c) const;

  /// Render as "  12.345ms [category] message (value)" lines.
  [[nodiscard]] std::string to_text(std::size_t max_lines = 200) const;

 private:
  bool enabled_ = true;
  std::uint64_t next_flow_ = 1;
  std::map<std::string, std::uint64_t, std::less<>> flow_counters_;
  std::vector<TraceRecord> records_;
};

/// Exact wire form of a recorder's records, for shipping a captured
/// trace across a process boundary (a forked shard worker sends the
/// claimed trial's spans back to the coordinating parent). The format
/// is line-oriented with length-prefixed strings, so any message or
/// flow-kind content round-trips byte-exactly:
///
///   animus-trace 1 <record count>
///   <time_us> <cat> <phase> <value %.17g> <dur_us> <flow> <k>:<kind><m>:<msg>
///
/// Two recorders holding equal records serialize identically, which is
/// what the threads-vs-process trace equivalence tests compare.
std::string serialize_records(const TraceRecorder& trace);

/// Inverse of serialize_records: appends every record to `*out` (which
/// should be empty for an exact reconstruction). False on malformed
/// input; `*out` may then hold a prefix.
bool deserialize_records(std::string_view wire, TraceRecorder* out);

}  // namespace animus::sim
