// Structured event trace.
//
// Every subsystem can append timestamped records; tests assert on the
// trace, benches summarize it, and the examples print it as a narrated
// timeline. Recording is append-only and cheap, and can be disabled.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace animus::sim {

enum class TraceCategory : std::uint8_t {
  kApp,           // malicious/benign app actions (addView, removeView, show)
  kSystemServer,  // WMS/NMS processing
  kSystemUi,      // notification alert lifecycle
  kAnimation,     // animation start/stop/progress milestones
  kInput,         // touch dispatch decisions
  kAttack,        // attack logic milestones
  kDefense,       // defense decisions
  kVictim,        // victim app / accessibility events
};

std::string_view to_string(TraceCategory c);

struct TraceRecord {
  SimTime time{0};
  TraceCategory category{TraceCategory::kApp};
  std::string message;
  double value = 0.0;  // optional numeric payload (pixels, alpha, D, ...)
};

class TraceRecorder {
 public:
  void record(SimTime t, TraceCategory c, std::string message, double value = 0.0);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] std::span<const TraceRecord> records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// All records whose message contains `needle` (simple substring).
  [[nodiscard]] std::vector<TraceRecord> matching(std::string_view needle) const;

  /// Count of records in a category.
  [[nodiscard]] std::size_t count(TraceCategory c) const;

  /// Render as "  12.345ms [category] message (value)" lines.
  [[nodiscard]] std::string to_text(std::size_t max_lines = 200) const;

 private:
  bool enabled_ = true;
  std::vector<TraceRecord> records_;
};

}  // namespace animus::sim
