#include "sim/actor.hpp"

#include <algorithm>

namespace animus::sim {

EventLoop::EventId Actor::post(SimTime arrival_delay, SimTime cost, Task task) {
  if (arrival_delay < SimTime{0}) arrival_delay = SimTime{0};
  if (cost < SimTime{0}) cost = SimTime{0};
  const SimTime arrival = loop_->now() + arrival_delay;
  const SimTime start = std::max(arrival, busy_until_);
  busy_until_ = start + cost;
  return loop_->schedule_at(start, std::move(task));
}

}  // namespace animus::sim
