// Deterministic, platform-independent pseudo-randomness.
//
// We deliberately avoid <random>'s distribution classes: their output is
// implementation-defined, which would make experiment tables differ
// between standard libraries. The generator is xoshiro256** seeded by
// splitmix64; all distributions are implemented here from uniform bits.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace animus::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derive an independent substream; `stream` values must be distinct
  /// for independence (participant id, device id, trial index...).
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// Derive a substream from a label (stable FNV-1a hash of the name).
  [[nodiscard]] Rng fork(std::string_view label) const;

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Normal via Box-Muller (cached spare for determinism and speed).
  double normal(double mean, double stddev);

  /// Normal truncated to [lo, hi] by resampling (16 tries, then clamp).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Log-normal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Duration helpers: a normal in milliseconds truncated below at
  /// `floor_ms`, returned as SimTime. Used for IPC latency sampling.
  SimTime normal_ms(double mean_ms, double sd_ms, double floor_ms = 0.0);

  /// Pick an index in [0, n) uniformly. Requires n > 0.
  std::size_t index(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace animus::sim
