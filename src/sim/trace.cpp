#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace animus::sim {

std::string_view to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kApp: return "app";
    case TraceCategory::kSystemServer: return "system_server";
    case TraceCategory::kSystemUi: return "system_ui";
    case TraceCategory::kAnimation: return "animation";
    case TraceCategory::kInput: return "input";
    case TraceCategory::kAttack: return "attack";
    case TraceCategory::kDefense: return "defense";
    case TraceCategory::kVictim: return "victim";
    case TraceCategory::kIpc: return "ipc";
    case TraceCategory::kSim: return "sim";
  }
  return "?";
}

void TraceRecorder::record(SimTime t, TraceCategory c, std::string message, double value) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, c, std::move(message), value, TracePhase::kInstant,
                                 SimTime{0}, 0, {}});
}

void TraceRecorder::span(SimTime start, SimTime end, TraceCategory c, std::string message,
                         double value, std::uint64_t flow) {
  if (!enabled_) return;
  const SimTime dur = std::max(end - start, SimTime{0});
  records_.push_back(
      TraceRecord{start, c, std::move(message), value, TracePhase::kSpan, dur, flow, {}});
}

void TraceRecorder::flow_start(SimTime t, TraceCategory c, std::string message,
                               std::uint64_t flow, std::string_view kind) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, c, std::move(message), 0.0, TracePhase::kFlowStart,
                                 SimTime{0}, flow, std::string(kind)});
}

void TraceRecorder::flow_end(SimTime t, TraceCategory c, std::string message,
                             std::uint64_t flow, std::string_view kind) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, c, std::move(message), 0.0, TracePhase::kFlowEnd,
                                 SimTime{0}, flow, std::string(kind)});
}

std::uint64_t TraceRecorder::new_flow(std::string_view kind) {
  if (kind.empty()) return new_flow();
  const auto it = flow_counters_.find(kind);
  if (it != flow_counters_.end()) return ++it->second;
  flow_counters_.emplace(std::string(kind), 1);
  return 1;
}

std::vector<TraceRecord> TraceRecorder::matching(std::string_view needle) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) out.push_back(r);
  }
  return out;
}

std::size_t TraceRecorder::count(TraceCategory c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == c) ++n;
  }
  return n;
}

std::size_t TraceRecorder::span_count(TraceCategory c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == c && r.phase == TracePhase::kSpan) ++n;
  }
  return n;
}

std::string TraceRecorder::to_text(std::size_t max_lines) const {
  std::string out;
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (n++ >= max_lines) {
      out += "  ... (truncated)\n";
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%10.3fms [%-13s] %s", to_ms(r.time),
                  std::string(to_string(r.category)).c_str(), r.message.c_str());
    out += buf;
    if (r.phase == TracePhase::kSpan) {
      std::snprintf(buf, sizeof(buf), " [%.3fms]", to_ms(r.duration));
      out += buf;
    }
    if (r.value != 0.0) {
      std::snprintf(buf, sizeof(buf), " (%.3f)", r.value);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace animus::sim
