#include "sim/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace animus::sim {

std::string_view to_string(TraceCategory c) {
  switch (c) {
    case TraceCategory::kApp: return "app";
    case TraceCategory::kSystemServer: return "system_server";
    case TraceCategory::kSystemUi: return "system_ui";
    case TraceCategory::kAnimation: return "animation";
    case TraceCategory::kInput: return "input";
    case TraceCategory::kAttack: return "attack";
    case TraceCategory::kDefense: return "defense";
    case TraceCategory::kVictim: return "victim";
    case TraceCategory::kIpc: return "ipc";
    case TraceCategory::kSim: return "sim";
  }
  return "?";
}

void TraceRecorder::record(SimTime t, TraceCategory c, std::string message, double value) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, c, std::move(message), value, TracePhase::kInstant,
                                 SimTime{0}, 0, {}});
}

void TraceRecorder::span(SimTime start, SimTime end, TraceCategory c, std::string message,
                         double value, std::uint64_t flow) {
  if (!enabled_) return;
  const SimTime dur = std::max(end - start, SimTime{0});
  records_.push_back(
      TraceRecord{start, c, std::move(message), value, TracePhase::kSpan, dur, flow, {}});
}

void TraceRecorder::flow_start(SimTime t, TraceCategory c, std::string message,
                               std::uint64_t flow, std::string_view kind) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, c, std::move(message), 0.0, TracePhase::kFlowStart,
                                 SimTime{0}, flow, std::string(kind)});
}

void TraceRecorder::flow_end(SimTime t, TraceCategory c, std::string message,
                             std::uint64_t flow, std::string_view kind) {
  if (!enabled_) return;
  records_.push_back(TraceRecord{t, c, std::move(message), 0.0, TracePhase::kFlowEnd,
                                 SimTime{0}, flow, std::string(kind)});
}

std::uint64_t TraceRecorder::new_flow(std::string_view kind) {
  if (kind.empty()) return new_flow();
  const auto it = flow_counters_.find(kind);
  if (it != flow_counters_.end()) return ++it->second;
  flow_counters_.emplace(std::string(kind), 1);
  return 1;
}

std::vector<TraceRecord> TraceRecorder::matching(std::string_view needle) const {
  std::vector<TraceRecord> out;
  for (const auto& r : records_) {
    if (r.message.find(needle) != std::string::npos) out.push_back(r);
  }
  return out;
}

std::size_t TraceRecorder::count(TraceCategory c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == c) ++n;
  }
  return n;
}

std::size_t TraceRecorder::span_count(TraceCategory c) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.category == c && r.phase == TracePhase::kSpan) ++n;
  }
  return n;
}

namespace {

void append_prefixed(std::string& out, std::string_view s) {
  out += std::to_string(s.size());
  out += ':';
  out += s;
}

/// Parse "<len>:<bytes>" at `*pos`; false on malformed input.
bool read_prefixed(std::string_view wire, std::size_t* pos, std::string* out) {
  const std::size_t colon = wire.find(':', *pos);
  if (colon == std::string_view::npos) return false;
  char* end = nullptr;
  const unsigned long long len = std::strtoull(wire.data() + *pos, &end, 10);
  if (end != wire.data() + colon) return false;
  if (colon + 1 + len > wire.size()) return false;
  *out = std::string(wire.substr(colon + 1, len));
  *pos = colon + 1 + len;
  return true;
}

}  // namespace

std::string serialize_records(const TraceRecorder& trace) {
  std::string out = "animus-trace 1 " + std::to_string(trace.size()) + "\n";
  for (const TraceRecord& r : trace.records()) {
    char head[128];
    std::snprintf(head, sizeof(head), "%lld %u %u %.17g %lld %" PRIu64 " ",
                  static_cast<long long>(r.time.count()),
                  static_cast<unsigned>(r.category), static_cast<unsigned>(r.phase), r.value,
                  static_cast<long long>(r.duration.count()), r.flow);
    out += head;
    append_prefixed(out, r.flow_kind);
    append_prefixed(out, r.message);
    out += '\n';
  }
  return out;
}

bool deserialize_records(std::string_view wire, TraceRecorder* out) {
  std::size_t pos = 0;
  unsigned long long count = 0;
  {
    const std::size_t nl = wire.find('\n');
    if (nl == std::string_view::npos) return false;
    const std::string head(wire.substr(0, nl));
    if (std::sscanf(head.c_str(), "animus-trace 1 %llu", &count) != 1) return false;
    pos = nl + 1;
  }
  for (unsigned long long i = 0; i < count; ++i) {
    long long time_us = 0;
    unsigned cat = 0;
    unsigned phase = 0;
    double value = 0.0;
    long long dur_us = 0;
    std::uint64_t flow = 0;
    int consumed = 0;
    // The numeric head is bounded; the strings are length-prefixed and
    // may themselves contain newlines, so records are parsed by
    // consumption, never by splitting the wire on '\n'.
    const std::string head(wire.substr(pos, std::min<std::size_t>(wire.size() - pos, 160)));
    if (std::sscanf(head.c_str(), "%lld %u %u %lf %lld %" SCNu64 " %n", &time_us, &cat, &phase,
                    &value, &dur_us, &flow, &consumed) != 6) {
      return false;
    }
    if (cat >= static_cast<unsigned>(kTraceCategoryCount) || phase > 3) return false;
    pos += static_cast<std::size_t>(consumed);
    std::string kind;
    std::string message;
    if (!read_prefixed(wire, &pos, &kind) || !read_prefixed(wire, &pos, &message)) {
      return false;
    }
    if (pos >= wire.size() || wire[pos] != '\n') return false;  // record terminator
    ++pos;
    out->append(TraceRecord{SimTime{time_us}, static_cast<TraceCategory>(cat),
                            std::move(message), value, static_cast<TracePhase>(phase),
                            SimTime{dur_us}, flow, std::move(kind)});
  }
  return true;
}

namespace detail {
std::atomic<ProfileSpanFn> g_profile_span{nullptr};
std::atomic<ProfileFlushFn> g_profile_flush{nullptr};
thread_local SpanRing* t_span_ring = nullptr;
}  // namespace detail

void set_profile_hooks(detail::ProfileSpanFn span_fn, detail::ProfileFlushFn flush_fn) {
  detail::g_profile_span.store(span_fn, std::memory_order_relaxed);
  detail::g_profile_flush.store(flush_fn, std::memory_order_relaxed);
}

std::string TraceRecorder::to_text(std::size_t max_lines) const {
  std::string out;
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (n++ >= max_lines) {
      out += "  ... (truncated)\n";
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%10.3fms [%-13s] %s", to_ms(r.time),
                  std::string(to_string(r.category)).c_str(), r.message.c_str());
    out += buf;
    if (r.phase == TracePhase::kSpan) {
      std::snprintf(buf, sizeof(buf), " [%.3fms]", to_ms(r.duration));
      out += buf;
    }
    if (r.value != 0.0) {
      std::snprintf(buf, sizeof(buf), " (%.3f)", r.value);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace animus::sim
