#include "sim/event_loop.hpp"

#include <algorithm>
#include <utility>

namespace animus::sim {

EventLoop::EventId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t seq = next_seq_++;
  heap_.push(HeapEntry{when, seq});
  callbacks_.emplace(seq, std::move(cb));
  max_pending_ = std::max(max_pending_, callbacks_.size());
  return EventId{seq};
}

EventLoop::EventId EventLoop::schedule_after(SimTime delay, Callback cb) {
  if (delay < SimTime{0}) delay = SimTime{0};
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(EventId id) {
  if (!id.valid()) return false;
  const bool erased = callbacks_.erase(id.seq) > 0;
  cancelled_ += erased;
  return erased;
}

bool EventLoop::pop_next(HeapEntry& out, Callback& cb) {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) continue;  // cancelled: tombstone
    out = top;
    cb = std::move(it->second);
    callbacks_.erase(it);
    return true;
  }
  return false;
}

bool EventLoop::step() {
  HeapEntry entry{};
  Callback cb;
  if (!pop_next(entry, cb)) return false;
  now_ = entry.when;
  ++executed_;
  cb();
  return true;
}

std::size_t EventLoop::run_until(SimTime until) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    // Peek through tombstones without popping live entries early.
    HeapEntry top = heap_.top();
    if (callbacks_.find(top.seq) == callbacks_.end()) {
      heap_.pop();
      continue;
    }
    if (top.when > until) break;
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventLoop::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

}  // namespace animus::sim
