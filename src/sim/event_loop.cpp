#include "sim/event_loop.hpp"

#include <utility>

namespace animus::sim {

EventLoop::ThreadCache& EventLoop::thread_cache() {
  // Per-thread so loops on concurrent runner workers never contend; a
  // loop destroyed on a different thread than it was built on simply
  // donates its chunks to the destroying thread's pool.
  thread_local ThreadCache cache;
  return cache;
}

void EventLoop::grow_heap() {
  if (heap_.capacity() == 0) {
    auto& cache = thread_cache();
    if (cache.alive && cache.spare.capacity() != 0) {
      cache.spare.clear();
      heap_.swap(cache.spare);
      return;
    }
  }
  // A 1024-entry floor (24 KB) skips the pennywise doubling steps a
  // trial always outgrows anyway.
  heap_.reserve(heap_.empty() ? 1024 : heap_.size() * 2);
}

EventLoop::~EventLoop() {
  // Destroy still-pending callbacks. Executed events were consumed and
  // cancelled ones reset on the spot, so the only live callables are the
  // ones whose heap entry still carries a matching generation — scan
  // those O(pending) entries rather than scrubbing every slot the loop
  // ever touched (the full scrub walked ~2 cache lines per slot and cost
  // more than the events themselves at microbenchmark scale).
  if (live_ != 0) {
    for (const Entry& e : heap_) {
      Slot& s = slot(e.slot);
      if (s.generation == e.generation) s.cb.reset();
    }
  }
  // Park the heap buffer and chunks for the next loop on this thread
  // (keep the larger of the two heap buffers; Entry is trivially
  // destructible so clear() is free). A loop outliving the cache — a
  // thread_local session destroyed after it — frees everything normally.
  auto& cache = thread_cache();
  if (!cache.alive) return;
  if (heap_.capacity() > cache.spare.capacity()) {
    heap_.clear();
    cache.spare.swap(heap_);
  }
  // Cap the parked memory per thread (256 chunks of 512 slots covers the
  // 100k-event perf_report workload, ~12 MB); a loop that grew beyond
  // that frees the excess normally.
  constexpr std::size_t kPoolCap = 256;
  for (auto& c : chunks_) {
    if (cache.chunks.size() >= kPoolCap) break;
    cache.chunks.push_back(std::move(c));
  }
}

void EventLoop::append_chunk() {
  auto& cache = thread_cache();
  if (cache.alive && !cache.chunks.empty()) {
    chunks_.push_back(std::move(cache.chunks.back()));
    cache.chunks.pop_back();
  } else {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  bump_chunk_ = chunks_.back().get();
  slab_size_ += kChunkSize;
}

void EventLoop::release_slot(std::uint32_t idx) {
  Slot& s = slot(idx);
  if (++s.generation == 0) s.generation = 1;  // skip the invalid tag
  s.next_free = free_head_;
  free_head_ = idx;
}

// The heap is 4-ary: half the depth of a binary heap and the four
// children of a node sit in adjacent Entries (two cache lines at most),
// which is the better trade for a pop-dominated workload — every
// executed event pays one sift_down, while sift_up on schedule usually
// terminates after a level or two.

void EventLoop::sift_down(std::size_t pos) {
  const Entry moving = heap_[pos];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= size) break;
    const std::size_t last = first + 4 < size ? first + 4 : size;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(moving)) break;
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moving;
}

void EventLoop::sift_down_refill(std::size_t pos) {
  // Floyd's variant for the pop path: the entry at `pos` is the heap's
  // old back element — large, so it almost always belongs at the
  // bottom. March it down the min-child chain without comparing against
  // it (3 compares per level instead of 4), then bubble it back up the
  // zero-or-one levels it overshot.
  const Entry refill = heap_[pos];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= size) break;
    // The next level's candidates — the children of all four children —
    // are contiguous at [4*first+1, 4*first+17). Fetch that frontier
    // while comparing this level, so whichever child wins, its children
    // are already in flight; the descent's serial cache misses overlap
    // instead of chaining (this is what the deep-heap pops of a 100k
    // event drain are bound by). Small heaps live in L1/L2 where the
    // speculative fetches only cost issue slots, so skip them there.
    const std::size_t gfirst = 4 * first + 1;
    if (size > 4096 && gfirst < size) {
      const char* g = reinterpret_cast<const char*>(&heap_[gfirst]);
      __builtin_prefetch(g);
      __builtin_prefetch(g + 64);
      __builtin_prefetch(g + 128);
      __builtin_prefetch(g + 192);
      __builtin_prefetch(g + 256);
      __builtin_prefetch(g + 320);
    }
    const std::size_t last = first + 4 < size ? first + 4 : size;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!refill.before(heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = refill;
}

bool EventLoop::skim_stale() {
  while (!heap_.empty()) {
    // No cancelled entries anywhere means the top is live — skip the
    // slab load entirely (the common case for cancel-free workloads).
    if (stale_ == 0) return true;
    const Entry& top = heap_[0];
    if (slot(top.slot).generation == top.generation) return true;
    // Cancelled: the slot was reclaimed the moment cancel() ran; only
    // this 24-byte entry lingered, and it dies in one compare.
    heap_[0] = heap_.back();
    heap_.pop_back();
    --stale_;
    if (!heap_.empty()) sift_down_refill(0);
  }
  return false;
}

void EventLoop::compact() {
  std::size_t w = 0;
  for (const Entry& e : heap_) {
    if (slot(e.slot).generation == e.generation) heap_[w++] = e;
  }
  heap_.resize(w);
  stale_ = 0;
  // Bottom-up heapify: sift every internal node, deepest first.
  if (w > 1) {
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) sift_down(i);
  }
}

void EventLoop::reset() {
  // Destroy still-pending callbacks exactly as the destructor does:
  // only heap entries with a matching generation hold live callables.
  if (live_ != 0) {
    for (const Entry& e : heap_) {
      Slot& s = slot(e.slot);
      if (s.generation == e.generation) s.cb.reset();
    }
  }
  heap_.clear();  // capacity is retained
  stale_ = 0;
  // Rebuild the free list over every slot ever used, bumping each
  // generation so outstanding handles go stale. bump_ tracks the peak
  // *concurrent* slot demand (the free list recycles below it), so this
  // walk is O(max_pending), not O(events).
  free_head_ = kNone;
  for (std::uint32_t idx = bump_; idx-- > 0;) {
    Slot& s = slot(idx);
    if (++s.generation == 0) s.generation = 1;
    s.next_free = free_head_;
    free_head_ = idx;
  }
  now_ = SimTime{0};
  next_seq_ = 1;
  scheduled_ = executed_ = cancelled_ = cap_hits_ = 0;
  live_ = 0;
  max_pending_ = 0;
}

EventLoop::EventId EventLoop::schedule_at(SimTime when, Callback cb) {
  if (heap_.capacity() == heap_.size()) grow_heap();
  const Acquired a = acquire_slot();
  a.s->cb = std::move(cb);
  return finish_schedule(when, a);
}

EventLoop::EventId EventLoop::schedule_after(SimTime delay, Callback cb) {
  if (delay < SimTime{0}) delay = SimTime{0};
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(EventId id) {
  // bump_ (not slab_size_) is the guard: every id this loop ever minted
  // addresses a slot below it, and slots above it may hold stale headers
  // from a recycled chunk (the pool does not scrub them).
  if (!id.valid() || id.slot >= bump_) return false;
  Slot& s = slot(id.slot);
  // Generation mismatch: the event already ran or was cancelled (and the
  // slot possibly reused) — the handle is stale.
  if (s.generation != id.generation) return false;
  s.cb.reset();
  release_slot(id.slot);
  --live_;
  ++cancelled_;
  // LIFO fast path: the overlay draw-destroy cycle (§III) cancels the
  // alert it scheduled a beat earlier, whose entry still sits in the
  // heap's last few leaves. Removing it there is O(1) — swap with the
  // back, pop, and re-sit the swapped leaf — and leaves no stale entry
  // to skim or compact later.
  const std::size_t size = heap_.size();
  const std::size_t scan = size < 4 ? size : 4;
  for (std::size_t i = size - scan; i < size; ++i) {
    if (heap_[i].slot == id.slot && heap_[i].generation == id.generation) {
      heap_[i] = heap_.back();
      heap_.pop_back();
      if (i < heap_.size()) {
        sift_up(i);
        sift_down(i);
      }
      return true;
    }
  }
  // Amortized housekeeping: once a third of the heap is dead weight,
  // filter + re-heapify in one O(heap) pass rather than paying a full
  // sift_down per stale entry at pop time.
  if (++stale_ * 3 > heap_.size()) compact();
  return true;
}

bool EventLoop::step() {
  if (!skim_stale()) return false;
  const Entry top = heap_[0];
  // Pop order is time order, which permutes slot order — the slot line
  // is usually not in L1. Start the fetch now so it overlaps the sift.
  __builtin_prefetch(&slot(top.slot), 1);
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down_refill(0);
  Slot& s = slot(top.slot);
  now_ = top.when;
  // Stale the handle *before* invoking (a self-cancel from inside the
  // callback returns false), but keep the slot OFF the free list until
  // the callback returns: it runs in place in its slot — no move out —
  // and events it schedules must not overwrite it. Chunks are stable,
  // so growth during the callback can't move `s` either.
  if (++s.generation == 0) s.generation = 1;
  --live_;
  ++executed_;
  s.cb.consume();  // fused invoke + destroy, leaves the slot empty
  s.next_free = free_head_;
  free_head_ = top.slot;
  // Start fetching the *next* event's slot a whole pop ahead of its
  // consume — the ~20ns lead of the pre-sift prefetch above doesn't
  // cover a DRAM miss once the slab outgrows the cache.
  if (!heap_.empty()) __builtin_prefetch(&slot(heap_[0].slot), 1);
  return true;
}

std::size_t EventLoop::run_until(SimTime until) {
  std::size_t executed = 0;
  while (skim_stale() && heap_[0].when <= until) {
    step();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t EventLoop::run_all(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  if (executed == max_events && live_ != 0) ++cap_hits_;
  return executed;
}

}  // namespace animus::sim
