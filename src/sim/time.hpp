// Virtual-time primitives for the ANIMUS discrete-event simulation.
//
// All simulated timestamps and durations are std::chrono::microseconds in
// virtual time; nothing in the simulation reads a wall clock, which keeps
// every experiment deterministic and replayable under a fixed RNG seed.
#pragma once

#include <chrono>
#include <cstdint>

namespace animus::sim {

/// Virtual time. Used both as a point in time (offset from simulation
/// start) and as a duration; the event loop starts at SimTime{0}.
using SimTime = std::chrono::microseconds;

/// Convenience literal-style constructors.
constexpr SimTime us(std::int64_t v) { return SimTime{v}; }
constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1000}; }
constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000}; }

/// Fractional milliseconds, rounded to the nearest microsecond.
constexpr SimTime ms_f(double v) {
  return SimTime{static_cast<std::int64_t>(v * 1000.0 + (v >= 0 ? 0.5 : -0.5))};
}

/// Duration expressed as a double count of milliseconds (for stats/plots).
constexpr double to_ms(SimTime t) { return static_cast<double>(t.count()) / 1000.0; }

/// Duration expressed as a double count of seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t.count()) / 1e6; }

}  // namespace animus::sim
