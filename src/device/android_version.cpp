#include "device/android_version.hpp"

namespace animus::device {

std::string_view to_string(AndroidVersion v) {
  switch (v) {
    case AndroidVersion::kV7: return "7";
    case AndroidVersion::kV8: return "8";
    case AndroidVersion::kV9: return "9";
    case AndroidVersion::kV9_1: return "9.1";
    case AndroidVersion::kV10: return "10";
    case AndroidVersion::kV11: return "11";
  }
  return "?";
}

std::string_view version_family(AndroidVersion v) {
  switch (v) {
    case AndroidVersion::kV7: return "Android 7.x";
    case AndroidVersion::kV8: return "Android 8.x";
    case AndroidVersion::kV9:
    case AndroidVersion::kV9_1: return "Android 9.x";
    case AndroidVersion::kV10: return "Android 10.0";
    case AndroidVersion::kV11: return "Android 11.0";
  }
  return "?";
}

VersionTraits traits(AndroidVersion v) {
  VersionTraits t;
  switch (v) {
    case AndroidVersion::kV7:
      // The world the legacy toast attacks of Section II-B lived in.
      t.overlay_notification = false;
      t.type_toast_removed = false;
      t.serialized_toasts = false;
      break;
    case AndroidVersion::kV8:
    case AndroidVersion::kV9:
    case AndroidVersion::kV9_1:
      break;
    case AndroidVersion::kV10:
      t.ana_delay = sim::ms(100);
      t.reduced_trm = true;
      break;
    case AndroidVersion::kV11:
      t.ana_delay = sim::ms(200);
      t.reduced_trm = true;
      break;
  }
  return t;
}

bool custom_toast_allowed(AndroidVersion) { return true; }

}  // namespace animus::device
