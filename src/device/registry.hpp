// The 30 evaluation phones of Table I / Table II.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "device/profile.hpp"

namespace animus::device {

/// All 30 devices, in Table II order. Versions follow Table II (Table I
/// lists pixel 2xl / pixel 4 under Android 9 but Table II measures them
/// on Android 10; we follow Table II since it drives every experiment —
/// the discrepancy is noted in EXPERIMENTS.md).
std::span<const DeviceProfile> all_devices();

/// Lookup by model name (case-sensitive, e.g. "pixel 2"). When the paper
/// lists a model at two OS versions (mi8), the version disambiguates.
std::optional<DeviceProfile> find_device(std::string_view model);
std::optional<DeviceProfile> find_device(std::string_view model, AndroidVersion version);

/// Devices filtered by version family (Fig. 8 grouping).
std::vector<DeviceProfile> devices_with_version(AndroidVersion v);

/// The paper's reference handset for single-device experiments (Fig. 6
/// uses a notification-view sweep; the defense prototype runs on a
/// Google Pixel 2 with Android 11 per Sections VI-C3/VII-B).
const DeviceProfile& reference_device();

/// A mid-range Android 9 handset used by single-device Android-9 demos.
const DeviceProfile& reference_device_android9();

/// Build a custom profile from version baselines + a Table-II-style D
/// bound; exposed so tests and what-if benches can synthesize devices.
DeviceProfile make_profile(std::string_view manufacturer, std::string_view model,
                           AndroidVersion version, double d_upper_bound_ms);

}  // namespace animus::device
