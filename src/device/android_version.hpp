// Android OS version behaviour table.
//
// The paper's attacks interact with version-specific framework behaviour:
//  - Android 8.0+: overlay warning notification, TYPE_TOAST removed,
//    one-toast-at-a-time scheduling (Section II).
//  - Android 10: Android Notification Assistant (ANA) adds a 100 ms delay
//    before System Server sends the overlay notification, enlarging the
//    attack window D; Trm is significantly reduced, enlarging the
//    mistouch gap Tmis (Sections VI-B, Fig. 8).
//  - Android 11: the ANA delay grows to 200 ms.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace animus::device {

enum class AndroidVersion : std::uint8_t {
  kV7,  // legacy baseline: pre-dates every defense the paper discusses
  kV8,
  kV9,
  kV9_1,
  kV10,
  kV11,
};

std::string_view to_string(AndroidVersion v);

/// "8.x" / "9.x" / "10.0" / "11.0" grouping used by Fig. 8.
std::string_view version_family(AndroidVersion v);

struct VersionTraits {
  /// Overlay warning notification exists (Android >= 8).
  bool overlay_notification = true;
  /// TYPE_TOAST windows (persistent attacker-controlled toasts) removed.
  bool type_toast_removed = true;
  /// Toasts are shown one at a time by the notification manager.
  bool serialized_toasts = true;
  /// Max queued toast tokens per app (AOSP MAX_PACKAGE_NOTIFICATIONS).
  int max_toast_tokens_per_app = 50;
  /// Extra delay before System Server notifies System UI of the overlay
  /// notification, introduced for ANA initialization.
  sim::SimTime ana_delay{0};
  /// Android 10 reduced the transit latency of remove-view events, which
  /// the paper identifies as the cause of the larger mistouch gap.
  bool reduced_trm = false;
};

VersionTraits traits(AndroidVersion v);

/// True for versions where customized toasts from background apps are
/// still allowed (all versions the paper evaluates).
bool custom_toast_allowed(AndroidVersion v);

}  // namespace animus::device
