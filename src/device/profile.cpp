#include "device/profile.hpp"

#include <algorithm>

#include "ui/animation.hpp"

namespace animus::device {

double DeviceProfile::expected_tmis_ms() const {
  return std::max(0.0, tas.mean_ms + tam.mean_ms - trm.mean_ms);
}

double DeviceProfile::predicted_d_max_ms(int min_pixels) const {
  const ui::Animation anim = ui::notification_slide_in();
  const double ta_ms = sim::to_ms(anim.time_to_reveal(min_pixels, notification_height_px));
  // Λ1 iff D + Trm + Tnr - (Tam + Tas + Tn + Tv) < Ta.
  return tam.mean_ms + tas.mean_ms + tn.mean_ms + tv.mean_ms + ta_ms - trm.mean_ms -
         tnr.mean_ms;
}

DeviceProfile DeviceProfile::with_load(int background_apps) const {
  DeviceProfile p = *this;
  p.load_factor = 1.0 + 0.005 * static_cast<double>(std::max(0, background_apps));
  for (ipc::LatencyModel* m : {&p.tam, &p.trm, &p.tas, &p.tn, &p.tv, &p.tnr, &p.toast_create}) {
    m->mean_ms *= p.load_factor;
    m->sd_ms *= p.load_factor;
  }
  return p;
}

std::string DeviceProfile::display_name() const {
  return model + " (Android " + std::string(to_string(version)) + ")";
}

}  // namespace animus::device
