#include "device/registry.hpp"

#include <algorithm>
#include <cassert>

#include "ui/animation.hpp"

namespace animus::device {
namespace {

/// Per-version Binder/runtime baselines (milliseconds). The absolute
/// values are modelling choices; the *relations* are the paper's:
///  - Tam < Trm so the add event overtakes the remove event in transit;
///  - Tas + Tam - Trm = Tmis ~ 0 on Android 8/9;
///  - Android 10/11 reduced Trm, enlarging Tmis (Sections III-D, VI-B).
struct VersionBaselines {
  double tam_ms, trm_ms, tas_ms, tv_ms, tnr_ms, toast_create_ms;
};

VersionBaselines baselines(AndroidVersion v) {
  switch (v) {
    case AndroidVersion::kV7:
    case AndroidVersion::kV8:
    case AndroidVersion::kV9:
    case AndroidVersion::kV9_1:
      return {.tam_ms = 3.0, .trm_ms = 14.0, .tas_ms = 12.0, .tv_ms = 20.0, .tnr_ms = 3.0,
              .toast_create_ms = 14.0};
    case AndroidVersion::kV10:
      return {.tam_ms = 3.0, .trm_ms = 12.0, .tas_ms = 11.0, .tv_ms = 20.0, .tnr_ms = 3.0,
              .toast_create_ms = 16.0};
    case AndroidVersion::kV11:
      return {.tam_ms = 3.0, .trm_ms = 13.0, .tas_ms = 12.0, .tv_ms = 20.0, .tnr_ms = 3.0,
              .toast_create_ms = 15.0};
  }
  return {};
}

/// Transit/creation latencies: near-deterministic (the draw-and-destroy
/// ordering Tam + Tas > Trm must hold essentially every cycle, or the
/// skipped alert reset leaks the notification — Section III-C).
ipc::LatencyModel transit_latency(double mean_ms) {
  return ipc::LatencyModel{.mean_ms = mean_ms,
                           .sd_ms = 0.01 * mean_ms + 0.05,
                           .floor_ms = std::max(0.05, 0.5 * mean_ms)};
}

/// Notification-path latencies (Tn/Tv/Tnr): the bulk of run-to-run
/// variability, spreading Fig. 7's box plots without flipping Table II
/// boundary classifications (boundary searches run deterministically).
ipc::LatencyModel notification_latency(double mean_ms) {
  return ipc::LatencyModel{.mean_ms = mean_ms,
                           .sd_ms = 0.03 * mean_ms + 0.15,
                           .floor_ms = std::max(0.05, 0.25 * mean_ms)};
}

}  // namespace

DeviceProfile make_profile(std::string_view manufacturer, std::string_view model,
                           AndroidVersion version, double d_upper_bound_ms) {
  const VersionBaselines b = baselines(version);
  DeviceProfile p;
  p.manufacturer = std::string(manufacturer);
  p.model = std::string(model);
  p.version = version;
  p.d_upper_bound_table_ms = d_upper_bound_ms;
  p.tam = transit_latency(b.tam_ms);
  p.trm = transit_latency(b.trm_ms);
  p.tas = transit_latency(b.tas_ms);
  p.tv = notification_latency(b.tv_ms);
  p.tnr = notification_latency(b.tnr_ms);
  p.toast_create = transit_latency(b.toast_create_ms);

  // Calibrate Tn (the System Server -> System UI notification dispatch,
  // which absorbs the ANA delay and any vendor notification pipeline)
  // so the deterministic Λ1 boundary lands exactly on the published
  // Table II value: Λ1 holds while
  //   D + Trm + Tnr - (Tam + Tas + Tn + Tv) < Ta.
  const ui::Animation anim = ui::notification_slide_in();
  const double ta_ms =
      sim::to_ms(anim.time_to_reveal(ui::kNakedEyeMinPixels, p.notification_height_px));
  const double tn_ms = d_upper_bound_ms + b.trm_ms + b.tnr_ms - b.tam_ms - b.tas_ms -
                       b.tv_ms - ta_ms + 0.5;
  assert(tn_ms > 0.0 && "Table II bound incompatible with version baselines");
  p.tn = notification_latency(tn_ms);
  return p;
}

std::span<const DeviceProfile> all_devices() {
  using V = AndroidVersion;
  static const std::vector<DeviceProfile> kDevices = [] {
    std::vector<DeviceProfile> d;
    d.reserve(30);
    // Table II rows (manufacturer from Table I).
    d.push_back(make_profile("Samsung", "s8", V::kV8, 60));
    d.push_back(make_profile("Samsung", "SMG9", V::kV9, 240));
    d.push_back(make_profile("Google", "nexus6p", V::kV8, 150));
    d.push_back(make_profile("Google", "pixel 2xl", V::kV10, 225));
    d.push_back(make_profile("Google", "pixel 4", V::kV10, 185));
    d.push_back(make_profile("Google", "pixel 2", V::kV11, 330));
    d.push_back(make_profile("Xiaomi", "mi5", V::kV8, 125));
    d.push_back(make_profile("Xiaomi", "mix 2s", V::kV9, 155));
    d.push_back(make_profile("Xiaomi", "mi8", V::kV9, 215));
    d.push_back(make_profile("Xiaomi", "mi6", V::kV9, 215));
    d.push_back(make_profile("Xiaomi", "Redmi", V::kV10, 395));
    d.push_back(make_profile("Xiaomi", "mi8", V::kV10, 300));
    d.push_back(make_profile("Xiaomi", "mix3", V::kV10, 220));
    d.push_back(make_profile("Xiaomi", "mi9", V::kV10, 210));
    d.push_back(make_profile("Xiaomi", "mi10", V::kV11, 290));
    d.push_back(make_profile("Huawei", "mate20", V::kV9, 200));
    d.push_back(make_profile("Huawei", "EML-AL00", V::kV9, 365));
    d.push_back(make_profile("Huawei", "PAR-AL00", V::kV9, 130));
    d.push_back(make_profile("Huawei", "nova3", V::kV9_1, 285));
    d.push_back(make_profile("Huawei", "mate20 x", V::kV10, 260));
    d.push_back(make_profile("Huawei", "ELS-AN00", V::kV10, 220));
    d.push_back(make_profile("Huawei", "ELE-AL00", V::kV10, 220));
    d.push_back(make_profile("Huawei", "OXF-AN00", V::kV10, 240));
    d.push_back(make_profile("Huawei", "HLK-AL00", V::kV10, 215));
    d.push_back(make_profile("Oppo", "PMEM00", V::kV9, 135));
    d.push_back(make_profile("Vivo", "x21iA", V::kV9, 85));
    d.push_back(make_profile("Vivo", "v1816A", V::kV9, 95));
    d.push_back(make_profile("Vivo", "v1813BA", V::kV9, 215));
    d.push_back(make_profile("Vivo", "v1813A", V::kV9, 85));
    d.push_back(make_profile("Vivo", "V1986A", V::kV10, 80));
    return d;
  }();
  return kDevices;
}

std::optional<DeviceProfile> find_device(std::string_view model) {
  for (const auto& d : all_devices()) {
    if (d.model == model) return d;
  }
  return std::nullopt;
}

std::optional<DeviceProfile> find_device(std::string_view model, AndroidVersion version) {
  for (const auto& d : all_devices()) {
    if (d.model == model && d.version == version) return d;
  }
  return std::nullopt;
}

std::vector<DeviceProfile> devices_with_version(AndroidVersion v) {
  std::vector<DeviceProfile> out;
  for (const auto& d : all_devices()) {
    if (d.version == v) out.push_back(d);
  }
  return out;
}

const DeviceProfile& reference_device() {
  static const DeviceProfile kRef = *find_device("pixel 2");
  return kRef;
}

const DeviceProfile& reference_device_android9() {
  static const DeviceProfile kRef = *find_device("mi8", AndroidVersion::kV9);
  return kRef;
}

}  // namespace animus::device
