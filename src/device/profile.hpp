// Device profile: everything about one phone that the timing attacks
// depend on.
//
// The paper's Fig. 3 timing symbols map to profile fields as follows:
//   Tam  transit latency of an add-view Binder event (app -> System Server)
//   Trm  transit latency of a remove-view Binder event (Tam < Trm on 8/9;
//        Android 10 reduced Trm, enlarging Tmis = Tas + Tam - Trm)
//   Tas  System Server time to create + place a window on screen
//   Tn   System Server -> System UI notification dispatch (includes the
//        ANA delay on Android 10/11)
//   Tv   System UI time to construct the notification view
//   Tnr  System Server -> System UI "remove notification" dispatch
//
// Profiles are *calibrated*: the paper publishes, per phone, the measured
// upper boundary of the attacking window D for outcome Λ1 (Table II); the
// registry derives Tn so that the deterministic simulation reproduces
// exactly that boundary, and the closed-form prediction of Eq. (3) can be
// cross-checked against the simulated search (tested).
#pragma once

#include <string>
#include <vector>

#include "device/android_version.hpp"
#include "ipc/binder.hpp"
#include "sim/time.hpp"

namespace animus::device {

struct DeviceProfile {
  std::string manufacturer;
  std::string model;
  AndroidVersion version = AndroidVersion::kV9;

  int screen_w = 1080;
  int screen_h = 2280;
  /// Height of the notification alert view (72 px on the Nexus 6P per
  /// Section III-B).
  int notification_height_px = 72;

  ipc::LatencyModel tam;   // add-view transit
  ipc::LatencyModel trm;   // remove-view transit
  ipc::LatencyModel tas;   // server-side window creation
  ipc::LatencyModel tn;    // server -> System UI notify (incl. ANA share)
  ipc::LatencyModel tv;    // System UI notification view construction
  ipc::LatencyModel tnr;   // server -> System UI notification removal
  ipc::LatencyModel toast_create;  // server-side toast window creation

  /// Published Table II upper boundary of D (ms) — calibration target.
  double d_upper_bound_table_ms = 0.0;

  /// Background-load multiplier applied to all latencies (Section VI-B
  /// finds the effect of load negligible; the model is ~0.5% per app).
  double load_factor = 1.0;

  [[nodiscard]] VersionTraits version_traits() const { return traits(version); }

  /// Expected mistouch gap E(Tmis) = E(Tas) + E(Tam) - E(Trm), clamped
  /// at zero (Section III-D).
  [[nodiscard]] double expected_tmis_ms() const;

  /// Closed-form prediction of the Λ1 upper boundary of D from Eq. (3):
  /// the animation may play for A(D) = D + Trm + Tnr - Tam - Tas - Tn - Tv
  /// before the removal lands, and Λ1 requires A(D) < Ta where Ta is the
  /// frame-quantized time for the alert view to reveal `min_pixels`.
  [[nodiscard]] double predicted_d_max_ms(int min_pixels) const;

  /// Profile with all latencies scaled for `background_apps` running.
  [[nodiscard]] DeviceProfile with_load(int background_apps) const;

  /// Display name "pixel 2 (Android 11)".
  [[nodiscard]] std::string display_name() const;
};

}  // namespace animus::device
