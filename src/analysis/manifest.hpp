// aapt-lite: AndroidManifest serialization and parsing.
//
// A deliberately small XML subset (elements, attributes, self-closing
// tags, comments) — enough to round-trip the manifest features the
// prevalence study needs, with real error reporting so malformed inputs
// are rejected rather than misread.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/apk.hpp"

namespace animus::analysis {

/// Serialize the manifest portion of an ApkInfo as AndroidManifest-style
/// XML.
std::string write_manifest_xml(const ApkInfo& apk);

struct ParsedManifest {
  std::string package;
  std::vector<std::string> permissions;
  std::vector<ServiceDecl> services;
};

struct ParseError {
  std::size_t offset = 0;
  std::string message;
};

struct ParseResult {
  std::optional<ParsedManifest> manifest;  // set on success
  std::optional<ParseError> error;         // set on failure

  [[nodiscard]] bool ok() const { return manifest.has_value(); }
};

/// Parse manifest XML. Unknown elements/attributes are ignored (forward
/// compatibility); structural errors (unterminated tags, bad quoting,
/// mismatched close tags, missing <manifest> root) are reported.
ParseResult parse_manifest_xml(std::string_view xml);

}  // namespace animus::analysis
