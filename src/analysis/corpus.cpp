#include "analysis/corpus.hpp"

#include <numeric>

#include "analysis/manifest.hpp"
#include "analysis/scanner.hpp"
#include "metrics/table.hpp"

namespace animus::analysis {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash3(std::uint64_t seed, std::uint64_t i, std::uint64_t salt) {
  return mix(seed ^ mix(i + 0x9e3779b97f4a7c15ULL * salt));
}

/// Smallest multiplier >= base coprime with n (n >= 1).
std::size_t coprime_multiplier(std::size_t base, std::size_t n) {
  std::size_t a = base % n;
  if (a == 0) a = 1;
  while (std::gcd(a, n) != 1) ++a;
  return a;
}

}  // namespace

Corpus::Corpus(std::uint64_t seed, std::size_t size) : seed_(seed), size_(size ? size : 1) {}

std::size_t Corpus::perm1(std::size_t i) const {
  const std::size_t a = coprime_multiplier(48271, size_);
  const std::size_t b = mix(seed_ ^ 0x11) % size_;
  return (i * a + b) % size_;
}

std::size_t Corpus::perm3(std::size_t i) const {
  const std::size_t a = coprime_multiplier(69621, size_);
  const std::size_t b = mix(seed_ ^ 0x33) % size_;
  return (i * a + b) % size_;
}

std::size_t Corpus::perm4(std::size_t i) const {
  const std::size_t a = coprime_multiplier(40692, size_);
  const std::size_t b = mix(seed_ ^ 0x44) % size_;
  return (i * a + b) % size_;
}

namespace {
/// Scale a full-corpus quota to a smaller (test-sized) corpus.
std::size_t scaled_quota(std::size_t target, std::size_t size) {
  if (size >= kAndroZooSize) return target;
  return static_cast<std::size_t>(static_cast<__uint128_t>(target) * size / kAndroZooSize);
}
}  // namespace

bool Corpus::truth_saw_addremove(std::size_t i) const {
  return perm1(i) < scaled_quota(kTargetSawAddRemove, size_);
}

bool Corpus::truth_saw_accessibility(std::size_t i) const {
  // A subset of the SAW+add/remove apps (perm1 is a bijection, so the
  // count is exact and the subset relation structural).
  return perm1(i) < scaled_quota(kTargetSawAccessibility, size_);
}

bool Corpus::truth_custom_toast(std::size_t i) const {
  return perm4(i) < scaled_quota(kTargetCustomToast, size_);
}

ApkInfo Corpus::app(std::size_t i) const {
  ApkInfo apk;
  const std::uint64_t h = hash3(seed_, i, 1);
  static constexpr const char* kVendors[] = {"com", "org", "io", "net", "cn"};
  static constexpr const char* kWords[] = {"photo", "music", "chat", "game",  "bank",
                                           "news",  "map",   "shop", "video", "tool"};
  apk.package = metrics::fmt("%s.%s%s.app%07zu", kVendors[h % 5], kWords[(h >> 8) % 10],
                             kWords[(h >> 16) % 10], i);

  // Background permissions for realism.
  apk.permissions.emplace_back("android.permission.INTERNET");
  if (hash3(seed_, i, 2) % 100 < 40) {
    apk.permissions.emplace_back("android.permission.ACCESS_NETWORK_STATE");
  }
  if (hash3(seed_, i, 3) % 100 < 12) {
    apk.permissions.emplace_back("android.permission.CAMERA");
  }

  // Baseline method references every app has.
  apk.method_refs.emplace_back("android.app.Activity.onCreate");
  apk.method_refs.emplace_back("android.view.View.setOnClickListener");
  if (hash3(seed_, i, 4) % 100 < 55) {
    apk.method_refs.emplace_back("android.widget.Toast.makeText");  // plain toasts
  }

  if (truth_saw_addremove(i)) {
    apk.permissions.emplace_back(kPermSystemAlertWindow);
    apk.method_refs.emplace_back(kMethodAddView);
    apk.method_refs.emplace_back(kMethodRemoveView);
  }
  if (truth_saw_accessibility(i)) {
    apk.services.push_back(ServiceDecl{apk.package + ".A11yService", true});
  } else if (hash3(seed_, i, 5) % 100 < 8) {
    apk.services.push_back(ServiceDecl{apk.package + ".SyncService", false});
  }
  if (truth_custom_toast(i)) {
    apk.method_refs.emplace_back(kMethodToastSetView);
  }
  return apk;
}

CorpusCounts count_attack_prerequisites_range(const Corpus& corpus, std::size_t begin,
                                              std::size_t end, std::size_t stride) {
  CorpusCounts counts;
  if (stride == 0) stride = 1;
  std::size_t sampled = 0;
  for (std::size_t k = begin; k < end; ++k) {
    const std::size_t i = k * stride;
    if (i >= corpus.size()) break;
    ++sampled;
    const ApkInfo apk = corpus.app(i);
    const ScanResult scan = scan_apk(apk);
    if (!scan.manifest_ok || !scan.dex_ok) {
      ++counts.parse_failures;
      continue;
    }
    if (scan.has_system_alert_window && scan.registers_accessibility) {
      ++counts.saw_and_accessibility;
    }
    if (scan.has_system_alert_window && scan.calls_add_view && scan.calls_remove_view) {
      ++counts.addremove_and_saw;
    }
    if (scan.custom_toast) ++counts.custom_toast;
  }
  counts.total = sampled;
  return counts;
}

CorpusCounts scale_sampled_counts(CorpusCounts counts, std::size_t corpus_size) {
  const std::size_t sampled = counts.total;
  if (sampled > 0 && sampled < corpus_size) {
    const double scale = static_cast<double>(corpus_size) / static_cast<double>(sampled);
    counts.total = corpus_size;
    counts.saw_and_accessibility =
        static_cast<std::size_t>(counts.saw_and_accessibility * scale + 0.5);
    counts.addremove_and_saw =
        static_cast<std::size_t>(counts.addremove_and_saw * scale + 0.5);
    counts.custom_toast = static_cast<std::size_t>(counts.custom_toast * scale + 0.5);
  }
  return counts;
}

CorpusCounts count_attack_prerequisites(const Corpus& corpus, std::size_t stride) {
  if (stride == 0) stride = 1;
  const std::size_t samples = (corpus.size() + stride - 1) / stride;
  return scale_sampled_counts(count_attack_prerequisites_range(corpus, 0, samples, stride),
                              corpus.size());
}

}  // namespace animus::analysis
