// FlowDroid-lite's input format: a serialized method-reference table
// ("dex table") with a magic header and a declared entry count, so the
// scanner genuinely parses bytes — with error detection — rather than
// inspecting in-memory structures.
//
// Format (text, line-oriented):
//   dex\n
//   037\n            version
//   <count>\n
//   <method-ref>\n   x count, e.g. android.view.WindowManager.addView
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/apk.hpp"
#include "analysis/manifest.hpp"  // ParseError

namespace animus::analysis {

inline constexpr char kDexMagic[] = "dex";
inline constexpr char kDexVersion[] = "037";

/// Serialize the APK's method-reference table.
std::string write_dex_table(const ApkInfo& apk);

struct ParsedDex {
  std::vector<std::string> method_refs;

  [[nodiscard]] bool references(std::string_view method) const;
};

struct DexParseResult {
  std::optional<ParsedDex> dex;
  std::optional<ParseError> error;
  [[nodiscard]] bool ok() const { return dex.has_value(); }
};

/// Parse a dex table; rejects bad magic/version, non-numeric or
/// mismatched counts, and embedded blank method names.
DexParseResult parse_dex_table(std::string_view blob);

}  // namespace animus::analysis
