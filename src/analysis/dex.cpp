#include "analysis/dex.hpp"

#include <algorithm>
#include <charconv>

namespace animus::analysis {

bool ParsedDex::references(std::string_view method) const {
  return std::find(method_refs.begin(), method_refs.end(), method) != method_refs.end();
}

std::string write_dex_table(const ApkInfo& apk) {
  std::string blob;
  std::size_t payload = 0;
  for (const auto& m : apk.method_refs) payload += m.size() + 1;
  blob.reserve(16 + payload);
  blob += kDexMagic;
  blob += '\n';
  blob += kDexVersion;
  blob += '\n';
  blob += std::to_string(apk.method_refs.size());
  blob += '\n';
  for (const auto& m : apk.method_refs) {
    blob += m;
    blob += '\n';
  }
  return blob;
}

namespace {

/// Consume the next '\n'-terminated line; nullopt at end of input.
std::optional<std::string_view> next_line(std::string_view& rest) {
  if (rest.empty()) return std::nullopt;
  const auto nl = rest.find('\n');
  if (nl == std::string_view::npos) {
    // Unterminated trailing line: treated as a line, caller validates.
    std::string_view line = rest;
    rest = {};
    return line;
  }
  std::string_view line = rest.substr(0, nl);
  rest.remove_prefix(nl + 1);
  return line;
}

DexParseResult fail(std::size_t offset, std::string message) {
  DexParseResult r;
  r.error = ParseError{offset, std::move(message)};
  return r;
}

}  // namespace

DexParseResult parse_dex_table(std::string_view blob) {
  std::string_view rest = blob;
  const auto magic = next_line(rest);
  if (!magic || *magic != kDexMagic) return fail(0, "bad dex magic");
  const auto version = next_line(rest);
  if (!version || *version != kDexVersion) {
    return fail(4, "unsupported dex version");
  }
  const auto count_line = next_line(rest);
  if (!count_line || count_line->empty()) return fail(8, "missing method count");
  std::size_t count = 0;
  const auto [ptr, ec] =
      std::from_chars(count_line->data(), count_line->data() + count_line->size(), count);
  if (ec != std::errc{} || ptr != count_line->data() + count_line->size()) {
    return fail(8, "malformed method count");
  }
  ParsedDex dex;
  dex.method_refs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto line = next_line(rest);
    if (!line) return fail(blob.size(), "truncated dex table");
    if (line->empty()) return fail(blob.size() - rest.size(), "empty method name");
    dex.method_refs.emplace_back(*line);
  }
  if (!rest.empty()) return fail(blob.size() - rest.size(), "trailing data after table");
  DexParseResult r;
  r.dex = std::move(dex);
  return r;
}

}  // namespace animus::analysis
