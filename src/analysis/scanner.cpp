#include "analysis/scanner.hpp"

#include <algorithm>

#include "analysis/dex.hpp"

namespace animus::analysis {

bool references(const ApkInfo& apk, std::string_view method) {
  return apk.references_method(method);
}

ScanResult scan_apk(const ApkInfo& apk) {
  ScanResult r;
  const std::string xml = write_manifest_xml(apk);
  const ParseResult parsed = parse_manifest_xml(xml);
  if (!parsed.ok()) return r;
  r.manifest_ok = true;
  const ParsedManifest& m = *parsed.manifest;
  r.has_system_alert_window =
      std::find(m.permissions.begin(), m.permissions.end(), kPermSystemAlertWindow) !=
      m.permissions.end();
  r.registers_accessibility = std::any_of(m.services.begin(), m.services.end(),
                                          [](const ServiceDecl& s) { return s.accessibility; });
  const DexParseResult dex = parse_dex_table(write_dex_table(apk));
  if (!dex.ok()) return r;
  r.dex_ok = true;
  r.calls_add_view = dex.dex->references(kMethodAddView);
  r.calls_remove_view = dex.dex->references(kMethodRemoveView);
  r.custom_toast = dex.dex->references(kMethodToastSetView);
  return r;
}

}  // namespace animus::analysis
