#include "analysis/manifest.hpp"

#include <cctype>

namespace animus::analysis {

std::string write_manifest_xml(const ApkInfo& apk) {
  std::string xml;
  xml.reserve(256 + apk.permissions.size() * 64 + apk.services.size() * 96);
  xml += "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n";
  xml += "<manifest package=\"" + apk.package + "\">\n";
  for (const auto& perm : apk.permissions) {
    xml += "  <uses-permission android:name=\"" + perm + "\"/>\n";
  }
  xml += "  <application>\n";
  for (const auto& svc : apk.services) {
    xml += "    <service android:name=\"" + svc.name + "\"";
    if (svc.accessibility) {
      xml += " android:permission=\"" + std::string(kPermBindAccessibility) + "\"";
    }
    xml += ">\n";
    if (svc.accessibility) {
      xml += "      <intent-filter>\n";
      xml += "        <action android:name=\"android.accessibilityservice."
             "AccessibilityService\"/>\n";
      xml += "      </intent-filter>\n";
    }
    xml += "    </service>\n";
  }
  xml += "  </application>\n";
  xml += "</manifest>\n";
  return xml;
}

namespace {

struct Attribute {
  std::string name;
  std::string value;
};

struct Tag {
  std::string name;
  std::vector<Attribute> attrs;
  bool closing = false;       // </name>
  bool self_closing = false;  // <name/>
};

/// Minimal XML tokenizer: yields tags in order, skipping text, comments
/// and the <?xml?> declaration.
class Lexer {
 public:
  explicit Lexer(std::string_view xml) : xml_(xml) {}

  /// Next tag; nullopt at clean end-of-input; error via fail().
  std::optional<Tag> next(ParseError& err) {
    while (pos_ < xml_.size()) {
      if (xml_[pos_] != '<') {
        ++pos_;  // character data: ignored
        continue;
      }
      if (starts_with("<?")) {
        const auto end = xml_.find("?>", pos_);
        if (end == std::string_view::npos) return fail(err, "unterminated declaration");
        pos_ = end + 2;
        continue;
      }
      if (starts_with("<!--")) {
        const auto end = xml_.find("-->", pos_);
        if (end == std::string_view::npos) return fail(err, "unterminated comment");
        pos_ = end + 3;
        continue;
      }
      return lex_tag(err);
    }
    return std::nullopt;
  }

  [[nodiscard]] bool failed() const { return failed_; }

 private:
  std::optional<Tag> fail(ParseError& err, std::string message) {
    err = ParseError{pos_, std::move(message)};
    failed_ = true;
    return std::nullopt;
  }

  [[nodiscard]] bool starts_with(std::string_view s) const {
    return xml_.substr(pos_, s.size()) == s;
  }

  void skip_space() {
    while (pos_ < xml_.size() && std::isspace(static_cast<unsigned char>(xml_[pos_]))) ++pos_;
  }

  std::string lex_name() {
    const std::size_t start = pos_;
    while (pos_ < xml_.size()) {
      const char c = xml_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' || c == ':' ||
          c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(xml_.substr(start, pos_ - start));
  }

  std::optional<Tag> lex_tag(ParseError& err) {
    ++pos_;  // consume '<'
    Tag tag;
    if (pos_ < xml_.size() && xml_[pos_] == '/') {
      tag.closing = true;
      ++pos_;
    }
    tag.name = lex_name();
    if (tag.name.empty()) return fail(err, "expected tag name");
    while (true) {
      skip_space();
      if (pos_ >= xml_.size()) return fail(err, "unterminated tag <" + tag.name);
      if (xml_[pos_] == '>') {
        ++pos_;
        return tag;
      }
      if (starts_with("/>")) {
        tag.self_closing = true;
        pos_ += 2;
        return tag;
      }
      if (tag.closing) return fail(err, "attributes on closing tag");
      Attribute attr;
      attr.name = lex_name();
      if (attr.name.empty()) return fail(err, "expected attribute name");
      skip_space();
      if (pos_ >= xml_.size() || xml_[pos_] != '=') return fail(err, "expected '='");
      ++pos_;
      skip_space();
      if (pos_ >= xml_.size() || (xml_[pos_] != '"' && xml_[pos_] != '\'')) {
        return fail(err, "expected quoted value");
      }
      const char quote = xml_[pos_++];
      const auto end = xml_.find(quote, pos_);
      if (end == std::string_view::npos) return fail(err, "unterminated attribute value");
      attr.value = std::string(xml_.substr(pos_, end - pos_));
      pos_ = end + 1;
      tag.attrs.push_back(std::move(attr));
    }
  }

  std::string_view xml_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

const std::string* find_attr(const Tag& tag, std::string_view name) {
  for (const auto& a : tag.attrs) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

}  // namespace

ParseResult parse_manifest_xml(std::string_view xml) {
  ParseResult result;
  ParseError err;
  Lexer lexer{xml};

  ParsedManifest manifest;
  std::vector<std::string> stack;
  bool saw_root = false;
  ServiceDecl* open_service = nullptr;

  while (true) {
    auto tag = lexer.next(err);
    if (!tag) {
      if (lexer.failed()) {
        result.error = err;
        return result;
      }
      break;
    }
    if (tag->closing) {
      if (stack.empty() || stack.back() != tag->name) {
        result.error = ParseError{0, "mismatched closing tag </" + tag->name + ">"};
        return result;
      }
      if (tag->name == "service") open_service = nullptr;
      stack.pop_back();
      continue;
    }
    if (!saw_root) {
      if (tag->name != "manifest") {
        result.error = ParseError{0, "root element must be <manifest>"};
        return result;
      }
      saw_root = true;
      if (const auto* pkg = find_attr(*tag, "package")) manifest.package = *pkg;
    } else if (tag->name == "uses-permission") {
      if (const auto* name = find_attr(*tag, "android:name")) {
        manifest.permissions.push_back(*name);
      }
    } else if (tag->name == "service") {
      ServiceDecl svc;
      if (const auto* name = find_attr(*tag, "android:name")) svc.name = *name;
      if (const auto* perm = find_attr(*tag, "android:permission")) {
        svc.accessibility = *perm == kPermBindAccessibility;
      }
      manifest.services.push_back(std::move(svc));
      if (!tag->self_closing) open_service = &manifest.services.back();
    } else if (tag->name == "action" && open_service != nullptr) {
      if (const auto* name = find_attr(*tag, "android:name")) {
        if (*name == "android.accessibilityservice.AccessibilityService") {
          open_service->accessibility = true;
        }
      }
    }
    if (!tag->self_closing) stack.push_back(tag->name);
  }
  if (!saw_root) {
    result.error = ParseError{0, "empty document"};
    return result;
  }
  if (!stack.empty()) {
    result.error = ParseError{xml.size(), "unclosed element <" + stack.back() + ">"};
    return result;
  }
  result.manifest = std::move(manifest);
  return result;
}

}  // namespace animus::analysis
