// Synthetic APK model for the prevalence study (Section VI-C2).
//
// The paper crawls 890,855 real apps from AndroZoo and measures, with an
// aapt-based manifest tool and a FlowDroid-based method scanner, how many
// apps legitimately use the primitives the attacks need. We cannot ship
// AndroZoo, so we synthesize a corpus with the *measured* prevalence and
// rebuild the analysis pipeline end to end: ApkInfo -> AndroidManifest
// XML + method-reference table -> parse -> predicate evaluation.
#pragma once

#include <string>
#include <vector>

namespace animus::analysis {

inline constexpr char kPermSystemAlertWindow[] = "android.permission.SYSTEM_ALERT_WINDOW";
inline constexpr char kPermBindAccessibility[] = "android.permission.BIND_ACCESSIBILITY_SERVICE";
inline constexpr char kMethodAddView[] = "android.view.WindowManager.addView";
inline constexpr char kMethodRemoveView[] = "android.view.WindowManager.removeView";
inline constexpr char kMethodToastSetView[] = "android.widget.Toast.setView";

struct ServiceDecl {
  std::string name;
  /// Declares the accessibility-service intent filter + BIND permission.
  bool accessibility = false;
};

struct ApkInfo {
  std::string package;
  std::vector<std::string> permissions;
  std::vector<ServiceDecl> services;
  /// Dex method references (FlowDroid-lite's input).
  std::vector<std::string> method_refs;

  [[nodiscard]] bool has_permission(std::string_view perm) const;
  [[nodiscard]] bool registers_accessibility_service() const;
  [[nodiscard]] bool references_method(std::string_view method) const;
  /// Customized toast: the app sets its own view on a Toast.
  [[nodiscard]] bool uses_custom_toast() const;
};

}  // namespace animus::analysis
