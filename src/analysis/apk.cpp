#include "analysis/apk.hpp"

#include <algorithm>

namespace animus::analysis {

bool ApkInfo::has_permission(std::string_view perm) const {
  return std::find(permissions.begin(), permissions.end(), perm) != permissions.end();
}

bool ApkInfo::registers_accessibility_service() const {
  return std::any_of(services.begin(), services.end(),
                     [](const ServiceDecl& s) { return s.accessibility; });
}

bool ApkInfo::references_method(std::string_view method) const {
  return std::find(method_refs.begin(), method_refs.end(), method) != method_refs.end();
}

bool ApkInfo::uses_custom_toast() const { return references_method(kMethodToastSetView); }

}  // namespace animus::analysis
