// The static-analysis pipeline: aapt-lite (manifest) + FlowDroid-lite
// (method references) composed into per-app scan predicates.
#pragma once

#include <string_view>

#include "analysis/apk.hpp"
#include "analysis/manifest.hpp"

namespace animus::analysis {

struct ScanResult {
  bool manifest_ok = false;
  bool dex_ok = false;
  bool has_system_alert_window = false;
  bool registers_accessibility = false;
  bool calls_add_view = false;
  bool calls_remove_view = false;
  bool custom_toast = false;
};

/// FlowDroid-lite: whether the method table references `method`.
bool references(const ApkInfo& apk, std::string_view method);

/// Full pipeline: serialize the manifest and the dex method table,
/// re-parse both (aapt-lite + FlowDroid-lite), and evaluate every
/// predicate from the *parsed* forms. Exercising serialize->parse on
/// every app keeps both parsers honest at corpus scale.
ScanResult scan_apk(const ApkInfo& apk);

}  // namespace animus::analysis
