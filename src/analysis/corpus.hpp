// Synthetic AndroZoo corpus (Section VI-C2).
//
// 890,855 apps with attribute prevalence calibrated to the paper's
// measurements via modular-permutation quota assignment, so the corpus
// contains *exactly*:
//   18,887 apps that call addView+removeView and hold SYSTEM_ALERT_WINDOW,
//    4,405 of which also register an accessibility service,
//   15,179 apps using a customized toast,
// plus background rates of unrelated permissions/services for realism.
// Generation is deterministic per (seed, index): the corpus is streamed,
// never materialized.
#pragma once

#include <cstdint>

#include "analysis/apk.hpp"

namespace animus::analysis {

inline constexpr std::size_t kAndroZooSize = 890'855;
inline constexpr std::size_t kTargetSawAddRemove = 18'887;
inline constexpr std::size_t kTargetSawAccessibility = 4'405;
inline constexpr std::size_t kTargetCustomToast = 15'179;

class Corpus {
 public:
  explicit Corpus(std::uint64_t seed = 2016, std::size_t size = kAndroZooSize);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Materialize app `i` (0-based). Deterministic.
  [[nodiscard]] ApkInfo app(std::size_t i) const;

  // Ground-truth attribute predicates (cheap; used to calibrate and to
  // cross-check the full parse pipeline on samples).
  [[nodiscard]] bool truth_saw_addremove(std::size_t i) const;
  [[nodiscard]] bool truth_saw_accessibility(std::size_t i) const;
  [[nodiscard]] bool truth_custom_toast(std::size_t i) const;

 private:
  [[nodiscard]] std::size_t perm1(std::size_t i) const;  // SAW+add/remove quota
  [[nodiscard]] std::size_t perm3(std::size_t i) const;  // extra accessibility
  [[nodiscard]] std::size_t perm4(std::size_t i) const;  // custom toast quota

  std::uint64_t seed_;
  std::size_t size_;
};

struct CorpusCounts {
  std::size_t total = 0;
  std::size_t saw_and_accessibility = 0;  // paper: 4,405
  std::size_t addremove_and_saw = 0;      // paper: 18,887
  std::size_t custom_toast = 0;           // paper: 15,179
  std::size_t parse_failures = 0;
};

/// Run the full static-analysis pipeline over the corpus: serialize each
/// manifest, parse it with aapt-lite, scan method references with
/// FlowDroid-lite, and count the attack prerequisites. `stride` > 1
/// samples every stride-th app and scales the counts (quick mode).
CorpusCounts count_attack_prerequisites(const Corpus& corpus, std::size_t stride = 1);

/// Shardable form: raw (unscaled) counts over sample positions
/// [begin, end) of the stride-decimated corpus — sample k inspects app
/// k * stride. Disjoint ranges sum to exactly one full pass, so
/// runner::sweep can fan the corpus out across workers and merge the
/// shards in submission order.
CorpusCounts count_attack_prerequisites_range(const Corpus& corpus, std::size_t begin,
                                              std::size_t end, std::size_t stride = 1);

/// Scale raw sampled counts up to the full corpus size with the same
/// rounding count_attack_prerequisites applies (no-op at full coverage).
CorpusCounts scale_sampled_counts(CorpusCounts counts, std::size_t corpus_size);

}  // namespace animus::analysis
