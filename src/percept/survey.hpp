// Stealthiness survey model (Section VI-C3).
//
// Thirty participants type passwords on the Bank of America app with the
// attack running; afterwards each is asked whether they observed
// anything abnormal. A participant notices the attack if the warning
// alert became perceptible or the fake surface flickered; independently,
// a small fraction report generic "lag" (the paper's single such report
// came from the extra scheduling load of the attack).
#pragma once

#include "percept/flicker.hpp"
#include "percept/outcomes.hpp"
#include "sim/rng.hpp"

namespace animus::percept {

struct SurveyConfig {
  /// Probability a participant attributes attack overhead to "lag"
  /// (calibrated to ~1 report out of 30, Section VI-C3).
  double lag_report_rate = 1.0 / 30.0;
  sim::SimTime min_alert_visible = sim::ms(80);
};

struct ParticipantPerception {
  bool noticed_alert = false;
  bool noticed_flicker = false;
  bool reported_lag = false;

  [[nodiscard]] bool noticed_attack() const { return noticed_alert || noticed_flicker; }
  [[nodiscard]] bool reported_anything() const { return noticed_attack() || reported_lag; }
};

/// Judge one participant's session.
ParticipantPerception judge_session(const server::SystemUi::AlertStats& alert,
                                    const FlickerResult& flicker, sim::Rng& rng,
                                    const SurveyConfig& config = {});

struct SurveyTally {
  int participants = 0;
  int noticed_attack = 0;
  int reported_lag = 0;
  int reported_nothing = 0;

  void add(const ParticipantPerception& p);
};

}  // namespace animus::percept
