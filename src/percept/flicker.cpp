#include "percept/flicker.hpp"

#include <algorithm>

namespace animus::percept {

FlickerResult scan_flicker(const server::WindowManagerService& wms, int uid,
                           std::string_view content_prefix, sim::SimTime from, sim::SimTime to,
                           const FlickerConfig& config) {
  FlickerResult r;
  sim::SimTime dip_started{0};
  bool in_dip = false;
  for (sim::SimTime t = from; t <= to; t += config.step) {
    const double alpha = wms.combined_alpha_at(uid, content_prefix, t);
    r.min_alpha = std::min(r.min_alpha, alpha);
    const bool below = alpha < config.threshold;
    if (below && !in_dip) {
      in_dip = true;
      dip_started = t;
      ++r.dips;
    } else if (!below && in_dip) {
      in_dip = false;
      r.longest_dip = std::max(r.longest_dip, t - dip_started);
    }
  }
  if (in_dip) r.longest_dip = std::max(r.longest_dip, to - dip_started);
  r.noticeable = r.longest_dip >= config.min_duration;
  return r;
}

}  // namespace animus::percept
