// Classification of the notification view's observable outcome into the
// paper's five cases (Fig. 6):
//   Λ1 no view ever visible            (attacker's best case)
//   Λ2 view partially visible, animation never completed
//   Λ3 view fully visible, no message or icon yet
//   Λ4 view fully visible, message partially drawn
//   Λ5 view + message + icon all drawn (attacker's worst case)
#pragma once

#include <string_view>

#include "server/system_ui.hpp"

namespace animus::percept {

enum class LambdaOutcome : int { kL1 = 1, kL2 = 2, kL3 = 3, kL4 = 4, kL5 = 5 };

std::string_view to_string(LambdaOutcome o);

/// Classify from an alert-stats snapshot. The Λ1/Λ2 boundary uses the
/// naked-eye pixel threshold (ui::kNakedEyeMinPixels).
LambdaOutcome classify(const server::SystemUi::AlertStats& stats);

/// Whether a user would notice the alert at all (Λ2 and above, provided
/// it stayed visible for at least a perception window).
bool alert_noticed(const server::SystemUi::AlertStats& stats,
                   sim::SimTime min_visible = sim::ms(80));

}  // namespace animus::percept
