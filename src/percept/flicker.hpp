// Toast-switch flicker perception.
//
// The user perceives the attacker's fake surface as the composited
// opacity of all of its overlapping toast windows. A "flicker" is a dip
// of that opacity below a perception threshold lasting at least one
// perception window — exactly what Android's one-at-a-time toast
// scheduling was meant to create ("the user will notice that the
// keyboard flickers because of the gaps", Section II-B) and what the
// fade-out overlap of the draw-and-destroy toast attack avoids.
#pragma once

#include <string>

#include "server/window_manager.hpp"

namespace animus::percept {

struct FlickerConfig {
  /// Opacity below this reads as a visible gap.
  double threshold = 0.85;
  /// A dip must persist this long to be perceived (~2 frames at 60 Hz).
  sim::SimTime min_duration = sim::ms(35);
  /// Sampling step (display frame).
  sim::SimTime step = sim::ms(10);
};

struct FlickerResult {
  double min_alpha = 1.0;            // lowest composited opacity observed
  sim::SimTime longest_dip{0};       // longest contiguous time below threshold
  int dips = 0;                      // number of distinct dips
  bool noticeable = false;           // longest_dip >= min_duration
};

/// Scan the composited opacity of `uid`'s windows matching
/// `content_prefix` over [from, to]. Works on live or historical windows
/// (the WMS keeps window history).
FlickerResult scan_flicker(const server::WindowManagerService& wms, int uid,
                           std::string_view content_prefix, sim::SimTime from, sim::SimTime to,
                           const FlickerConfig& config = {});

}  // namespace animus::percept
