#include "percept/survey.hpp"

namespace animus::percept {

ParticipantPerception judge_session(const server::SystemUi::AlertStats& alert,
                                    const FlickerResult& flicker, sim::Rng& rng,
                                    const SurveyConfig& config) {
  ParticipantPerception p;
  p.noticed_alert = alert_noticed(alert, config.min_alert_visible);
  p.noticed_flicker = flicker.noticeable;
  p.reported_lag = rng.bernoulli(config.lag_report_rate);
  return p;
}

void SurveyTally::add(const ParticipantPerception& p) {
  ++participants;
  if (p.noticed_attack()) {
    ++noticed_attack;
  } else if (p.reported_lag) {
    ++reported_lag;
  } else {
    ++reported_nothing;
  }
}

}  // namespace animus::percept
