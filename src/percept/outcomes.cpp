#include "percept/outcomes.hpp"

#include "ui/animation.hpp"

namespace animus::percept {

std::string_view to_string(LambdaOutcome o) {
  switch (o) {
    case LambdaOutcome::kL1: return "L1 (no view)";
    case LambdaOutcome::kL2: return "L2 (partial view)";
    case LambdaOutcome::kL3: return "L3 (view, no message)";
    case LambdaOutcome::kL4: return "L4 (partial message)";
    case LambdaOutcome::kL5: return "L5 (message + icon)";
  }
  return "?";
}

LambdaOutcome classify(const server::SystemUi::AlertStats& stats) {
  if (stats.max_pixels < ui::kNakedEyeMinPixels) return LambdaOutcome::kL1;
  if (stats.max_completeness < 1.0) return LambdaOutcome::kL2;
  if (stats.icon_shown && stats.max_message_progress >= 1.0) return LambdaOutcome::kL5;
  if (stats.max_message_progress > 0.0) return LambdaOutcome::kL4;
  return LambdaOutcome::kL3;
}

bool alert_noticed(const server::SystemUi::AlertStats& stats, sim::SimTime min_visible) {
  return classify(stats) != LambdaOutcome::kL1 && stats.visible_time >= min_visible;
}

}  // namespace animus::percept
