// Parallel deterministic experiment runner.
//
// Every headline experiment (Fig. 7/8 capture-rate sweeps, Table II's
// per-device boundary search, Table III password stealing) is an
// embarrassingly parallel sweep of independent `server::World`
// simulations. `runner::sweep` fans those trials out over a thread pool
// and returns results **in submission order** with **bit-identical
// determinism regardless of thread count**:
//
//   - each trial derives its seed by `sim::Rng::fork`-style splitting
//     from a single root seed (seed_i = Rng{root}.fork(i).next_u64()),
//     so trial i's randomness never depends on which worker ran it or
//     in what order;
//   - trials never share a World (the trial body constructs its own);
//   - a trial that throws is captured as a structured `TrialError`
//     (trial index, seed, what()) instead of aborting the sweep —
//     sibling trials complete and the caller decides what to do.
//
// Work is distributed through per-worker Chase-Lev-style deques
// (runner/steal_queue.hpp): each worker owns a contiguous block of
// trials, drains it front-to-back, then steals single trials from the
// back of its peers' blocks — so a skewed trial-cost distribution
// (Table II's per-device binary searches) no longer serializes behind
// one slow chunk. Because seeds are a pure function of the submission
// index, stealing changes wall-clock only, never results. Per-trial
// wall-clock is recorded through `metrics::RunningStats`, and an
// optional progress callback reports trials done / total plus worker
// occupancy. With jobs == 1 everything runs inline on the calling
// thread (no pool), which is also the reference ordering the parallel
// path must reproduce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <vector>

#include "metrics/stats.hpp"
#include "sim/rng.hpp"

namespace animus::runner {

/// Snapshot handed to RunOptions::progress after each completed chunk.
struct Progress {
  std::size_t done = 0;    ///< trials finished so far (across all workers)
  std::size_t total = 0;   ///< trials submitted
  std::size_t errors = 0;  ///< trials that threw so far
  int workers_busy = 0;    ///< workers currently inside a trial body
  int jobs = 1;            ///< pool size
};

/// Options shared by every batch experiment. Benches expose these as
/// `--jobs N --seed S` through runner::BenchArgs (bench_cli.hpp).
struct RunOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int jobs = 0;
  /// Root seed every per-trial seed is split from.
  std::uint64_t root_seed = 0x414e494d5553ULL;  // "ANIMUS"
  /// When false, the root seed is mixed with fresh OS entropy once per
  /// run — deliberately irreproducible ("live" mode). Defaults to true:
  /// identical options => byte-identical results at any thread count.
  bool deterministic = true;
  /// Progress-callback cadence in completed trials; 0 = automatic
  /// (total / (8 * jobs), clamped to [1, 64]). (Work is distributed by
  /// stealing single trials, so this no longer affects scheduling.)
  std::size_t chunk = 0;
  /// Invoked every `chunk` completed trials (serialized; cheap bodies only).
  std::function<void(const Progress&)> progress;
};

/// One failed trial, captured instead of aborting the sweep.
struct TrialError {
  std::size_t index = 0;   ///< submission index of the failed trial
  std::uint64_t seed = 0;  ///< the seed it ran with (replay handle)
  std::string what;        ///< exception message
};

/// Worker count `requested` resolves to against the hardware (>= 1;
/// 0 means std::thread::hardware_concurrency()).
int resolve_jobs(int requested);

/// The effective root seed for a run: RunOptions::root_seed, mixed with
/// fresh OS entropy once when the run is not deterministic. Execution
/// backends resolve this exactly once per sweep so every worker —
/// thread or forked process — derives the same per-trial seeds.
std::uint64_t resolve_root_seed(const RunOptions& options);

/// The seed for submission index `index`: a pure function of
/// (root seed, index), independent of worker, backend and schedule.
std::uint64_t trial_seed(std::uint64_t root_seed, std::size_t index);

/// Identity of one trial as seen by the trial body.
struct TrialContext {
  std::size_t index = 0;   ///< submission index in [0, total)
  std::uint64_t seed = 0;  ///< root-derived, thread-count independent

  /// Fresh deterministic RNG for this trial.
  [[nodiscard]] sim::Rng rng() const { return sim::Rng{seed}; }
};

/// Wall-clock utilization of one worker over a sweep. Everything here is
/// timing-dependent (which worker ran or stole which trial varies run to
/// run) — report it on stderr or SSE, never in deterministic artifacts.
struct WorkerUtil {
  std::uint64_t trials = 0;  ///< trials this worker executed
  std::uint64_t stolen = 0;  ///< of those, taken from a peer's block
  double busy_ms = 0.0;      ///< wall-clock inside trial bodies
  double wait_ms = 0.0;      ///< wall-clock acquiring work / steal-waiting
};

/// Wall-clock accounting of the process backend's batched dispatch
/// path: frames sent, bytes moved and time the parent spent
/// encoding/flushing command frames. Like WorkerUtil this is
/// timing-dependent (frame sizes under --batch=auto depend on measured
/// trial cost) — reported on stderr alongside the worker timelines when
/// the span profiler is enabled, never in deterministic artifacts.
struct DispatchStats {
  std::uint64_t frames = 0;        ///< command frames written
  std::uint64_t trials = 0;        ///< trials dispatched (incl. re-dispatch)
  std::uint64_t redispatched = 0;  ///< trials re-queued after a worker crash
  std::uint64_t max_batch = 0;     ///< largest frame (trials)
  std::uint64_t bytes_out = 0;     ///< command-frame bytes written
  std::uint64_t bytes_in = 0;      ///< result bytes read
  double encode_ms = 0.0;          ///< parent wall-clock encoding frames
  double flush_ms = 0.0;           ///< parent wall-clock in writev/flush
};

/// Timing report for one sweep. Trial times are wall-clock (the trial
/// bodies run simulated worlds, so simulated time is irrelevant here).
struct SweepStats {
  metrics::RunningStats trial_ms;  ///< per-trial wall-clock, milliseconds
  /// Every trial's wall-clock in submission order (index = trial index),
  /// so latency percentiles are exact and independent of thread count.
  std::vector<double> samples_ms;
  double wall_ms = 0.0;            ///< whole-sweep wall-clock
  int jobs = 1;                    ///< pool size actually used
  /// Per-worker utilization (size == jobs for the thread backend; one
  /// entry per shard for the process backend). Wall-clock, not
  /// deterministic — excluded from profile JSON by design.
  std::vector<WorkerUtil> workers;
  /// Batched-dispatch accounting (process backend only; frames == 0
  /// elsewhere). Same stderr-only rule as `workers`.
  DispatchStats dispatch;

  /// Fraction of jobs * wall_ms spent inside trial bodies (0..1).
  [[nodiscard]] double utilization() const;
  /// Exact percentile over samples_ms (q in [0,1], nearest-rank).
  [[nodiscard]] double percentile(double q) const;
  /// One-line throughput report ("N trials in X ms on J threads ...").
  [[nodiscard]] std::string to_string() const;
  /// One-line latency table: "p50 ... p90 ... p99 ... max ...".
  [[nodiscard]] std::string latency_line() const;
  /// Multi-line per-worker timeline ("worker 0: 52 trials ... [####-]"),
  /// one bar per worker; empty string when workers is empty.
  [[nodiscard]] std::string worker_lines() const;
  /// One-line dispatch-path summary ("dispatch: 32 frames ..."); empty
  /// string when no frames were sent (threads backend).
  [[nodiscard]] std::string dispatch_line() const;
};

/// Thread-pool batch executor. Stateless between runs; the pool is
/// created per run() so a runner can be kept by value and reused with
/// different totals.
class ParallelRunner {
 public:
  explicit ParallelRunner(RunOptions options = {});

  /// Worker threads a run() will use (options resolved against the
  /// hardware; always >= 1).
  [[nodiscard]] int jobs() const { return jobs_; }
  [[nodiscard]] const RunOptions& options() const { return options_; }

  /// Execute body(ctx) for every submission index in [0, total).
  /// The body must be safe to call concurrently for distinct indices.
  /// Exceptions thrown by a body are appended to *errors (sorted by
  /// index) when `errors` is non-null, and swallowed otherwise.
  SweepStats run(std::size_t total, const std::function<void(const TrialContext&)>& body,
                 std::vector<TrialError>* errors = nullptr) const;

  /// Execute body(ctx) for a *subset* of submission indices of a sweep
  /// whose full size is `total` — the checkpoint/resume path. Each
  /// ctx.index/ctx.seed is the ORIGINAL submission identity (seeds are a
  /// pure function of the root seed and the submission index), so a
  /// resumed subset reproduces exactly what an uninterrupted run would
  /// have computed for those indices. samples_ms covers only the subset,
  /// in `indices` order.
  SweepStats run_subset(const std::vector<std::size_t>& indices, std::size_t total,
                        const std::function<void(const TrialContext&)>& body,
                        std::vector<TrialError>* errors = nullptr) const;

 private:
  RunOptions options_;
  int jobs_ = 1;
};

/// Everything a sweep produced: results in submission order (failed
/// trials hold a default-constructed R), captured errors, and timing.
template <typename R>
struct SweepResult {
  std::vector<R> results;
  std::vector<TrialError> errors;
  SweepStats stats;

  [[nodiscard]] bool ok() const { return errors.empty(); }
};

/// The unified trial-submission API: run fn(item, ctx) for every item,
/// in parallel, deterministically. fn's return type is the result type.
/// `items` is any sized random-access container (vector, span, array).
template <typename Items, typename Fn>
auto sweep(const Items& items, Fn&& fn, const RunOptions& options = {})
    -> SweepResult<
        std::decay_t<std::invoke_result_t<Fn&, decltype(items[0]), const TrialContext&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, decltype(items[0]), const TrialContext&>>;
  SweepResult<R> out;
  out.results.resize(items.size());
  const ParallelRunner pool{options};
  out.stats = pool.run(
      items.size(),
      [&](const TrialContext& ctx) { out.results[ctx.index] = fn(items[ctx.index], ctx); },
      &out.errors);
  return out;
}

}  // namespace animus::runner
