// Shared command-line surface for the bench binaries.
//
// Every migrated bench accepts the same three flags instead of carrying
// its own main() boilerplate:
//
//   --jobs N   worker threads for runner::sweep (0 = all hardware cores)
//   --seed S   root seed the per-trial seeds are split from
//   --csv      emit tables as CSV on stdout and suppress commentary
//
// Tables and commentary go to stdout; throughput reports and captured
// trial errors go to stderr, so `--jobs 1` and `--jobs 8` runs produce
// byte-identical stdout (the determinism contract) while timing stays
// visible on the terminal.
#pragma once

#include "metrics/table.hpp"
#include "runner/runner.hpp"

namespace animus::runner {

struct BenchArgs {
  RunOptions run;     ///< jobs + root_seed feed runner::sweep directly
  bool csv = false;   ///< CSV tables on stdout, commentary suppressed

  /// Parse argv; prints usage and exits on --help (0) or bad args (2).
  static BenchArgs parse(int argc, char** argv);
};

/// Print a table to stdout honoring --csv.
void emit(const metrics::Table& table, const BenchArgs& args);

/// Commentary line (shape checks, headers): stdout unless --csv.
void note(const BenchArgs& args, const char* line);

/// Throughput report + any captured trial errors, on stderr.
void report(const char* label, const SweepStats& stats, const std::vector<TrialError>& errors);

template <typename R>
void report(const char* label, const SweepResult<R>& sweep) {
  report(label, sweep.stats, sweep.errors);
}

}  // namespace animus::runner
