// Shared command-line surface for the bench binaries.
//
// Every migrated bench accepts the same flags instead of carrying its
// own main() boilerplate:
//
//   --jobs N            worker threads for runner::sweep (0 = all cores)
//   --seed S            root seed the per-trial seeds are split from
//   --csv               emit tables as CSV on stdout, suppress commentary
//   --trace-out FILE    write the Chrome/Perfetto span trace of one
//                       representative trial (submission index 0)
//   --metrics-out FILE  snapshot the global metrics registry on exit
//                       (.prom => Prometheus text, else JSON-lines)
//
// Tables and commentary go to stdout; throughput reports, latency
// percentiles and captured trial errors go to stderr, so `--jobs 1` and
// `--jobs 8` runs produce byte-identical stdout (the determinism
// contract) while telemetry stays visible on the terminal.
#pragma once

#include <string>

#include "metrics/table.hpp"
#include "runner/runner.hpp"

namespace animus::runner {

struct BenchArgs {
  RunOptions run;           ///< jobs + root_seed feed runner::sweep directly
  bool csv = false;         ///< CSV tables on stdout, commentary suppressed
  std::string trace_out;    ///< span-trace destination ("" = disabled)
  std::string metrics_out;  ///< metrics-snapshot destination ("" = disabled)

  /// Parse argv; prints usage and exits on --help (0) or bad args (2).
  /// When --trace-out is given, arms the process-wide trace capture for
  /// trial 0 so the next sweep records its representative trial.
  static BenchArgs parse(int argc, char** argv);
};

/// Print a table to stdout honoring --csv.
void emit(const metrics::Table& table, const BenchArgs& args);

/// Commentary line (shape checks, headers): stdout unless --csv.
void note(const BenchArgs& args, const char* line);

/// Throughput report, latency percentile line (p50/p90/p99/max) and any
/// captured trial errors, on stderr. Also feeds every per-trial latency
/// sample into the global `animus_trial_latency_ms{bench=label}`
/// histogram so --metrics-out exports it.
void report(const char* label, const SweepStats& stats, const std::vector<TrialError>& errors);

template <typename R>
void report(const char* label, const SweepResult<R>& sweep) {
  report(label, sweep.stats, sweep.errors);
}

/// Write --trace-out / --metrics-out files, if requested. Call once at
/// the end of main(); safe no-op when neither flag was given. Reports
/// destinations (or I/O failures) on stderr.
void finish(const BenchArgs& args);

}  // namespace animus::runner
