// Shared command-line surface for the bench binaries.
//
// Every migrated bench accepts the same flags instead of carrying its
// own main() boilerplate:
//
//   --jobs N              worker threads for runner::sweep (0 = all cores)
//   --seed S              root seed the per-trial seeds are split from
//   --backend NAME        execution backend for campaigns: `threads`
//                         (default; in-process steal-queue pool) or
//                         `process` (fork N shard workers; a crashed
//                         worker costs one trial, not the sweep)
//   --shards N            worker processes for --backend=process
//                         (0 = all hardware cores)
//   --batch N|auto        trials per command frame for --backend=process.
//                         `auto` (default) sizes frames from measured
//                         trial cost (~1 ms of work per frame, probed
//                         with single-trial frames first); N=1 restores
//                         the one-trial-in-flight protocol; N>1 pins
//                         the frame size. Results are byte-identical at
//                         any value — batching only changes dispatch
//                         overhead
//   --tier NAME           trial execution tier: `auto` (default; closed-form
//                         analytic replay when a trial is eligible, full
//                         simulation otherwise), `sim` (force simulation)
//                         or `analytic` (force the fast tier; ineligible
//                         trials fall back to sim and bump the per-scenario
//                         animus_analytic_fallbacks_total counter)
//   --scenario NAME       restrict a registry-driven bench to one attack
//                         scenario (core/attack_scenario.hpp); unknown
//                         names exit 2 listing the registered ones
//   --list-scenarios      print every registered scenario (name, tier
//                         eligibility, description) and exit 0
//   --inject-fault RATE   deterministically fail ~RATE of campaign
//                         trials (seed-derived set; exercises the error
//                         path; injected vs organic counts land in the
//                         run manifest)
//   --csv                 emit tables as CSV on stdout, suppress commentary
//   --trials-out FILE     per-trial CSV: label,index + one column per
//                         result field (derived from the field codec)
//   --trace-out FILE      write the Chrome/Perfetto span trace of one
//                         representative trial (submission index 0)
//   --trace-trial N       capture submission index N instead of 0; errors
//                         (exit 2) when N exceeds every sweep's trial count
//   --profile-out FILE    sweep-wide span profile: aggregate EVERY span
//                         from EVERY trial (count, total/self simulated
//                         ns, min/max, log2 latency histogram) into one
//                         deterministic JSON report — byte-identical at
//                         any --jobs/--backend/--shards — plus a top-N
//                         self-time table and per-worker utilization
//                         timelines on stderr
//   --metrics-out FILE    snapshot the global metrics registry on exit
//                         (.prom => Prometheus text, else JSON-lines)
//   --stream-out FILE     streaming telemetry: append timestamped JSONL
//                         records (metrics snapshots, progress heartbeats)
//                         every --stream-interval while the sweep runs
//   --stream-interval MS  flush/heartbeat period (default 1000). Below
//                         1000 ms the metrics samples switch to delta
//                         encoding (changed series only, with a full
//                         keyframe every 10th sample) so a fast tick
//                         does not pay the full-snapshot cost
//   --stream-full         force full metrics samples at any interval
//                         (the pre-delta byte-identical JSONL format)
//   --progress            progress heartbeat on stderr (throughput,
//                         completion %, ETA, errors) even without a stream
//   --checkpoint-out FILE persist completed trials as JSONL at interval
//                         boundaries (campaign survives a kill)
//   --checkpoint-interval N   trials between checkpoint flushes (default 64)
//   --resume-from FILE    re-run only the trials a checkpoint is missing;
//                         merged output is byte-identical to an
//                         uninterrupted run at any --jobs
//   --manifest FILE       run-manifest destination (default: written next
//                         to the first file artifact)
//
// Tables and commentary go to stdout; throughput reports, latency
// percentiles, heartbeats and captured trial errors go to stderr, so
// `--jobs 1`, `--jobs 8` and `--backend=process --shards 4` runs
// produce byte-identical stdout (the determinism contract) while
// telemetry stays visible on the terminal.
//
// Checkpoint/resume rides on `run_campaign`, the backend- and
// checkpoint-aware form of runner::sweep for benches whose trial
// results have a TrialCodec (i.e. scalars, or structs declared with
// ANIMUS_FIELDS). A campaign's trial bodies always produce
// codec-encoded results — that one representation feeds the execution
// backend (runner/backend.hpp), the checkpoint file, --trials-out rows
// and the in-memory result vector alike.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "metrics/table.hpp"
#include "runner/backend.hpp"
#include "runner/checkpoint.hpp"
#include "runner/runner.hpp"

namespace animus::runner {

struct BenchArgs {
  RunOptions run;           ///< jobs + root_seed feed runner::sweep directly
  std::string backend;      ///< "" or "threads" or "process"
  int shards = 0;           ///< process-backend worker count (0 = all cores)
  int batch = 0;            ///< trials per process-backend frame (0 = auto)
  std::string tier = "auto";         ///< trial tier: auto | sim | analytic
  std::string scenario;     ///< --scenario name ("" = run the bench's own sweep)
  double inject_fault = 0.0;         ///< fraction of trials to fail (0..1)
  bool csv = false;         ///< CSV tables on stdout, commentary suppressed
  bool progress = false;    ///< stderr heartbeat even without --stream-out
  std::string trials_out;   ///< per-trial CSV destination ("" = disabled)
  std::string trace_out;    ///< span-trace destination ("" = disabled)
  std::size_t trace_trial = 0;       ///< submission index --trace-out captures
  std::string profile_out;  ///< sweep-profile destination ("" = disabled)
  std::string metrics_out;  ///< metrics-snapshot destination ("" = disabled)
  std::string stream_out;   ///< streaming-telemetry destination ("" = disabled)
  double stream_interval_ms = 1000.0;
  bool stream_full = false; ///< force full metrics samples (disable delta mode)
  std::string checkpoint_out;        ///< checkpoint destination ("" = disabled)
  std::size_t checkpoint_interval = 64;
  std::string resume_from;  ///< checkpoint to resume ("" = fresh run)
  std::string manifest_out; ///< manifest destination ("" = next to artifacts)

  /// Parse argv; prints usage and exits on --help (0) or bad args (2).
  /// When --trace-out is given, arms the process-wide trace capture for
  /// --trace-trial (default 0) so a sweep records its representative
  /// trial. When --profile-out is given, enables the sweep-wide span
  /// profiler (obs::span_profiler()) at parse time, before any trial
  /// runs — forked shard workers inherit the enabled state. When
  /// --stream-out is given, opens the telemetry stream and installs a
  /// progress heartbeat into `run.progress`.
  static BenchArgs parse(int argc, char** argv);
};

/// Exception message carried by every --inject-fault failure; the
/// manifest's injected-vs-organic split keys on it.
inline constexpr const char* kInjectedFaultWhat = "injected fault (--inject-fault)";

/// True when --inject-fault=`rate` fails submission index `index` under
/// `root_seed`. A pure function of its arguments (the fault set is a
/// seed-derived substream, independent of backend/jobs/shards), so
/// tests and the manifest accounting can reproduce the schedule.
bool fault_scheduled(std::uint64_t root_seed, double rate, std::size_t index);

/// True when the telemetry stream's metrics samples are delta-encoded:
/// streaming is on, the interval is below 1 s (a fast tick would pay
/// the full-snapshot cost many times per second) and --stream-full did
/// not opt out. Pure predicate over the parsed args; the manifest's
/// `stream_delta` field records the same decision.
bool stream_delta_enabled(const BenchArgs& args);

/// Print a table to stdout honoring --csv.
void emit(const metrics::Table& table, const BenchArgs& args);

/// Commentary line (shape checks, headers): stdout unless --csv.
void note(const BenchArgs& args, const char* line);

/// Throughput report, latency percentile line (p50/p90/p99/max) and any
/// captured trial errors, on stderr. Also feeds every per-trial latency
/// sample into the global `animus_trial_latency_ms{bench=label}`
/// histogram so --metrics-out exports it.
void report(const char* label, const SweepStats& stats, const std::vector<TrialError>& errors);

template <typename R>
void report(const char* label, const SweepResult<R>& sweep) {
  report(label, sweep.stats, sweep.errors);
}

/// Write --trace-out / --metrics-out / --trials-out / manifest files and
/// close the telemetry stream, if requested. Call once at the end of
/// main(); safe no-op when no artifact flag was given. Reports
/// destinations (or I/O failures) on stderr. Exits 2 when --trace-trial
/// was out of range for every sweep the process ran.
void finish(const BenchArgs& args);

namespace detail {

/// Resume/checkpoint/backend plan for one campaign sweep (the
/// non-template half of run_campaign; prepared in bench_cli.cpp).
/// Exits 2 with a clear message on an unreadable or mismatched
/// --resume-from file or an unknown --backend.
struct CampaignPlan {
  std::vector<std::size_t> missing;           ///< submission indices to run
  std::vector<CheckpointData::Trial> resumed; ///< encoded completed trials
  std::shared_ptr<CheckpointWriter> writer;   ///< null when not checkpointing
  std::shared_ptr<ExecutionBackend> backend;  ///< never null
};

CampaignPlan prepare_campaign(const char* label, std::size_t total, const BenchArgs& args);

/// Report + stream + manifest accounting after a campaign sweep.
void finish_campaign(const char* label, const CampaignPlan& plan, const SweepStats& stats,
                     const std::vector<TrialError>& errors);

[[noreturn]] void campaign_decode_failed(const char* label, std::size_t index,
                                         const char* source);

/// Accumulate one campaign's per-trial CSV block for --trials-out
/// (written once by finish()).
void append_trials_csv(std::string&& block);

}  // namespace detail

/// Backend- and checkpoint-aware runner::sweep: behaves exactly like
/// `sweep(items, fn, args.run)` — results in submission order,
/// byte-identical stdout for any {--backend, --jobs, --shards} — but
/// honors --backend / --checkpoint-out / --resume-from /
/// --inject-fault / --trials-out and reports the sweep under `label`
/// (subsuming the separate report() call). Requires TrialCodec<R> so
/// results survive the round-trip through the execution boundary and
/// the checkpoint file exactly.
template <typename Items, typename Fn>
auto run_campaign(const char* label, const Items& items, Fn&& fn, const BenchArgs& args)
    -> SweepResult<
        std::decay_t<std::invoke_result_t<Fn&, decltype(items[0]), const TrialContext&>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, decltype(items[0]), const TrialContext&>>;
  using Codec = TrialCodec<R>;
  const std::size_t total = items.size();
  SweepResult<R> out;
  out.results.resize(total);

  detail::CampaignPlan plan = detail::prepare_campaign(label, total, args);
  for (const auto& t : plan.resumed) {
    R value{};
    if (!Codec::decode(t.result, &value)) {
      detail::campaign_decode_failed(label, t.index, "--resume-from");
    }
    out.results[t.index] = value;
  }

  // Every trial produces its codec-encoded result: the one
  // representation that crosses any execution boundary (thread pool or
  // worker-process pipe) and feeds the checkpoint sink unchanged.
  const std::uint64_t fault_root = args.run.root_seed;
  const double fault_rate = args.inject_fault;
  const EncodedBody body = [&](const TrialContext& ctx) -> std::string {
    if (fault_scheduled(fault_root, fault_rate, ctx.index)) {
      throw std::runtime_error(kInjectedFaultWhat);
    }
    return Codec::encode(fn(items[ctx.index], ctx));
  };
  ResultSink sink;
  if (plan.writer) {
    sink = [&](std::size_t index, std::uint64_t seed, std::string_view encoded) {
      plan.writer->append(index, seed, encoded);
    };
  }

  EncodedSweep ran = plan.backend->run_encoded(plan.missing, total, body, sink);
  for (std::size_t slot = 0; slot < plan.missing.size(); ++slot) {
    if (!ran.produced[slot]) continue;  // failed trial: default R stays
    R value{};
    if (!Codec::decode(ran.encoded[slot], &value)) {
      detail::campaign_decode_failed(label, plan.missing[slot], "backend");
    }
    out.results[plan.missing[slot]] = std::move(value);
  }
  out.errors = std::move(ran.errors);
  out.stats = std::move(ran.stats);

  if (plan.writer) plan.writer->close();
  detail::finish_campaign(label, plan, out.stats, out.errors);

  if (!args.trials_out.empty()) {
    // Columns come straight from the field descriptors (nested structs
    // flattened to dotted names), so every bench's per-trial export is
    // derived, not hand-rolled.
    std::string block = "# ";
    block += label;
    block += "\nlabel,index,";
    block += csv_header<R>();
    block += '\n';
    for (std::size_t i = 0; i < total; ++i) {
      block += label;
      block += ',';
      block += std::to_string(i);
      block += ',';
      block += csv_row(out.results[i]);
      block += '\n';
    }
    detail::append_trials_csv(std::move(block));
  }
  return out;
}

}  // namespace animus::runner
