// Pluggable execution backends for the parallel runner.
//
// `ExecutionBackend` is the seam between "what a sweep computes" and
// "where its trials run". A backend executes a trial body for a subset
// of submission indices and hands back every result in CODEC-ENCODED
// form (runner/field_codec.hpp) — the one representation that survives
// any execution boundary:
//
//   - `ThreadBackend` wraps `ParallelRunner`: the existing steal-queue
//     thread pool, bit-for-bit. Trial bodies run in-process; encoded
//     results are returned straight from worker memory.
//   - `ProcessShardBackend` forks N worker processes. The parent feeds
//     trial indices over a command pipe in length-prefixed batch frames
//     and keeps a credit window of frames in flight per worker, so
//     workers never idle between trials; workers ack each trial they
//     start and write results back in batched flushes over a result
//     pipe. A worker that dies mid-trial — SIGSEGV inside an attack
//     World, OOM kill, anything — is reaped by the parent: the one
//     genuinely in-flight trial is recorded as a TrialError, the rest
//     of its dispatch window is re-queued to the survivors, and the
//     REST OF THE SWEEP COMPLETES.
//
// Both backends obey the runner's determinism contract: per-trial seeds
// are trial_seed(root, index) regardless of which worker/process runs a
// trial, results are keyed by submission index, and errors are sorted —
// so a campaign's stdout is byte-identical for any {backend, jobs,
// shards} combination.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runner/runner.hpp"

namespace animus::runner {

/// A trial body that returns its codec-encoded result. Bodies signal
/// failure by throwing; backends capture that as a TrialError.
using EncodedBody = std::function<std::string(const TrialContext&)>;

/// Invoked once per completed trial with its encoded result — the
/// checkpoint-append hook. ThreadBackend calls it from worker threads
/// (the sink must be thread-safe, as CheckpointWriter::append is);
/// ProcessShardBackend calls it from the coordinating parent process.
using ResultSink =
    std::function<void(std::size_t index, std::uint64_t seed, std::string_view encoded)>;

/// What a backend hands back: encoded results by subset position
/// ("slot", i.e. the position within the `indices` argument), a
/// produced flag per slot (false = the trial failed), errors sorted by
/// submission index, and timing.
struct EncodedSweep {
  std::vector<std::string> encoded;  ///< by slot; "" when !produced[slot]
  std::vector<char> produced;        ///< by slot; 1 = encoded[slot] is valid
  std::vector<TrialError> errors;    ///< sorted by submission index
  SweepStats stats;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// "threads" or "process" — recorded in run manifests.
  [[nodiscard]] virtual const char* name() const = 0;

  /// Worker parallelism the backend will use (threads or shard count).
  [[nodiscard]] virtual int parallelism() const = 0;

  /// Execute body(ctx) for every submission index in `indices` (a
  /// subset of a sweep whose full size is `total`). Each ctx carries
  /// the ORIGINAL submission identity. `sink` may be null.
  virtual EncodedSweep run_encoded(const std::vector<std::size_t>& indices, std::size_t total,
                                   const EncodedBody& body, const ResultSink& sink) = 0;
};

/// The existing steal-queue thread pool behind the backend interface.
class ThreadBackend final : public ExecutionBackend {
 public:
  explicit ThreadBackend(RunOptions options) : runner_{std::move(options)} {}

  [[nodiscard]] const char* name() const override { return "threads"; }
  [[nodiscard]] int parallelism() const override { return runner_.jobs(); }

  EncodedSweep run_encoded(const std::vector<std::size_t>& indices, std::size_t total,
                           const EncodedBody& body, const ResultSink& sink) override;

  /// Direct access for callers that do not need encoding (runner::sweep).
  [[nodiscard]] const ParallelRunner& runner() const { return runner_; }

 private:
  ParallelRunner runner_;
};

/// Cross-process sharded backend (POSIX fork + pipes).
class ProcessShardBackend final : public ExecutionBackend {
 public:
  struct Options {
    /// Worker processes; 0 means one per hardware core.
    int shards = 0;
    /// Trials per command frame. 1 (the default) is the compatibility
    /// mode: single-trial frames, one in flight per worker — the exact
    /// pre-batching protocol and cost. 0 means auto: start with probe
    /// frames and grow toward ~1 ms of measured trial work per frame
    /// (clamped to kMaxBatch). Any other value is used as-is.
    int batch = 1;
    /// Command frames the parent keeps in flight per worker (>= 1).
    /// With batch == 1 this is forced to 1 so the compatibility mode
    /// reproduces the old one-trial-in-flight semantics exactly.
    int credits = 2;
    /// Test hook: shrink both pipes to this many bytes (F_SETPIPE_SZ)
    /// so large frames force short writes/reads. 0 = leave the kernel
    /// default. Read from ANIMUS_SHARD_PIPE_BUF by make_backend.
    unsigned pipe_buf = 0;
    /// Test hook: a worker that is handed this submission index kills
    /// itself (SIGKILL) before running the trial — a deterministic
    /// stand-in for a worker crashing mid-sweep. Read from the
    /// ANIMUS_SHARD_CRASH_TRIAL environment variable by make_backend.
    std::size_t crash_trial = static_cast<std::size_t>(-1);
  };

  /// Largest frame auto sizing will grow to (and the cap applied to an
  /// explicit --batch value).
  static constexpr int kMaxBatch = 256;

  ProcessShardBackend(RunOptions run, Options options)
      : run_{std::move(run)}, options_{options}, shards_{resolve_jobs(options.shards)} {}

  [[nodiscard]] const char* name() const override { return "process"; }
  [[nodiscard]] int parallelism() const override { return shards_; }

  EncodedSweep run_encoded(const std::vector<std::size_t>& indices, std::size_t total,
                           const EncodedBody& body, const ResultSink& sink) override;

 private:
  RunOptions run_;
  Options options_;
  int shards_ = 1;
};

/// Factory for the shared --backend flag: "threads" (default) or
/// "process". `shards` and `batch` only apply to the process backend
/// (`batch` follows ProcessShardBackend::Options::batch: 0 = auto,
/// 1 = the unbatched compatibility protocol). Returns nullptr with a
/// message in *error for an unknown name or an unsupported platform.
std::unique_ptr<ExecutionBackend> make_backend(std::string_view name, const RunOptions& run,
                                               int shards, int batch, std::string* error);

/// Back-compat overload: unbatched process dispatch (batch = 1).
inline std::unique_ptr<ExecutionBackend> make_backend(std::string_view name,
                                                      const RunOptions& run, int shards,
                                                      std::string* error) {
  return make_backend(name, run, shards, 1, error);
}

}  // namespace animus::runner
