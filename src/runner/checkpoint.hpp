// Sweep checkpoint/resume for long campaigns.
//
// A checkpoint is an append-only JSONL file: one header line recording
// the sweep identity (root seed, trial count, determinism mode), then
// one line per *completed* trial carrying its submission index, derived
// seed and encoded result:
//
//   {"kind":"header","version":1,"label":"fig07","total":210,
//    "root_seed":71829455837523,"deterministic":true}
//   {"kind":"trial","index":12,"seed":9937...,"result":"86.0"}
//
// The writer flushes at interval boundaries (every N appended trials)
// and on close, so a campaign killed mid-flight loses at most the last
// interval. The loader tolerates a torn final line — exactly what a
// kill leaves behind — but rejects a header that does not match the
// resuming sweep's options (different seed/total means the results are
// not interchangeable).
//
// Resuming re-runs only the missing submission indices; because every
// trial's seed is a pure function of (root seed, index), the merged
// result vector is byte-identical to an uninterrupted run at any
// --jobs value, provided the result codec round-trips exactly
// (TrialCodec<double> uses %.17g for that reason).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace animus::runner {

struct CheckpointHeader {
  int version = 1;
  std::string label;          ///< bench label, informational
  std::size_t total = 0;      ///< submission count of the sweep
  std::uint64_t root_seed = 0;
  bool deterministic = true;
};

/// Thread-safe append-only writer. All I/O errors latch `ok() == false`
/// and are reported once by the caller at close.
class CheckpointWriter {
 public:
  /// Truncates `path` and writes the header. `flush_interval` is the
  /// number of appended trials between fflush barriers (>= 1).
  /// With `append` true the file is opened for append and no header is
  /// written (continuing an existing checkpoint in place).
  CheckpointWriter(std::string path, const CheckpointHeader& header,
                   std::size_t flush_interval, bool append = false);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  [[nodiscard]] bool ok() const;

  /// Append one completed trial (thread-safe).
  void append(std::size_t index, std::uint64_t seed, std::string_view encoded_result);

  /// Final flush + close. Idempotent; the destructor calls it too.
  void close();

  [[nodiscard]] std::size_t appended() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::size_t flush_interval_ = 1;
  std::size_t since_flush_ = 0;
  std::size_t appended_ = 0;
  bool ok_ = false;
};

/// A loaded checkpoint: the header plus (index, encoded result, seed)
/// for every completed trial, deduplicated (last write wins).
struct CheckpointData {
  CheckpointHeader header;
  struct Trial {
    std::size_t index = 0;
    std::uint64_t seed = 0;
    std::string result;  ///< encoded, as written
  };
  std::vector<Trial> trials;  ///< sorted by index
};

/// Load `path`. A torn trailing line (the signature of a kill mid-write)
/// is silently dropped; a missing file, unreadable header or malformed
/// interior line fails with a message in *error.
std::optional<CheckpointData> load_checkpoint(const std::string& path, std::string* error);

/// "" when `data` can seed a resume of a sweep with this identity;
/// otherwise a human-readable mismatch description (seed, total, mode).
std::string checkpoint_mismatch(const CheckpointData& data, const CheckpointHeader& expect);

// ---------------------------------------------------------------------
// Result codecs: exact, line-safe round-trip encodings for the result
// types the campaign benches produce. Specialize for new result types.
// ---------------------------------------------------------------------

template <typename R>
struct TrialCodec;  // no primary definition: specialize per result type

template <>
struct TrialCodec<double> {
  static std::string encode(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);  // exact round-trip
    return buf;
  }
  static bool decode(std::string_view s, double* out) {
    char* end = nullptr;
    const std::string tmp(s);
    *out = std::strtod(tmp.c_str(), &end);
    return end == tmp.c_str() + tmp.size() && !tmp.empty();
  }
};

template <>
struct TrialCodec<int> {
  static std::string encode(int v) { return std::to_string(v); }
  static bool decode(std::string_view s, int* out) {
    char* end = nullptr;
    const std::string tmp(s);
    *out = static_cast<int>(std::strtol(tmp.c_str(), &end, 10));
    return end == tmp.c_str() + tmp.size() && !tmp.empty();
  }
};

}  // namespace animus::runner
