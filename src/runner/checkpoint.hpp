// Sweep checkpoint/resume for long campaigns.
//
// A checkpoint is an append-only JSONL file: a header line recording a
// sweep's identity (label, root seed, trial count, determinism mode),
// then one line per *completed* trial carrying its submission index,
// derived seed and codec-encoded result:
//
//   {"kind":"header","version":1,"label":"fig07","total":210,
//    "root_seed":71829455837523,"deterministic":true}
//   {"kind":"trial","index":12,"seed":9937...,"result":"86.0"}
//
// A file may hold several such SECTIONS — one per sweep label — so a
// bench that runs more than one campaign (fig06's outcome table + 1 ms
// scan, table03's main grid + family appendix) checkpoints every sweep
// into a single file; each header starts (or re-opens) the section for
// its label, and the trials that follow belong to it.
//
// The writer flushes at interval boundaries (every N appended trials)
// and on close, so a campaign killed mid-flight loses at most the last
// interval. The loader tolerates a torn final line — exactly what a
// kill leaves behind — but a resume rejects a section whose header does
// not match the resuming sweep's options (different seed/total means
// the results are not interchangeable).
//
// Resuming re-runs only the missing submission indices; because every
// trial's seed is a pure function of (root seed, index), the merged
// result vector is byte-identical to an uninterrupted run at any
// --jobs value and on any execution backend, provided the result codec
// round-trips exactly — which is what the field-descriptor codec
// (runner/field_codec.hpp) guarantees.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runner/field_codec.hpp"  // TrialCodec<R>, used by every campaign

namespace animus::runner {

struct CheckpointHeader {
  int version = 1;
  std::string label;          ///< sweep label; keys the section in the file
  std::size_t total = 0;      ///< submission count of the sweep
  std::uint64_t root_seed = 0;
  bool deterministic = true;
};

/// Thread-safe append-only writer. All I/O errors latch `ok() == false`
/// and are reported once by the caller at close.
class CheckpointWriter {
 public:
  enum class Mode {
    kTruncate,       ///< fresh file: truncate, write the header
    kAppend,         ///< continue the file's current section in place
    kAppendHeader,   ///< append a new section header, then trials
  };

  /// `flush_interval` is the number of appended trials between fflush
  /// barriers (>= 1).
  CheckpointWriter(std::string path, const CheckpointHeader& header,
                   std::size_t flush_interval, Mode mode = Mode::kTruncate);
  ~CheckpointWriter();

  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  [[nodiscard]] bool ok() const;

  /// Append one completed trial (thread-safe).
  void append(std::size_t index, std::uint64_t seed, std::string_view encoded_result);

  /// Final flush + close. Idempotent; the destructor calls it too.
  void close();

  [[nodiscard]] std::size_t appended() const;
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::size_t flush_interval_ = 1;
  std::size_t since_flush_ = 0;
  std::size_t appended_ = 0;
  bool ok_ = false;
};

/// A loaded checkpoint: one section per sweep label, each holding the
/// header plus (index, seed, encoded result) for every completed trial,
/// deduplicated (last write wins).
struct CheckpointData {
  struct Trial {
    std::size_t index = 0;
    std::uint64_t seed = 0;
    std::string result;  ///< encoded, as written
  };
  struct Section {
    CheckpointHeader header;
    std::vector<Trial> trials;  ///< sorted by index
  };
  std::vector<Section> sections;     ///< in first-seen file order
  std::string last_header_label;     ///< label of the file's final header line

  /// The section for `label`, or nullptr. An empty needle with exactly
  /// one section returns that section (label is informational for
  /// single-sweep files).
  [[nodiscard]] const Section* section(std::string_view label) const;

  /// Single-sweep conveniences: the first section.
  [[nodiscard]] const CheckpointHeader& header() const { return sections.front().header; }
  [[nodiscard]] const std::vector<Trial>& trials() const { return sections.front().trials; }
};

/// Load `path`. A torn trailing line (the signature of a kill mid-write)
/// is silently dropped; a missing file, unreadable header or malformed
/// interior line fails with a message in *error.
std::optional<CheckpointData> load_checkpoint(const std::string& path, std::string* error);

/// "" when `section` can seed a resume of a sweep with this identity;
/// otherwise a human-readable mismatch description (seed, total, mode).
std::string checkpoint_mismatch(const CheckpointData::Section& section,
                                const CheckpointHeader& expect);

}  // namespace animus::runner
