#include "runner/backend.hpp"

#include <cstdlib>
#include <unordered_map>
#include <utility>

namespace animus::runner {

EncodedSweep ThreadBackend::run_encoded(const std::vector<std::size_t>& indices,
                                        std::size_t total, const EncodedBody& body,
                                        const ResultSink& sink) {
  EncodedSweep out;
  const std::size_t count = indices.size();
  out.encoded.resize(count);
  out.produced.assign(count, 0);

  std::unordered_map<std::size_t, std::size_t> slot_of;
  slot_of.reserve(count);
  for (std::size_t slot = 0; slot < count; ++slot) slot_of.emplace(indices[slot], slot);

  // The existing steal-queue pool, unchanged: workers write distinct
  // slots, so no synchronization beyond the runner's own is needed.
  out.stats = runner_.run_subset(
      indices, total,
      [&](const TrialContext& ctx) {
        std::string enc = body(ctx);
        const std::size_t slot = slot_of.at(ctx.index);
        if (sink) sink(ctx.index, ctx.seed, enc);
        out.encoded[slot] = std::move(enc);
        out.produced[slot] = 1;
      },
      &out.errors);
  return out;
}

std::unique_ptr<ExecutionBackend> make_backend(std::string_view name, const RunOptions& run,
                                               int shards, int batch, std::string* error) {
  if (name.empty() || name == "threads" || name == "thread") {
    return std::make_unique<ThreadBackend>(run);
  }
  if (name == "process" || name == "processes") {
#if defined(_WIN32)
    if (error) *error = "the process backend requires a POSIX platform (fork/pipes)";
    return nullptr;
#else
    ProcessShardBackend::Options opts;
    opts.shards = shards;
    opts.batch = batch;
    if (const char* crash = std::getenv("ANIMUS_SHARD_CRASH_TRIAL")) {
      opts.crash_trial = std::strtoull(crash, nullptr, 10);
    }
    if (const char* buf = std::getenv("ANIMUS_SHARD_PIPE_BUF")) {
      opts.pipe_buf = static_cast<unsigned>(std::strtoul(buf, nullptr, 10));
    }
    return std::make_unique<ProcessShardBackend>(run, opts);
#endif
  }
  if (error) {
    *error = "unknown backend '" + std::string(name) + "' (expected threads|process)";
  }
  return nullptr;
}

}  // namespace animus::runner
